"""Ablations of design choices the paper calls out.

* Parcel coalescing (Section IV): DASHMM "sends only a single coalesced
  active-message parcel containing the expansion data and the relevant
  out edges to any given locality" instead of one message per edge.
* Merge-and-shift (Section II): reduces the average number of heavy
  list-2 translations per box from 189 to ~40.
* Distribution policy (Section IV): the policy "is designed ... by
  trying to minimize communication cost".
* Grain size (Sections I/V): heavier tasks (more accuracy digits /
  Yukawa-like kernels) scale better.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import N_TRACE, THRESHOLD, write_report
from repro.dashmm import BlockPolicy, DashmmEvaluator, FmmPolicy, RandomPolicy
from repro.dashmm.dag import build_fmm_dag
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel


def _eval(cube_problem, dag, *, coalesce=True, policy=None, cost_model=None, L=8):
    src, w, tgt, dual, lists = cube_problem
    cm = cost_model or CostModel()
    cfg = RuntimeConfig(n_localities=L, workers_per_locality=32)
    ev = DashmmEvaluator(
        LaplaceKernel(9),
        mode="phantom",
        runtime_config=cfg,
        cost_model=cm,
        coalesce=coalesce,
        policy=policy or FmmPolicy(balance="work", cost_model=cm),
    )
    return ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)


def test_coalescing_ablation(benchmark, cube_problem, cube_dag):
    def run():
        on = _eval(cube_problem, cube_dag, coalesce=True)
        off = _eval(cube_problem, cube_dag, coalesce=False)
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Coalescing ablation (256 cores, N={N_TRACE} cube)",
        f"coalesced:  t={on.time:.5f}s parcels={on.runtime_stats['parcels_sent']}"
        f" remote={on.runtime_stats['remote_bytes'] / 1e6:.1f} MB",
        f"per-edge:   t={off.time:.5f}s parcels={off.runtime_stats['parcels_sent']}"
        f" remote={off.runtime_stats['remote_bytes'] / 1e6:.1f} MB",
    ]
    write_report("coalescing_ablation", lines)
    assert on.runtime_stats["parcels_sent"] < off.runtime_stats["parcels_sent"]
    assert on.runtime_stats["remote_bytes"] < off.runtime_stats["remote_bytes"]
    assert on.time <= off.time * 1.02


def test_mergeshift_ablation(benchmark, cube_problem):
    src, w, tgt, dual, lists = cube_problem

    def run():
        adv = build_fmm_dag(dual, lists, advanced=True)
        basic = build_fmm_dag(dual, lists, advanced=False)
        rep_adv = _eval(cube_problem, adv)
        rep_basic = _eval(cube_problem, basic)
        return adv, basic, rep_adv, rep_basic

    adv, basic, rep_adv, rep_basic = benchmark.pedantic(run, rounds=1, iterations=1)
    n_l2 = basic.edge_stats()["M2L"]["count"]
    n_boxes = adv.node_stats()["It"]["count"]
    heavy_adv = adv.edge_stats()["M2I"]["count"] + adv.edge_stats()["I2L"]["count"]
    lines = [
        f"Merge-and-shift ablation (N={N_TRACE} cube, threshold {THRESHOLD})",
        f"basic FMM:    {n_l2} M2L heavy translations"
        f" ({n_l2 / n_boxes:.1f} per target box; paper: up to 189, avg large)",
        f"advanced FMM: {heavy_adv} heavy ops (M2I+I2L,"
        f" {heavy_adv / n_boxes:.1f} per box) + {n_l2} diagonal I2I",
        f"evaluation time: advanced {rep_adv.time:.5f}s vs basic {rep_basic.time:.5f}s",
        "paper: average heavy translations per box reduced from 189 to ~40",
    ]
    write_report("mergeshift_ablation", lines)
    assert heavy_adv < n_l2 / 3
    assert rep_adv.time < rep_basic.time


def test_distribution_ablation(benchmark, cube_problem, cube_dag):
    def run():
        out = {}
        cm = CostModel()
        for name, pol in (
            ("fmm", FmmPolicy(balance="work", cost_model=cm)),
            ("block", BlockPolicy(balance="work", cost_model=cm)),
            ("random", RandomPolicy(balance="work", cost_model=cm)),
        ):
            out[name] = _eval(cube_problem, cube_dag, policy=pol)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Distribution-policy ablation (256 cores, N={N_TRACE} cube)"]
    for name, rep in out.items():
        lines.append(
            f"{name:>7}: t={rep.time:.5f}s remote={rep.runtime_stats['remote_bytes'] / 1e6:8.1f} MB"
            f" parcels={rep.runtime_stats['parcels_sent']}"
        )
    write_report("distribution_ablation", lines)
    # the paper's policy moves less data than random placement
    assert (
        out["fmm"].runtime_stats["remote_bytes"]
        < out["random"].runtime_stats["remote_bytes"]
    )
    assert out["fmm"].time <= out["random"].time * 1.05


def test_grainsize_ablation(benchmark, cube_problem, cube_dag):
    """Accuracy digits adjust the grain size (Section I); heavier grains
    scale better - the Laplace-vs-Yukawa mechanism, isolated."""

    def run():
        out = {}
        for factor in (0.5, 1.0, 2.2, 4.0):
            cm = CostModel(expansion_factor=factor, direct_factor=factor ** 0.5)
            t_small = _eval(cube_problem, cube_dag, cost_model=cm, L=1).time
            t_big = _eval(cube_problem, cube_dag, cost_model=cm, L=32).time
            out[factor] = (t_small / t_big) / 32.0
        return out

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"Grain-size ablation: efficiency at 1024 cores vs 32 (N={N_TRACE} cube)"]
    for f, e in effs.items():
        lines.append(f"expansion_factor={f:>4}: efficiency {e:.2%}")
    lines.append("paper mechanism: heavier (Yukawa-like) grains scale better")
    write_report("grainsize_ablation", lines)
    assert effs[4.0] > effs[0.5]


def test_sequential_edges_ablation(benchmark, cube_problem, cube_dag):
    """Section VI: 'the sequential execution of out edges maximizes cache
    locality ... but sacrifices parallelism.'  Spawning one task per
    local edge exposes that parallelism; the simulation shows whether it
    pays at the measured task grains."""
    src, w, tgt, dual, lists = cube_problem

    def run():
        out = {}
        cm = CostModel()
        for seq in (True, False):
            cfg = RuntimeConfig(n_localities=8, workers_per_locality=32)
            ev = DashmmEvaluator(
                LaplaceKernel(9),
                mode="phantom",
                runtime_config=cfg,
                cost_model=cm,
                sequential_edges=seq,
                policy=FmmPolicy(balance="work", cost_model=cm),
            )
            out[seq] = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=cube_dag)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Sequential-out-edge ablation (256 cores, N={N_TRACE} cube)",
        f"sequential (paper): t={out[True].time:.5f}s tasks={out[True].runtime_stats['tasks_run']}",
        f"per-edge tasks:     t={out[False].time:.5f}s tasks={out[False].runtime_stats['tasks_run']}",
    ]
    write_report("sequential_edges_ablation", lines)
    assert out[False].runtime_stats["tasks_run"] > out[True].runtime_stats["tasks_run"]
    # both must complete the same dataflow
    assert out[True].extras["untriggered"] == out[False].extras["untriggered"] == 0
