"""Real-core strong scaling of the parallel backend (Fig. 3 overlay).

Runs the numeric evaluation on 1/2/4/8 worker processes for the four
Fig. 3 workloads (cube + sphere-surface geometry, Laplace + Yukawa
kernels) and appends the measured wall-clock curve to
``benchmarks/results/BENCH_realparallel.json``.  The simulator's
phantom-mode prediction for the same DAG at the same locality counts is
recorded alongside, compared shape-to-shape with
:func:`repro.analysis.scaling.shape_compare` (absolute times are
incomparable; normalized speedup curves should agree in shape).

The speedup floor (>= 2.5x at 4 workers) is asserted only when the
machine actually has >= 4 CPUs - on smaller containers the measured
curve is still recorded, together with ``cpu_count``, so the trajectory
stays honest about what the hardware could show.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.conftest import LARGE, write_report
from benchmarks.trajectory import append_record
from repro.analysis.scaling import shape_compare
from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel
from repro.sim.costmodel import CostModel
from repro.workloads.distributions import cube_points, random_charges, sphere_points

# CI's parallel-smoke job restricts this to "1,2" for a fast gate
WORKER_COUNTS = [
    int(s) for s in os.environ.get("REALPARALLEL_WORKERS", "1,2,4,8").split(",")
]
N = 20_000 if LARGE else 4_000
P = 6
THRESHOLD = 60
MIN_SPEEDUP_AT_4 = 2.5

WORKLOADS = [
    ("cube", "laplace"),
    ("cube", "yukawa"),
    ("sphere", "laplace"),
    ("sphere", "yukawa"),
]


def _points(geometry: str):
    make = cube_points if geometry == "cube" else sphere_points
    return make(N, seed=1), random_charges(N, seed=3), make(N, seed=2)


def _kernel(name: str):
    return LaplaceKernel(P) if name == "laplace" else YukawaKernel(P, lam=2.0)


@pytest.mark.parallel
@pytest.mark.parametrize("geometry,kernel_name", WORKLOADS)
def test_realparallel_scaling(geometry, kernel_name):
    src, w, tgt = _points(geometry)
    kernel = _kernel(kernel_name)
    factory = OperatorFactory.shared(kernel, eps=1e-4)
    cpus = os.cpu_count() or 1

    # warm the operator cache outside the timed windows (one sim run),
    # and keep its setup for the phantom-mode prediction below: tree,
    # lists and DAG are built once per workload and reused
    warm = DashmmEvaluator(
        kernel, threshold=THRESHOLD, factory=factory,
        runtime_config=RuntimeConfig(n_localities=1),
    )
    ref = warm.evaluate(src, w, tgt)
    dual, dag, lists = ref.dual, ref.dag, ref.lists

    measured: dict[int, float] = {}
    for nw in WORKER_COUNTS:
        ev = DashmmEvaluator(
            kernel,
            threshold=THRESHOLD,
            factory=factory,
            runtime_config=RuntimeConfig(
                n_localities=nw, policy="critical-path", backend="parallel"
            ),
        )
        rep = ev.evaluate(src, w, tgt)
        assert np.all(np.isfinite(rep.potentials))
        measured[nw] = rep.time

    # simulator prediction: same DAG, one simulated core per locality
    cm = CostModel.for_kernel(kernel_name)
    predicted: dict[int, float] = {}
    for nw in WORKER_COUNTS:
        ev = DashmmEvaluator(
            kernel,
            threshold=THRESHOLD,
            mode="phantom",
            cost_model=cm,
            runtime_config=RuntimeConfig(
                n_localities=nw, workers_per_locality=1, policy="critical-path"
            ),
        )
        predicted[nw] = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag).time

    shape = shape_compare(measured, predicted)
    speedup4 = measured[1] / measured[4] if 4 in measured else None
    record = {
        "geometry": geometry,
        "kernel": kernel_name,
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "cpu_count": cpus,
        "measured_s": {str(nw): round(t, 4) for nw, t in measured.items()},
        "predicted_virtual_s": {
            str(nw): round(t, 6) for nw, t in predicted.items()
        },
        "speedup_at_4": round(speedup4, 3) if speedup4 is not None else None,
        "shape_max_log_deviation": round(shape["max_log_deviation"], 4),
    }
    append_record("BENCH_realparallel", record)

    write_report(
        f"realparallel_{geometry}_{kernel_name}",
        [
            f"real-parallel scaling: {geometry}/{kernel_name}, n={N}, p={P}, "
            f"threshold={THRESHOLD}, cpus={cpus}",
            *(
                f"  {nw} workers: measured {measured[nw]:.3f} s   "
                f"predicted(virtual) {predicted[nw]:.6f} s"
                for nw in WORKER_COUNTS
            ),
            (
                f"speedup at 4 workers: {speedup4:.2f}x "
                f"(floor {MIN_SPEEDUP_AT_4}x, asserted only with >=4 cpus)"
                if speedup4 is not None
                else "speedup at 4 workers: not measured (REALPARALLEL_WORKERS)"
            ),
            f"shape max |log dev| vs simulator: {shape['max_log_deviation']:.3f}",
        ],
    )

    assert shape["predicted_monotone"], "simulator predicts scaling; DAG too small?"
    if cpus >= 4 and speedup4 is not None:
        assert speedup4 >= MIN_SPEEDUP_AT_4, (
            f"{geometry}/{kernel_name}: only {speedup4:.2f}x at 4 workers "
            f"on {cpus} cpus (floor {MIN_SPEEDUP_AT_4}x); see "
            "benchmarks/results/BENCH_realparallel.json"
        )
