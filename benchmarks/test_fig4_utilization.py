"""Figure 4: total utilization fraction f_k over 100 uniform intervals.

Paper setup: 30M cube points, Laplace kernel, runs on 64/128/512 cores
(2/4/16 localities).  Paper findings: ~90% plateau for most of the
execution (98% on a single node where no networking/copying is needed),
a startup ramp over the first ~20% of intervals, and a dip in
utilization near the end whose *relative width grows with locality
count* - the predominant reason for the scaling inefficiencies of
Fig. 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import N_TRACE, write_report
from repro.analysis.utilization import total_utilization, underutilized_region
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel

CONFIGS = [(2, 32), (4, 32), (16, 32)]  # paper's 64 / 128 / 512 cores


def _run(cube_problem, cube_dag):
    src, w, tgt, dual, lists = cube_problem
    out = {}
    cm = CostModel()
    for L, W in CONFIGS:
        cfg = RuntimeConfig(n_localities=L, workers_per_locality=W)
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=FmmPolicy(balance="work", cost_model=cm),
        )
        rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=cube_dag)
        fk = total_utilization(rep.tracer, L * W, rep.time, 100)
        out[L * W] = (rep.time, fk)
    # single-node reference (no networking): paper reports ~98%
    cfg = RuntimeConfig(n_localities=1, workers_per_locality=32)
    ev = DashmmEvaluator(LaplaceKernel(9), mode="phantom", runtime_config=cfg)
    rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=cube_dag)
    out[32] = (rep.time, total_utilization(rep.tracer, 32, rep.time, 100))
    return out


def test_fig4_total_utilization(benchmark, cube_problem, cube_dag):
    out = benchmark.pedantic(_run, args=(cube_problem, cube_dag), rounds=1, iterations=1)
    lines = [
        f"Figure 4 - total utilization fraction f_k (N={N_TRACE} cube, Laplace;"
        " paper at 30M over 34.6/17.6/4.55 s)",
    ]
    dips = {}
    plateaus = {}
    for n in sorted(out):
        t, fk = out[n]
        dip = underutilized_region(fk)
        dips[n] = dip
        plateaus[n] = float(np.median(fk[20:]))
        decimated = fk[::5]
        lines.append(f"n={n:4d}  t={t:.4f}s  plateau={plateaus[n]:.2f}  dip bins {dip}")
        lines.append("   f_k: " + " ".join(f"{v:.2f}" for v in decimated))
    lines += [
        "",
        "paper: ~90% plateau multi-node, ~98% single node, dip near the end",
        "       widening with locality count",
    ]
    write_report("fig4_utilization", lines)

    # plateau claims
    assert plateaus[32] > 0.93, "single-node utilization should be near-full"
    for n in (64, 128, 512):
        assert plateaus[n] > 0.75
    # the multi-locality runs show a late-execution dip; its width grows
    widths = {n: dips[n][1] - dips[n][0] for n in (64, 128, 512)}
    assert widths[512] > 0
    assert widths[512] >= widths[64]
    # dip sits in the later part of the execution
    if widths[512]:
        assert dips[512][0] > 50
