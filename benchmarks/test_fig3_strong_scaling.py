"""Figure 3: strong scaling of DAG evaluation, four runs.

Paper setup: cube (60M points) and sphere-surface (42M) source/target
ensembles, Laplace and Yukawa kernels, threshold 60, 3-digit accuracy,
n = 32..4096 cores (32 per locality / Big Red II node).  Paper results:
final scaling efficiencies at 4096 cores of 60% (cube Laplace), 74%
(cube Yukawa), 62% (sphere Laplace), 69% (sphere Yukawa); visible
deviation from ideal from 512 cores on; heavier (Yukawa) tasks scale
better.

Reproduction: same DAGs at reduced N through the simulated runtime in
phantom mode (cost model calibrated from Table II).  Shape claims
asserted: efficiency decreases with core count, Yukawa beats Laplace at
the largest core count on the same geometry.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import N_CUBE, N_SPHERE, THRESHOLD, write_report
from repro.analysis.scaling import scaling_table
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import cube_points, random_charges, sphere_points

CORE_COUNTS = [32, 64, 128, 256, 512, 1024, 2048, 4096]
WORKERS_PER_LOCALITY = 32

PAPER_EFFICIENCY_4096 = {
    ("cube", "laplace"): 0.60,
    ("cube", "yukawa"): 0.74,
    ("sphere", "laplace"): 0.62,
    ("sphere", "yukawa"): 0.69,
}


_PROBLEM_CACHE: dict = {}


def _problem(geometry: str):
    if geometry in _PROBLEM_CACHE:
        return _PROBLEM_CACHE[geometry]
    if geometry == "cube":
        src = cube_points(N_CUBE, seed=1)
        tgt = cube_points(N_CUBE, seed=2)
        n = N_CUBE
    else:
        src = sphere_points(N_SPHERE, seed=1)
        tgt = sphere_points(N_SPHERE, seed=2)
        n = N_SPHERE
    w = random_charges(n, seed=3)
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    lists = build_lists(dual)
    ev = DashmmEvaluator(LaplaceKernel(9), mode="phantom")
    dag, _ = ev.build_dag(dual, lists)
    _PROBLEM_CACHE[geometry] = (src, w, tgt, dual, lists, dag)
    return _PROBLEM_CACHE[geometry]


_RUN_CACHE: dict = {}


def _scaling_run(geometry: str, kernel_name: str):
    if (geometry, kernel_name) in _RUN_CACHE:
        return _RUN_CACHE[(geometry, kernel_name)]
    src, w, tgt, dual, lists, dag = _problem(geometry)
    cm = CostModel.for_kernel(kernel_name)
    times = {}
    for n in CORE_COUNTS:
        cfg = RuntimeConfig(
            n_localities=max(1, n // WORKERS_PER_LOCALITY),
            workers_per_locality=min(n, WORKERS_PER_LOCALITY),
        )
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=FmmPolicy(balance="work", cost_model=cm),
        )
        rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)
        times[n] = rep.time
    _RUN_CACHE[(geometry, kernel_name)] = times
    return times


@pytest.mark.parametrize(
    "geometry,kernel_name",
    [("cube", "laplace"), ("cube", "yukawa"), ("sphere", "laplace"), ("sphere", "yukawa")],
)
def test_fig3_strong_scaling(benchmark, geometry, kernel_name):
    times = benchmark.pedantic(
        _scaling_run, args=(geometry, kernel_name), rounds=1, iterations=1
    )
    rows = scaling_table(times)
    lines = [
        f"Figure 3 - strong scaling: {geometry} {kernel_name}",
        f"(N={N_CUBE if geometry == 'cube' else N_SPHERE}, paper used "
        f"{'60M' if geometry == 'cube' else '42M'}; simulated cluster, "
        f"{WORKERS_PER_LOCALITY} cores/locality)",
        f"{'n':>6} {'t_n [s]':>12} {'speedup':>9} {'efficiency':>11}",
    ]
    for r in rows:
        lines.append(
            f"{r['cores']:>6} {r['time']:>12.5f} {r['speedup']:>9.2f} {r['efficiency']:>11.2%}"
        )
    paper = PAPER_EFFICIENCY_4096[(geometry, kernel_name)]
    measured = rows[-1]["efficiency"]
    lines.append(
        f"final efficiency at n={CORE_COUNTS[-1]}: measured {measured:.0%}, "
        f"paper {paper:.0%} (at 4096 cores, 60/42M points)"
    )
    write_report(f"fig3_{geometry}_{kernel_name}", lines)

    # shape claims.  Note the starvation point: the paper has ~14.6k
    # points/core at 4096 cores; at our reduced N the same core count
    # leaves <100 points/core, so efficiencies fall off earlier - the
    # *shape* (decline setting in at mid core counts, heavier kernels
    # holding up better) is the reproduced quantity.
    effs = [r["efficiency"] for r in rows]
    assert effs[0] == pytest.approx(1.0)
    assert effs[-1] < 0.95, "efficiency must degrade at scale"
    assert effs[-1] > 0.10, "but the method must still scale usefully"
    # monotone-ish decline (allow small wiggle)
    assert all(b <= a + 0.05 for a, b in zip(effs, effs[1:]))


def test_fig3_yukawa_scales_better_than_laplace(benchmark):
    """Heavier grain -> better scaling (the paper's headline contrast)."""

    compare_at = 4096  # the paper's contrast point: the gap opens at scale

    def run():
        out = {}
        for kern in ("laplace", "yukawa"):
            times = _scaling_run("cube", kern)
            eff = scaling_table(times)
            out[kern] = next(r["efficiency"] for r in eff if r["cores"] == compare_at)
        return out

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "fig3_grain_contrast",
        [
            "Figure 3 - grain-size contrast at 4096 cores (cube)",
            f"laplace efficiency: {effs['laplace']:.2%}",
            f"yukawa  efficiency: {effs['yukawa']:.2%}",
            "paper: 60% vs 74% at 4096 cores",
        ],
    )
    assert effs["yukawa"] > effs["laplace"]
