"""Section VI estimate: priority scheduling recovers the starved region.

The paper, having measured the underutilized region, estimates that
introducing "even so simple a system as a binary choice between low and
high priority" would let the starved-phase work overlap with less
critical work and "increase the scaling efficiency by 10% or more".

This bench ablates the full scheduling-policy ladder at a Fig. 3
configuration (2048 cores, cube, Laplace):

* ``stock``          - the plain LIFO + stealing scheduler, asserted
  bit-identical to the default configuration (the regression gate);
* ``binary``         - the paper's proposed high/low split;
* ``critical-path``  - graded levels from the offline DAG analysis
  with near/far interleaving and eager parcel release.

Each policy runs under two cost models: the *full* model (which
includes the grain-independent remote-edge handling overheads no
scheduler can remove - the honest number) and a *sched-only* model
with those overheads zeroed, isolating the pure scheduling effect the
paper's estimate speaks to.  Makespan and mean utilization per policy
are appended to ``benchmarks/results/BENCH_priorities.json`` as a
trajectory file.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import THRESHOLD, write_report
from benchmarks.trajectory import append_record
from repro.analysis.utilization import (
    estimate_priority_gain,
    total_utilization,
    underutilized_region,
)
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import cube_points, random_charges

LOCALITIES = 64  # 2048 cores: deep in the starved regime
N = 200_000  # deeper tree than the trace problem: longer critical path

POLICY_LADDER = ("stock", "binary", "critical-path")


def _run():
    src = cube_points(N, seed=1)
    tgt = cube_points(N, seed=2)
    w = random_charges(N, seed=3)
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    lists = build_lists(dual)
    dag, _ = DashmmEvaluator(LaplaceKernel(9), mode="phantom").build_dag(dual, lists)

    def one(cm, **cfg_kwargs):
        cfg = RuntimeConfig(
            n_localities=LOCALITIES, workers_per_locality=32, **cfg_kwargs
        )
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=FmmPolicy(balance="work", cost_model=cm),
        )
        rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)
        fk = total_utilization(rep.tracer, LOCALITIES * 32, rep.time, 100)
        return rep.time, fk

    full = CostModel()
    sched_only = CostModel(remote_edge_alloc=0.0, copy_bandwidth=1e15)
    out = {}
    for tag, cm in (("full", full), ("sched", sched_only)):
        rows = {}
        for policy in POLICY_LADDER:
            t, fk = one(cm, policy=policy)
            rows[policy] = dict(
                t=t,
                util=float(fk.mean()),
                dip=underutilized_region(fk),
                svi_estimate=estimate_priority_gain(fk),
            )
        for policy in POLICY_LADDER:
            rows[policy]["gain"] = rows["stock"]["t"] / rows[policy]["t"] - 1.0
        out[tag] = rows
    # regression gate: an explicit "stock" policy must be bit-identical
    # to the default configuration in the virtual clock
    t_default, _ = one(full)
    out["stock_bit_identical"] = t_default == out["full"]["stock"]["t"]
    return out


def test_priority_ablation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    full, sched = out["full"], out["sched"]

    lines = [
        f"Section VI - policy ablation ({LOCALITIES * 32} cores, N={N} cube, Laplace)",
        "",
        "full cost model (incl. grain-independent remote-handling overheads):",
    ]
    for tag, rows in (("full", full), ("sched", sched)):
        if tag == "sched":
            lines += [
                "",
                "scheduling isolated (overheads zeroed - the paper's thought experiment):",
            ]
        for policy in POLICY_LADDER:
            r = rows[policy]
            lines.append(
                f"  {policy:14s} t={r['t']:.5f}s util={r['util']:.3f}"
                f" gain vs stock {r['gain']:+.1%}"
            )
    lines += [
        "",
        f"Section-VI estimate from the measured stock dip (full model):"
        f" {full['stock']['svi_estimate']:+.1%}",
        f"stock == default configuration (bit-identical clock):"
        f" {out['stock_bit_identical']}",
        "paper: 'increase the scaling efficiency by 10% or more' (estimate)",
    ]
    write_report("priority_ablation", lines)

    record = {
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "bench": "priority_ablation",
        "cores": LOCALITIES * 32,
        "n": N,
        "threshold": THRESHOLD,
        "stock_bit_identical": out["stock_bit_identical"],
        "policies": {
            tag: {
                policy: {
                    "makespan": rows[policy]["t"],
                    "utilization": rows[policy]["util"],
                    "gain_vs_stock": rows[policy]["gain"],
                }
                for policy in POLICY_LADDER
            }
            for tag, rows in (("full", full), ("sched", sched))
        },
    }
    append_record("BENCH_priorities", record)

    # the regression gate: the default path must not drift
    assert out["stock_bit_identical"], "stock policy diverged from default config"
    # the paper's binary estimate (pre-existing assertions)
    assert sched["binary"]["gain"] > 0.03, "priorities must recover the scheduling dip"
    assert full["binary"]["gain"] >= -0.005, "priorities must not hurt under full costs"
    assert full["stock"]["svi_estimate"] > 0.0, "the measured dip implies headroom"
    assert full["binary"]["util"] >= full["stock"]["util"] - 0.01
    # the graded policy must beat stock on both cost models
    assert full["critical-path"]["t"] < full["stock"]["t"], full
    assert sched["critical-path"]["t"] < sched["stock"]["t"], sched
