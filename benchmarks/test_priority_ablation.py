"""Section VI estimate: binary task priorities recover the starved region.

The paper, having measured the underutilized region, estimates that
introducing "even so simple a system as a binary choice between low and
high priority" would let the starved-phase work overlap with less
critical work and "increase the scaling efficiency by 10% or more".

Three numbers are reported:

* the paper's own back-of-envelope estimate computed from our measured
  dip (compress the starved region to plateau utilization),
* the measured gain with the *full* cost model (which includes the
  grain-independent remote-edge handling overheads priorities cannot
  remove - the honest number),
* the measured gain with those overheads zeroed, isolating the pure
  scheduling effect the paper's estimate speaks to.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import THRESHOLD, write_report
from repro.analysis.utilization import (
    estimate_priority_gain,
    total_utilization,
    underutilized_region,
)
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import cube_points, random_charges

LOCALITIES = 64  # 2048 cores: deep in the starved regime
N = 200_000  # deeper tree than the trace problem: longer critical path


def _run():
    src = cube_points(N, seed=1)
    tgt = cube_points(N, seed=2)
    w = random_charges(N, seed=3)
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    lists = build_lists(dual)
    dag, _ = DashmmEvaluator(LaplaceKernel(9), mode="phantom").build_dag(dual, lists)

    def one(prio, cm):
        cfg = RuntimeConfig(
            n_localities=LOCALITIES, workers_per_locality=32, priorities=prio
        )
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=FmmPolicy(balance="work", cost_model=cm),
        )
        rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)
        fk = total_utilization(rep.tracer, LOCALITIES * 32, rep.time, 100)
        return rep.time, fk

    full = CostModel()
    sched_only = CostModel(remote_edge_alloc=0.0, copy_bandwidth=1e15)
    out = {}
    for tag, cm in (("full", full), ("sched", sched_only)):
        t_off, fk_off = one(False, cm)
        t_on, fk_on = one(True, cm)
        out[tag] = dict(
            t_off=t_off,
            t_on=t_on,
            gain=t_off / t_on - 1.0,
            svi_estimate=estimate_priority_gain(fk_off),
            dip_off=underutilized_region(fk_off),
            dip_on=underutilized_region(fk_on),
            util_off=float(fk_off.mean()),
            util_on=float(fk_on.mean()),
        )
    return out


def test_priority_ablation(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        f"Section VI - priority ablation ({LOCALITIES * 32} cores, N={N} cube, Laplace)",
        "",
        "full cost model (incl. grain-independent remote-handling overheads):",
        f"  OFF t={out['full']['t_off']:.5f}s util={out['full']['util_off']:.3f}"
        f" dip={out['full']['dip_off']}",
        f"  ON  t={out['full']['t_on']:.5f}s util={out['full']['util_on']:.3f}"
        f" dip={out['full']['dip_on']}",
        f"  measured gain {out['full']['gain']:+.1%}; Section-VI estimate from the"
        f" measured dip: {out['full']['svi_estimate']:+.1%}",
        "",
        "scheduling isolated (overheads zeroed - the paper's thought experiment):",
        f"  OFF t={out['sched']['t_off']:.5f}s  ON t={out['sched']['t_on']:.5f}s"
        f"  measured gain {out['sched']['gain']:+.1%}",
        "",
        "paper: 'increase the scaling efficiency by 10% or more' (estimate)",
    ]
    write_report("priority_ablation", lines)

    assert out["sched"]["gain"] > 0.03, "priorities must recover the scheduling dip"
    assert out["full"]["gain"] >= -0.005, "priorities must not hurt under full costs"
    assert out["full"]["svi_estimate"] > 0.0, "the measured dip implies headroom"
    assert out["full"]["util_on"] >= out["full"]["util_off"] - 0.01