"""Trajectory files: append-only JSON records under benchmarks/results.

Every benchmark appends one record per run to its ``BENCH_*.json`` so
the measured history survives across commits (the CI smoke jobs archive
them as artifacts).  The read-append-write dance was copy-pasted across
the benchmark modules; this is the one shared implementation.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR


def append_record(name: str, record: dict, results_dir: Path | None = None) -> Path:
    """Append ``record`` to ``<results_dir>/<name>.json``; returns the path.

    A ``date`` stamp is added when the record does not carry one, so
    call sites only describe the measurement.
    """
    results_dir = results_dir or RESULTS_DIR
    results_dir.mkdir(exist_ok=True)
    path = results_dir / f"{name}.json"
    trajectory = json.loads(path.read_text()) if path.exists() else []
    record.setdefault("date", time.strftime("%Y-%m-%d %H:%M:%S"))
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return path
