"""Fault-degradation sweep: what a lossy network costs in virtual time.

The hardened parcel layer turns drops, duplicates and reordering into
pure makespan overhead - the potentials stay bit-identical to the
fault-free run.  This benchmark quantifies that trade on the
quickstart-sized workload: one fault-free baseline, then a sweep of
combined drop+duplicate rates through :func:`degradation_sweep`, with
bit-identity asserted at every rate.  Each invocation appends one
record to ``benchmarks/results/BENCH_degradation.json`` (the same
trajectory-file protocol as ``BENCH_wallclock.json``), which the CI
fault-matrix job uploads as an artifact.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_report
from benchmarks.trajectory import append_record
from repro.analysis import degradation_sweep
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.network import FaultyNetwork
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.tree.dualtree import build_dual_tree

N = 4000
P = 10
THRESHOLD = 60
RATES = (0.01, 0.02, 0.05, 0.10)
SEED = 2024


def _problem():
    rng = np.random.default_rng(3)
    src = rng.uniform(0.0, 1.0, (N, 3))
    tgt = rng.uniform(0.0, 1.0, (N, 3))
    w = rng.normal(size=N)
    return src, w, tgt


def test_fault_degradation_sweep():
    src, w, tgt = _problem()
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)

    def run(rate: float):
        cfg = RuntimeConfig(
            n_localities=4, workers_per_locality=8, tracing=False, reliable=True
        )
        if rate:
            cfg.network = FaultyNetwork(
                drop=rate, duplicate=rate, reorder=0.5, seed=SEED
            )
        ev = DashmmEvaluator(
            LaplaceKernel(P), threshold=THRESHOLD, runtime_config=cfg
        )
        return ev.evaluate(src, w, tgt, dual=dual)

    sweep = degradation_sweep(run, RATES)
    for row in sweep["rows"]:
        assert row["bit_identical"], f"rate {row['rate']}: results diverged"
        assert row["transport"]["in_flight"] == 0

    record = {
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "seed": SEED,
        **sweep,
    }
    append_record("BENCH_degradation", record)

    lines = [
        f"fault-degradation sweep  (n={N}, p={P}, drop=dup=rate, reorder=0.5,"
        f" seed={SEED})",
        f"  baseline makespan: {sweep['baseline_makespan'] * 1e3:8.3f} ms",
    ]
    for row in sweep["rows"]:
        lines.append(
            f"  rate {row['rate']:4.2f}: makespan {row['makespan_faulty'] * 1e3:8.3f} ms"
            f"  ({row['makespan_overhead']:+7.2%})"
            f"  retries {row['transport']['retries']:4d}"
            f"  dedups {row['transport']['dups_suppressed']:4d}"
            f"  bit-identical {row['bit_identical']}"
        )
    write_report("BENCH_degradation", lines)
