"""Cold vs. warm evaluation latency of the persistent service.

The serving regime the persistent layer targets - repeated queries over
slowly-moving point sets - pays the full setup pipeline (tree carve,
interaction lists, DAG assembly, distribution, LCO allocation) exactly
once; every further same-shape ``submit()`` reuses the cached template
and only runs the numeric operator work.  This bench measures the three
latency classes on one workload:

* **cold**   - first submission of a fresh session (full setup);
* **warm**   - repeat-shape submission (template + tree fully reused);
* **incremental** - <=1% of the points moved (tree spliced, template
  reused, geometry caches dropped).

Targets from the issue: warm >= 3x over cold, incremental >= 1.5x.
Every run appends to ``benchmarks/results/BENCH_service.json`` through
the shared trajectory helper, and the bit-identity gate (warm results
byte-equal to a cold-start session over the same frame) rides along so
a fast-but-wrong warm path can never report a speedup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import LARGE, write_report
from benchmarks.trajectory import append_record
from repro.dashmm import DashmmEvaluator, EvaluatorSession
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel
from repro.workloads.distributions import cube_points, random_charges

N = 60_000 if LARGE else 20_000
P = 5
THRESHOLD = 60
WARM_REPEATS = 3


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


@pytest.mark.service
def test_service_reuse_sim():
    pts = cube_points(N, seed=1)
    w = random_charges(N, seed=3)
    kernel = LaplaceKernel(P)
    factory = OperatorFactory.shared(kernel, eps=1e-4)
    ev = DashmmEvaluator(
        kernel,
        method="fmm",
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(n_localities=4, policy="critical-path"),
        factory=factory,
    )
    # warm the operator factory outside every timed window: fitting is a
    # process-lifetime cost, not a per-session one, and would otherwise
    # masquerade as cold-start latency
    ev.evaluate(pts, w, pts)

    session = EvaluatorSession(ev)
    cold_out, t_cold = _timed(lambda: session.submit(pts, w))

    warm_times = []
    for _ in range(WARM_REPEATS):
        warm_out, dt = _timed(lambda: session.submit(pts, w))
        assert np.array_equal(warm_out, cold_out), "warm path lost bit-identity"
        warm_times.append(dt)
    t_warm = min(warm_times)

    # move 1% of the points slightly, staying inside the pinned domain
    rng = np.random.default_rng(9)
    pts2 = pts.copy()
    idx = rng.choice(N, size=N // 100, replace=False)
    pts2[idx] = np.clip(
        pts2[idx] + rng.normal(scale=1e-3, size=(len(idx), 3)),
        pts.min(),
        pts.max(),
    )
    incr_out, t_incr = _timed(lambda: session.submit(pts2, w))
    tree_info = session.stats["tree_updates"][-1]
    with EvaluatorSession(ev, domain=session.domain) as ref:
        assert np.array_equal(incr_out, ref.submit(pts2, w)), (
            "incremental path lost bit-identity"
        )

    warm_speedup = t_cold / t_warm
    incr_speedup = t_cold / t_incr
    record = {
        "backend": "sim",
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "cold_s": t_cold,
        "warm_s": t_warm,
        "incremental_s": t_incr,
        "warm_speedup": warm_speedup,
        "incremental_speedup": incr_speedup,
        "incremental_tree": tree_info,
        "template_hits": session.stats["template_hits"],
        "template_misses": session.stats["template_misses"],
    }
    append_record("BENCH_service", record)
    write_report(
        "service_reuse",
        [
            f"persistent-service reuse: n={N}, p={P}, threshold={THRESHOLD}",
            f"cold submit        : {t_cold * 1e3:9.1f} ms",
            f"warm submit (min/{WARM_REPEATS}): {t_warm * 1e3:9.1f} ms"
            f"  ({warm_speedup:.2f}x)",
            f"incremental submit : {t_incr * 1e3:9.1f} ms  ({incr_speedup:.2f}x)"
            f"  [{tree_info['source']}/{tree_info['target']}]",
            "gate: warm >= 3x, incremental >= 1.5x, all paths bit-identical",
            "trajectory: benchmarks/results/BENCH_service.json",
        ],
    )
    session.close()
    assert warm_speedup >= 3.0, f"warm speedup {warm_speedup:.2f}x < 3x"
    assert incr_speedup >= 1.5, f"incremental speedup {incr_speedup:.2f}x < 1.5x"


@pytest.mark.service
def test_service_reuse_parallel_bit_identity():
    """2-worker parallel gate: persistent workers, bit-identical rounds."""
    n = 8_000 if LARGE else 3_000
    pts = cube_points(n, seed=1)
    w = random_charges(n, seed=3)
    kernel = LaplaceKernel(P)
    factory = OperatorFactory.shared(kernel, eps=1e-4)
    ev = DashmmEvaluator(
        kernel,
        method="fmm",
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(
            backend="parallel", n_localities=2, start_method="spawn"
        ),
        factory=factory,
    )
    cold = ev.evaluate(pts, w, pts).potentials
    with EvaluatorSession(ev) as session:
        first, t_cold = _timed(lambda: session.submit(pts, w))
        warm, t_warm = _timed(lambda: session.submit(pts, w))
        assert np.array_equal(first, cold)
        assert np.array_equal(warm, cold)
    append_record(
        "BENCH_service",
        {
            "backend": "parallel",
            "workers": 2,
            "n": n,
            "p": P,
            "threshold": THRESHOLD,
            "cold_s": t_cold,
            "warm_s": t_warm,
            "warm_speedup": t_cold / t_warm,
            "bit_identical": True,
        },
    )
