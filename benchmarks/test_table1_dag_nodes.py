"""Table I: count, size and min/max in-/out-degree of DAG nodes.

Paper setup: 30M source + 30M target points uniform in a cube,
threshold 60 (13.8M nodes, 129M edges).  The quantities are purely
structural - they depend only on the dual tree - so the reproduction
(a) measures them on the scaled cube problem and (b) computes the
paper-scale counts analytically for the uniform cube (a complete
depth-7 octree at 30M points), cross-checking the closed form against
the measured tree.

Paper values (for reference in the report):

    S  2097148   32-1920 B  din 0/0    dout 9/28
    M  2396732   880 B      din 1/8    dout 1/2
    Is 2396732   5472 B     din 1/1    dout 7/26
    It 2396672   25536 B    din 56/208 dout 1/8
    L  2396672   880 B      din 1/2    dout 1/8
    T  2097152   40-2400 B  din 9/28   dout 0/0
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import N_TRACE, THRESHOLD, write_report
from repro.sim.costmodel import SizeModel

PAPER_TABLE1 = {
    "S": dict(count=2097148, size="32-1920", din="0/0", dout="9/28"),
    "M": dict(count=2396732, size="880", din="1/8", dout="1/2"),
    "Is": dict(count=2396732, size="5472", din="1/1", dout="7/26"),
    "It": dict(count=2396672, size="25536", din="56/208", dout="1/8"),
    "L": dict(count=2396672, size="880", din="1/2", dout="1/8"),
    "T": dict(count=2097152, size="40-2400", din="9/28", dout="0/0"),
}


def paper_scale_structural_counts(n_points: int = 30_000_000, threshold: int = 60):
    """Closed-form node counts for the uniform cube at paper scale.

    A uniform cube refines until boxes hold <= threshold points: depth
    d* = ceil(log8(N / threshold)); the complete octree then has 8^d*
    leaves and sum_{l<=d*} 8^l boxes.
    """
    import math

    d = math.ceil(math.log(n_points / threshold, 8))
    leaves = 8**d
    boxes = (8 ** (d + 1) - 1) // 7
    return {
        "depth": d,
        "leaves": leaves,
        "boxes": boxes,
        # Is/It/L exist for boxes at levels >= 2 (no list 2 above)
        "expansion_boxes": boxes - 1 - 8,
    }


def test_table1_dag_nodes(benchmark, cube_dag):
    stats = benchmark.pedantic(
        lambda: cube_dag.node_stats(size_model=SizeModel()), rounds=1, iterations=1
    )
    lines = [
        f"Table I - DAG node statistics (measured at N={N_TRACE}, threshold {THRESHOLD};"
        " paper at N=30M)",
        f"{'type':>4} {'count':>9} {'size [B]':>12} {'din':>9} {'dout':>9}   paper(count/size/din/dout)",
    ]
    for kind in ("S", "M", "Is", "It", "L", "T"):
        st = stats[kind]
        p = PAPER_TABLE1[kind]
        size = (
            f"{st['size_min']}-{st['size_max']}"
            if st["size_min"] != st["size_max"]
            else f"{st['size_min']}"
        )
        lines.append(
            f"{kind:>4} {st['count']:>9} {size:>12} "
            f"{st['din_min']}/{st['din_max']:>4} {st['dout_min']}/{st['dout_max']:>4}"
            f"   {p['count']}/{p['size']}/{p['din']}/{p['dout']}"
        )
    s = paper_scale_structural_counts()
    lines += [
        "",
        "paper-scale structural cross-check (uniform cube, 30M points, threshold 60):",
        f"  predicted depth {s['depth']} (paper tree: leaves at depth 7)",
        f"  predicted leaves {s['leaves']} vs paper S count {PAPER_TABLE1['S']['count']}"
        " (4 empty leaves pruned)",
        f"  predicted total boxes {s['boxes']} vs paper M count {PAPER_TABLE1['M']['count']}",
    ]
    write_report("table1_dag_nodes", lines)

    # structural claims that must transfer across scales
    assert stats["S"]["din_min"] == stats["S"]["din_max"] == 0
    assert stats["T"]["dout_min"] == stats["T"]["dout_max"] == 0
    assert stats["Is"]["din_min"] == stats["Is"]["din_max"] == 1  # one M2I
    assert stats["M"]["count"] >= stats["Is"]["count"]
    assert stats["It"]["din_max"] > stats["M"]["din_max"], (
        "intermediate nodes dominate connectivity (paper: It din up to 208)"
    )
    # Is is the largest expansion payload (message-size hierarchy)
    assert SizeModel().node_bytes("Is") > SizeModel().node_bytes("M")
    # paper-scale closed form matches the paper's counts to within the
    # handful of pruned empty boxes
    s = paper_scale_structural_counts()
    assert s["depth"] == 7
    assert abs(s["leaves"] - PAPER_TABLE1["S"]["count"]) <= 8
    assert abs(s["boxes"] - PAPER_TABLE1["M"]["count"]) <= 16
