"""Wall-clock benchmark: batched vs per-edge numeric execution.

Unlike every other benchmark (which reproduces a *virtual-time* figure
of the paper), this one tracks the real time the simulator itself needs,
so future changes can be judged on throughput too.  It times the
quickstart-sized numeric workload over a prebuilt tree/DAG (the
iterative-evaluation idiom of Section IV) with ``batch_edges`` on and
off, plus a phantom-mode run, and appends one record per invocation to
``benchmarks/results/BENCH_wallclock.json`` as a trajectory file.

Measurement protocol: operator caches are warmed first (fitting is a
one-time cost the shared factory amortizes), then the two paths run
interleaved and the minimum of N CPU-time samples is compared -
``time.process_time`` plus min-of-N is the most contention-robust
estimator available on a shared box.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_report
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.tree.dualtree import build_dual_tree

#: quickstart-sized workload (examples/quickstart.py)
N = 4000
P = 10
THRESHOLD = 60
SAMPLES = 5

#: conservative CI floor; the measured ratio (reported in the JSON
#: trajectory) is ~1.9x on a contended single-core container and the
#: design target is >=2x - see README "Performance"
MIN_SPEEDUP = 1.3


def _problem():
    rng = np.random.default_rng(3)
    src = rng.uniform(0.0, 1.0, (N, 3))
    tgt = rng.uniform(0.0, 1.0, (N, 3))
    w = rng.normal(size=N)
    return src, w, tgt


def _evaluator(batch: bool, mode: str = "numeric") -> DashmmEvaluator:
    return DashmmEvaluator(
        LaplaceKernel(P),
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(
            n_localities=4, workers_per_locality=8, tracing=False
        ),
        mode=mode,
        batch_edges=batch,
    )


def test_wallclock_batched_vs_per_edge():
    src, w, tgt = _problem()
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    dag, lists = _evaluator(True).build_dag(dual)

    def run(batch: bool, mode: str = "numeric"):
        ev = _evaluator(batch, mode)
        return ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)

    # warm runs: operator fitting + allocator warm-up, and the
    # correctness gate - batching must not change results or the clock
    rb = run(True)
    rp = run(False)
    np.testing.assert_allclose(rb.potentials, rp.potentials, rtol=0, atol=1e-12)
    assert rb.time == rp.time, "batching must not change the virtual clock"

    batched, per_edge = [], []
    for _ in range(SAMPLES):
        t0 = time.process_time()
        run(True)
        batched.append(time.process_time() - t0)
        t0 = time.process_time()
        run(False)
        per_edge.append(time.process_time() - t0)

    t0 = time.process_time()
    run(True, mode="phantom")
    phantom = time.process_time() - t0

    speedup = min(per_edge) / min(batched)
    record = {
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "samples": SAMPLES,
        "batched_s": round(min(batched), 4),
        "per_edge_s": round(min(per_edge), 4),
        "speedup": round(speedup, 3),
        "phantom_s": round(phantom, 4),
        "virtual_time": rb.time,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_wallclock.json"
    trajectory = json.loads(path.read_text()) if path.exists() else []
    trajectory.append(record)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")

    write_report(
        "wallclock",
        [
            f"numeric quickstart workload: n={N}, p={P}, threshold={THRESHOLD}",
            f"batched   min of {SAMPLES}: {min(batched):.3f} s",
            f"per-edge  min of {SAMPLES}: {min(per_edge):.3f} s",
            f"speedup: {speedup:.2f}x  (target >=2x, CI floor {MIN_SPEEDUP}x)",
            f"phantom mode: {phantom:.3f} s",
            f"max |dphi| batched vs per-edge: "
            f"{np.max(np.abs(rb.potentials - rp.potentials)):.3e}",
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.2f}x faster than per-edge "
        f"(floor {MIN_SPEEDUP}x); see benchmarks/results/BENCH_wallclock.json"
    )
