"""Wall-clock benchmark: batched vs per-edge numeric execution.

Unlike every other benchmark (which reproduces a *virtual-time* figure
of the paper), this one tracks the real time the simulator itself needs,
so future changes can be judged on throughput too.  It times the
quickstart-sized numeric workload over a prebuilt tree/DAG (the
iterative-evaluation idiom of Section IV) with ``batch_edges`` on and
off, plus a phantom-mode run, and appends one record per invocation to
``benchmarks/results/BENCH_wallclock.json`` as a trajectory file.

Measurement protocol: operator caches are warmed first (fitting is a
one-time cost the shared factory amortizes), then the two paths run
interleaved and the minimum of N CPU-time samples is compared -
``time.process_time`` plus min-of-N is the most contention-robust
estimator available on a shared box.

A second section times the *setup phase* (tree carving, interaction
lists, DAG assembly) with the vectorised array passes against the
per-box reference loops, gated on the two producing structurally
identical output, and appends its own record to the same trajectory
file.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_report
from benchmarks.trajectory import append_record
from repro.dashmm.dag import build_fmm_dag
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists

#: quickstart-sized workload (examples/quickstart.py)
N = 4000
P = 10
THRESHOLD = 60
SAMPLES = 5

#: conservative CI floor; the measured ratio (reported in the JSON
#: trajectory) is ~1.9x on a contended single-core container and the
#: design target is >=2x - see README "Performance"
MIN_SPEEDUP = 1.3

#: setup-phase floor: the vectorised passes must beat the per-box
#: reference loops by at least this factor on the quickstart workload
MIN_SETUP_SPEEDUP = 3.0


def _problem():
    rng = np.random.default_rng(3)
    src = rng.uniform(0.0, 1.0, (N, 3))
    tgt = rng.uniform(0.0, 1.0, (N, 3))
    w = rng.normal(size=N)
    return src, w, tgt


def _evaluator(batch: bool, mode: str = "numeric") -> DashmmEvaluator:
    return DashmmEvaluator(
        LaplaceKernel(P),
        threshold=THRESHOLD,
        runtime_config=RuntimeConfig(
            n_localities=4, workers_per_locality=8, tracing=False
        ),
        mode=mode,
        batch_edges=batch,
    )


def test_wallclock_batched_vs_per_edge():
    src, w, tgt = _problem()
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    dag, lists = _evaluator(True).build_dag(dual)

    def run(batch: bool, mode: str = "numeric"):
        ev = _evaluator(batch, mode)
        return ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)

    # warm runs: operator fitting + allocator warm-up, and the
    # correctness gate - batching must not change results or the clock
    rb = run(True)
    rp = run(False)
    np.testing.assert_allclose(rb.potentials, rp.potentials, rtol=0, atol=1e-12)
    assert rb.time == rp.time, "batching must not change the virtual clock"

    batched, per_edge = [], []
    for _ in range(SAMPLES):
        t0 = time.process_time()
        run(True)
        batched.append(time.process_time() - t0)
        t0 = time.process_time()
        run(False)
        per_edge.append(time.process_time() - t0)

    t0 = time.process_time()
    run(True, mode="phantom")
    phantom = time.process_time() - t0

    speedup = min(per_edge) / min(batched)
    record = {
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "samples": SAMPLES,
        "batched_s": round(min(batched), 4),
        "per_edge_s": round(min(per_edge), 4),
        "speedup": round(speedup, 3),
        "phantom_s": round(phantom, 4),
        "virtual_time": rb.time,
    }

    append_record("BENCH_wallclock", record)

    write_report(
        "wallclock",
        [
            f"numeric quickstart workload: n={N}, p={P}, threshold={THRESHOLD}",
            f"batched   min of {SAMPLES}: {min(batched):.3f} s",
            f"per-edge  min of {SAMPLES}: {min(per_edge):.3f} s",
            f"speedup: {speedup:.2f}x  (target >=2x, CI floor {MIN_SPEEDUP}x)",
            f"phantom mode: {phantom:.3f} s",
            f"max |dphi| batched vs per-edge: "
            f"{np.max(np.abs(rb.potentials - rp.potentials)):.3e}",
        ],
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched path only {speedup:.2f}x faster than per-edge "
        f"(floor {MIN_SPEEDUP}x); see benchmarks/results/BENCH_wallclock.json"
    )


def test_wallclock_setup_phase():
    """Vectorised vs reference setup: tree carve, lists, DAG assembly."""
    src, w, tgt = _problem()

    def setup(vec: bool):
        stages = {}
        t0 = time.process_time()
        dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w, vectorized=vec)
        stages["tree"] = time.process_time() - t0
        t0 = time.process_time()
        lists = build_lists(dual, vectorized=vec)
        stages["lists"] = time.process_time() - t0
        t0 = time.process_time()
        dag = build_fmm_dag(dual, lists, advanced=True, vectorized=vec)
        stages["dag"] = time.process_time() - t0
        return dual, lists, dag, stages

    # correctness gate: identical structure before timing anything
    dual_v, lists_v, dag_v, _ = setup(True)
    dual_r, lists_r, dag_r, _ = setup(False)
    assert len(dual_v.source.boxes) == len(dual_r.source.boxes)
    assert len(dual_v.target.boxes) == len(dual_r.target.boxes)
    for name in ("l1", "l2", "l3", "l4"):
        assert getattr(lists_v, name) == getattr(lists_r, name), name
    assert len(dag_v.nodes) == len(dag_r.nodes)
    assert dag_v.n_edges == dag_r.n_edges
    assert dag_v.out_edges == dag_r.out_edges

    # the two setups must also drive the simulator to the same clock
    ev = _evaluator(True, mode="phantom")
    t_vec = ev.evaluate(src, w, tgt, dual=dual_v, lists=lists_v, dag=dag_v).time
    t_ref = ev.evaluate(src, w, tgt, dual=dual_r, lists=lists_r, dag=dag_r).time
    assert t_vec == t_ref, "setup path must not change the virtual clock"

    vec_runs, ref_runs = [], []
    for _ in range(SAMPLES):
        *_, sv = setup(True)
        vec_runs.append(sv)
        *_, sr = setup(False)
        ref_runs.append(sr)

    def best(runs):
        total = min(sum(s.values()) for s in runs)
        per_stage = {k: min(s[k] for s in runs) for k in runs[0]}
        return total, per_stage

    vec_total, vec_stages = best(vec_runs)
    ref_total, ref_stages = best(ref_runs)
    speedup = ref_total / vec_total
    record = {
        "date": time.strftime("%Y-%m-%d %H:%M:%S"),
        "section": "setup_phase",
        "n": N,
        "p": P,
        "threshold": THRESHOLD,
        "samples": SAMPLES,
        "vectorized_s": round(vec_total, 4),
        "reference_s": round(ref_total, 4),
        "speedup": round(speedup, 3),
        "vectorized_stages_s": {k: round(v, 4) for k, v in vec_stages.items()},
        "reference_stages_s": {k: round(v, 4) for k, v in ref_stages.items()},
        "virtual_time": t_vec,
    }

    append_record("BENCH_wallclock", record)

    write_report(
        "wallclock_setup",
        [
            f"setup phase: n={N}, threshold={THRESHOLD}, min of {SAMPLES}",
            f"vectorized: {vec_total:.3f} s  "
            + " ".join(f"{k}={v:.3f}" for k, v in vec_stages.items()),
            f"reference:  {ref_total:.3f} s  "
            + " ".join(f"{k}={v:.3f}" for k, v in ref_stages.items()),
            f"speedup: {speedup:.2f}x  (floor {MIN_SETUP_SPEEDUP}x)",
            f"virtual time (identical both paths): {t_vec:.6f}",
        ],
    )

    assert speedup >= MIN_SETUP_SPEEDUP, (
        f"vectorized setup only {speedup:.2f}x faster than the reference "
        f"loops (floor {MIN_SETUP_SPEEDUP}x); see BENCH_wallclock.json"
    )
