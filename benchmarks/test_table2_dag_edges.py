"""Table II: count, message size and average execution time of DAG edges.

Paper setup: same traced 30M cube run; execution times measured on the
128-core run.  The reproduction reports (a) measured edge counts and
message sizes on the scaled cube DAG, (b) the cost-model per-edge times
(calibrated *from* this table - printed to make the calibration
explicit), and (c) actual Python timings of our numeric operators for
comparison of the *relative* cost ordering.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import N_TRACE, THRESHOLD, write_report
from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import PAPER_EDGE_TIMES, CostModel, SizeModel

PAPER_TABLE2 = {
    "S2T": dict(count=55742860, size="32-1920"),
    "S2M": dict(count=2097148, size="880"),
    "M2M": dict(count=2396668, size="880"),
    "M2I": dict(count=2396732, size="5280"),
    "I2I": dict(count=59992216, size="912-2736"),
    "I2L": dict(count=2396736, size="880"),
    "L2L": dict(count=2396672, size="880"),
    "L2T": dict(count=2097152, size="880"),
}


def _python_op_times():
    """Microbenchmark our numeric operators (relative ordering check)."""
    k = LaplaceKernel(9)
    F = OperatorFactory(k, eps=1e-4)
    h = 0.5
    rng = np.random.default_rng(0)
    pts = rng.uniform(-0.5, 0.5, (14, 3))  # paper's average occupancy
    q = rng.normal(size=14)
    M = k.p2m(pts, q, h)
    quad = F.quadrature(h)
    W = F.m2i("+z", h) @ M
    f = F.i2i("+z", (0, 0, 3), h)
    L = F.i2l("+z", h) @ (W * f)
    ops = {
        "S2T": lambda: k.direct(pts * h, pts * h, q),
        "S2M": lambda: k.p2m(pts, q, h),
        "M2M": lambda: F.m2m(0, h) @ M,
        "M2I": lambda: [F.m2i(d, h) @ M for d in ("+z", "-z", "+x", "-x", "+y", "-y")],
        "I2I": lambda: W * f,
        "I2L": lambda: F.i2l("+z", h) @ W,
        "L2L": lambda: F.l2l(0, h) @ L,
        "L2T": lambda: k.l2t(L, pts, h),
    }
    out = {}
    for name, fn in ops.items():
        fn()  # warm caches
        reps = 50
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        out[name] = (time.perf_counter() - t0) / reps
    return out


def test_table2_dag_edges(benchmark, cube_dag):
    stats = benchmark.pedantic(
        lambda: cube_dag.edge_stats(size_model=SizeModel()), rounds=1, iterations=1
    )
    py = _python_op_times()
    cm = CostModel()
    lines = [
        f"Table II - DAG edge statistics (measured at N={N_TRACE}, threshold {THRESHOLD};"
        " paper at N=30M, times from the 128-core run)",
        f"{'op':>4} {'count':>9} {'size [B]':>11} {'model t [us]':>13} {'py t [us]':>10}"
        "   paper(count/size/t_avg us)",
    ]
    order = ["S2T", "S2M", "M2M", "M2I", "I2I", "I2L", "L2L", "L2T"]
    for op in order:
        st = stats.get(op)
        if st is None:
            continue
        p = PAPER_TABLE2[op]
        size = (
            f"{st['size_min']}-{st['size_max']}"
            if st["size_min"] != st["size_max"]
            else f"{st['size_min']}"
        )
        avg_pts = 30_000_000 / 2_097_152
        model_t = cm.edge_cost(op, n_src=avg_pts, n_tgt=avg_pts) * 1e6
        lines.append(
            f"{op:>4} {st['count']:>9} {size:>11} {model_t:>13.2f} {py[op] * 1e6:>10.1f}"
            f"   {p['count']}/{p['size']}/{PAPER_EDGE_TIMES[op] * 1e6:.2f}"
        )
    write_report("table2_dag_edges", lines)

    # shape claims from the paper's discussion
    for op in ("S2M", "M2M", "M2I", "I2L", "L2L", "L2T"):
        assert stats["I2I"]["count"] > stats[op]["count"], (
            "I2I is the single largest contribution to the edges"
        )
    # merge-and-shift: M2I/I2L counts ~ box counts, I2I ~ list-2 pairs
    assert stats["M2I"]["count"] < stats["I2I"]["count"] / 5
    # the I2I op is the cheapest of any class (paper: 1.75 us, smallest)
    heavy = ("S2M", "M2M", "M2I", "I2L", "L2L", "L2T")
    assert all(PAPER_EDGE_TIMES["I2I"] <= PAPER_EDGE_TIMES[o] for o in heavy)
    assert all(py["I2I"] <= py[o] for o in ("M2I", "I2L")), (
        "our diagonal I2I must also be cheaper than the dense M2I/I2L"
    )
