"""Shared benchmark infrastructure.

Each benchmark regenerates one table or figure of the paper at a
reduced problem size (the substitution ladder is documented in
DESIGN.md), prints the paper-vs-measured comparison, and writes it to
``benchmarks/results/<name>.txt`` so the report survives pytest's
output capture.

Scale knob: set ``REPRO_BENCH_SCALE=large`` for problem sizes closer to
the paper (slower); default is a laptop-friendly scale.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.kernels.laplace import LaplaceKernel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import cube_points, random_charges, sphere_points

RESULTS_DIR = Path(__file__).parent / "results"

#: same opt-in discipline as tests/conftest.py: benchmarks that spawn
#: real worker processes (``parallel``) or exercise the persistent
#: evaluation service (``service``) are skipped unless a ``-m``
#: expression selects them, keeping ``pytest benchmarks -q`` flat
OPT_IN_MARKERS = ("slow", "fuzz", "parallel", "service")


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m"):
        return  # an explicit marker expression overrides the default skip
    for marker in OPT_IN_MARKERS:
        skip = pytest.mark.skip(reason=f"{marker} test: select with -m {marker}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)

LARGE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "large"

#: scaled problem sizes; the paper used 60M (cube) / 42M (sphere) per
#: node and 30M for the traced runs
N_CUBE = 400_000 if LARGE else 150_000
N_SPHERE = 280_000 if LARGE else 105_000
N_TRACE = 200_000 if LARGE else 100_000

#: the paper's refinement threshold
THRESHOLD = 60


def write_report(name: str, lines: list[str]) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")


@pytest.fixture(scope="session")
def cube_problem():
    """The traced cube problem (Tables I/II, Figs. 4/5) at reduced N."""
    src = cube_points(N_TRACE, seed=1)
    tgt = cube_points(N_TRACE, seed=2)
    w = random_charges(N_TRACE, seed=3)
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    lists = build_lists(dual)
    return src, w, tgt, dual, lists


@pytest.fixture(scope="session")
def cube_dag(cube_problem):
    from repro.dashmm.evaluator import DashmmEvaluator

    src, w, tgt, dual, lists = cube_problem
    ev = DashmmEvaluator(LaplaceKernel(9), mode="phantom")
    dag, _ = ev.build_dag(dual, lists)
    return dag
