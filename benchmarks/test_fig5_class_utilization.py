"""Figure 5: utilization fraction by operation class, 128-core run.

Paper setup: 30M cube, Laplace, 128 cores, 100 uniform intervals.
Panels: (top) operations up the source tree (S->M, M->M), (middle)
source-to-target bridge (M->I, I->I, I->L), (bottom) final-value
operations (S->T, L->L, L->T).  Paper findings:

* S->M / M->M work is smeared out up to ~83% of the execution (no way
  to tell HPX-5 it is critical), though its absolute amount is small;
* I->I dominates and runs at a constant fraction up to the
  underutilized region (communication well hidden);
* the final L->L / L->T work explodes only after the bottleneck at the
  top of the target tree clears - the utilization rises sharply and the
  pathology ends.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import N_TRACE, write_report
from repro.analysis.critical_path import GROUPS
from repro.analysis.utilization import class_utilization, underutilized_region, total_utilization
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel


def _run(cube_problem, cube_dag):
    src, w, tgt, dual, lists = cube_problem
    cm = CostModel()
    cfg = RuntimeConfig(n_localities=4, workers_per_locality=32)  # 128 cores
    ev = DashmmEvaluator(
        LaplaceKernel(9),
        mode="phantom",
        runtime_config=cfg,
        cost_model=cm,
        policy=FmmPolicy(balance="work", cost_model=cm),
    )
    rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=cube_dag)
    fks = class_utilization(rep.tracer, 128, rep.time, 100)
    fk = total_utilization(rep.tracer, 128, rep.time, 100)
    return rep.time, fk, fks


def test_fig5_class_utilization(benchmark, cube_problem, cube_dag):
    t, fk, fks = benchmark.pedantic(
        _run, args=(cube_problem, cube_dag), rounds=1, iterations=1
    )
    dip = underutilized_region(fk)
    lines = [
        f"Figure 5 - per-class utilization f_k^(i), 128 cores (N={N_TRACE} cube,"
        f" Laplace; t={t:.4f}s; paper: 30M over 17.6s)",
        f"underutilized region: bins {dip}",
    ]
    for panel, ops in (("up", GROUPS["up"]), ("bridge", ("M2I", "I2I", "I2L")),
                       ("down", GROUPS["down"])):
        lines.append(f"--- {panel} panel ---")
        for op in ops:
            if op in fks:
                lines.append(f"{op:>4}: " + " ".join(f"{v:.2f}" for v in fks[op][::5]))
    write_report("fig5_class_utilization", lines)

    # S->M work is smeared far into the execution (the paper's central
    # scheduling observation: critical work delayed to ~83%)
    s2m = fks["S2M"]
    nz = np.nonzero(s2m > 1e-3)[0]
    assert nz[-1] > 50, "S2M should be scheduled deep into the execution"
    # the up-panel's absolute magnitude is small next to I2I
    assert fks["S2M"].max() + fks["M2M"].max() < fks["I2I"].max() + fks["S2T"].max()
    # I2I holds a roughly constant plateau in mid-execution
    mid = fks["I2I"][30:60]
    assert mid.std() < 0.35 * max(mid.mean(), 1e-9)
    # the final-value burst: L2T mass is concentrated late
    l2t = fks["L2T"]
    total_mass = l2t.sum()
    late_mass = l2t[60:].sum()
    assert late_mass > 0.8 * total_mass, "L->T explodes only near the end"
