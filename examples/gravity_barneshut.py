#!/usr/bin/env python
"""Self-gravity of a Plummer star cluster with Barnes-Hut.

Barnes-Hut is the second HMM built into DASHMM: only source-side
expansions, a multipole-acceptance-criterion traversal, and a much
shallower DAG than the FMM - one of the method-dependent DAG topologies
the paper uses to exercise the runtime.  The Plummer density is heavily
clustered, stressing the adaptive tree.

Run:  python examples/gravity_barneshut.py
"""

import numpy as np

from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import LaplaceKernel
from repro.methods.direct import direct_potentials
from repro.workloads.distributions import plummer_points


def main() -> None:
    n = 5000
    positions = plummer_points(n, seed=3, scale=0.1)
    masses = np.full(n, 1.0 / n)  # equal-mass cluster, total mass 1

    kernel = LaplaceKernel(p=6)  # gravity: modest order suffices for BH
    evaluator = DashmmEvaluator(
        kernel,
        method="bh",
        threshold=30,
        theta=0.4,  # opening angle of the acceptance criterion
        runtime_config=RuntimeConfig(n_localities=4, workers_per_locality=4),
    )
    # classic N-body: sources and targets are the same ensemble
    report = evaluator.evaluate(positions, masses, positions)

    probe = slice(0, 400)
    exact = direct_potentials(kernel, positions[probe], positions, masses)
    err = np.linalg.norm(report.potentials[probe] - exact) / np.linalg.norm(exact)

    es = report.dag.edge_stats()
    print(f"Plummer cluster, N={n}, theta={evaluator.theta}")
    print(f"relative L2 error       : {err:.2e}")
    print(f"virtual evaluation time : {report.time * 1e3:.2f} ms")
    print(f"M->T evaluations        : {es['M2T']['count']}")
    print(f"S->T direct pairs       : {es['S2T']['count']}")
    print(f"naive pair count        : {n * n}")
    # gravitational potential energy: the kernel returns +1/r, gravity
    # is attractive, so U = -0.5 sum m_i phi_i; for a Plummer sphere
    # with scale a and total mass M: U = -3 pi M^2 / (32 a)
    U = -0.5 * float(np.sum(masses * report.potentials))
    print(f"potential energy        : {U:.4f} (Plummer theory ~ {-3 * np.pi / 32 / 0.1:.4f})")
    # accelerations through the synchronous FMM's gradient API
    from repro.methods.fmm import FmmEvaluator

    fmm = FmmEvaluator(LaplaceKernel(p=8), threshold=30)
    _, grad = fmm.evaluate(positions, masses, positions, gradients=True)
    acc = grad  # a = -grad(phi_grav) = +grad of our (1/r) potential sum
    g_exact = LaplaceKernel(p=8).direct_gradient(positions[:200], positions, masses)
    ferr = np.linalg.norm(acc[:200] - g_exact) / np.linalg.norm(g_exact)
    print(f"acceleration rel error  : {ferr:.2e}")
    assert err < 5e-3 and ferr < 5e-3
    print("OK")


if __name__ == "__main__":
    main()
