#!/usr/bin/env python
"""Self-gravity of a Plummer star cluster, integrated with leapfrog.

Barnes-Hut is the second HMM built into DASHMM: only source-side
expansions, a multipole-acceptance-criterion traversal, and a much
shallower DAG than the FMM - one of the method-dependent DAG topologies
the paper uses to exercise the runtime.  The Plummer density is heavily
clustered, stressing the adaptive tree.

This mini-app is the intended customer of the *persistent* evaluation
layer: a time integrator calls the solver once per step with slightly
perturbed positions.  A cold ``evaluate()`` would re-carve the tree,
rebuild interaction lists and re-assemble the DAG every step; the
:class:`~repro.dashmm.service.EvaluatorSession` instead splices the
previous tree and re-fires the cached DAG template, so per-step cost
collapses to the numeric operator work.

Run:  python examples/gravity_barneshut.py
"""

import numpy as np

from repro.dashmm import DashmmEvaluator, EvaluatorSession
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import LaplaceKernel
from repro.methods.direct import direct_potentials
from repro.methods.fmm import FmmEvaluator
from repro.workloads.distributions import plummer_points


def main() -> None:
    n = 2000
    positions = plummer_points(n, seed=3, scale=0.1)
    masses = np.full(n, 1.0 / n)  # equal-mass cluster, total mass 1
    velocities = np.zeros_like(positions)  # cold collapse, a few steps

    kernel = LaplaceKernel(p=6)  # gravity: modest order suffices for BH
    evaluator = DashmmEvaluator(
        kernel,
        method="bh",
        threshold=30,
        theta=0.4,  # opening angle of the acceptance criterion
        runtime_config=RuntimeConfig(n_localities=4, workers_per_locality=4),
    )
    # accelerations come from the synchronous FMM's gradient API; the
    # kernel sums +1/r, gravity attracts, so a = +grad(sum m/r)
    forces = FmmEvaluator(LaplaceKernel(p=8), threshold=30)

    def accel(pos):
        _, grad = forces.evaluate(pos, masses, pos, gradients=True)
        return grad

    dt, steps = 2e-4, 5
    energies = []
    with EvaluatorSession(evaluator) as session:
        acc = accel(positions)
        for step in range(steps):
            # kick-drift-kick leapfrog
            velocities += 0.5 * dt * acc
            positions += dt * velocities
            acc = accel(positions)
            velocities += 0.5 * dt * acc
            # potentials for this step's configuration ride the session's
            # warm path: spliced tree, cached DAG template
            phi = session.submit(positions, masses)
            U = -0.5 * float(np.sum(masses * phi))
            K = 0.5 * float(np.sum(masses * np.sum(velocities**2, axis=1)))
            energies.append(K + U)
            print(f"step {step}: K={K:.4f}  U={U:.4f}  E={K + U:.4f}")

        stats = session.stats
        reused = sum(
            1
            for t in stats["tree_updates"]
            if t["source"] in ("unchanged", "spliced")
        )
        print(f"submits                 : {stats['submits']}")
        print(f"DAG template hits       : {stats['template_hits']}")
        print(f"incremental tree reuses : {reused}")

    # accuracy of the last step's BH potentials against direct summation
    probe = slice(0, 400)
    exact = direct_potentials(kernel, positions[probe], positions, masses)
    err = np.linalg.norm(phi[probe] - exact) / np.linalg.norm(exact)
    drift = abs(energies[-1] - energies[0]) / abs(energies[0])
    print(f"relative L2 error       : {err:.2e}")
    print(f"energy drift over run   : {drift:.2e}")
    # Plummer sphere with scale a, mass M: U = -3 pi M^2 / (32 a)
    print(f"U theory (t=0)          : {-3 * np.pi / 32 / 0.1:.4f}")

    assert err < 5e-3, "BH potentials drifted from direct summation"
    assert drift < 0.05, "leapfrog energy drift too large"
    assert stats["template_hits"] >= steps - 1, "warm path not exercised"
    assert reused >= steps - 1, "incremental tree not exercised"
    print("OK")


if __name__ == "__main__":
    main()
