#!/usr/bin/env python
"""A miniature Figure 3/4: strong scaling and utilization on your laptop.

Runs the advanced FMM DAG in *phantom* mode (cost model calibrated from
the paper's Table II, no numerics) on simulated clusters of growing
size, printing the scaling table and the utilization profile with the
end-of-run starved region the paper analyses - then repeats the largest
run with the proposed binary task priorities to show the fix.

Run:  python examples/scaling_study.py  [N]        (default N=100000)
"""

import sys

import numpy as np

from repro.analysis.scaling import scaling_table
from repro.analysis.utilization import total_utilization, underutilized_region
from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import LaplaceKernel
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import cube_points, random_charges


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000
    print(f"building dual tree and DAG for N={n} cube points ...")
    src, tgt = cube_points(n, seed=1), cube_points(n, seed=2)
    w = random_charges(n, seed=3)
    dual = build_dual_tree(src, tgt, 60, source_weights=w)
    lists = build_lists(dual)
    cm = CostModel()
    proto = DashmmEvaluator(LaplaceKernel(9), mode="phantom")
    dag, _ = proto.build_dag(dual, lists)
    print(f"DAG: {len(dag.nodes)} nodes, {dag.n_edges} edges")

    # tree, lists, DAG and the distribution policy are built once and
    # reused across every core count below: only the locality cuts (and
    # the simulated run itself) differ between configurations
    policy = FmmPolicy(balance="work", cost_model=cm)

    times = {}
    for localities in (1, 2, 4, 8, 16, 32):
        cores = localities * 32
        cfg = RuntimeConfig(n_localities=localities, workers_per_locality=32)
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=policy,
        )
        rep = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag)
        times[cores] = rep.time
        fk = total_utilization(rep.tracer, cores, rep.time, 50)
        dip = underutilized_region(fk)
        bar = "".join("#" if v > 0.8 else ("+" if v > 0.4 else ".") for v in fk)
        print(f"n={cores:5d}  t={rep.time * 1e3:9.3f} ms  dip={dip}  [{bar}]")

    print("\nstrong scaling (cf. paper Fig. 3):")
    for r in scaling_table(times):
        print(
            f"  n={r['cores']:5d}  t={r['time'] * 1e3:9.3f} ms"
            f"  speedup={r['speedup']:6.2f}  efficiency={r['efficiency']:.0%}"
        )

    # the Section VI fix: binary task priorities
    cores = 32 * 32
    out = {}
    for prio in (False, True):
        cfg = RuntimeConfig(n_localities=32, workers_per_locality=32, priorities=prio)
        ev = DashmmEvaluator(
            LaplaceKernel(9),
            mode="phantom",
            runtime_config=cfg,
            cost_model=cm,
            policy=policy,
        )
        out[prio] = ev.evaluate(src, w, tgt, dual=dual, lists=lists, dag=dag).time
    gain = out[False] / out[True] - 1
    print(f"\nbinary priorities at n={cores}: {out[False] * 1e3:.2f} ms -> "
          f"{out[True] * 1e3:.2f} ms ({gain:+.1%}; the paper estimates ~+10% at scale)")


if __name__ == "__main__":
    main()
