#!/usr/bin/env python
"""FMM-accelerated iterative solver: charging a conducting plate.

The paper motivates its design with the FMM's typical use "in an
iterative procedure where the same DAG is evaluated multiple times for
different inputs" (Section IV).  This example solves a first-kind
integral equation for the surface charge on a unit square conductor
held at unit potential,

    integral over plate  sigma(y) / |x - y|  dy  =  1   for x on the plate,

discretized by point collocation, with scipy's GMRES whose matrix-vector
product is the FMM - the dual tree, interaction lists and translation
operators are built once and reused for every iteration, exactly the
amortization the paper describes.  The resulting capacitance is checked
against the known value for the unit square plate (C ~ 0.367 in
Gaussian units; see e.g. higher-order panel-method references).

Run:  python examples/capacitance_solver.py
"""

import numpy as np
from scipy.sparse.linalg import LinearOperator, gmres

from repro.kernels import LaplaceKernel
from repro.methods.fmm import FmmEvaluator
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


def main() -> None:
    m = 48  # collocation points per side -> m*m unknowns
    grid = (np.arange(m) + 0.5) / m
    X, Y = np.meshgrid(grid, grid, indexing="ij")
    panels = np.column_stack([X.ravel(), Y.ravel(), np.zeros(m * m)])
    n = len(panels)
    area = 1.0 / n  # panel area (unit plate)

    kernel = LaplaceKernel(p=8)
    ev = FmmEvaluator(kernel, threshold=60)

    # one-time setup, reused by every GMRES iteration
    dual = build_dual_tree(panels, panels, 60, source_weights=np.ones(n))
    lists = build_lists(dual)

    # self-interaction of a square panel of side a with itself:
    # integral of 1/r over the square, evaluated at its centre
    a = 1.0 / m
    self_term = 4.0 * a * np.log(1.0 + np.sqrt(2.0))  # exact for the square

    matvecs = []

    def matvec(sigma):
        matvecs.append(1)
        dual.source.set_weights(sigma)
        phi = ev.evaluate(panels, sigma, panels, dual=dual, lists=lists)
        return phi * area + self_term / area * sigma * area

    A = LinearOperator((n, n), matvec=matvec)
    rhs = np.ones(n)
    sigma, info = gmres(A, rhs, rtol=1e-8, maxiter=200)
    assert info == 0, "GMRES did not converge"

    # Gaussian units (phi = q/r): C = Q/V = total charge at unit potential
    capacitance = float(np.sum(sigma) * area)
    print(f"plate discretized into {n} panels; GMRES matvecs: {len(matvecs)}")
    print(f"capacitance of the unit square plate : {capacitance:.4f}")
    print("reference value (literature)          : ~0.3667")
    # charge density must peak at edges/corners of the conductor
    s = sigma.reshape(m, m)
    assert s[0, 0] > 2.0 * s[m // 2, m // 2], "edge singularity expected"
    assert abs(capacitance - 0.3667) < 0.02
    print("OK - edge-singular charge profile and capacitance within 5%")


if __name__ == "__main__":
    main()
