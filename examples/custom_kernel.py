#!/usr/bin/env python
"""Extending DASHMM with a user-defined kernel.

DASHMM's design objective is genericity: "the exact method and
interaction used are parameters, and the parallelization ... is
agnostic to many of these specific details".  Because every box-to-box
translation operator is constructed numerically from the kernel's
particle-side operators (see repro.kernels.fitops), adding a kernel
only requires the spherical-expansion primitives.

This example defines a *dipole-screened* kernel G(r) = e^{-lam r}/r +
alpha/r as a superposition handled through the generic machinery, runs
it through the full AMT evaluation path, and checks against direct
summation.  (Any kernel expressible in the regular/singular
spherical-harmonic basis works the same way.)

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.base import Kernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel
from repro.methods.direct import direct_potentials


class ScreenedPlusCoulomb(Kernel):
    """G(r) = e^{-lam r}/r + alpha/r: short-range screening on top of a
    residual long-range Coulomb tail (a toy colloid interaction).

    The expansions are the concatenation of the two component bases;
    linearity does the rest, and the fitted operators never notice.
    """

    name = "screened+coulomb"
    scale_variant = True  # the Yukawa part is

    def __init__(self, p: int, lam: float = 3.0, alpha: float = 0.25):
        super().__init__(p)
        self.lam = lam
        self.alpha = alpha
        self._yk = YukawaKernel(p, lam=lam)
        self._lp = LaplaceKernel(p)
        self.size = self._yk.size + self._lp.size  # stacked coefficients

    def greens(self, r: np.ndarray) -> np.ndarray:
        return self._yk.greens(r) + self.alpha * self._lp.greens(r)

    def p2m_matrix(self, rel, scale):
        return np.hstack(
            [self._yk.p2m_matrix(rel, scale), self.alpha * self._lp.p2m_matrix(rel, scale)]
        )

    def p2l_matrix(self, rel, scale):
        return np.hstack(
            [self._yk.p2l_matrix(rel, scale), self.alpha * self._lp.p2l_matrix(rel, scale)]
        )

    def m2t_matrix(self, rel, scale):
        return np.hstack(
            [self._yk.m2t_matrix(rel, scale), self._lp.m2t_matrix(rel, scale)]
        )

    def l2t_matrix(self, rel, scale):
        return np.hstack(
            [self._yk.l2t_matrix(rel, scale), self._lp.l2t_matrix(rel, scale)]
        )

    # exponential representation: t(lam) differs per component, so this
    # toy kernel opts out of merge-and-shift and runs the basic FMM.

    def level_key(self, scale: float):
        return round(float(self.lam * scale), 12)


def main() -> None:
    rng = np.random.default_rng(4)
    n = 2500
    sources = rng.uniform(0, 1, (n, 3))
    charges = rng.normal(size=n)
    targets = rng.uniform(0, 1, (n, 3))

    kernel = ScreenedPlusCoulomb(p=10, lam=3.0, alpha=0.25)
    evaluator = DashmmEvaluator(
        kernel,
        method="fmm-basic",  # 8-operator FMM: no exponential machinery needed
        threshold=40,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
    )
    report = evaluator.evaluate(sources, charges, targets)

    exact = direct_potentials(kernel, targets[:400], sources, charges)
    err = np.linalg.norm(report.potentials[:400] - exact) / np.linalg.norm(exact)
    print(f"user-defined kernel '{kernel.name}' through the generic API")
    print(f"relative L2 error       : {err:.2e}")
    print(f"virtual evaluation time : {report.time * 1e3:.2f} ms")
    assert err < 1e-3
    print("OK - no runtime- or method-specific code was touched")


if __name__ == "__main__":
    main()
