#!/usr/bin/env python
"""Kill-and-restore certification: lose a run at a random checkpoint.

Runs a matrix of evaluations (FMM and Barnes-Hut, clean and fuzzed
schedules, clean and faulty network) with periodic checkpointing
enabled, "kills" each run by picking one checkpoint at random, restores
it and drives the resumed run to completion.  The gate: the resumed
run must be *bit-identical* - potentials AND virtual clock - to the
uninterrupted one.  A JSON report of every kill point is written for
CI artifact upload.

Run:  python examples/checkpoint_restore.py [--seed N] [--out FILE]
"""

import argparse
import json
import random
import sys

import numpy as np

from repro.dashmm import DashmmEvaluator
from repro.hpx import FaultyNetwork
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import LaplaceKernel


def certify(rng: random.Random, method: str, fuzz, faulty: bool) -> dict:
    cfg = dict(
        n_localities=3,
        workers_per_locality=2,
        checkpoint_every=3e-4,
        fuzz_schedule=fuzz,
    )
    if faulty:
        cfg["reliable"] = True
        cfg["network"] = FaultyNetwork(
            drop=0.05, duplicate=0.05, reorder=0.5, seed=7
        )
    ev = DashmmEvaluator(
        LaplaceKernel(p=6),
        method=method,
        threshold=30,
        runtime_config=RuntimeConfig(**cfg),
    )
    prng = np.random.default_rng(42)
    n = 800
    src = prng.uniform(0, 1, (n, 3))
    w = prng.normal(size=n)
    tgt = prng.uniform(0, 1, (n, 3))

    baseline = ev.evaluate(src, w, tgt)
    cps = baseline.extras.get("checkpoints", [])
    if not cps:
        raise SystemExit(f"{method}: run finished before the first checkpoint")
    kill = rng.randrange(len(cps))  # the random kill point
    resumed = ev.resume(baseline, cps[kill])
    identical = bool(
        np.array_equal(baseline.potentials, resumed.potentials)
        and resumed.time == baseline.time
    )
    return {
        "method": method,
        "fuzz_schedule": fuzz,
        "faulty_network": faulty,
        "checkpoints": len(cps),
        "killed_at_index": kill,
        "killed_at_time": cps[kill].time,
        "final_time": baseline.time,
        "bit_identical": identical,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--seed", type=int, default=None,
                    help="seed for the kill-point picker (default: entropy)")
    ap.add_argument("--out", default=None, help="JSON report path")
    args = ap.parse_args(argv)
    seed = args.seed if args.seed is not None else random.randrange(2**32)
    rng = random.Random(seed)

    rows = []
    for method, fuzz, faulty in [
        ("fmm", None, False),
        ("fmm", rng.randrange(2**16), False),
        ("fmm", None, True),
        ("bh", None, False),
        ("bh", rng.randrange(2**16), False),
    ]:
        row = certify(rng, method, fuzz, faulty)
        rows.append(row)
        status = "ok" if row["bit_identical"] else "DIVERGED"
        print(
            f"{row['method']:4s} fuzz={str(row['fuzz_schedule']):>6s} "
            f"faulty={row['faulty_network']!s:5s} "
            f"killed at checkpoint {row['killed_at_index'] + 1}"
            f"/{row['checkpoints']} "
            f"(t={row['killed_at_time'] * 1e3:.3f} ms) ... {status}"
        )

    report = {"seed": seed, "rows": rows}
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.out}")
    failed = [r for r in rows if not r["bit_identical"]]
    if failed:
        print(f"FAILED: {len(failed)} restored run(s) diverged", file=sys.stderr)
        return 1
    print("OK - every killed-and-restored run was bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
