#!/usr/bin/env python
"""Quickstart: evaluate Coulomb potentials with the generic DASHMM API.

Builds a small random charge cloud, evaluates the Laplace (1/r)
potential at a distinct set of target points with the advanced FMM on
the asynchronous many-tasking runtime, and checks the result against
direct summation - the 3-digit accuracy the paper requires.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import LaplaceKernel
from repro.methods.direct import direct_potentials


def main() -> None:
    rng = np.random.default_rng(0)
    n = 4000
    sources = rng.uniform(0.0, 1.0, size=(n, 3))
    charges = rng.normal(size=n)
    targets = rng.uniform(0.0, 1.0, size=(n, 3))

    kernel = LaplaceKernel(p=10)  # expansion order; p=10 ~ 1e-4 accuracy
    evaluator = DashmmEvaluator(
        kernel,
        method="fmm",  # advanced FMM with merge-and-shift
        threshold=60,  # the paper's refinement threshold
        runtime_config=RuntimeConfig(n_localities=4, workers_per_locality=8),
    )

    print(f"evaluating {n} sources -> {n} targets on a simulated "
          f"{evaluator.runtime_config.total_cores}-core cluster ...")
    report = evaluator.evaluate(sources, charges, targets)

    exact = direct_potentials(kernel, targets[:500], sources, charges)
    err = np.linalg.norm(report.potentials[:500] - exact) / np.linalg.norm(exact)

    print(f"relative L2 error vs direct summation : {err:.2e}")
    print(f"virtual evaluation time               : {report.time * 1e3:.2f} ms")
    print(f"tasks executed                        : {report.runtime_stats['tasks_run']}")
    print(f"work steals                           : {report.runtime_stats['steals']}")
    print(f"parcels sent                          : {report.runtime_stats['parcels_sent']}")
    print(f"remote traffic                        : "
          f"{report.runtime_stats['remote_bytes'] / 1e6:.2f} MB")
    assert err < 1e-3, "accuracy target missed"
    print("OK - 3-digit accuracy achieved through the AMT execution path")


if __name__ == "__main__":
    main()
