#!/usr/bin/env python
"""Screened Coulomb (Yukawa) potentials on disjoint ensembles.

The scale-variant Yukawa kernel e^{-lam r}/r is the paper's second
interaction type; here the source ensemble is a charged spherical shell
and the targets are a separate probe plane - the partially-overlapping /
disjoint dual-tree case of Fig. 1a, exercising the adaptive lists
(M->T, S->L) and, if the probe is far enough, target-subtree pruning.

Run:  python examples/screened_coulomb.py
"""

import numpy as np

from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels import YukawaKernel
from repro.methods.direct import direct_potentials
from repro.workloads.distributions import sphere_points


def main() -> None:
    rng = np.random.default_rng(1)
    n_src, n_tgt = 3000, 2000

    # a charged shell (e.g. a screened macro-ion surface)
    sources = sphere_points(n_src, seed=2, radius=0.4)
    charges = rng.normal(size=n_src) + 0.5

    # a probe plane beside the shell: disjoint target ensemble
    targets = np.column_stack(
        [
            np.full(n_tgt, 1.6),
            rng.uniform(-0.2, 1.0, n_tgt),
            rng.uniform(-0.2, 1.0, n_tgt),
        ]
    )

    kernel = YukawaKernel(p=10, lam=2.0)
    evaluator = DashmmEvaluator(
        kernel,
        method="fmm",
        threshold=40,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=8),
    )
    report = evaluator.evaluate(sources, charges, targets)

    exact = direct_potentials(kernel, targets[:400], sources, charges)
    err = np.linalg.norm(report.potentials[:400] - exact) / np.linalg.norm(exact)

    es = report.dag.edge_stats()
    print(f"Yukawa (lam={kernel.lam}) shell -> probe plane")
    print(f"relative L2 error          : {err:.2e}")
    print(f"virtual evaluation time    : {report.time * 1e3:.2f} ms")
    print("DAG edge classes           :", {k: v["count"] for k, v in sorted(es.items())})
    if report.lists is not None:
        print("adaptive list sizes        :", report.lists.counts())
        print("pruned target sub-trees    :", len(report.lists.pruned))
    assert err < 1e-3
    print("OK")


if __name__ == "__main__":
    main()
