"""Numerically constructed box-to-box translation operators.

Every FMM translation (M->M, M->L, L->L, M->I, I->L) is a linear map
between expansion coefficient spaces.  Rather than deriving each map
analytically per kernel (which would defeat DASHMM's kernel-generic
design), the maps are *fitted by least squares from the analytic
particle-side operators*: random unit sources are placed in the
relevant geometry, both the input and the output expansion of each
sample are computed analytically, and the dense matrix relating them is
recovered with :func:`numpy.linalg.lstsq`.

Because the input expansions of the samples span the realizable
coefficient manifold, the fitted operator agrees with the exact
translation up to the FMM truncation error - which is the accuracy
floor anyway.  Operators are cached per (operator, geometry, level
key); scale-invariant kernels (Laplace) share one operator set across
all levels, scale-variant kernels (Yukawa) get per-level sets, exactly
the distinction the paper draws.

Geometry conventions (everything in units of the box edge at the
relevant level):

* ``m2m(octant)``  - child multipole -> parent multipole; the child
  center sits at ``(+-1/4, +-1/4, +-1/4)`` in parent units.
* ``m2l(delta)``   - source multipole -> target local for same-level
  boxes with integer center offset ``delta`` (list 2).
* ``l2l(octant)``  - parent local -> child local.
* ``m2i(dir)``     - source multipole -> outgoing plane-wave amplitudes.
* ``i2l(dir)``     - incoming plane-wave amplitudes -> target local.
* ``m2l_coarse(delta, ratio)`` - multipole of a (possibly coarser)
  source box -> local of a target box, used for list 4-style geometry.
"""

from __future__ import annotations

import ast
import json
import zlib
from pathlib import Path

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.expo import frame, i2i_factor, p2w_matrix
from repro.kernels.quadrature import build_quadrature

#: bump when the fitting procedure or the on-disk layout changes; caches
#: written with a different version are rejected on load
CACHE_FORMAT_VERSION = 2

_OCTANTS = [
    np.array([(0.5 if b else -0.5) / 2.0 for b in ((o >> 0) & 1, (o >> 1) & 1, (o >> 2) & 1)])
    for o in range(8)
]


def octant_offset(octant: int) -> np.ndarray:
    """Child-center offset from parent center, in parent box units."""
    return _OCTANTS[octant]


def fit_linear_map(inputs: np.ndarray, outputs: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """Least-squares T with ``outputs ~ inputs @ T.T`` (rows = samples)."""
    sol, *_ = np.linalg.lstsq(inputs, outputs, rcond=rcond)
    return sol.T


class OperatorFactory:
    """Builds and caches all fitted translation operators for a kernel.

    Parameters
    ----------
    kernel:
        The interaction kernel (supplies analytic particle-side ops).
    eps:
        Accuracy target of the exponential quadratures.
    n_extra:
        Extra samples beyond the coefficient-space dimension used in
        each fit (more samples -> better conditioning, slower fits).
    seed:
        Seed of the sample generator; fits are deterministic given it.

    Fitted operators are expensive (one ``lstsq`` each), so the cache
    can be shared process-wide (:meth:`shared`) and persisted to disk
    (:meth:`save`/:meth:`load`) as a versioned ``.npz`` keyed by the
    full fit signature (kernel name + parameters, ``p``, ``eps``,
    ``n_extra``, ``seed``).
    """

    #: process-wide registry used by :meth:`shared`
    _shared_instances: dict = {}

    def __init__(self, kernel: Kernel, eps: float = 1e-4, n_extra: int = 96, seed: int = 1234):
        self.kernel = kernel
        self.eps = eps
        self.n_extra = n_extra
        self.seed = seed
        self.hits = 0
        self.misses = 0
        self._cache: dict = {}
        self._quads: dict = {}

    # -- sharing & persistence ------------------------------------------------
    @classmethod
    def shared(
        cls, kernel: Kernel, eps: float = 1e-4, n_extra: int = 96, seed: int = 1234
    ) -> "OperatorFactory":
        """Process-wide factory for this fit signature.

        Evaluators with equivalent kernels (same name, order and
        parameters) get the same factory, so translation operators are
        fitted at most once per process instead of once per evaluator.
        """
        key = (kernel.name, kernel.p, tuple(kernel.param_key()), eps, n_extra, seed)
        fac = cls._shared_instances.get(key)
        if fac is None:
            fac = cls(kernel, eps=eps, n_extra=n_extra, seed=seed)
            cls._shared_instances[key] = fac
        return fac

    def signature(self) -> dict:
        """Everything the fitted operators depend on (cache identity)."""
        return {
            "format": CACHE_FORMAT_VERSION,
            "kernel": self.kernel.name,
            "p": self.kernel.p,
            "params": [float(v) for v in self.kernel.param_key()],
            "eps": float(self.eps),
            "n_extra": int(self.n_extra),
            "seed": int(self.seed),
        }

    def default_cache_path(self, directory) -> Path:
        """Canonical ``.npz`` path for this signature under ``directory``."""
        sig = self.signature()
        params = "".join(f"_{v:g}" for v in sig["params"])
        name = (
            f"ops_{sig['kernel']}{params}_p{sig['p']}_eps{sig['eps']:g}"
            f"_x{sig['n_extra']}_s{sig['seed']}_v{sig['format']}.npz"
        )
        return Path(directory) / name

    def save(self, path=None, directory=None) -> Path:
        """Persist every fitted operator to a versioned ``.npz``."""
        if path is None:
            path = self.default_cache_path(directory or ".")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {f"op::{key!r}": np.asarray(val) for key, val in self._cache.items()}
        np.savez_compressed(
            path, __signature__=np.array(json.dumps(self.signature())), **arrays
        )
        return path

    def load(self, path=None, directory=None, strict: bool = True) -> bool:
        """Load a cache written by :meth:`save`; returns True on success.

        A cache whose signature (kernel, ``p``, ``eps``, ``n_extra``,
        ``seed`` or format version) differs from this factory's is never
        reused: ``strict=True`` raises, ``strict=False`` returns False.
        """
        if path is None:
            path = self.default_cache_path(directory or ".")
        path = Path(path)
        if not path.exists():
            if strict:
                raise FileNotFoundError(path)
            return False
        with np.load(path, allow_pickle=False) as data:
            sig = json.loads(str(data["__signature__"]))
            if sig != self.signature():
                if strict:
                    raise ValueError(
                        f"operator cache signature mismatch: file {sig}, "
                        f"factory {self.signature()}"
                    )
                return False
            for name in data.files:
                if not name.startswith("op::"):
                    continue
                self._cache[ast.literal_eval(name[4:])] = data[name]
        return True

    # -- sample helpers ------------------------------------------------------
    def _rng(self, tag: str) -> np.random.Generator:
        # crc32, not hash(): string hashing is randomized per process, which
        # would make fitted operators (and persisted caches) irreproducible
        # across runs
        return np.random.default_rng((self.seed, zlib.crc32(tag.encode())))

    def _box_samples(self, n: int, tag: str) -> np.ndarray:
        return self._rng(tag).uniform(-0.5, 0.5, size=(n, 3))

    def _far_samples(self, n: int, tag: str, lo: float = 1.6, hi: float = 5.0) -> np.ndarray:
        """Points outside the near zone (|x|_inf > lo), within |x|_inf < hi."""
        rng = self._rng(tag)
        out = np.empty((0, 3))
        while len(out) < n:
            cand = rng.uniform(-hi, hi, size=(2 * n, 3))
            keep = np.abs(cand).max(axis=1) > lo
            out = np.vstack([out, cand[keep]])
        return out[:n]

    # -- quadratures ----------------------------------------------------------
    def quadrature(self, scale: float):
        key = self.kernel.level_key(scale)
        if key not in self._quads:
            self._quads[key] = build_quadrature(self.kernel, scale, eps=self.eps)
        return self._quads[key]

    # -- fitted operators ------------------------------------------------------
    def _lookup(self, key):
        """Cache probe with hit/miss accounting (operators are never None)."""
        op = self._cache.get(key)
        if op is None:
            self.misses += 1
        else:
            self.hits += 1
        return op

    def m2m(self, octant: int, child_scale: float) -> np.ndarray:
        """Child multipole (scale h) -> parent multipole (scale 2h)."""
        k = self.kernel
        key = ("m2m", octant, k.level_key(child_scale))
        op = self._lookup(key)
        if op is None:
            n = k.size + self.n_extra
            u = self._box_samples(n, f"m2m{octant}")
            off = octant_offset(octant)
            mi = k.p2m_matrix(u, child_scale)
            mo = k.p2m_matrix(off + u / 2.0, 2.0 * child_scale)
            self._cache[key] = op = fit_linear_map(mi, mo)
        return op

    def l2l(self, octant: int, parent_scale: float) -> np.ndarray:
        """Parent local (scale 2h) -> child local (scale h)."""
        k = self.kernel
        key = ("l2l", octant, k.level_key(parent_scale))
        op = self._lookup(key)
        if op is None:
            n = k.size + self.n_extra
            x = self._far_samples(n, f"l2l{octant}")
            off = octant_offset(octant)
            li = k.p2l_matrix(x, parent_scale)
            lo = k.p2l_matrix((x - off) * 2.0, parent_scale / 2.0)
            self._cache[key] = op = fit_linear_map(li, lo)
        return op

    def m2l(self, delta: tuple[int, int, int], scale: float) -> np.ndarray:
        """Same-level source multipole -> target local, offset ``delta``."""
        k = self.kernel
        key = ("m2l", tuple(int(v) for v in delta), k.level_key(scale))
        op = self._lookup(key)
        if op is None:
            n = k.size + self.n_extra
            u = self._box_samples(n, f"m2l{delta}")
            d = np.asarray(delta, dtype=float)
            mi = k.p2m_matrix(u, scale)
            lo = k.p2l_matrix(u - d, scale)
            self._cache[key] = op = fit_linear_map(mi, lo)
        return op

    def m2i(self, direction: str, scale: float) -> np.ndarray:
        """Source multipole -> outgoing plane-wave amplitudes (M->I)."""
        k = self.kernel
        key = ("m2i", direction, k.level_key(scale))
        op = self._lookup(key)
        if op is None:
            quad = self.quadrature(scale)
            n = k.size + self.n_extra
            u = self._box_samples(n, f"m2i{direction}")
            mi = k.p2m_matrix(u, scale)
            wo = p2w_matrix(quad, direction, u, scale)
            self._cache[key] = op = fit_linear_map(mi, wo)
        return op

    def m2i_stack(self, directions: tuple, scale: float) -> np.ndarray:
        """Row-stacked M->I operators for several directions.

        One ``(len(directions) * nterms, size)`` matrix so a node's
        outgoing plane-wave amplitudes for all directions come from a
        single matvec; rows split back per direction in caller order.
        """
        key = ("m2i_stack", tuple(directions), self.kernel.level_key(scale))
        op = self._lookup(key)
        if op is None:
            self._cache[key] = op = np.vstack([self.m2i(d, scale) for d in directions])
        return op

    def i2l(self, direction: str, scale: float) -> np.ndarray:
        """Incoming plane-wave amplitudes -> target local (I->L).

        Samples are unit sources placed in the incoming cone of the
        direction (separation along d between 1 and 4 box units, lateral
        offset up to 4), i.e. exactly where list-2 sources live relative
        to the target box.
        """
        k = self.kernel
        key = ("i2l", direction, k.level_key(scale))
        op = self._lookup(key)
        if op is None:
            quad = self.quadrature(scale)
            n = quad.nterms + 2 * self.n_extra
            rng = self._rng(f"i2l{direction}")
            fr = frame(direction)
            # Positions relative to the *target* center, box units.  The
            # range is the actual list-2 source cone (centres 2-3 boxes
            # away along d, sources within half a box of the centre), so
            # the quadrature's design window z in [1, 4] covers the
            # whole separation between any sample and any target point.
            uz = rng.uniform(-3.5, -1.5, size=n)
            ux = rng.uniform(-3.5, 3.5, size=n)
            uy = rng.uniform(-3.5, 3.5, size=n)
            pts = np.stack([ux, uy, uz], axis=1) @ fr  # back to xyz coords
            # incoming amplitudes of each sample: outgoing from the
            # source position, translated to the target center.  Using
            # p2w around the target center directly encodes both steps.
            vi = p2w_matrix(quad, direction, pts, scale)
            lo = k.p2l_matrix(pts, scale)
            self._cache[key] = op = fit_linear_map(vi, lo)
        return op

    def i2l_stack(self, directions: tuple, scale: float) -> np.ndarray:
        """Column-stacked I->L operators for several directions.

        One ``(size, len(directions) * nterms)`` matrix so a node's
        incoming plane-wave amplitudes for all directions collapse to a
        local expansion in a single matvec (columns in caller order).
        """
        key = ("i2l_stack", tuple(directions), self.kernel.level_key(scale))
        op = self._lookup(key)
        if op is None:
            self._cache[key] = op = np.hstack([self.i2l(d, scale) for d in directions])
        return op

    def m2l_coarse(
        self, delta: np.ndarray, source_scale: float, target_scale: float
    ) -> np.ndarray:
        """Multipole of a source box -> local of a (finer) target box.

        ``delta`` is the target center minus source center in *source*
        box units.  Used for cross-level translations when a pruned
        target sub-tree collects contributions above leaf level.
        """
        k = self.kernel
        ratio = target_scale / source_scale
        # pure-Python floats keep the key repr()/literal_eval round-trippable
        key = (
            "m2lc",
            tuple(round(float(v), 9) for v in np.asarray(delta, dtype=float)),
            round(ratio, 9),
            k.level_key(source_scale),
        )
        op = self._lookup(key)
        if op is None:
            n = k.size + self.n_extra
            u = self._box_samples(n, f"m2lc{key[1]}")
            d = np.asarray(delta, dtype=float)
            mi = k.p2m_matrix(u, source_scale)
            lo = k.p2l_matrix((u - d) / ratio, target_scale)
            self._cache[key] = op = fit_linear_map(mi, lo)
        return op

    def i2i(self, direction: str, delta, scale: float) -> np.ndarray:
        """Diagonal I->I translation factors for integer offset ``delta``."""
        key = ("i2i", direction, tuple(int(v) for v in delta), self.kernel.level_key(scale))
        op = self._lookup(key)
        if op is None:
            quad = self.quadrature(scale)
            self._cache[key] = op = i2i_factor(quad, direction, np.asarray(delta, dtype=float))
        return op

    def i2i_factors(self, direction: str, deltas: tuple, scale: float) -> np.ndarray:
        """Row-stacked I->I factors for several offsets of one direction.

        One ``(len(deltas), nterms)`` array so a node's outgoing
        amplitudes translate to every receiving cone in a single
        broadcast multiply (rows in caller order).
        """
        key = (
            "i2i_factors",
            direction,
            tuple(tuple(int(v) for v in d) for d in deltas),
            self.kernel.level_key(scale),
        )
        op = self._lookup(key)
        if op is None:
            self._cache[key] = op = np.stack(
                [self.i2i(direction, d, scale) for d in deltas]
            )
        return op

    def cache_stats(self) -> dict[str, int]:
        """Cached-operator counts per type plus hit/miss counters."""
        out: dict[str, int] = {"hits": self.hits, "misses": self.misses}
        for key in self._cache:
            out[key[0]] = out.get(key[0], 0) + 1
        return out
