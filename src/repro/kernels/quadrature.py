"""Numerically generated quadratures for the exponential representation.

The merge-and-shift technique rests on the Sommerfeld-type integral

    G(x) = int_0^inf nu(lam) e^{-t(lam) z} J_0(lam rho) dlam,   z > 0,

(Lipschitz for Laplace: t = lam, nu = 1; Sommerfeld for Yukawa:
t = sqrt(lam^2 + kappa^2), nu = lam/t).  The paper's FMM uses the
optimized generalized-Gaussian rules of Cheng-Greengard-Rokhlin; those
node tables are not reproducible offline, so we generate near-optimal
rules numerically:

1. lay down a dense composite Gauss-Legendre candidate grid in lambda,
2. select a small subset of nodes by column-pivoted QR ("empirical
   interpolation") of the matrix of candidate basis functions
   ``e^{-t z} J_0(lam rho)`` sampled over the translation geometry,
3. re-fit the weights by least squares against the exact kernel,
4. choose the number of equispaced azimuthal points per node by
   directly testing the trapezoid rule's error in reproducing J_0.

The resulting rules are somewhat longer than the paper's optimal ones
(documented in DESIGN.md); the cost model uses paper-calibrated message
sizes so the simulated runs keep the paper's communication profile.

The standard translation geometry, in units of the box edge, is
``z in [1, 4]`` and ``rho <= 4*sqrt(2)`` (same-level list-2 boxes,
direction assigned to the axis of largest separation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import qr
from scipy.special import j0, roots_legendre

#: default geometry of a list-2 exponential translation, in box units
Z_RANGE = (1.0, 4.0)
RHO_MAX = 4.0 * np.sqrt(2.0)


@dataclass
class ExpoQuadrature:
    """A discretized exponential representation, flattened over terms.

    The representation is ``G(u) ~ sum_f w[f] e^{-t[f] u_z}
    e^{i lam[f] (u_x cosa[f] + u_y sina[f])}`` where ``f`` runs over all
    (node, azimuth) pairs.  ``node_counts[k]`` gives the number of
    azimuthal terms of lambda-node ``k``.
    """

    lams: np.ndarray  # (s,) lambda nodes
    weights: np.ndarray  # (s,) fitted weights (include nu(lam))
    node_counts: np.ndarray  # (s,) azimuthal points per node
    ts: np.ndarray  # (s,) decay rates t(lam)
    # flattened per-term arrays
    lam_f: np.ndarray
    t_f: np.ndarray
    w_f: np.ndarray  # weights[k] / node_counts[k]
    cosa: np.ndarray
    sina: np.ndarray
    eps: float

    @property
    def nterms(self) -> int:
        return len(self.lam_f)

    @property
    def nnodes(self) -> int:
        return len(self.lams)


def _candidate_nodes(lam_max: float, rho_max: float) -> tuple[np.ndarray, np.ndarray]:
    """Composite Gauss-Legendre grid dense enough to resolve J_0."""
    panel = min(1.0, 2.0 * np.pi / max(rho_max, 1.0) / 2.0)
    n_panels = max(4, int(np.ceil(lam_max / panel)))
    xg, wg = roots_legendre(8)
    edges = np.linspace(0.0, lam_max, n_panels + 1)
    lams, ws = [], []
    for a, b in zip(edges[:-1], edges[1:]):
        half = (b - a) / 2.0
        lams.append((a + b) / 2.0 + half * xg)
        ws.append(half * wg)
    return np.concatenate(lams), np.concatenate(ws)


def _azimuth_count(lam: float, rho_max: float, tol: float, cap: int = 256) -> int:
    """Smallest even M with trapezoid error below tol for J_0(lam rho)."""
    rho = np.linspace(0.0, rho_max, 40)
    exact = j0(lam * rho)
    m = max(4, 2 * int(np.ceil(lam * rho_max / np.pi / 2.0)))
    while m <= cap:
        a = 2.0 * np.pi * np.arange(m) / m
        approx = np.mean(np.cos(lam * np.outer(rho, np.cos(a))), axis=1)
        # trapezoid of e^{i lam rho cos a}; imaginary part integrates to 0
        if np.max(np.abs(approx - exact)) < tol:
            return m
        m += 2
    return cap


def build_quadrature(
    kernel,
    scale: float,
    eps: float = 1e-4,
    z_range: tuple[float, float] = Z_RANGE,
    rho_max: float = RHO_MAX,
    max_nodes: int = 40,
) -> ExpoQuadrature:
    """Generate an exponential quadrature for ``kernel`` at box size ``scale``.

    Accuracy ``eps`` is an absolute tolerance on the box-unit kernel over
    the translation geometry (the kernel there is O(1), so this is also
    roughly relative).
    """
    zmin, zmax = z_range
    lam_max = (np.log(1.0 / eps) + 3.0) / zmin
    cand_lam, cand_w = _candidate_nodes(lam_max, rho_max)
    nu = kernel.expo_weight(cand_lam, scale)
    t = kernel.expo_t(cand_lam, scale)

    # Sample the translation geometry.
    zs = np.linspace(zmin, zmax, 24)
    rhos = np.linspace(0.0, rho_max, 26)
    Z, R = np.meshgrid(zs, rhos, indexing="ij")
    z_s, rho_s = Z.ravel(), R.ravel()
    # candidate basis matrix and exact right-hand side (box units); the
    # least-squares weight fit absorbs the candidate quadrature weights
    # and the integrand factor nu, so columns are bare basis functions
    # (scaled by cand_w*nu only to guide the QR pivoting toward nodes
    # that matter for the integral).
    A = (cand_w * nu)[None, :] * np.exp(-np.outer(z_s, t)) * j0(
        np.outer(rho_s, cand_lam)
    )
    r_s = np.sqrt(z_s**2 + rho_s**2)
    b = kernel.greens(r_s * scale) * scale  # physical -> box units

    # Empirical interpolation: pick nodes by column-pivoted QR, growing
    # the subset until the least-squares residual beats eps.
    _, _, piv = qr(A, mode="economic", pivoting=True)
    best = None
    for s in range(4, min(max_nodes, len(piv)) + 1):
        cols = piv[:s]
        sol, *_ = np.linalg.lstsq(A[:, cols], b, rcond=None)
        resid = np.max(np.abs(A[:, cols] @ sol - b))
        best = (cols, sol, resid)
        if resid < eps * 0.5:
            break
    cols, sol, resid = best
    order = np.argsort(cand_lam[cols])
    lams = cand_lam[cols][order]
    # effective weight of node k is sol_k times the prefactor baked into
    # its column of A
    weights = (sol * cand_w[cols] * nu[cols])[order]
    ts = t[cols][order]

    # azimuthal counts: tolerate more error on weakly weighted nodes
    counts = []
    for lam_k, w_k, t_k in zip(lams, weights, ts):
        damp = abs(w_k) * np.exp(-t_k * zmin)
        tol_k = eps / max(len(lams) * damp, 1e-12)
        counts.append(_azimuth_count(lam_k, rho_max, min(0.3, tol_k)))
    counts = np.array(counts, dtype=int)

    lam_f = np.repeat(lams, counts)
    t_f = np.repeat(ts, counts)
    w_f = np.repeat(weights / counts, counts)
    ang = np.concatenate([2.0 * np.pi * np.arange(m) / m for m in counts])
    return ExpoQuadrature(
        lams=lams,
        weights=weights,
        node_counts=counts,
        ts=ts,
        lam_f=lam_f,
        t_f=t_f,
        w_f=w_f,
        cosa=np.cos(ang),
        sina=np.sin(ang),
        eps=eps,
    )
