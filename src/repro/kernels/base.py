"""Kernel interface and expansion containers.

A :class:`Kernel` supplies the *analytic particle-side* operators of the
FMM in normalized (box-unit) coordinates:

* ``p2m``  - S->M: multipole coefficients of point sources,
* ``m2t``  - M->T: evaluate a multipole expansion at target points,
* ``p2l``  - S->L: local coefficients due to far point sources,
* ``l2t``  - L->T: evaluate a local expansion at target points,
* ``direct`` - S->T: direct pairwise evaluation,

plus the ingredients of the exponential (intermediate) representation
used by the merge-and-shift technique:

* ``expo_t(lam, scale)``  - decay rate t(lambda) of the plane wave,
* ``expo_weight(lam, scale)`` - Sommerfeld-integrand weight nu(lambda).

All *box-to-box* operators (M->M, M->L, L->L, M->I, I->L) are dense
linear maps constructed from these primitives by least-squares fitting
(:mod:`repro.kernels.fitops`), which is what keeps the framework
generic over kernels.

Coordinates passed to the expansion operators are *relative to the box
center and divided by the box edge length* ``scale``; ``scale`` itself
is passed alongside so scale-variant kernels (Yukawa) can recover
physical distances.  Returned potentials are in physical units.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.kernels.sphharm import Harmonics


@dataclass
class Expansion:
    """A series expansion attached to a box.

    ``kind`` is one of ``"M"`` (multipole), ``"L"`` (local) or ``"I"``
    (intermediate/exponential, per direction).  ``coeffs`` is the flat
    complex coefficient vector; ``scale`` is the edge length of the box
    the expansion is centred on.
    """

    kind: str
    coeffs: np.ndarray
    center: np.ndarray
    scale: float

    @property
    def nbytes(self) -> int:
        return self.coeffs.nbytes


class Kernel(ABC):
    """Base class for interaction kernels (Laplace, Yukawa, user-defined)."""

    #: short name used in reports and operator-cache keys
    name: str = "kernel"
    #: whether expansions/operators depend on the absolute box size
    scale_variant: bool = False

    def __init__(self, p: int):
        if p < 1:
            raise ValueError("expansion order p must be >= 1")
        self.p = p
        self.harm = Harmonics(p)
        self.size = self.harm.size

    # -- direct interaction ------------------------------------------------
    @abstractmethod
    def greens(self, r: np.ndarray) -> np.ndarray:
        """Green's function value at distances ``r`` (``r == 0`` -> 0)."""

    def direct(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        weights: np.ndarray,
        chunk: int = 2048,
    ) -> np.ndarray:
        """S->T: exact pairwise potentials, chunked to bound memory."""
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        out = np.zeros(len(targets))
        for lo in range(0, len(targets), chunk):
            t = targets[lo : lo + chunk]
            r = np.linalg.norm(t[:, None, :] - sources[None, :, :], axis=-1)
            out[lo : lo + chunk] = self.greens(r) @ weights
        return out

    # -- spherical expansions (box units) ----------------------------------
    @abstractmethod
    def p2m_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        """Per-unit-charge multipole rows: (N, size) with
        ``p2m = q @ p2m_matrix``."""

    @abstractmethod
    def p2l_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        """Per-unit-charge local rows: (N, size) with
        ``p2l = q @ p2l_matrix``."""

    def p2m(self, rel: np.ndarray, q: np.ndarray, scale: float) -> np.ndarray:
        """Multipole coefficients of sources at ``rel`` (box units)."""
        return np.asarray(q) @ self.p2m_matrix(rel, scale)

    def p2l(self, rel: np.ndarray, q: np.ndarray, scale: float) -> np.ndarray:
        """Local coefficients due to far sources at ``rel`` (box units)."""
        return np.asarray(q) @ self.p2l_matrix(rel, scale)

    @abstractmethod
    def m2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        """Evaluation rows E with ``m2t = Re(E @ coeffs)``; shape (N, size)."""

    @abstractmethod
    def l2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        """Evaluation rows E with ``l2t = Re(E @ coeffs)``; shape (N, size)."""

    def m2t(self, coeffs: np.ndarray, rel: np.ndarray, scale: float) -> np.ndarray:
        """Evaluate a multipole expansion at points ``rel`` (box units)."""
        return (self.m2t_matrix(rel, scale) @ coeffs).real

    def l2t(self, coeffs: np.ndarray, rel: np.ndarray, scale: float) -> np.ndarray:
        """Evaluate a local expansion at points ``rel`` (box units)."""
        return (self.l2t_matrix(rel, scale) @ coeffs).real

    def l2t_rows(
        self, coeffs_rows: np.ndarray, rel: np.ndarray, scale: float
    ) -> np.ndarray:
        """Row-wise L->T: point ``i`` evaluates its own coefficient row."""
        return (self.l2t_matrix(rel, scale) * coeffs_rows).sum(axis=1).real

    def m2t_rows(
        self, coeffs_rows: np.ndarray, rel: np.ndarray, scale: float
    ) -> np.ndarray:
        """Row-wise M->T: point ``i`` evaluates its own coefficient row."""
        return (self.m2t_matrix(rel, scale) * coeffs_rows).sum(axis=1).real

    # -- gradients (forces) --------------------------------------------------
    def greens_gradient(self, d: np.ndarray) -> np.ndarray:
        """grad_target G for displacements ``d = target - source``;
        shape (..., 3), zero at coincident points.

        Default: numerical radial derivative of :meth:`greens` (valid
        for any radial kernel); concrete kernels override with the
        analytic form.
        """
        r = np.linalg.norm(d, axis=-1)
        safe = np.where(r > 0, r, 1.0)
        h = 1e-6 * safe
        dg = (self.greens(safe + h) - self.greens(safe - h)) / (2.0 * h)
        return np.where(r > 0, dg / safe, 0.0)[..., None] * d

    def direct_gradient(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        weights: np.ndarray,
        chunk: int = 2048,
    ) -> np.ndarray:
        """Exact field gradients at targets; shape (N, 3)."""
        targets = np.atleast_2d(targets)
        sources = np.atleast_2d(sources)
        out = np.zeros((len(targets), 3))
        for lo in range(0, len(targets), chunk):
            t = targets[lo : lo + chunk]
            d = t[:, None, :] - sources[None, :, :]
            g = self.greens_gradient(d)  # (nt, ns, 3)
            out[lo : lo + chunk] = np.einsum("tsk,s->tk", g, weights)
        return out

    def _fd_gradient(self, eval_fn, coeffs, rel, scale: float, h: float = 1e-6):
        """Central-difference gradient of an expansion evaluation.

        The expansions are smooth (analytic) in the evaluation point, so
        a small central difference in box units reaches ~1e-9 relative
        accuracy - ample next to the expansion truncation error.  The
        1/scale converts the box-unit derivative to physical units.
        """
        rel = np.atleast_2d(rel)
        grad = np.empty((len(rel), 3))
        for ax in range(3):
            dp = rel.copy()
            dm = rel.copy()
            dp[:, ax] += h
            dm[:, ax] -= h
            grad[:, ax] = (eval_fn(coeffs, dp, scale) - eval_fn(coeffs, dm, scale)) / (
                2.0 * h * scale
            )
        return grad

    def l2t_gradient(self, coeffs: np.ndarray, rel: np.ndarray, scale: float) -> np.ndarray:
        """Gradient of a local expansion at points ``rel``; (N, 3)."""
        return self._fd_gradient(self.l2t, coeffs, rel, scale)

    def m2t_gradient(self, coeffs: np.ndarray, rel: np.ndarray, scale: float) -> np.ndarray:
        """Gradient of a multipole expansion at points ``rel``; (N, 3)."""
        return self._fd_gradient(self.m2t, coeffs, rel, scale)

    # -- exponential (intermediate) representation --------------------------
    def expo_t(self, lam: np.ndarray, scale: float) -> np.ndarray:
        """Decay rate t(lambda) of the plane-wave factor e^{-t z}."""
        raise NotImplementedError(f"{self.name} has no exponential representation")

    def expo_weight(self, lam: np.ndarray, scale: float) -> np.ndarray:
        """Sommerfeld-integrand weight nu(lambda) (before quadrature weight)."""
        raise NotImplementedError(f"{self.name} has no exponential representation")

    # -- operator-cache keying ----------------------------------------------
    def param_key(self) -> tuple:
        """Numeric kernel parameters the fitted operators depend on.

        Part of the operator-cache signature (sharing and disk
        persistence): kernels with constructor parameters that change
        the expansions (e.g. a screening length) must return them here
        unless :meth:`level_key` already folds them in.
        """
        return ()

    def level_key(self, scale: float):
        """Cache key component for fitted operators at a given box size.

        Scale-invariant kernels return ``None`` (one operator set serves
        every level); scale-variant kernels return a value derived from
        the physical box size so each level gets its own operators.
        """
        if not self.scale_variant:
            return None
        return round(float(scale), 12)
