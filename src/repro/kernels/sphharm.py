"""Spherical-harmonic primitives shared by the kernels.

Conventions (Greengard's normalization, which makes the Legendre
addition theorem coefficient-free):

* ``P_n^m`` is the associated Legendre function *with* the
  Condon-Shortley phase (matching :func:`scipy.special.lpmv`).
* ``Ynm(n, m) = sqrt((n-|m|)!/(n+|m|)!) * P_n^{|m|}(cos th) * e^{i m ph}``

With these, ``P_n(cos gamma) = sum_m Ynm(x_hat) * conj(Ynm(y_hat))``
exactly, so the multipole/local expansion identities carry no extra
constants:

* ``1/|x-y| = sum_{n,m} [r_<^n Ynm(x_hat)] [conj(Ynm(y_hat)) / r_>^{n+1}]``

Coefficient vectors are flat complex arrays of length ``(p+1)**2``
indexed by ``idx(n, m) = n*n + n + m``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


def nterms(p: int) -> int:
    """Number of coefficients in an order-``p`` expansion."""
    return (p + 1) * (p + 1)


def idx(n, m):
    """Flat index of coefficient (n, m), -n <= m <= n."""
    return n * n + n + m


def nm_arrays(p: int) -> tuple[np.ndarray, np.ndarray]:
    """Arrays ``n[i]`` and ``m[i]`` for every flat index i."""
    ns = np.concatenate([np.full(2 * n + 1, n, dtype=np.int64) for n in range(p + 1)])
    ms = np.concatenate([np.arange(-n, n + 1, dtype=np.int64) for n in range(p + 1)])
    return ns, ms


def assoc_legendre(p: int, x: np.ndarray) -> np.ndarray:
    """All ``P_n^m(x)`` for 0 <= m <= n <= p, Condon-Shortley phase.

    Returns an array of shape ``x.shape + (p+1, p+1)`` where entry
    ``[..., n, m]`` is ``P_n^m(x)`` (zero for m > n).
    """
    x = np.asarray(x, dtype=float)
    # build in (n, m, ...) layout so every recurrence store is one
    # contiguous write of x.size values, then expose the documented
    # x.shape + (p+1, p+1) axis order as a view
    out = np.zeros((p + 1, p + 1) + x.shape)
    somx2 = np.sqrt(np.maximum(0.0, 1.0 - x * x))
    pmm = np.ones_like(x)
    for m in range(p + 1):
        out[m, m] = pmm
        if m < p:
            pm1 = x * (2 * m + 1) * pmm
            out[m + 1, m] = pm1
            pold, pcur = pmm, pm1
            for n in range(m + 2, p + 1):
                pnew = ((2 * n - 1) * x * pcur - (n + m - 1) * pold) / (n - m)
                out[n, m] = pnew
                pold, pcur = pcur, pnew
        # seed for next m: P_{m+1}^{m+1} = -(2m+1) sqrt(1-x^2) P_m^m
        pmm = -(2 * m + 1) * somx2 * pmm
    return np.moveaxis(out, (0, 1), (-2, -1))


def _ynm_norms(p: int) -> np.ndarray:
    """sqrt((n-|m|)!/(n+|m|)!) for every flat index."""
    ns, ms = nm_arrays(p)
    am = np.abs(ms)
    return np.exp(0.5 * (gammaln(ns - am + 1) - gammaln(ns + am + 1)))


class Harmonics:
    """Evaluator of normalized spherical harmonics up to order ``p``.

    Precomputes the normalization table once; :meth:`ynm` evaluates the
    full coefficient vector for batches of points.
    """

    def __init__(self, p: int):
        self.p = p
        self.size = nterms(p)
        self.ns, self.ms = nm_arrays(p)
        self.norms = _ynm_norms(p)
        self.abs_ms = np.abs(self.ms)
        # (-1)^m factor used to get negative-m values from conjugates:
        # Ynm(n,-m) = (-1)^m conj(Ynm(n,m)) with CS-phase Legendre.
        self.neg_phase = np.where(self.ms < 0, (-1.0) ** self.abs_ms, 1.0)
        # fused per-index prefactor applied once in ynm()
        self._scale = self.norms * self.neg_phase

    def ynm(self, xyz: np.ndarray) -> np.ndarray:
        """Normalized Y_n^m for each point; shape (N, (p+1)^2), complex.

        Points at the origin give Y_0^0 = 1 and zeros elsewhere (the
        polar angle is taken as 0 there).
        """
        xyz = np.atleast_2d(np.asarray(xyz, dtype=float))
        r = np.linalg.norm(xyz, axis=-1)
        safe_r = np.where(r == 0.0, 1.0, r)
        ct = np.clip(xyz[:, 2] / safe_r, -1.0, 1.0)
        phi = np.arctan2(xyz[:, 1], xyz[:, 0])
        leg = assoc_legendre(self.p, ct)  # (N, p+1, p+1)
        pvals = leg[:, self.ns, self.abs_ms]  # (N, size)
        # e^{i m phi} for m = -p..p by the multiplication recurrence:
        # one complex exp of length N instead of one per (point, index)
        p = self.p
        cols = np.empty((len(phi), 2 * p + 1), dtype=complex)
        cols[:, p] = 1.0
        if p:
            e = np.exp(1j * phi)
            cur = e
            cols[:, p + 1] = e
            cols[:, p - 1] = e.conj()
            for m in range(2, p + 1):
                cur = cur * e
                cols[:, p + m] = cur
                cols[:, p - m] = cur.conj()
        phase = cols[:, self.ms + p]  # fresh array: safe to reuse in place
        phase *= pvals
        phase *= self._scale
        return phase

    def powers(self, rho: np.ndarray) -> np.ndarray:
        """rho**n for each flat index; shape (N, size)."""
        rho = np.asarray(rho, dtype=float)
        # cumulative products: rho**n by n-1 multiplies, no log/exp
        pw = np.empty((len(rho), self.p + 1))
        pw[:, 0] = 1.0
        for n in range(1, self.p + 1):
            pw[:, n] = pw[:, n - 1] * rho
        return pw[:, self.ns]


def legendre_poly(p: int, x: np.ndarray) -> np.ndarray:
    """Plain Legendre polynomials P_0..P_p at x; shape x.shape + (p+1,)."""
    x = np.asarray(x, dtype=float)
    out = np.zeros(x.shape + (p + 1,))
    out[..., 0] = 1.0
    if p >= 1:
        out[..., 1] = x
    for n in range(2, p + 1):
        out[..., n] = ((2 * n - 1) * x * out[..., n - 1] - (n - 1) * out[..., n - 2]) / n
    return out
