"""The scale-invariant Laplace kernel 1/r.

This is the typical potential of electrostatics or Newtonian
gravitation.  In box units (lengths divided by the box edge ``h``):

* multipole:  ``Phi(y) = (1/h) * sum_{n,m} M_n^m Ynm(y_hat) / rho_y^{n+1}``
  with ``M_n^m = sum_i q_i rho_i^n conj(Ynm(x_hat_i))``,
* local:      ``Phi(y) = (1/h) * sum_{n,m} L_n^m rho_y^n Ynm(y_hat)``
  with ``L_n^m = sum_i q_i conj(Ynm(x_hat_i)) / rho_i^{n+1}``,

both exact consequences of the Legendre addition theorem with the
normalized harmonics of :mod:`repro.kernels.sphharm`.

The exponential representation is the Lipschitz integral
``1/r = int_0^inf e^{-lam z} J_0(lam rho) dlam`` (z > 0), i.e.
``t(lam) = lam`` and ``nu(lam) = 1``; it is scale-invariant in box
units.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel


class LaplaceKernel(Kernel):
    """Laplace (Coulomb/Newton) interaction ``q / r``."""

    name = "laplace"
    scale_variant = False

    def greens(self, r: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore"):
            g = np.where(r > 0, 1.0 / np.where(r > 0, r, 1.0), 0.0)
        return g

    def greens_gradient(self, d: np.ndarray) -> np.ndarray:
        # grad_t 1/|d| = -d / |d|^3; |d| = 0 maps to r = inf so the
        # self-interaction gradient is exactly zero (d is the 0 vector)
        r = np.linalg.norm(d, axis=-1)
        safe = np.where(r > 0, r, np.inf)
        return -d / safe[..., None] ** 3

    def p2m_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        return self.harm.powers(rho) * self.harm.ynm(rel).conj()

    def m2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        y = self.harm.ynm(rel)
        inv = self.harm.powers(1.0 / rho) / rho[:, None]  # rho^{-(n+1)}
        return (y * inv) / scale

    def p2l_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        inv = self.harm.powers(1.0 / rho) / rho[:, None]
        return inv * self.harm.ynm(rel).conj()

    def l2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        return (self.harm.ynm(rel) * self.harm.powers(rho)) / scale

    # exponential representation -------------------------------------------
    def expo_t(self, lam: np.ndarray, scale: float) -> np.ndarray:
        return np.asarray(lam, dtype=float)

    def expo_weight(self, lam: np.ndarray, scale: float) -> np.ndarray:
        return np.ones_like(np.asarray(lam, dtype=float))
