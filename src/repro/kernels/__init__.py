"""Interaction kernels and their series expansions.

Two concrete kernels ship with the framework, matching the paper's
evaluation: the scale-invariant Laplace kernel ``1/r`` and the
scale-variant Yukawa kernel ``exp(-lam*r)/r``.  Each kernel provides the
analytic *particle-side* operators (S->M, M->T, S->L, L->T, plus the
exponential-representation factorizations used by the merge-and-shift
technique); the box-to-box translation operators (M->M, M->L, L->L,
M->I, I->L) are constructed numerically as dense linear maps fitted
from the particle-side operators (see ``repro.kernels.fitops``), which
keeps the framework generic over kernels exactly as DASHMM is.
"""

from repro.kernels.base import Expansion, Kernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel

__all__ = ["Kernel", "Expansion", "LaplaceKernel", "YukawaKernel"]
