"""The scale-variant Yukawa kernel exp(-lam r)/r (screened Coulomb).

With scipy's modified spherical Bessel conventions the pairing identity
is

    e^{-k|x-y|}/|x-y| = (2k/pi) * sum_{n,m} (2n+1) i_n(k r_<) k_n(k r_>)
                        * Ynm(x_hat) conj(Ynm(y_hat))

verified to machine precision in the test suite.  Because ``i_n`` and
``k_n`` have enormous dynamic range across orders, the stored
coefficients are rescaled per order by the values of the radial
functions at the box radius, so coefficient vectors stay O(1):

* multipole coeff n: ``M_n^m = (2k/pi)(2n+1) sum q i_n(k r_i)
  conj(Ynm) / i_n(k r_b)`` with ``r_b`` the box half-diagonal;
  evaluation multiplies back ``i_n(k r_b) k_n(k r_y)``.
* local coeff n: scaled by ``k_n(k r_b)`` analogously.

Because the scaling depends on the physical box size, the fitted
translation operators are per-level ("the length of the intermediate
expansion depends on the depth in the hierarchy" - the paper's
scale-variance note).

The exponential representation is the Sommerfeld identity

    e^{-k r}/r = int_0^inf (lam/t) e^{-t z} J_0(lam rho) dlam,
    t = sqrt(lam^2 + k^2),   (z > 0)

so ``expo_t = sqrt(lam^2 + (k*scale)^2)`` and ``expo_weight = lam/t`` in
box units.
"""

from __future__ import annotations

import numpy as np
from scipy.special import spherical_in, spherical_kn

_BOX_RADIUS = np.sqrt(3.0) / 2.0  # half-diagonal of a unit box

from repro.kernels.base import Kernel


class YukawaKernel(Kernel):
    """Yukawa (screened Coulomb) interaction ``q e^{-lam r} / r``."""

    name = "yukawa"
    scale_variant = True

    def __init__(self, p: int, lam: float = 1.0):
        super().__init__(p)
        if lam <= 0:
            raise ValueError("Yukawa screening parameter lam must be > 0")
        self.lam = float(lam)

    def greens(self, r: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", over="ignore"):
            g = np.where(r > 0, np.exp(-self.lam * r) / np.where(r > 0, r, 1.0), 0.0)
        return g

    def greens_gradient(self, d: np.ndarray) -> np.ndarray:
        # grad_t e^{-k|d|}/|d| = -(1 + k|d|) e^{-k|d|} d / |d|^3
        r = np.linalg.norm(d, axis=-1)
        safe = np.where(r > 0, r, 1.0)
        factor = np.where(
            r > 0, (1.0 + self.lam * safe) * np.exp(-self.lam * safe) / safe**3, 0.0
        )
        return -factor[..., None] * d

    # -- per-order scaling -------------------------------------------------
    def _box_scales(self, scale: float) -> tuple[np.ndarray, np.ndarray]:
        """(i_n(k r_b), k_n(k r_b)) per flat index, r_b = box half-diagonal."""
        zb = self.lam * scale * _BOX_RADIUS
        n = np.arange(self.p + 1)
        i_b = spherical_in(n, zb)
        k_b = spherical_kn(n, zb)
        return i_b[self.harm.ns], k_b[self.harm.ns]

    def _radials(self, fn, rho: np.ndarray, scale: float) -> np.ndarray:
        """fn(n, k*r_phys) for all orders; shape (N, size)."""
        z = self.lam * scale * np.asarray(rho, dtype=float)
        n = np.arange(self.p + 1)
        vals = fn(n[None, :], z[:, None])  # (N, p+1)
        return vals[:, self.harm.ns]

    def p2m_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        y = self.harm.ynm(rel).conj()
        i_vals = self._radials(spherical_in, rho, scale)
        i_b, _ = self._box_scales(scale)
        pref = (2.0 * self.lam / np.pi) * (2 * self.harm.ns + 1)
        return (pref / i_b) * i_vals * y

    def m2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        y = self.harm.ynm(rel)
        k_vals = self._radials(spherical_kn, rho, scale)
        i_b, _ = self._box_scales(scale)
        return y * k_vals * i_b

    def p2l_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        y = self.harm.ynm(rel).conj()
        k_vals = self._radials(spherical_kn, rho, scale)
        _, k_b = self._box_scales(scale)
        pref = (2.0 * self.lam / np.pi) * (2 * self.harm.ns + 1)
        return (pref / k_b) * k_vals * y

    def l2t_matrix(self, rel: np.ndarray, scale: float) -> np.ndarray:
        rel = np.atleast_2d(rel)
        rho = np.linalg.norm(rel, axis=-1)
        y = self.harm.ynm(rel)
        i_vals = self._radials(spherical_in, rho, scale)
        _, k_b = self._box_scales(scale)
        return y * i_vals * k_b

    # exponential representation -------------------------------------------
    def expo_t(self, lam: np.ndarray, scale: float) -> np.ndarray:
        kh = self.lam * scale
        return np.sqrt(np.asarray(lam, dtype=float) ** 2 + kh * kh)

    def expo_weight(self, lam: np.ndarray, scale: float) -> np.ndarray:
        lam = np.asarray(lam, dtype=float)
        return lam / self.expo_t(lam, scale)

    def param_key(self) -> tuple:
        return (self.lam,)

    def level_key(self, scale: float):
        return round(float(self.lam * scale), 12)
