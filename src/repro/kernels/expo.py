"""Exponential (intermediate) expansions and their analytic operators.

An intermediate expansion is a vector of plane-wave amplitudes over the
flattened quadrature terms of :class:`repro.kernels.quadrature.ExpoQuadrature`,
attached to one of six axis directions.  For direction ``d`` with
orthonormal frame ``(e1, e2, d)`` and source/target coordinates
``u = frame @ x`` (box units):

* *outgoing* amplitudes of a source box (P->W, analytic):
  ``W_f = sum_i q_i (w_f/scale) e^{+t_f u_z,i} e^{-i lam_f (u_x,i cos a_f
  + u_y,i sin a_f)}``
* *I->I translation* by offset Delta (diagonal, the cheap operation the
  paper measures at 1.75 us):
  ``V_f = W_f * e^{-t_f D_z} e^{+i lam_f (D_x cos a_f + D_y sin a_f)}``
* *evaluation* of incoming amplitudes at target points (W->T, analytic):
  ``Phi(y) = Re sum_f V_f e^{-t_f u_z,y} e^{+i lam_f (u_x,y cos a_f +
  u_y,y sin a_f)}``

The composition P->W -> I->I -> W->T reproduces the kernel for any pair
of points whose separation along ``d`` lies in the quadrature's design
range; this is asserted in the test suite for both kernels.  The
box-to-box operators M->I and I->L are least-squares fits against these
analytic primitives (see :mod:`repro.kernels.fitops`).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.quadrature import ExpoQuadrature

#: The six translation directions, in a fixed order used throughout the
#: DAG: +z, -z, +x, -x, +y, -y (the paper's up/down/north/south/east/west).
DIRECTIONS = ("+z", "-z", "+x", "-x", "+y", "-y")

_FRAMES = {
    "+z": np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]]),
    "-z": np.array([[1.0, 0, 0], [0, -1.0, 0], [0, 0, -1.0]]),
    "+x": np.array([[0, 1.0, 0], [0, 0, 1.0], [1.0, 0, 0]]),
    "-x": np.array([[0, -1.0, 0], [0, 0, 1.0], [-1.0, 0, 0]]),
    "+y": np.array([[0, 0, 1.0], [1.0, 0, 0], [0, 1.0, 0]]),
    "-y": np.array([[0, 0, -1.0], [1.0, 0, 0], [0, -1.0, 0]]),
}


def frame(direction: str) -> np.ndarray:
    """Orthonormal frame rows (e1, e2, d) for a direction label."""
    return _FRAMES[direction]


def assign_direction(delta) -> str:
    """Direction label for a list-2 offset: the axis of largest |delta|.

    Ties break in axis order z, x, y so the assignment is deterministic.
    """
    dx, dy, dz = (float(v) for v in delta)
    ax = {"z": abs(dz), "x": abs(dx), "y": abs(dy)}
    best = max(("z", "x", "y"), key=lambda a: ax[a])
    value = {"z": dz, "x": dx, "y": dy}[best]
    return ("+" if value > 0 else "-") + best


def p2w_matrix(
    quad: ExpoQuadrature,
    direction: str,
    rel: np.ndarray,
    scale: float,
) -> np.ndarray:
    """Per-unit-charge outgoing amplitude rows: ``p2w = q @ p2w_matrix``."""
    u = np.atleast_2d(rel) @ frame(direction).T
    phase = np.exp(
        np.outer(u[:, 2], quad.t_f)
        - 1j * (np.outer(u[:, 0], quad.lam_f * quad.cosa) + np.outer(u[:, 1], quad.lam_f * quad.sina))
    )
    return phase * (quad.w_f / scale)


def p2w(
    quad: ExpoQuadrature,
    direction: str,
    rel: np.ndarray,
    q: np.ndarray,
    scale: float,
) -> np.ndarray:
    """Outgoing plane-wave amplitudes of sources at ``rel`` (box units)."""
    return np.asarray(q) @ p2w_matrix(quad, direction, rel, scale)


def w2t(
    quad: ExpoQuadrature,
    direction: str,
    amps: np.ndarray,
    rel: np.ndarray,
) -> np.ndarray:
    """Evaluate incoming amplitudes at target points ``rel`` (box units)."""
    u = np.atleast_2d(rel) @ frame(direction).T
    phase = np.exp(
        -np.outer(u[:, 2], quad.t_f)
        + 1j * (np.outer(u[:, 0], quad.lam_f * quad.cosa) + np.outer(u[:, 1], quad.lam_f * quad.sina))
    )
    return (phase @ amps).real


def i2i_factor(quad: ExpoQuadrature, direction: str, delta: np.ndarray) -> np.ndarray:
    """Diagonal translation factors for a center offset ``delta`` (box units)."""
    u = frame(direction) @ np.asarray(delta, dtype=float)
    return np.exp(
        -quad.t_f * u[2] + 1j * quad.lam_f * (u[0] * quad.cosa + u[1] * quad.sina)
    )
