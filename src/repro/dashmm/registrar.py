"""The implicit DAG: expansion LCOs, out-edge processing, coalescing.

This module realizes Section IV and Fig. 2 of the paper.  Every DAG
node with inputs becomes a user-defined *expansion LCO* storing both
the expansion data and the out-edge list.  During execution the LCO
continuously reduces arriving inputs into the stored expansion; when
the last input arrives it triggers and its single registered
continuation processes the out-edge list:

* *local* edges (target on the same locality) are transformed
  sequentially and set into their target LCOs, which may trigger
  further asynchronous evaluation;
* *remote* edges are coalesced: one active-message parcel per
  destination locality carries the expansion data and the relevant
  edges, which are then evaluated at the destination as normal
  (``coalesce=False`` sends one parcel per edge instead - the ablation
  of the paper's design choice).

Source (S) nodes have no inputs; an initial task per source leaf
processes their out-edges (S->M, S->T, S->L) at time zero.  Execution
modes:

* ``numeric`` - edge transforms really compute (fitted operators,
  kernel evaluations); the result is numerically identical to the
  synchronous FMM up to summation order.
* ``phantom`` - transforms are skipped, only costs/messages are
  simulated; used for paper-scale scaling studies.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.dashmm.dag import DAG, DagNode
from repro.hpx.lco import LCO
from repro.hpx.parcel import Parcel
from repro.hpx.runtime import Runtime
from repro.hpx.scheduler import HIGH, LOW, Task
from repro.kernels.fitops import OperatorFactory
from repro.sim.costmodel import CostModel, SizeModel

#: With the binary priority extension on (Section VI), the expansion
#: pipeline - everything that unlocks downstream dataflow - outranks the
#: abundant leaf-output work (S->T, M->T, L->T), which any idle core can
#: do at any time.  The paper frames this as "early execution of the
#: most critical work up the source tree ... overlapped with other less
#: critical work"; simulation shows the whole critical chain (upward
#: plus bridge plus L->L) must be promoted for the starved region to
#: disappear.
CRITICAL_OPS = ("S2M", "M2M", "M2I", "I2I", "I2L", "M2L", "L2L", "S2L")
FILLER_OPS = ("S2T", "M2T", "L2T")


class ExpansionLCO(LCO):
    """User-defined LCO: expansion data + DAG out-edge list (Fig. 2)."""

    def __init__(self, runtime, locality: int, node: DagNode, n_inputs: int, registrar):
        super().__init__(runtime, locality)
        self.node = node
        self.remaining = n_inputs
        self.registrar = registrar
        self.data = None

    def _reduce(self, value) -> None:
        self.remaining -= 1
        if value is None:
            return
        if self.node.kind == "It":
            # per-direction plane-wave accumulators
            direction, amps = value
            if self.data is None:
                self.data = {}
            if direction in self.data:
                self.data[direction] = self.data[direction] + amps
            else:
                self.data[direction] = amps
        else:
            self.data = value if self.data is None else self.data + value

    def _predicate(self) -> bool:
        return self.remaining <= 0


class Registrar:
    """Builds and runs the implicit LCO network for one evaluation."""

    def __init__(
        self,
        runtime: Runtime,
        dag: DAG,
        dual,
        kernel,
        factory: OperatorFactory | None,
        mode: str = "numeric",
        cost_model: CostModel | None = None,
        size_model: SizeModel | None = None,
        coalesce: bool = True,
        sequential_edges: bool = True,
    ):
        if mode not in ("numeric", "phantom"):
            raise ValueError("mode must be 'numeric' or 'phantom'")
        if mode == "numeric" and factory is None:
            raise ValueError("numeric mode needs an operator factory")
        self.runtime = runtime
        self.dag = dag
        self.dual = dual
        self.kernel = kernel
        self.factory = factory
        self.mode = mode
        self.cost = cost_model or CostModel()
        self.sizes = size_model or SizeModel()
        self.coalesce = coalesce
        #: Section VI: "the sequential execution of out edges maximizes
        #: cache locality ... but sacrifices parallelism".  False spawns
        #: one task per local edge instead (the road not taken).
        self.sequential_edges = sequential_edges
        self.lcos: dict[int, ExpansionLCO] = {}
        self.result = np.zeros(dual.target.n_points) if dual is not None else None
        self._centers = {
            "source": np.array([dual.domain.box_center(b.key) for b in dual.source.boxes]),
            "target": np.array([dual.domain.box_center(b.key) for b in dual.target.boxes]),
        }
        runtime.register_action("dashmm_edges", self._edges_action)

    # -- allocation (Fig. 2, t0/t1) ------------------------------------------------
    def allocate(self) -> None:
        """Allocate an LCO per DAG node with inputs; register continuations."""
        for node in self.dag.nodes:
            n_in = self.dag.in_degree[node.id]
            if node.kind == "S" or n_in == 0:
                continue
            lco = ExpansionLCO(self.runtime, node.locality, node, n_in, self)
            self.lcos[node.id] = lco
            pr = self._node_priority(node)
            lco.register_continuation(
                Task(
                    fn=self._continuation,
                    args=(node.id,),
                    op_class=f"edges:{node.kind}",
                    priority=pr,
                )
            )

    def initial_tasks(self) -> int:
        """Enqueue the time-zero tasks (out-edges of every S node)."""
        count = 0
        priorities = self.runtime.config.priorities
        for node in self.dag.nodes:
            if node.kind != "S":
                continue
            edges = self.dag.out_edges[node.id]
            if not edges:
                continue
            if priorities:
                # split critical-path work (S->M, S->L) from the near
                # field so the scheduler favours the expansion pipeline
                crit = [e for e in edges if e.op in CRITICAL_OPS]
                rest = [e for e in edges if e.op not in CRITICAL_OPS]
                groups = [(crit, HIGH), (rest, LOW)]
            else:
                groups = [(edges, LOW)]
            for group, pr in groups:
                if not group:
                    continue
                self.runtime.enqueue_task(
                    Task(
                        fn=self._process_edges,
                        args=(node.id, group),
                        op_class="edges:S",
                        priority=pr,
                    ),
                    node.locality,
                )
                count += 1
        return count

    def _node_priority(self, node: DagNode) -> int:
        """Expansion nodes drive the critical chain; leaf data does not."""
        if not self.runtime.config.priorities:
            return LOW
        return HIGH if node.kind in ("M", "Is", "It", "L") else LOW

    # -- execution ---------------------------------------------------------------------
    def _continuation(self, ctx, node_id: int) -> None:
        node = self.dag.nodes[node_id]
        edges = self.dag.out_edges[node_id]
        if self.runtime.config.priorities and node.kind in ("M", "Is", "It", "L"):
            # run the critical chain inline at high priority, defer the
            # leaf-output edges (M->T, L->T) to a low-priority sibling
            crit = [e for e in edges if e.op in CRITICAL_OPS]
            rest = [e for e in edges if e.op not in CRITICAL_OPS]
            self._process_edges(ctx, node_id, crit)
            if rest:
                ctx.spawn(
                    Task(
                        fn=self._process_edges,
                        args=(node_id, rest),
                        op_class=f"edges:{node.kind}",
                        priority=LOW,
                    )
                )
        else:
            self._process_edges(ctx, node_id, edges)
        if node.kind == "T" and self.mode == "numeric":
            box = self.dual.target.boxes[node.box_index]
            lco = self.lcos[node_id]
            if lco.data is not None:
                self.result[box.start : box.stop] = lco.data

    def _process_edges(self, ctx, node_id: int, edges) -> None:
        node = self.dag.nodes[node_id]
        all_edges = self.dag.out_edges[node_id]
        # positions within the node's full out-edge list travel in parcels
        pos = {id(e): i for i, e in enumerate(all_edges)}
        by_loc: dict[int, list] = defaultdict(list)
        for e in edges:
            by_loc[self.dag.nodes[e.dst].locality].append(e)
        here = ctx.locality
        for loc, group in sorted(by_loc.items()):
            if loc == here:
                if self.sequential_edges:
                    for e in group:
                        self._run_edge(ctx, e)
                else:
                    for e in group:
                        ctx.spawn(
                            Task(
                                fn=self._run_edge_task,
                                args=(e,),
                                op_class=e.op,
                                priority=self._edge_priority([e]),
                            )
                        )
            elif self.coalesce:
                data_bytes = self.sizes.payload_bytes(
                    group[0].op, n_src_points=node.n_points
                )
                nbytes = self.sizes.parcel_bytes(data_bytes, len(group))
                ctx.charge("_runtime", self.cost.remote_handling_cost(len(group), nbytes))
                ctx.send_parcel(
                    Parcel(
                        action="dashmm_edges",
                        target=loc,
                        args=(node_id, tuple(pos[id(e)] for e in group)),
                        size_bytes=nbytes,
                        op_class="parcel:edges",
                        priority=self._edge_priority(group),
                    )
                )
            else:
                for e in group:
                    data_bytes = self.sizes.payload_bytes(e.op, n_src_points=node.n_points)
                    nb1 = self.sizes.parcel_bytes(data_bytes, 1)
                    ctx.charge("_runtime", self.cost.remote_handling_cost(1, nb1))
                    ctx.send_parcel(
                        Parcel(
                            action="dashmm_edges",
                            target=loc,
                            args=(node_id, (pos[id(e)],)),
                            size_bytes=nb1,
                            op_class="parcel:edges",
                            priority=self._edge_priority([e]),
                        )
                    )

    def _edge_priority(self, edges) -> int:
        if not self.runtime.config.priorities:
            return LOW
        return HIGH if any(e.op in CRITICAL_OPS for e in edges) else LOW

    def _run_edge_task(self, ctx, e) -> None:
        self._run_edge(ctx, e)

    def _edges_action(self, ctx, target, node_id: int, edge_indices) -> None:
        """Parcel action: evaluate coalesced remote edges at the destination."""
        edges = self.dag.out_edges[node_id]
        for i in edge_indices:
            self._run_edge(ctx, edges[i])

    # -- edge transforms ------------------------------------------------------------------
    def _run_edge(self, ctx, e) -> None:
        src_node = self.dag.nodes[e.src]
        dst_node = self.dag.nodes[e.dst]
        op = e.op
        value = None
        if op == "S2T":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_src=sbox.count, n_tgt=tbox.count))
            if self.mode == "numeric":
                value = self.kernel.direct(
                    self.dual.target.points[tbox.start : tbox.stop],
                    self.dual.source.points[sbox.start : sbox.stop],
                    self.dual.source.weights[sbox.start : sbox.stop],
                )
        elif op == "S2M":
            sbox = self.dual.source.boxes[src_node.box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_src=sbox.count))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(sbox.level)
                rel = (
                    self.dual.source.points[sbox.start : sbox.stop]
                    - self._centers["source"][sbox.index]
                ) / h
                value = self.kernel.p2m(
                    rel, self.dual.source.weights[sbox.start : sbox.stop], h
                )
        elif op == "S2L":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_src=sbox.count))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(tbox.level)
                rel = (
                    self.dual.source.points[sbox.start : sbox.stop]
                    - self._centers["target"][tbox.index]
                ) / h
                value = self.kernel.p2l(
                    rel, self.dual.source.weights[sbox.start : sbox.stop], h
                )
        elif op == "M2M":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                value = self.factory.m2m(e.aux, h) @ self.lcos[e.src].data
        elif op == "M2L":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                value = self.factory.m2l(e.aux, h) @ self.lcos[e.src].data
        elif op == "M2I":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                dirs = {
                    ee.aux[0] for ee in self.dag.out_edges[e.dst] if ee.op == "I2I"
                }
                M = self.lcos[e.src].data
                value = {d: self.factory.m2i(d, h) @ M for d in dirs}
        elif op == "I2I":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                d, delta = e.aux
                h = self.dual.domain.box_size(src_node.level)
                W = self.lcos[e.src].data[d]
                value = (d, W * self.factory.i2i(d, delta, h))
        elif op == "I2L":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                acc = None
                data = self.lcos[e.src].data or {}
                for d, V in data.items():
                    c = self.factory.i2l(d, h) @ V
                    acc = c if acc is None else acc + c
                value = (
                    acc
                    if acc is not None
                    else np.zeros(self.kernel.size, dtype=complex)
                )
        elif op == "L2L":
            ctx.charge(op, self.cost.edge_cost(op))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                value = self.factory.l2l(e.aux, h) @ self.lcos[e.src].data
        elif op == "L2T":
            tbox = self.dual.target.boxes[dst_node.box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_tgt=tbox.count))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(src_node.level)
                rel = (
                    self.dual.target.points[tbox.start : tbox.stop]
                    - self._centers["target"][src_node.box_index]
                ) / h
                value = self.kernel.l2t(self.lcos[e.src].data, rel, h)
        elif op == "M2T":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_tgt=tbox.count))
            if self.mode == "numeric":
                h = self.dual.domain.box_size(sbox.level)
                rel = (
                    self.dual.target.points[tbox.start : tbox.stop]
                    - self._centers["source"][sbox.index]
                ) / h
                value = self.kernel.m2t(self.lcos[e.src].data, rel, h)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown edge op {op}")
        ctx.lco_set(self.lcos[e.dst], value)


