"""The implicit DAG: expansion LCOs, out-edge processing, coalescing.

This module realizes Section IV and Fig. 2 of the paper.  Every DAG
node with inputs becomes a user-defined *expansion LCO* storing both
the expansion data and the out-edge list.  During execution the LCO
continuously reduces arriving inputs into the stored expansion; when
the last input arrives it triggers and its single registered
continuation processes the out-edge list:

* *local* edges (target on the same locality) are transformed
  sequentially and set into their target LCOs, which may trigger
  further asynchronous evaluation;
* *remote* edges are coalesced: one active-message parcel per
  destination locality carries the expansion data and the relevant
  edges, which are then evaluated at the destination as normal
  (``coalesce=False`` sends one parcel per edge instead - the ablation
  of the paper's design choice).

Source (S) nodes have no inputs; an initial task per source leaf
processes their out-edges (S->M, S->T, S->L) at time zero.  Execution
modes:

* ``numeric`` - edge transforms really compute (fitted operators,
  kernel evaluations); the result is numerically identical to the
  synchronous FMM up to summation order.
* ``phantom`` - transforms are skipped, only costs/messages are
  simulated; used for paper-scale scaling studies.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.dashmm.dag import DAG, DagNode
from repro.hpx.lco import LCO
from repro.hpx.parcel import Parcel
from repro.hpx.runtime import Runtime
from repro.hpx.scheduler import HIGH, LOW, Task
from repro.kernels.base import Kernel
from repro.kernels.fitops import OperatorFactory
from repro.sim.costmodel import CostModel, SizeModel

#: With the binary priority extension on (Section VI), the expansion
#: pipeline - everything that unlocks downstream dataflow - outranks the
#: abundant leaf-output work (S->T, M->T, L->T), which any idle core can
#: do at any time.  The paper frames this as "early execution of the
#: most critical work up the source tree ... overlapped with other less
#: critical work"; simulation shows the whole critical chain (upward
#: plus bridge plus L->L) must be promoted for the starved region to
#: disappear.
CRITICAL_OPS = ("S2M", "M2M", "M2I", "I2I", "I2L", "M2L", "L2L", "S2L")
FILLER_OPS = ("S2T", "M2T", "L2T")


class _Deferred:
    """Placeholder value for a leaf-output edge (S->T, M->T, L->T).

    The batched path sets these into target LCOs instead of computed
    potentials; the numeric work happens once per (op, level) group in
    :meth:`Registrar.flush_deferred` after the runtime drains.  Trigger
    counting, effect ordering and the virtual clock are untouched
    because none of them depend on the payload.
    """

    __slots__ = ("edge",)

    def __init__(self, edge):
        self.edge = edge


class _LazyAmps:
    """Placeholder for an M->I value (outgoing plane-wave amplitudes).

    All pending M->I edges are materialized together - one GEMM per
    (direction set, level) against the row-stacked operator - the first
    time any intermediate expansion is read, so the 7 MB operator stack
    streams through memory once per wave instead of once per edge.
    """

    __slots__ = ("edge",)

    def __init__(self, edge):
        self.edge = edge


class _LazyWave:
    """Placeholder for an I->I value (translated plane-wave amplitudes);
    materialized in bulk like :class:`_LazyAmps`."""

    __slots__ = ("edge",)

    def __init__(self, edge):
        self.edge = edge


class _LazyLocal:
    """Placeholder for an I->L value (local expansion contribution);
    materialized in bulk like :class:`_LazyAmps`."""

    __slots__ = ("edge",)

    def __init__(self, edge):
        self.edge = edge


class _LazyDown:
    """Placeholder for an L->L value (parent-to-child local shift);
    materialized level by level once the upward/bridge flushes ran."""

    __slots__ = ("edge",)

    def __init__(self, edge):
        self.edge = edge


#: marker types ignored by the reducers (values tracked registrar-side)
_LAZY = (_LazyAmps, _LazyWave, _LazyLocal, _LazyDown)


def _marker_order(m) -> tuple:
    """Canonical sort key for a lazy marker.

    Markers are appended in task-execution order, which varies with
    network timing (and under fault injection, with the fault
    schedule); every flush sorts them first so grouping and
    accumulation order - hence the floating-point result - depend only
    on the DAG.
    """
    e = m.edge
    return (e.src, e.dst, repr(e.aux))

#: canonical direction order for the padded full-width operator stacks
_FULL_DIRS = tuple(sorted(("+z", "-z", "+x", "-x", "+y", "-y")))
_DIR_IDX = {d: i for i, d in enumerate(_FULL_DIRS)}


class ExpansionLCO(LCO):
    """User-defined LCO: expansion data + DAG out-edge list (Fig. 2).

    Contributions are buffered as they arrive and folded *at trigger
    time in canonical dedup-key order* (the key is the edge's position
    in the DAG, see :meth:`Registrar._edge_key`).  Arrival order over a
    network is timing- and fault-dependent; folding in key order makes
    the floating-point reduction - and therefore the evaluation result
    - bit-identical across schedules, which is what lets a faulty run
    under the reliable transport reproduce the fault-free potentials
    exactly.  Contributions without a key fold in arrival order, after
    all keyed ones.
    """

    def __init__(self, runtime, locality: int, node: DagNode, n_inputs: int, registrar):
        super().__init__(runtime, locality)
        self.node = node
        self.remaining = n_inputs
        self.registrar = registrar
        self.data = None
        #: deferred leaf-output edges, in canonical fold order (T nodes)
        self.pending = None
        self._inbox: list = []
        self._unkeyed = 0

    @property
    def hazard_subject(self) -> str:
        """IR-derived identity for hazard reports: the DAG node, not an
        opaque GAS address, so a report names the offending graph
        element directly."""
        n = self.node
        return f"{n.kind}[{n.tree} box {n.box_index} L{n.level}]@{self.addr!r}"

    def _fold(self, value, key) -> None:
        self.remaining -= 1
        if value is None:
            return
        if key is None:
            # sort unkeyed contributions after all DAG edges (node ids
            # are >= 0), in arrival order
            key = (1 << 60, self._unkeyed)
            self._unkeyed += 1
        self._inbox.append((key, value))

    def _finalize(self) -> None:
        inbox = self._inbox
        inbox.sort(key=lambda kv: kv[0])
        reduce = self._reduce
        for _, value in inbox:
            reduce(value)
        self._inbox = []

    def _reduce(self, value) -> None:
        if type(value) is _Deferred:
            if self.pending is None:
                self.pending = []
            self.pending.append(value.edge)
        elif type(value) in _LAZY:
            # tracked registrar-side; materialized in bulk on first read
            pass
        elif self.node.kind == "It":
            # per-direction plane-wave accumulators
            direction, amps = value
            if self.data is None:
                self.data = {}
            if direction in self.data:
                self.data[direction] = self.data[direction] + amps
            else:
                self.data[direction] = amps
        else:
            self.data = value if self.data is None else self.data + value

    def _predicate(self) -> bool:
        return self.remaining <= 0


class Registrar:
    """Builds and runs the implicit LCO network for one evaluation."""

    def __init__(
        self,
        runtime: Runtime,
        dag: DAG,
        dual,
        kernel,
        factory: OperatorFactory | None,
        mode: str = "numeric",
        cost_model: CostModel | None = None,
        size_model: SizeModel | None = None,
        coalesce: bool = True,
        sequential_edges: bool = True,
        batch_edges: bool = True,
        centers: dict | None = None,
    ):
        if mode not in ("numeric", "phantom"):
            raise ValueError("mode must be 'numeric' or 'phantom'")
        if mode == "numeric" and factory is None:
            raise ValueError("numeric mode needs an operator factory")
        self.runtime = runtime
        self.dag = dag
        self.dual = dual
        self.kernel = kernel
        self.factory = factory
        self.mode = mode
        self.cost = cost_model or CostModel()
        self.sizes = size_model or SizeModel()
        self.coalesce = coalesce
        #: Section VI: "the sequential execution of out edges maximizes
        #: cache locality ... but sacrifices parallelism".  False spawns
        #: one task per local edge instead (the road not taken).
        self.sequential_edges = sequential_edges
        #: Batched numeric fast path: a node's local out-edges that
        #: share an operator (all S2T/M2T/L2T leaf outputs, S2L edges at
        #: one level) are executed as a single stacked NumPy operation
        #: instead of one small matvec per edge.  Virtual-clock charges
        #: and effect ordering are identical either way; only wall-clock
        #: time changes.  False restores per-edge execution (ablation).
        self.batch_edges = batch_edges
        #: node id -> sorted receiving directions, filled lazily by the
        #: batched M->I fast path (the set is static per DAG)
        self._m2i_dirs: dict[int, tuple] = {}
        #: leaf-output edges whose numeric value was deferred; evaluated
        #: in one stacked pass per (op, level) by :meth:`flush_deferred`
        self._deferred: list = []
        #: source box index -> multipole, all leaves fitted in one
        #: stacked pass per level (batched path, built on first S->M)
        self._s2m: dict[int, np.ndarray] | None = None
        #: restrict _leaf_multipoles to these M-node localities (set by
        #: the parallel backend to the worker's own rank); None = all
        self._mp_localities: "set[int] | None" = None
        #: M->I / I->I / I->L / L->L edges whose value is pending bulk
        #: materialization (the exponential bridge and the downward
        #: shift are lazy end to end)
        self._lazy_m2i: list = []
        self._lazy_i2i: list = []
        self._lazy_i2l: list = []
        self._lazy_l2l: list = []
        self.lcos: dict[int, ExpansionLCO] = {}
        #: node id -> {id(edge): position in its out-edge list}; edge
        #: positions are both the parcel wire format and the per-LCO
        #: dedup keys, so retried contributions fold exactly once
        self._pos: dict[int, dict] = {}
        self.result = np.zeros(dual.target.n_points) if dual is not None else None
        #: box centers are a pure function of the box keys and the
        #: domain - i.e. of the tree *shape* - so a persistent session
        #: hands the dict of a previous same-shape evaluation back in
        #: instead of recomputing the Python loop per submit
        self._centers = centers if centers is not None else {
            "source": np.array([dual.domain.box_center(b.key) for b in dual.source.boxes]),
            "target": np.array([dual.domain.box_center(b.key) for b in dual.target.boxes]),
        }
        #: optional cache of geometry-derived operator matrices (p2m
        #: basis rows, i2i stacks, s2t greens chunks, m2t/l2t evaluation
        #: matrices), owned by the persistent session.  None (the
        #: default) disables caching entirely; when set, the flush paths
        #: populate it and reuse entries on later warm runs.  Entries
        #: are keyed so a hit reproduces the cold stacked operands bit
        #: for bit; the session is responsible for invalidation when
        #: points or shape move.
        self.geom_cache: dict | None = None
        #: flush-plan recording (persistent sessions): the first batched
        #: m2i/i2i flush records its marker group compositions and a
        #: dense row index into the stacked amplitude matrix, so warm
        #: re-runs skip the marker sort/grouping and gather plane-wave
        #: rows with one fancy index instead of a 50k-item Python loop.
        #: Plans bake node localities in; anything that reassigns nodes
        #: under a live registrar must call :meth:`invalidate_plans`.
        self.plan_caching = False
        self._m2i_plan: tuple | None = None
        self._i2i_plan: tuple | None = None
        self._is_mat: np.ndarray | None = None
        # hot references resolved once (touched per edge in the runs)
        self._nodes = dag.nodes
        self._sboxes = dual.source.boxes if dual is not None else None
        self._tboxes = dual.target.boxes if dual is not None else None
        # scheduling-policy wiring: a prioritized policy splits the
        # critical chain from leaf outputs (binary HIGH/LOW or graded
        # levels); a graded one additionally stamps offline
        # critical-path levels onto continuations and parcels
        pol = runtime.scheduler.policy
        self.policy = pol
        self._split = pol.prioritized
        self._node_levels: list[int] | None = None
        self._near_ops: frozenset = frozenset()
        self._filler_level = LOW
        if pol.graded:
            # lazy import: repro.hpx must stay importable without the
            # analysis layer, and analysis imports repro.dashmm.dag
            from repro.analysis.critical_path import node_priorities

            # the last level is reserved for the near-field stream the
            # policy interposes; graded levels cover the rest
            self._near_ops = frozenset(getattr(pol, "near_ops", ("S2T",)))
            self._filler_level = pol.n_levels - 1
            stamp = getattr(dag, "priorities", None)
            if (
                stamp is not None
                and stamp.get("levels") == pol.n_levels - 1
                and stamp.get("cost") is self.cost
            ):
                # the declarative builder already graded this DAG
                # against the same cost model and resolution
                # (DagBuilder.stamp_priorities); reuse the stamp
                self._node_levels = stamp["values"]
            else:
                self._node_levels = node_priorities(
                    dag, cost_model=self.cost, levels=pol.n_levels - 1
                )
        runtime.register_action("dashmm_edges", self._edges_action)
        # per-evaluation mutable state outside the GAS (lazy/deferred
        # accumulators, the result vector, recorded flush plans) rides
        # checkpoints through the participant protocol
        participants = getattr(runtime, "checkpoint_participants", None)
        if participants is not None:
            participants.append(self)

    # -- expansion-data access ----------------------------------------------------
    def _data_of(self, node_id: int):
        """Expansion data of a node, wherever it lives.

        In the simulator every LCO is in-process, so this is a plain
        lookup.  The real-parallel backend overrides it: data of a
        remote node comes from the mirror filled by arriving parcels
        and staged flush exchanges (:mod:`repro.dashmm.parallel`).
        """
        return self.lcos[node_id].data

    # -- allocation (Fig. 2, t0/t1) ------------------------------------------------
    def allocate(self) -> None:
        """Allocate an LCO per DAG node with inputs; register continuations."""
        for node in self.dag.nodes:
            n_in = self.dag.in_degree[node.id]
            if node.kind == "S" or n_in == 0:
                continue
            lco = ExpansionLCO(self.runtime, node.locality, node, n_in, self)
            self.lcos[node.id] = lco
            pr = self._node_priority(node)
            lco.register_continuation(
                Task(
                    fn=self._continuation,
                    args=(node.id,),
                    op_class=f"edges:{node.kind}",
                    priority=pr,
                )
            )

    def initial_tasks(self) -> int:
        """Enqueue the time-zero tasks (out-edges of every S node)."""
        count = 0
        for node in self.dag.nodes:
            if node.kind != "S":
                continue
            edges = self.dag.out_edges[node.id]
            if not edges:
                continue
            if self._split:
                # split critical-path work (S->M, S->L) from the near
                # field so the scheduler favours the expansion pipeline
                crit = [e for e in edges if e.op in CRITICAL_OPS]
                rest = [e for e in edges if e.op not in CRITICAL_OPS]
                groups = [
                    (g, self._edge_priority(g)) for g in (crit, rest) if g
                ]
            else:
                groups = [(edges, LOW)]
            for group, pr in groups:
                if not group:
                    continue
                self.runtime.enqueue_task(
                    Task(
                        fn=self._process_edges,
                        args=(node.id, group),
                        op_class="edges:S",
                        priority=pr,
                    ),
                    node.locality,
                )
                count += 1
        return count

    # -- persistent-session support -------------------------------------------------
    def reset(self, zero_result: bool = True) -> None:
        """Rewind every LCO and all per-evaluation state for a warm re-run.

        After ``reset`` the registrar is observationally equivalent to a
        freshly allocated one over the same DAG: every LCO has its full
        input count outstanding, an empty inbox, no data, and its
        continuation re-registered; all lazy/deferred accumulators are
        empty.  Static shape-derived state - the LCO objects themselves
        (and their GAS addresses), ``_pos`` dedup positions, ``_centers``
        and ``_m2i_dirs`` - survives, which is the point: a same-shape
        resubmission skips allocation entirely.
        """
        in_degree = self.dag.in_degree
        for nid, lco in self.lcos.items():
            lco.remaining = in_degree[nid]
            # a re-run of the distribution policy may have moved the
            # node; keep the LCO's home in step so trigger tasks enqueue
            # where a cold allocation would put them
            lco.locality = lco.node.locality
            lco.triggered = False
            lco.data = None
            lco.pending = None
            lco._inbox = []
            lco._unkeyed = 0
            lco._seen_keys = None
            lco._continuations.clear()
            node = lco.node
            lco.register_continuation(
                Task(
                    fn=self._continuation,
                    args=(node.id,),
                    op_class=f"edges:{node.kind}",
                    priority=self._node_priority(node),
                )
            )
        self._deferred = []
        self._s2m = None
        self._lazy_m2i = []
        self._lazy_i2i = []
        self._lazy_i2l = []
        self._lazy_l2l = []
        if zero_result and self.result is not None:
            self.result[:] = 0.0

    def checkpoint_state(self) -> dict:
        """Mutable per-evaluation state for a runtime checkpoint.

        The registrar's LCOs live in the GAS and are snapshotted there
        (:mod:`repro.hpx.checkpoint`); this covers everything else that
        changes while an evaluation runs: the lazy marker lists and
        deferred leaf outputs, the stacked-multipole cache, the result
        vector, and the recorded flush plans (which are
        schedule-dependent under fuzzing, so a restore must rewind them
        with everything else).
        """
        return {
            "deferred": list(self._deferred),
            "s2m": None if self._s2m is None else dict(self._s2m),
            "lazy_m2i": list(self._lazy_m2i),
            "lazy_i2i": list(self._lazy_i2i),
            "lazy_i2l": list(self._lazy_i2l),
            "lazy_l2l": list(self._lazy_l2l),
            "m2i_dirs": dict(self._m2i_dirs),
            "m2i_plan": self._m2i_plan,
            "i2i_plan": self._i2i_plan,
            "is_mat": self._is_mat,
            "result": None if self.result is None else self.result.copy(),
        }

    def restore_state(self, state: dict) -> None:
        """Write a :meth:`checkpoint_state` snapshot back in place."""
        self._deferred = list(state["deferred"])
        self._s2m = None if state["s2m"] is None else dict(state["s2m"])
        self._lazy_m2i = list(state["lazy_m2i"])
        self._lazy_i2i = list(state["lazy_i2i"])
        self._lazy_i2l = list(state["lazy_i2l"])
        self._lazy_l2l = list(state["lazy_l2l"])
        self._m2i_dirs = dict(state["m2i_dirs"])
        self._m2i_plan = state["m2i_plan"]
        self._i2i_plan = state["i2i_plan"]
        self._is_mat = state["is_mat"]
        if state["result"] is not None:
            # in place: closures and the evaluator hold this array
            self.result[:] = state["result"]

    def invalidate_plans(self) -> None:
        """Drop recorded flush plans (group compositions + gather rows).

        Required whenever node localities change under a live registrar:
        the plans bake the (direction, level, locality) group keys - and
        hence the stacked operand compositions - of the run that
        recorded them.  The next flush re-records from scratch.
        """
        self._m2i_plan = None
        self._i2i_plan = None
        self._is_mat = None

    def _record_plans(self) -> bool:
        """Flush plans are only sound when every flush sees the full
        marker set, i.e. in sequential batched mode where markers
        accumulate until one global flush cascade."""
        return self.plan_caching and self.sequential_edges and self.batch_edges

    def rebind(self, dual) -> None:
        """Point the registrar at a replacement dual tree of the *same shape*.

        A spliced tree keeps every box key, id and leaf flag but carries
        re-sorted points and updated start/stop/count tables; the DAG and
        the LCO network built over the old tree stay structurally valid.
        Box centers depend only on keys and domain, so ``_centers`` is
        untouched.  Callers must refresh the DAG's ``n_points`` (see
        :func:`repro.dashmm.dag.refresh_n_points`) and re-run the
        distribution policy themselves if counts shifted.
        """
        self.dual = dual
        self._sboxes = dual.source.boxes
        self._tboxes = dual.target.boxes

    def _node_priority(self, node: DagNode) -> int:
        """Expansion nodes drive the critical chain; leaf data does not.

        Graded policies use the node's offline critical-path level; the
        binary policy promotes every expansion node to HIGH.
        """
        if self._node_levels is not None:
            return self._node_levels[node.id]
        if not self._split:
            return LOW
        return HIGH if node.kind in ("M", "Is", "It", "L") else LOW

    # -- execution ---------------------------------------------------------------------
    def _continuation(self, ctx, node_id: int) -> None:
        node = self.dag.nodes[node_id]
        edges = self.dag.out_edges[node_id]
        if self._split and node.kind in ("M", "Is", "It", "L"):
            # run the critical chain inline at the node's priority,
            # defer the leaf-output edges (M->T, L->T) to a
            # lower-priority sibling
            crit = [e for e in edges if e.op in CRITICAL_OPS]
            rest = [e for e in edges if e.op not in CRITICAL_OPS]
            self._process_edges(ctx, node_id, crit)
            if rest:
                ctx.spawn(
                    Task(
                        fn=self._process_edges,
                        args=(node_id, rest),
                        op_class=f"edges:{node.kind}",
                        priority=self._edge_priority(rest),
                    )
                )
        else:
            self._process_edges(ctx, node_id, edges)
        if node.kind == "T" and self.mode == "numeric":
            box = self.dual.target.boxes[node.box_index]
            lco = self.lcos[node_id]
            if lco.data is not None:
                self.result[box.start : box.stop] = lco.data
            if lco.pending:
                self._deferred.extend(lco.pending)
                lco.pending = None

    def _pos_for(self, node_id: int) -> dict:
        d = self._pos.get(node_id)
        if d is None:
            d = self._pos[node_id] = {
                id(e): i for i, e in enumerate(self.dag.out_edges[node_id])
            }
        return d

    def _edge_key(self, e) -> tuple:
        """Canonical identity of one edge: (source node, out-list position)."""
        return (e.src, self._pos_for(e.src)[id(e)])

    def _process_edges(self, ctx, node_id: int, edges) -> None:
        node = self.dag.nodes[node_id]
        all_edges = self.dag.out_edges[node_id]
        # positions within the node's full out-edge list travel in
        # parcels; built lazily since purely local nodes never need it
        pos: dict[int, int] | None = None
        by_loc: dict[int, list] = defaultdict(list)
        nodes = self._nodes
        for e in edges:
            by_loc[nodes[e.dst].locality].append(e)
        here = ctx.locality
        # destination order is schedule freedom: parcels to different
        # localities are unordered, so the fuzzer permutes the canonical
        # sorted order (edges *within* one parcel keep their dedup-key
        # fold order - reordering destinations must not change results)
        locs = sorted(by_loc)
        drv = self.runtime.scheduler.schedule_driver
        if drv is not None and len(locs) > 1:
            locs = drv.permute("coalesce", locs)
        for loc in locs:
            group = by_loc[loc]
            if loc == here:
                if self.sequential_edges:
                    self._run_edges(ctx, group)
                else:
                    for e in group:
                        ctx.spawn(
                            Task(
                                fn=self._run_edge_task,
                                args=(e,),
                                op_class=e.op,
                                priority=self._edge_priority([e]),
                            )
                        )
            elif self.coalesce:
                if pos is None:
                    pos = self._pos_for(node_id)
                data_bytes = self.sizes.payload_bytes(
                    group[0].op, n_src_points=node.n_points
                )
                nbytes = self.sizes.parcel_bytes(data_bytes, len(group))
                ctx.charge("_runtime", self.cost.remote_handling_cost(len(group), nbytes))
                ctx.send_parcel(
                    Parcel(
                        action="dashmm_edges",
                        target=loc,
                        args=(node_id, tuple(pos[id(e)] for e in group)),
                        size_bytes=nbytes,
                        op_class="parcel:edges",
                        priority=self._edge_priority(group),
                    )
                )
            else:
                if pos is None:
                    pos = self._pos_for(node_id)
                for e in group:
                    data_bytes = self.sizes.payload_bytes(e.op, n_src_points=node.n_points)
                    nb1 = self.sizes.parcel_bytes(data_bytes, 1)
                    ctx.charge("_runtime", self.cost.remote_handling_cost(1, nb1))
                    ctx.send_parcel(
                        Parcel(
                            action="dashmm_edges",
                            target=loc,
                            args=(node_id, (pos[id(e)],)),
                            size_bytes=nb1,
                            op_class="parcel:edges",
                            priority=self._edge_priority([e]),
                        )
                    )

    def _edge_priority(self, edges) -> int:
        """Priority stamp for a task/parcel carrying this edge group.

        Graded: the most critical destination level in the group, except
        pure near-field (P2P) groups, which land on the reserved filler
        level the policy interposes under far-field bursts.  Binary:
        HIGH when any edge is on the critical chain.
        """
        levels = self._node_levels
        if levels is not None:
            if all(e.op in self._near_ops for e in edges):
                return self._filler_level
            return min(levels[e.dst] for e in edges)
        if not self._split:
            return LOW
        return HIGH if any(e.op in CRITICAL_OPS for e in edges) else LOW

    def _run_edge_task(self, ctx, e) -> None:
        if self._lazy_m2i or self._lazy_i2l:
            self._flush_lazy(e.src)
        self._run_edge(ctx, e)

    def _edges_action(self, ctx, target, node_id: int, edge_indices) -> None:
        """Parcel action: evaluate coalesced remote edges at the destination."""
        edges = self.dag.out_edges[node_id]
        self._run_edges(ctx, [edges[i] for i in edge_indices])

    # -- edge transforms ------------------------------------------------------------------
    def _charge_edge(self, ctx, e) -> None:
        """Account the virtual-clock cost of one edge (both exec paths)."""
        op = e.op
        nodes = self._nodes
        if op == "S2T":
            sbox = self._sboxes[nodes[e.src].box_index]
            tbox = self._tboxes[nodes[e.dst].box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_src=sbox.count, n_tgt=tbox.count))
        elif op in ("S2M", "S2L"):
            sbox = self._sboxes[nodes[e.src].box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_src=sbox.count))
        elif op in ("L2T", "M2T"):
            tbox = self._tboxes[nodes[e.dst].box_index]
            ctx.charge(op, self.cost.edge_cost(op, n_tgt=tbox.count))
        elif op in ("M2M", "M2L", "M2I", "I2I", "I2L", "L2L"):
            ctx.charge(op, self.cost.edge_cost(op))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown edge op {op}")

    def _edge_value(self, e):
        """Numeric value of one edge (per-edge reference path)."""
        src_node = self.dag.nodes[e.src]
        dst_node = self.dag.nodes[e.dst]
        op = e.op
        if op == "S2T":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            return self.kernel.direct(
                self.dual.target.points[tbox.start : tbox.stop],
                self.dual.source.points[sbox.start : sbox.stop],
                self.dual.source.weights[sbox.start : sbox.stop],
            )
        if op == "S2M":
            sbox = self.dual.source.boxes[src_node.box_index]
            h = self.dual.domain.box_size(sbox.level)
            rel = (
                self.dual.source.points[sbox.start : sbox.stop]
                - self._centers["source"][sbox.index]
            ) / h
            return self.kernel.p2m(
                rel, self.dual.source.weights[sbox.start : sbox.stop], h
            )
        if op == "S2L":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            h = self.dual.domain.box_size(tbox.level)
            rel = (
                self.dual.source.points[sbox.start : sbox.stop]
                - self._centers["target"][tbox.index]
            ) / h
            return self.kernel.p2l(
                rel, self.dual.source.weights[sbox.start : sbox.stop], h
            )
        if op == "M2M":
            h = self.dual.domain.box_size(src_node.level)
            return self.factory.m2m(e.aux, h) @ self._data_of(e.src)
        if op == "M2L":
            h = self.dual.domain.box_size(src_node.level)
            return self.factory.m2l(e.aux, h) @ self._data_of(e.src)
        if op == "M2I":
            h = self.dual.domain.box_size(src_node.level)
            dirs = {ee.aux[0] for ee in self.dag.out_edges[e.dst] if ee.op == "I2I"}
            M = self._data_of(e.src)
            return {d: self.factory.m2i(d, h) @ M for d in dirs}
        if op == "I2I":
            d, delta = e.aux
            h = self.dual.domain.box_size(src_node.level)
            W = self._data_of(e.src)[d]
            return (d, W * self.factory.i2i(d, delta, h))
        if op == "I2L":
            h = self.dual.domain.box_size(src_node.level)
            acc = None
            data = self._data_of(e.src) or {}
            for d, V in sorted(data.items()):
                c = self.factory.i2l(d, h) @ V
                acc = c if acc is None else acc + c
            return acc if acc is not None else np.zeros(self.kernel.size, dtype=complex)
        if op == "L2L":
            h = self.dual.domain.box_size(src_node.level)
            return self.factory.l2l(e.aux, h) @ self._data_of(e.src)
        if op == "L2T":
            tbox = self.dual.target.boxes[dst_node.box_index]
            h = self.dual.domain.box_size(src_node.level)
            rel = (
                self.dual.target.points[tbox.start : tbox.stop]
                - self._centers["target"][src_node.box_index]
            ) / h
            return self.kernel.l2t(self._data_of(e.src), rel, h)
        if op == "M2T":
            sbox = self.dual.source.boxes[src_node.box_index]
            tbox = self.dual.target.boxes[dst_node.box_index]
            h = self.dual.domain.box_size(sbox.level)
            rel = (
                self.dual.target.points[tbox.start : tbox.stop]
                - self._centers["source"][sbox.index]
            ) / h
            return self.kernel.m2t(self._data_of(e.src), rel, h)
        raise ValueError(f"unknown edge op {op}")  # pragma: no cover - defensive

    def _run_edge(self, ctx, e) -> None:
        self._charge_edge(ctx, e)
        value = self._edge_value(e) if self.mode == "numeric" else None
        ctx.lco_set(self.lcos[e.dst], value, key=self._edge_key(e), op_class=e.op)

    # -- batched fast path ----------------------------------------------------------------
    def _edge_value_fast(self, e):
        """Numeric value of one edge using stacked (batched) operators.

        M->I collapses all receiving directions into one matvec over the
        row-stacked operator; I->L collapses all incoming directions
        into one matvec over the column-stacked operator.  Every other
        op falls through to the per-edge reference evaluation.
        """
        op = e.op
        if op == "S2M":
            if self._s2m is None:
                self._s2m = self._leaf_multipoles()
            return self._s2m[self.dag.nodes[e.src].box_index]
        if op == "M2I":
            dirs = self._m2i_dirs.get(e.dst)
            if dirs is None:
                dirs = tuple(
                    sorted({ee.aux[0] for ee in self.dag.out_edges[e.dst] if ee.op == "I2I"})
                )
                self._m2i_dirs[e.dst] = dirs
            if not dirs:
                return {}
            marker = _LazyAmps(e)
            self._lazy_m2i.append(marker)
            return marker
        if op == "I2I":
            marker = _LazyWave(e)
            self._lazy_i2i.append(marker)
            return marker
        if op == "I2L":
            marker = _LazyLocal(e)
            self._lazy_i2l.append(marker)
            return marker
        if op == "L2L":
            marker = _LazyDown(e)
            self._lazy_l2l.append(marker)
            return marker
        return self._edge_value(e)

    def _flush_m2i(self) -> None:
        """Materialize every pending M->I value in stacked GEMMs.

        One ``(edges, size) @ (size, 6 * nterms)`` product per level
        against the full-width direction stack computes the same
        per-direction dot products the per-edge path does, but reads
        the operator once for the whole wave (directions a node does
        not radiate into are computed and discarded - the FLOPs are
        negligible next to the saved memory traffic).

        Groups are keyed by (source level, destination locality).  Every
        edge executes at its destination node's locality, so adding the
        locality makes each group exactly the set of markers one
        real-parallel worker accumulates: the stacked operands - hence
        the floating-point results - are bit-identical whether the flush
        runs globally (simulator) or per worker (parallel backend).
        The same keying applies to every flush below.
        """
        lazy, self._lazy_m2i = self._lazy_m2i, []
        plan = self._m2i_plan
        if plan is not None and len(lazy) == plan[0]:
            self._flush_m2i_planned(plan)
            return
        lazy.sort(key=_marker_order)
        nodes, lcos = self._nodes, self.lcos
        groups: dict[tuple, list] = {}
        for m in lazy:
            e = m.edge
            groups.setdefault(
                (nodes[e.src].level, nodes[e.dst].locality), []
            ).append(e)
        record = self._record_plans()
        plan_groups: list = []
        mats: list = []
        rows: dict[int, int] = {}
        off = 0
        for (level, _), grp in groups.items():
            h = self.dual.domain.box_size(level)
            stack = self.factory.m2i_stack(_FULL_DIRS, h)
            M = np.stack([self._data_of(e.src) for e in grp])
            amps = M @ stack.T
            per = amps.shape[1] // len(_FULL_DIRS)
            for row, e in zip(amps, grp):
                lcos[e.dst].data = {
                    d: row[_DIR_IDX[d] * per : (_DIR_IDX[d] + 1) * per]
                    for d in self._m2i_dirs[e.dst]
                }
            if record:
                plan_groups.append((level, grp, off))
                for i, e in enumerate(grp):
                    rows[e.dst] = off + i
                mats.append(amps)
                off += len(grp)
        if record and mats:
            self._m2i_plan = (len(lazy), plan_groups, rows)
            self._is_mat = (
                np.concatenate(mats) if len(mats) > 1 else mats[0].copy()
            )

    def _flush_m2i_planned(self, plan: tuple) -> None:
        """Warm-path M->I flush over a recorded plan: same stacked GEMMs
        per recorded group (hence bit-identical amplitudes), no marker
        sort or regrouping; each group's rows land in the shared dense
        amplitude matrix the planned I->I gather fancy-indexes."""
        _, groups, _rows = plan
        lcos = self.lcos
        is_mat = self._is_mat
        dom = self.dual.domain
        for level, grp, off in groups:
            h = dom.box_size(level)
            stack = self.factory.m2i_stack(_FULL_DIRS, h)
            M = np.stack([self._data_of(e.src) for e in grp])
            amps = M @ stack.T
            is_mat[off : off + len(grp)] = amps
            per = amps.shape[1] // len(_FULL_DIRS)
            for row, e in zip(amps, grp):
                lcos[e.dst].data = {
                    d: row[_DIR_IDX[d] * per : (_DIR_IDX[d] + 1) * per]
                    for d in self._m2i_dirs[e.dst]
                }

    def _flush_i2i(self) -> None:
        """Materialize every pending I->I value: one broadcast multiply
        per (direction, level) wave, then a segmented reduction into
        the per-direction accumulators of each target node."""
        lazy, self._lazy_i2i = self._lazy_i2i, []
        plan = self._i2i_plan
        if plan is not None and len(lazy) == plan[0]:
            self._flush_i2i_planned(plan)
            return
        lazy.sort(key=_marker_order)
        nodes, lcos = self._nodes, self.lcos
        groups: dict[tuple, list] = {}
        for m in lazy:
            e = m.edge
            groups.setdefault(
                (e.aux[0], nodes[e.src].level, nodes[e.dst].locality), []
            ).append(e)
        cache = self.geom_cache
        record = self._record_plans()
        m2i_plan = self._m2i_plan
        rows = m2i_plan[2] if m2i_plan is not None else None
        plan_groups: list = []
        for (d, level, loc), grp in groups.items():
            h = self.dual.domain.box_size(level)
            grp.sort(key=lambda e: e.dst)
            # the translation stack depends only on the DAG's edge set
            # (directions, deltas, levels) - not on point coordinates -
            # so it survives even a *geometry* change as long as the
            # shape (and hence the DAG template) is reused.  The group
            # composition is deterministic given the DAG, making the
            # group key + size a faithful identity for the stack.
            ck = ("i2i", d, level, loc, len(grp))
            F = cache.get(ck) if cache is not None else None
            if F is None:
                i2i = self.factory.i2i
                F = np.stack([i2i(d, e.aux[1], h) for e in grp])
                if cache is not None:
                    cache[ck] = F
            W = np.stack([self._data_of(e.src)[d] for e in grp])
            amps = W * F
            starts = [
                i for i in range(len(grp)) if i == 0 or grp[i].dst != grp[i - 1].dst
            ]
            sums = np.add.reduceat(amps, starts, axis=0)
            for i, s in zip(starts, sums):
                dst = lcos[grp[i].dst]
                if dst.data is None:
                    dst.data = {d: s}
                else:
                    cur = dst.data.get(d)
                    dst.data[d] = s if cur is None else cur + s
            if record:
                # a None row index means some source's plane waves were
                # not fitted locally (parallel backend, mirrored data):
                # that group keeps the per-edge gather on warm runs
                row_idx = None
                if rows is not None:
                    try:
                        row_idx = np.fromiter(
                            (rows[e.src] for e in grp),
                            dtype=np.intp,
                            count=len(grp),
                        )
                    except KeyError:
                        row_idx = None
                per = F.shape[1]
                lo = _DIR_IDX[d] * per
                plan_groups.append(
                    (
                        d,
                        lo,
                        lo + per,
                        row_idx,
                        grp,
                        F,
                        np.asarray(starts, dtype=np.intp),
                        [grp[i].dst for i in starts],
                    )
                )
        if record:
            self._i2i_plan = (len(lazy), plan_groups)

    def _flush_i2i_planned(self, plan: tuple) -> None:
        """Warm-path I->I flush over a recorded plan.

        The wave stack W is gathered with one fancy index per group out
        of the dense amplitude matrix the planned M->I flush filled -
        the gathered rows carry exactly the values the per-edge lookup
        reads out of each source's direction dict, so the broadcast
        multiply and segmented reduction are bit-identical to the
        recording run."""
        lcos = self.lcos
        is_mat = self._is_mat
        data_of = self._data_of
        for d, lo, hi, row_idx, grp, F, starts, dsts in plan[1]:
            if row_idx is not None and is_mat is not None:
                W = is_mat[row_idx, lo:hi]
            else:
                W = np.stack([data_of(e.src)[d] for e in grp])
            amps = W * F
            sums = np.add.reduceat(amps, starts, axis=0)
            for dst_id, s in zip(dsts, sums):
                dst = lcos[dst_id]
                if dst.data is None:
                    dst.data = {d: s}
                else:
                    cur = dst.data.get(d)
                    dst.data[d] = s if cur is None else cur + s

    def _flush_i2l(self) -> None:
        """Materialize every pending I->L value in stacked GEMMs against
        the full-width direction stack (absent directions are zero rows,
        which contribute exactly nothing), accumulating each result into
        its target local expansion."""
        lazy, self._lazy_i2l = self._lazy_i2l, []
        lazy.sort(key=_marker_order)
        nodes, lcos = self._nodes, self.lcos
        groups: dict[tuple, list] = {}
        for m in lazy:
            e = m.edge
            groups.setdefault(
                (nodes[e.src].level, nodes[e.dst].locality), []
            ).append(e)
        for (level, _), grp in groups.items():
            h = self.dual.domain.box_size(level)
            stack = self.factory.i2l_stack(_FULL_DIRS, h)
            nt = stack.shape[1] // len(_FULL_DIRS)
            V = np.zeros((len(grp), stack.shape[1]), dtype=complex)
            for i, e in enumerate(grp):
                for d, amps in self._data_of(e.src).items():
                    j = _DIR_IDX[d]
                    V[i, j * nt : (j + 1) * nt] = amps
            locs = V @ stack.T
            for row, e in zip(locs, grp):
                dst = lcos[e.dst]
                dst.data = row if dst.data is None else dst.data + row

    def _flush_l2l(self) -> None:
        """Materialize every pending L->L value, coarse levels first.

        Parents strictly precede children in the downward pass, so
        processing levels in ascending order guarantees every parent
        local expansion is complete (its own lazy inputs flushed) before
        its children consume it; within a level the edges sharing an
        octant operator run as one GEMM.
        """
        for level, edges in self._l2l_by_level():
            self._flush_l2l_level(level, edges)

    def _l2l_by_level(self) -> list[tuple[int, list]]:
        """Drain pending L->L markers into (level, edges) batches,
        coarse levels first, edges in canonical marker order."""
        lazy, self._lazy_l2l = self._lazy_l2l, []
        lazy.sort(key=_marker_order)
        nodes = self._nodes
        by_level: dict[int, list] = {}
        for m in lazy:
            by_level.setdefault(nodes[m.edge.src].level, []).append(m.edge)
        return [(level, by_level[level]) for level in sorted(by_level)]

    def _flush_l2l_level(self, level: int, edges) -> None:
        """One downward-shift level: grouped GEMMs per (octant, dst
        locality).  Split out so the parallel backend can interleave a
        parent-data exchange barrier between levels."""
        nodes, lcos = self._nodes, self.lcos
        groups: dict[tuple, list] = {}
        for e in edges:
            groups.setdefault((e.aux, nodes[e.dst].locality), []).append(e)
        h = self.dual.domain.box_size(level)
        for (octant, _), grp in groups.items():
            op = self.factory.l2l(octant, h)
            P = np.stack([self._data_of(e.src) for e in grp])
            vals = P @ op.T
            for row, e in zip(vals, grp):
                dst = lcos[e.dst]
                dst.data = row if dst.data is None else dst.data + row

    def _flush_lazy(self, src_id: int) -> None:
        """Materialize pending lazy values before ``src_id``'s data is read.

        The exponential bridge and the downward shift are lazy end to
        end, so in batched sequential mode nothing reads an intermediate
        or local expansion during the run and the entire cascade runs
        once, at full batch width, from :meth:`flush_deferred`.  This
        hook serves the per-edge-task ablation paths, which do read
        expansions eagerly.
        """
        kind = self._nodes[src_id].kind
        if kind == "Is":
            if self._lazy_m2i:
                self._flush_m2i()
        elif kind == "It":
            if self._lazy_m2i:
                self._flush_m2i()
            if self._lazy_i2i:
                self._flush_i2i()
        elif kind == "L":
            if self._lazy_m2i:
                self._flush_m2i()
            if self._lazy_i2i:
                self._flush_i2i()
            if self._lazy_i2l:
                self._flush_i2l()
            if self._lazy_l2l:
                self._flush_l2l()

    def _leaf_multipoles(self) -> dict[int, np.ndarray]:
        """Multipoles of every source leaf, one stacked fit per level.

        The per-edge path builds one ``p2m`` matrix per leaf; here all
        leaves at a level share a single matrix build over their
        concatenated points, and per-leaf coefficients fall out of a
        segmented reduction of the charge-weighted rows.

        Batches are keyed by (level, locality of the leaf's M node) -
        the locality at which the S->M edge executes - so each batch is
        exactly what one parallel worker fits; ``_mp_localities`` (set
        by the parallel backend) restricts fitting to the worker's own
        batches.  Leaves with no M node group under locality -1.
        """
        src = self.dual.source
        dom = self.dual.domain
        centers = self._centers["source"]
        m_index = self.dag.index.get("M", {})
        dnodes = self.dag.nodes
        only = self._mp_localities
        by_level: dict[tuple, list] = {}
        for b in src.boxes:
            if b.is_leaf and b.count > 0:
                mid = m_index.get(b.index)
                loc = dnodes[mid].locality if mid is not None else -1
                if only is not None and loc not in only:
                    continue
                by_level.setdefault((b.level, loc), []).append(b)
        cache = self.geom_cache
        out: dict[int, np.ndarray] = {}
        for (level, loc), boxes in by_level.items():
            h = dom.box_size(level)
            w = np.concatenate([src.weights[b.start : b.stop] for b in boxes])
            # the p2m basis matrix depends only on point geometry (and
            # scale), not on the charges: a weights-only resubmission
            # reuses it and pays one elementwise multiply.  Computed
            # chunk by chunk exactly like the uncached path, and the
            # elementwise product w[:, None] * P is chunking-invariant,
            # so a cache hit is bit-identical to a cold fit.
            ck = ("p2m", level, loc, len(w))
            P = cache.get(ck) if cache is not None else None
            if P is None:
                rel = (
                    np.concatenate(
                        [src.points[b.start : b.stop] - centers[b.index] for b in boxes]
                    )
                    / h
                )
                P = np.empty((len(rel), self.kernel.size), dtype=complex)
                for lo in range(0, len(rel), 2048):
                    hi = lo + 2048
                    P[lo:hi] = self.kernel.p2m_matrix(rel[lo:hi], h)
                if cache is not None:
                    cache[ck] = P
            rows = w[:, None] * P
            starts = np.zeros(len(boxes), dtype=np.intp)
            starts[1:] = np.cumsum([b.count for b in boxes])[:-1]
            coeffs = np.add.reduceat(rows, starts, axis=0)
            for b, c in zip(boxes, coeffs):
                out[b.index] = c
        return out
    def _batch_key(self, e):
        """Edges of one node sharing a key run as one stacked operation.

        All out-edges being processed share the source node, so S2L
        edges at one target level share the operator scale.  Everything
        else is either lazy (the exponential bridge, leaf outputs) or
        gains nothing from stacking, and returns None.
        """
        op = e.op
        if op == "S2L":
            return (op, self.dag.nodes[e.dst].level)
        return None

    def _run_edges(self, ctx, edges) -> None:
        """Execute local edges of one node, batching compatible groups.

        Charges are emitted per edge in the original order and LCO sets
        are buffered per edge in the original order, so the virtual
        clock, the trace and the downstream trigger sequence are
        identical to the sequential per-edge path.
        """
        if not self.batch_edges or self.mode != "numeric":
            run = self._run_edge
            for e in edges:
                run(ctx, e)
            return
        if not edges:
            return
        charge = self._charge_edge
        for e in edges:
            charge(ctx, e)
        values: dict[int, object] = {}
        groups: dict[object, list] = {}
        value_fast = self._edge_value_fast
        batch_key = self._batch_key
        for e in edges:
            if e.op in FILLER_OPS:
                # leaf-output values are only read at the final gather:
                # defer them and evaluate all of them in stacked passes
                values[id(e)] = _Deferred(e)
            else:
                key = batch_key(e)
                if key is None:
                    values[id(e)] = value_fast(e)
                else:
                    groups.setdefault(key, []).append(e)
        for key, group in groups.items():
            if len(group) == 1:
                values[id(group[0])] = self._edge_value(group[0])
            else:
                self._batch_values(key, group, values)
        lco_set = ctx.lco_set
        lcos = self.lcos
        edge_key = self._edge_key
        for e in edges:
            lco_set(lcos[e.dst], values[id(e)], key=edge_key(e), op_class=e.op)

    def _batch_values(self, key, group, values: dict) -> None:
        """Stacked numeric evaluation of one (op, operator-key) group.

        S2L: one p2l matrix build for all target boxes at this level.
        """
        src_node = self.dag.nodes[group[0].src]
        tgt = self.dual.target
        tboxes = [tgt.boxes[self.dag.nodes[e.dst].box_index] for e in group]
        sbox = self.dual.source.boxes[src_node.box_index]
        spts = self.dual.source.points[sbox.start : sbox.stop]
        q = self.dual.source.weights[sbox.start : sbox.stop]
        h = self.dual.domain.box_size(tboxes[0].level)
        centers = np.stack([self._centers["target"][b.index] for b in tboxes])
        E, n = len(group), len(spts)
        # edge blocks keep the (block*n, size) matrix cache-resident
        blk = max(1, 2048 // max(n, 1))
        coeffs = np.empty((E, self.kernel.size), dtype=complex)
        for i in range(0, E, blk):
            j = min(i + blk, E)
            rel = (spts[None, :, :] - centers[i:j, None, :]) / h
            mat = self.kernel.p2l_matrix(rel.reshape(-1, 3), h)
            coeffs[i:j] = np.matmul(q, mat.reshape(j - i, n, -1))
        for e, c in zip(group, coeffs):
            values[id(e)] = c

    def flush_deferred(self) -> None:
        """Evaluate all deferred leaf-output edges in stacked passes.

        Grouping is global: every M->T (resp. L->T) edge at one source
        level shares one evaluation-matrix build over the concatenated
        target points, with each point dotted against its own edge's
        coefficient row; S->T edges regroup by source leaf so each leaf
        does a single direct sum over all its target points, even when
        the runtime split its out-edges across tasks or parcels.
        Contributions are accumulated into the result in group order -
        each per-point value is the same dot product the per-edge path
        computes, so potentials agree to roundoff.
        """
        # materialize the lazy bridge and downward shift first: the
        # deferred L->T outputs below read the final local expansions
        if self._lazy_m2i:
            self._flush_m2i()
        if self._lazy_i2i:
            self._flush_i2i()
        if self._lazy_i2l:
            self._flush_i2l()
        if self._lazy_l2l:
            self._flush_l2l()
        if not self._deferred:
            return
        dom = self.dual.domain
        tgt = self.dual.target
        res = self.result
        # canonical order: the deferred list accumulates in T-continuation
        # run order, which is timing/fault dependent
        self._deferred.sort(key=lambda e: (e.src, e.dst, e.op))
        groups: dict[object, list] = {}
        dnodes = self.dag.nodes
        for e in self._deferred:
            op = e.op
            # the destination locality rides in every key so the group
            # compositions (and stacked operands) match between a global
            # flush and the per-worker flushes of the parallel backend
            if op == "S2T":
                key = (op, e.src, dnodes[e.dst].locality)
            else:  # M2T / L2T share the operator scale per source level
                key = (op, dnodes[e.src].level, dnodes[e.dst].locality)
            groups.setdefault(key, []).append(e)
        self._deferred = []
        nodes = self.dag.nodes
        cache = self.geom_cache
        for (op, sub, loc), group in groups.items():
            tboxes = [tgt.boxes[nodes[e.dst].box_index] for e in group]
            pts = np.concatenate([tgt.points[b.start : b.stop] for b in tboxes])
            if op == "S2T":
                sbox = self.dual.source.boxes[nodes[group[0].src].box_index]
                spts = self.dual.source.points[sbox.start : sbox.stop]
                sw = self.dual.source.weights[sbox.start : sbox.stop]
                if cache is None or type(self.kernel).direct is not Kernel.direct:
                    out = self.kernel.direct(pts, spts, sw)
                else:
                    # replicate Kernel.direct chunk for chunk, caching
                    # each chunk's greens matrix: it depends on the
                    # coordinates only, so a warm re-query pays one
                    # matvec against the fresh charges.  Identical
                    # chunking + identical per-chunk matvec operands
                    # make hit and miss bit-identical to the uncached
                    # direct sum.
                    out = np.zeros(len(pts))
                    for lo in range(0, len(pts), 2048):
                        hi = lo + 2048
                        ck = (op, sub, loc, len(pts), sbox.count, lo)
                        G = cache.get(ck)
                        if G is None:
                            t = pts[lo:hi]
                            r = np.linalg.norm(
                                t[:, None, :] - spts[None, :, :], axis=-1
                            )
                            G = self.kernel.greens(r)
                            cache[ck] = G
                        out[lo:hi] = G @ sw
            else:
                h = dom.box_size(sub)
                side = "source" if op == "M2T" else "target"
                centers = self._centers[side][[nodes[e.src].box_index for e in group]]
                coeffs = np.stack([self._data_of(e.src) for e in group])
                # which edge owns each concatenated point (small intp
                # array; the per-point center/coefficient rows are
                # gathered per chunk so every temporary stays
                # cache-resident instead of streaming through memory)
                eidx = np.repeat(
                    np.arange(len(group)), [b.count for b in tboxes]
                )
                # per-chunk evaluation matrices depend on the target
                # points and box centers (geometry + shape) but not on
                # the expansion coefficients, so a warm re-evaluation
                # over unmoved points skips the basis build and only
                # pays the row-dot against the fresh coefficients - the
                # same (matrix * rows).sum contraction as m2t_rows /
                # l2t_rows, hence bit-identical.
                matf = self.kernel.m2t_matrix if op == "M2T" else self.kernel.l2t_matrix
                out = np.empty(len(pts))
                for lo in range(0, len(pts), 2048):
                    hi = lo + 2048
                    sel = eidx[lo:hi]
                    mat = None
                    if cache is not None:
                        ck = (op, sub, loc, len(pts), lo)
                        mat = cache.get(ck)
                    if mat is None:
                        rel = (pts[lo:hi] - centers[sel]) / h
                        mat = matf(rel, h)
                        if cache is not None:
                            cache[ck] = mat
                    out[lo:hi] = (mat * coeffs[sel]).sum(axis=1).real
            off = 0
            for b in tboxes:
                res[b.start : b.stop] += out[off : off + b.count]
                off += b.count


