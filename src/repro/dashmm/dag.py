"""The explicit DAG: expansion nodes and operator edges (Section IV).

DASHMM builds two representations of the DAG: this explicit one, used
during partitioning and distribution (and for the statistics of Tables
I and II), and the implicit LCO network built from it by
:mod:`repro.dashmm.registrar`.

Node classes follow Table I: ``S`` (source leaf data), ``M`` (multipole
expansion), ``Is`` (source-side intermediate expansion), ``It``
(target-side intermediate expansion), ``L`` (local expansion) and ``T``
(target leaf data).  Edge classes follow Table II, plus the basic-FMM
and adaptive-list operators (M2L, M2T, S2L) the traced cube run happens
not to exercise.

Construction (Section IV stresses it must stay a negligible fraction of
end-to-end time) has two interchangeable paths: the *vectorised*
default derives every node table and edge endpoint array from the
trees' columnar box tables (decoded coordinates, leaf masks, parent
indices) with whole-array operations, then materialises the node/edge
objects in one tight pass; the per-box *reference* loop is retained as
the oracle.  Both paths emit identical node ids, edge order and aux
payloads, so the simulated virtual clock does not depend on the choice.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.kernels.expo import DIRECTIONS, assign_direction
from repro.tree.dualtree import DualTree
from repro.tree.lists import InteractionLists, list_pairs
from repro.tree.morton import decode_morton

NODE_KINDS = ("S", "M", "Is", "It", "L", "T")
EDGE_OPS = ("S2T", "S2M", "M2M", "M2L", "M2I", "I2I", "I2L", "L2L", "L2T", "M2T", "S2L")

#: Instrumentation for the persistent-evaluation layer: every from-scratch
#: DAG assembly bumps this.  A warm-path submit that hits a DAG template
#: must leave it untouched (asserted by the service tests).
COUNTERS = {"assemblies": 0}

#: direction labels indexed by 2*axis + (1 if the signed offset is
#: non-positive), axis order z, x, y - mirrors assign_direction's
#: tie-breaking exactly
_DIR_LABELS = np.array(DIRECTIONS)


def assign_direction_arrays(dx: np.ndarray, dy: np.ndarray, dz: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.kernels.expo.assign_direction`.

    Returns an int code into ``DIRECTIONS`` (+z, -z, +x, -x, +y, -y);
    ties between axes break in z, x, y order like the scalar version.
    """
    az, ax, ay = np.abs(dz), np.abs(dx), np.abs(dy)
    use_z = (az >= ax) & (az >= ay)
    use_x = ~use_z & (ax >= ay)
    value = np.where(use_z, dz, np.where(use_x, dx, dy))
    axis = np.where(use_z, 0, np.where(use_x, 1, 2))
    return axis * 2 + (value <= 0)


@dataclass
class DagNode:
    """One node of the explicit DAG."""

    id: int
    kind: str
    box_index: int  # index into the owning tree's box table
    level: int
    tree: str  # "source" | "target"
    n_points: int = 0  # for S/T nodes
    locality: int = -1  # assigned by the distribution policy


@dataclass
class Edge:
    """One DAG edge: ``aux`` carries operator geometry (octant, delta, dir)."""

    src: int
    dst: int
    op: str
    aux: object = None


@dataclass
class DAG:
    """Explicit DAG: node table plus edges grouped by out-node."""

    nodes: list[DagNode] = field(default_factory=list)
    out_edges: list[list[Edge]] = field(default_factory=list)
    in_degree: list[int] = field(default_factory=list)
    # node lookup: (kind, box_index) -> node id, per kind
    index: dict[str, dict[int, int]] = field(
        default_factory=lambda: {k: {} for k in NODE_KINDS}
    )
    #: critical-path priority stamp left by the declarative builder
    #: (:meth:`repro.dag.schema.DagBuilder.stamp_priorities`): a dict
    #: with ``levels`` (grading resolution), ``values`` (one level per
    #: node) and ``cost`` (the cost model graded against, by identity).
    #: ``None`` until stamped; the registrar falls back to grading
    #: on the fly when absent or graded differently.
    priorities: dict | None = None

    def add_node(self, kind: str, box_index: int, level: int, tree: str, n_points: int = 0) -> int:
        nid = len(self.nodes)
        self.nodes.append(
            DagNode(id=nid, kind=kind, box_index=box_index, level=level, tree=tree, n_points=n_points)
        )
        self.out_edges.append([])
        self.in_degree.append(0)
        self.index[kind][box_index] = nid
        return nid

    def add_edge(self, src: int, dst: int, op: str, aux=None) -> None:
        self.out_edges[src].append(Edge(src=src, dst=dst, op=op, aux=aux))
        self.in_degree[dst] += 1

    # -- statistics (Tables I and II) -------------------------------------------
    def node_stats(self, size_model=None) -> dict[str, dict]:
        """Per-kind count, size range and in/out-degree range (Table I).

        Degree extrema are array reductions over the whole node table
        rather than per-node Python scans.
        """
        n = len(self.nodes)
        din = np.asarray(self.in_degree, dtype=np.int64)
        dout = np.fromiter(
            (len(e) for e in self.out_edges), dtype=np.int64, count=n
        )
        by_kind: dict[str, list[DagNode]] = defaultdict(list)
        for node in self.nodes:
            by_kind[node.kind].append(node)
        stats = {}
        for kind in NODE_KINDS:
            ns = by_kind.get(kind, [])
            if not ns:
                continue
            ids = np.fromiter((node.id for node in ns), dtype=np.int64, count=len(ns))
            entry = {
                "count": len(ns),
                "din_min": int(din[ids].min()),
                "din_max": int(din[ids].max()),
                "dout_min": int(dout[ids].min()),
                "dout_max": int(dout[ids].max()),
            }
            if size_model is not None:
                sizes = [size_model.node_bytes(kind, n_points=node.n_points) for node in ns]
                entry["size_min"] = min(sizes)
                entry["size_max"] = max(sizes)
            stats[kind] = entry
        return stats

    def edge_stats(self, size_model=None) -> dict[str, dict]:
        """Per-op count and message-size range (Table II)."""
        counts: dict[str, int] = defaultdict(int)
        smin: dict[str, int] = {}
        smax: dict[str, int] = {}
        for edges in self.out_edges:
            for e in edges:
                counts[e.op] += 1
                if size_model is not None:
                    npts = self.nodes[e.src].n_points
                    b = size_model.payload_bytes(e.op, n_src_points=npts)
                    smin[e.op] = min(smin.get(e.op, b), b)
                    smax[e.op] = max(smax.get(e.op, b), b)
        out = {}
        for op, c in counts.items():
            entry = {"count": c}
            if size_model is not None:
                entry["size_min"] = smin[op]
                entry["size_max"] = smax[op]
            out[op] = entry
        return out

    @property
    def n_edges(self) -> int:
        return sum(len(e) for e in self.out_edges)

    def critical_path_length(self, cost_fn=None) -> float:
        """Longest path through the DAG (unit edge cost by default)."""
        order = self._topological_order()
        dist = [0.0] * len(self.nodes)
        for nid in order:
            for e in self.out_edges[nid]:
                w = 1.0 if cost_fn is None else cost_fn(e)
                if dist[nid] + w > dist[e.dst]:
                    dist[e.dst] = dist[nid] + w
        return max(dist) if dist else 0.0

    def _topological_order(self) -> list[int]:
        indeg = list(self.in_degree)
        stack = [n.id for n in self.nodes if indeg[n.id] == 0]
        order = []
        while stack:
            nid = stack.pop()
            order.append(nid)
            for e in self.out_edges[nid]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    stack.append(e.dst)
        if len(order) != len(self.nodes):
            raise RuntimeError("DAG has a cycle")
        return order


def _lattice(key: int) -> tuple[int, int, int]:
    _, x, y, z = decode_morton(key)
    return x, y, z


def _dead_below_pruned(tree, pruned: set[int]) -> set[int]:
    """Indices of boxes strictly below any pruned box."""
    dead: set[int] = set()
    for b in tree.boxes:  # BFS order: parents precede children
        pi = tree.key_to_index[b.parent] if b.parent is not None else None
        if pi is not None and (pi in pruned or pi in dead):
            dead.add(b.index)
    return dead


def _dead_mask(tgt, pruned: set[int]) -> np.ndarray:
    """Boolean per-box mask of targets strictly below a pruned box."""
    ta = tgt.arrays
    nb = len(tgt.boxes)
    pruned_mask = np.zeros(nb, dtype=bool)
    if pruned:
        pruned_mask[np.fromiter(pruned, dtype=np.int64, count=len(pruned))] = True
    dead = np.zeros(nb, dtype=bool)
    for lvl in tgt.levels[1:]:
        idx = np.asarray(lvl, dtype=np.int64)
        p = ta.parent[idx]
        dead[idx] = dead[p] | pruned_mask[p]
    return dead


# -- vectorised assembly helpers ------------------------------------------------
def _batch_nodes(dag: DAG, kind: str, box_idx, levels, tree: str, n_points=None) -> int:
    """Append one kind-block of nodes; returns the first node id."""
    base = len(dag.nodes)
    nodes = dag.nodes
    out_edges = dag.out_edges
    index = dag.index[kind]
    bi = box_idx.tolist() if isinstance(box_idx, np.ndarray) else list(box_idx)
    lv = levels.tolist() if isinstance(levels, np.ndarray) else list(levels)
    npts = (
        n_points.tolist()
        if isinstance(n_points, np.ndarray)
        else (n_points if n_points is not None else [0] * len(bi))
    )
    for b, l, p in zip(bi, lv, npts):
        nid = len(nodes)
        nodes.append(
            DagNode(id=nid, kind=kind, box_index=b, level=l, tree=tree, n_points=p)
        )
        out_edges.append([])
        index[b] = nid
    return base


def _batch_edges(dag: DAG, srcs, dsts, op: str, auxs=None) -> None:
    """Materialise one operator class of edges from endpoint arrays."""
    oe = dag.out_edges
    srcs = srcs.tolist() if isinstance(srcs, np.ndarray) else srcs
    dsts = dsts.tolist() if isinstance(dsts, np.ndarray) else dsts
    if auxs is None:
        for s, d in zip(srcs, dsts):
            oe[s].append(Edge(src=s, dst=d, op=op))
    else:
        auxs = auxs.tolist() if isinstance(auxs, np.ndarray) else auxs
        for s, d, a in zip(srcs, dsts, auxs):
            oe[s].append(Edge(src=s, dst=d, op=op, aux=a))


def _deltas(sa, ta, tis: np.ndarray, sis: np.ndarray):
    dx = ta.ix[tis] - sa.ix[sis]
    dy = ta.iy[tis] - sa.iy[sis]
    dz = ta.iz[tis] - sa.iz[sis]
    return dx, dy, dz


def _delta_tuples(dx, dy, dz) -> list[tuple[int, int, int]]:
    return list(zip(dx.tolist(), dy.tolist(), dz.tolist()))


def build_fmm_dag(
    dual: DualTree,
    lists: InteractionLists,
    advanced: bool = True,
    vectorized: bool = True,
) -> DAG:
    """Build the explicit FMM DAG (basic 8-operator or advanced 11-operator)."""
    COUNTERS["assemblies"] += 1
    if vectorized:
        return _build_fmm_dag_vectorized(dual, lists, advanced)
    return _build_fmm_dag_reference(dual, lists, advanced)


def refresh_n_points(dag: DAG, dual: DualTree) -> None:
    """Re-stamp per-node point counts from a (spliced) dual tree.

    The structural DAG of a template is shape-keyed: node ids, edges and
    operator bindings survive any perturbation that preserves the box
    structure.  What does *not* survive are the S/T point counts (they
    feed work estimates and parcel-size models), which this refreshes in
    one pass without touching the wiring.
    """
    src_counts = dual.source.arrays.counts
    tgt_counts = dual.target.arrays.counts
    for node in dag.nodes:
        if node.kind == "S":
            node.n_points = int(src_counts[node.box_index])
        elif node.kind == "T":
            node.n_points = int(tgt_counts[node.box_index])


def _build_fmm_dag_vectorized(dual: DualTree, lists: InteractionLists, advanced: bool) -> DAG:
    """Array-pass assembly: node tables and edge endpoint/aux arrays are
    derived from the columnar box tables, then materialised in creation
    order; ``in_degree`` is one bincount over the destination arrays."""
    src, tgt = dual.source, dual.target
    sa, ta = src.arrays, tgt.arrays
    nsb, ntb = len(src.boxes), len(tgt.boxes)
    dag = DAG()
    dst_acc: list[np.ndarray] = []  # all edge destinations, for in_degree

    dead = _dead_mask(tgt, lists.pruned)
    pruned_mask = np.zeros(ntb, dtype=bool)
    if lists.pruned:
        pruned_mask[
            np.fromiter(lists.pruned, dtype=np.int64, count=len(lists.pruned))
        ] = True

    # --- source side: M everywhere (node id == box index), S at leaves --------
    _batch_nodes(dag, "M", np.arange(nsb, dtype=np.int64), sa.levels, "source")
    s_boxes = np.flatnonzero(sa.leaf & (sa.counts > 0))
    s_base = _batch_nodes(dag, "S", s_boxes, sa.levels[s_boxes], "source", sa.counts[s_boxes])
    s_ids = np.arange(s_base, s_base + s_boxes.size, dtype=np.int64)
    s_of = np.full(nsb, -1, dtype=np.int64)
    s_of[s_boxes] = s_ids
    _batch_edges(dag, s_ids, s_boxes, "S2M")
    dst_acc.append(s_boxes)
    kids = np.arange(1, nsb, dtype=np.int64)
    m2m_dst = sa.parent[kids]
    _batch_edges(dag, kids, m2m_dst, "M2M", auxs=sa.keys[kids] & 7)
    dst_acc.append(m2m_dst)

    # --- target side: L for live boxes at level >= 2, T at eval boxes ----------
    l_boxes = np.flatnonzero(~dead & (ta.levels >= 2))
    l_base = _batch_nodes(dag, "L", l_boxes, ta.levels[l_boxes], "target")
    l_of = np.full(ntb, -1, dtype=np.int64)
    l_of[l_boxes] = np.arange(l_base, l_base + l_boxes.size, dtype=np.int64)
    t_boxes = np.flatnonzero(~dead & (ta.counts > 0) & (ta.leaf | pruned_mask))
    t_base = _batch_nodes(dag, "T", t_boxes, ta.levels[t_boxes], "target", ta.counts[t_boxes])
    t_of = np.full(ntb, -1, dtype=np.int64)
    t_of[t_boxes] = np.arange(t_base, t_base + t_boxes.size, dtype=np.int64)
    has_l = l_of[t_boxes] >= 0
    l2t_dst = t_of[t_boxes[has_l]]
    _batch_edges(dag, l_of[t_boxes[has_l]], l2t_dst, "L2T")
    dst_acc.append(l2t_dst)
    # L2L downward
    ll = np.flatnonzero((l_of >= 0) & (ta.levels >= 3))
    ll = ll[l_of[ta.parent[ll]] >= 0]
    l2l_dst = l_of[ll]
    _batch_edges(dag, l_of[ta.parent[ll]], l2l_dst, "L2L", auxs=ta.keys[ll] & 7)
    dst_acc.append(l2l_dst)

    # --- list 2 ------------------------------------------------------------------
    ti2, si2 = list_pairs(lists.l2)
    if ti2.size:
        dx, dy, dz = _deltas(sa, ta, ti2, si2)
        if advanced:
            # It at each target-group start, Is at the first pair-scan
            # occurrence of each source box (the reference's lazy order)
            group_pos = np.flatnonzero(np.r_[True, ti2[1:] != ti2[:-1]])
            uniq_si, first_pos = np.unique(si2, return_index=True)
            ev_pos = np.concatenate([group_pos, first_pos])
            ev_is = np.concatenate(
                [np.zeros(group_pos.size, np.int64), np.ones(first_pos.size, np.int64)]
            )
            ev_box = np.concatenate([ti2[group_pos], uniq_si])
            order = np.lexsort((ev_is, ev_pos))
            it_of = np.full(ntb, -1, dtype=np.int64)
            is_of = np.full(nsb, -1, dtype=np.int64)
            nodes, oe = dag.nodes, dag.out_edges
            it_index, is_index = dag.index["It"], dag.index["Is"]
            i2l_src: list[int] = []
            m2i_src: list[int] = []
            m2i_dst: list[int] = []
            t_levels = ta.levels
            s_levels = sa.levels
            for is_source, box in zip(ev_is[order].tolist(), ev_box[order].tolist()):
                nid = len(nodes)
                if is_source:
                    nodes.append(
                        DagNode(id=nid, kind="Is", box_index=box, level=int(s_levels[box]), tree="source")
                    )
                    oe.append([])
                    is_index[box] = nid
                    is_of[box] = nid
                    m2i_src.append(box)
                    m2i_dst.append(nid)
                else:
                    nodes.append(
                        DagNode(id=nid, kind="It", box_index=box, level=int(t_levels[box]), tree="target")
                    )
                    oe.append([])
                    it_index[box] = nid
                    it_of[box] = nid
                    i2l_src.append(nid)
            i2l_dst = l_of[ti2[group_pos]]
            _batch_edges(dag, i2l_src, i2l_dst, "I2L")
            dst_acc.append(i2l_dst)
            _batch_edges(dag, m2i_src, m2i_dst, "M2I")
            dst_acc.append(np.asarray(m2i_dst, dtype=np.int64))
            d_codes = assign_direction_arrays(dx, dy, dz)
            auxs = list(zip(_DIR_LABELS[d_codes].tolist(), _delta_tuples(dx, dy, dz)))
            i2i_dst = it_of[ti2]
            _batch_edges(dag, is_of[si2], i2i_dst, "I2I", auxs=auxs)
            dst_acc.append(i2i_dst)
        else:
            m2l_dst = l_of[ti2]
            _batch_edges(dag, si2, m2l_dst, "M2L", auxs=_delta_tuples(dx, dy, dz))
            dst_acc.append(m2l_dst)

    # --- adaptive lists -------------------------------------------------------------
    ti3, si3 = list_pairs(lists.l3)
    if ti3.size:
        keep = t_of[ti3] >= 0
        m2t_dst = t_of[ti3[keep]]
        _batch_edges(dag, si3[keep], m2t_dst, "M2T")
        dst_acc.append(m2t_dst)
    ti4, si4 = list_pairs(lists.l4)
    if ti4.size:
        keep = s_of[si4] >= 0
        s2l_dst = l_of[ti4[keep]]
        _batch_edges(dag, s_of[si4[keep]], s2l_dst, "S2L")
        dst_acc.append(s2l_dst)
    ti1, si1 = list_pairs(lists.l1)
    if ti1.size:
        keep = (t_of[ti1] >= 0) & (s_of[si1] >= 0)
        s2t_dst = t_of[ti1[keep]]
        _batch_edges(dag, s_of[si1[keep]], s2t_dst, "S2T")
        dst_acc.append(s2t_dst)

    n_nodes = len(dag.nodes)
    if dst_acc:
        all_dst = np.concatenate([np.asarray(d, dtype=np.int64) for d in dst_acc])
        dag.in_degree = np.bincount(all_dst, minlength=n_nodes).tolist()
    else:
        dag.in_degree = [0] * n_nodes
    return dag


def _build_fmm_dag_reference(dual: DualTree, lists: InteractionLists, advanced: bool) -> DAG:
    """Per-box reference assembly (the oracle loop path)."""
    src, tgt = dual.source, dual.target
    dag = DAG()
    dead = _dead_below_pruned(tgt, lists.pruned)

    # --- source side: S nodes at leaves, M everywhere -------------------------
    for b in src.boxes:
        dag.add_node("M", b.index, b.level, "source")
    for b in src.boxes:
        if b.is_leaf and b.count > 0:
            s = dag.add_node("S", b.index, b.level, "source", n_points=b.count)
            dag.add_edge(s, dag.index["M"][b.index], "S2M")
    for b in src.boxes:
        if b.parent is not None:
            pi = src.key_to_index[b.parent]
            dag.add_edge(
                dag.index["M"][b.index], dag.index["M"][pi], "M2M", aux=b.key & 7
            )

    # --- target side: L for live boxes at level >= 2, T at eval boxes ----------
    for b in tgt.boxes:
        if b.index in dead:
            continue
        if b.level >= 2:
            dag.add_node("L", b.index, b.level, "target")
    for b in tgt.boxes:
        if b.index in dead:
            continue
        if (b.is_leaf or b.index in lists.pruned) and b.count > 0:
            t = dag.add_node("T", b.index, b.level, "target", n_points=b.count)
            if b.index in dag.index["L"]:
                dag.add_edge(dag.index["L"][b.index], t, "L2T")
    # L2L downward
    for b in tgt.boxes:
        if b.index not in dag.index["L"] or b.level < 3:
            continue
        pi = tgt.key_to_index[b.parent]
        if pi in dag.index["L"]:
            dag.add_edge(
                dag.index["L"][pi], dag.index["L"][b.index], "L2L", aux=b.key & 7
            )

    # --- list 2 ------------------------------------------------------------------
    if advanced:
        # group pairs by (target box); create Is/It lazily
        for ti, sis in lists.l2.items():
            t = tgt.boxes[ti]
            tx, ty, tz = _lattice(t.key)
            if ti not in dag.index["It"]:
                it = dag.add_node("It", ti, t.level, "target")
                dag.add_edge(it, dag.index["L"][ti], "I2L")
            it = dag.index["It"][ti]
            for si in sis:
                s = src.boxes[si]
                sx, sy, sz = _lattice(s.key)
                delta = (tx - sx, ty - sy, tz - sz)
                d = assign_direction(delta)
                if si not in dag.index["Is"]:
                    isid = dag.add_node("Is", si, s.level, "source")
                    dag.add_edge(dag.index["M"][si], isid, "M2I")
                dag.add_edge(dag.index["Is"][si], it, "I2I", aux=(d, delta))
    else:
        for ti, sis in lists.l2.items():
            t = tgt.boxes[ti]
            tx, ty, tz = _lattice(t.key)
            for si in sis:
                s = src.boxes[si]
                sx, sy, sz = _lattice(s.key)
                delta = (tx - sx, ty - sy, tz - sz)
                dag.add_edge(
                    dag.index["M"][si], dag.index["L"][ti], "M2L", aux=delta
                )

    # --- adaptive lists -------------------------------------------------------------
    for ti, sis in lists.l3.items():
        t = dag.index["T"].get(ti)
        if t is None:
            continue
        for si in sis:
            dag.add_edge(dag.index["M"][si], t, "M2T")
    for ti, sis in lists.l4.items():
        for si in sis:
            s_node = dag.index["S"].get(si)
            if s_node is None:
                continue
            dag.add_edge(s_node, dag.index["L"][ti], "S2L")
    for ti, sis in lists.l1.items():
        t = dag.index["T"].get(ti)
        if t is None:
            continue
        for si in sis:
            s_node = dag.index["S"].get(si)
            if s_node is None:
                continue
            dag.add_edge(s_node, t, "S2T")

    return dag


def build_bh_dag(
    dual: DualTree,
    mac_pairs: dict[int, list[tuple[str, int]]],
    vectorized: bool = True,
) -> DAG:
    """Explicit DAG for Barnes-Hut.

    ``mac_pairs`` maps target leaf box index -> list of ("M2T"|"S2T",
    source box index) decisions from the MAC traversal.
    """
    COUNTERS["assemblies"] += 1
    if vectorized:
        return _build_bh_dag_vectorized(dual, mac_pairs)
    return _build_bh_dag_reference(dual, mac_pairs)


def _build_bh_dag_vectorized(dual: DualTree, mac_pairs: dict[int, list[tuple[str, int]]]) -> DAG:
    src, tgt = dual.source, dual.target
    sa, ta = src.arrays, tgt.arrays
    nsb = len(src.boxes)
    dag = DAG()
    dst_acc: list[np.ndarray] = []

    _batch_nodes(dag, "M", np.arange(nsb, dtype=np.int64), sa.levels, "source")
    s_boxes = np.flatnonzero(sa.leaf & (sa.counts > 0))
    s_base = _batch_nodes(dag, "S", s_boxes, sa.levels[s_boxes], "source", sa.counts[s_boxes])
    s_of = np.full(nsb, -1, dtype=np.int64)
    s_of[s_boxes] = np.arange(s_base, s_base + s_boxes.size, dtype=np.int64)
    _batch_edges(dag, s_of[s_boxes], s_boxes, "S2M")
    dst_acc.append(s_boxes)
    kids = np.arange(1, nsb, dtype=np.int64)
    m2m_dst = sa.parent[kids]
    _batch_edges(dag, kids, m2m_dst, "M2M", auxs=sa.keys[kids] & 7)
    dst_acc.append(m2m_dst)

    # flatten the MAC decisions (dict order == target-leaf box order)
    t_keys = np.fromiter(mac_pairs.keys(), dtype=np.int64, count=len(mac_pairs))
    lens = np.fromiter(
        (len(v) for v in mac_pairs.values()), dtype=np.int64, count=len(mac_pairs)
    )
    total = int(lens.sum())
    flat_s = np.fromiter(
        (si for ops in mac_pairs.values() for _, si in ops), dtype=np.int64, count=total
    )
    flat_m2t = np.fromiter(
        (op == "M2T" for ops in mac_pairs.values() for op, _ in ops),
        dtype=bool,
        count=total,
    )
    t_base = _batch_nodes(dag, "T", t_keys, ta.levels[t_keys], "target", ta.counts[t_keys])
    t_ids = np.arange(t_base, t_base + t_keys.size, dtype=np.int64)
    flat_t = np.repeat(t_ids, lens)

    m2t_dst = flat_t[flat_m2t]
    _batch_edges(dag, flat_s[flat_m2t], m2t_dst, "M2T")
    dst_acc.append(m2t_dst)
    s2t_mask = ~flat_m2t & (s_of[flat_s] >= 0)
    s2t_dst = flat_t[s2t_mask]
    _batch_edges(dag, s_of[flat_s[s2t_mask]], s2t_dst, "S2T")
    dst_acc.append(s2t_dst)

    n_nodes = len(dag.nodes)
    all_dst = np.concatenate(dst_acc) if dst_acc else np.empty(0, np.int64)
    dag.in_degree = np.bincount(all_dst, minlength=n_nodes).tolist()
    return dag


def _build_bh_dag_reference(dual: DualTree, mac_pairs: dict[int, list[tuple[str, int]]]) -> DAG:
    src, tgt = dual.source, dual.target
    dag = DAG()
    for b in src.boxes:
        dag.add_node("M", b.index, b.level, "source")
    for b in src.boxes:
        if b.is_leaf and b.count > 0:
            s = dag.add_node("S", b.index, b.level, "source", n_points=b.count)
            dag.add_edge(s, dag.index["M"][b.index], "S2M")
    for b in src.boxes:
        if b.parent is not None:
            pi = src.key_to_index[b.parent]
            dag.add_edge(dag.index["M"][b.index], dag.index["M"][pi], "M2M", aux=b.key & 7)
    for ti, ops in mac_pairs.items():
        t_box = tgt.boxes[ti]
        t = dag.add_node("T", ti, t_box.level, "target", n_points=t_box.count)
        for op, si in ops:
            if op == "M2T":
                dag.add_edge(dag.index["M"][si], t, "M2T")
            else:
                s_node = dag.index["S"].get(si)
                if s_node is not None:
                    dag.add_edge(s_node, t, "S2T")
    return dag
