"""The explicit DAG: expansion nodes and operator edges (Section IV).

DASHMM builds two representations of the DAG: this explicit one, used
during partitioning and distribution (and for the statistics of Tables
I and II), and the implicit LCO network built from it by
:mod:`repro.dashmm.registrar`.

Node classes follow Table I: ``S`` (source leaf data), ``M`` (multipole
expansion), ``Is`` (source-side intermediate expansion), ``It``
(target-side intermediate expansion), ``L`` (local expansion) and ``T``
(target leaf data).  Edge classes follow Table II, plus the basic-FMM
and adaptive-list operators (M2L, M2T, S2L) the traced cube run happens
not to exercise.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.kernels.expo import assign_direction
from repro.tree.dualtree import DualTree
from repro.tree.lists import InteractionLists
from repro.tree.morton import decode_morton

NODE_KINDS = ("S", "M", "Is", "It", "L", "T")
EDGE_OPS = ("S2T", "S2M", "M2M", "M2L", "M2I", "I2I", "I2L", "L2L", "L2T", "M2T", "S2L")


@dataclass
class DagNode:
    """One node of the explicit DAG."""

    id: int
    kind: str
    box_index: int  # index into the owning tree's box table
    level: int
    tree: str  # "source" | "target"
    n_points: int = 0  # for S/T nodes
    locality: int = -1  # assigned by the distribution policy


@dataclass
class Edge:
    """One DAG edge: ``aux`` carries operator geometry (octant, delta, dir)."""

    src: int
    dst: int
    op: str
    aux: object = None


@dataclass
class DAG:
    """Explicit DAG: node table plus edges grouped by out-node."""

    nodes: list[DagNode] = field(default_factory=list)
    out_edges: list[list[Edge]] = field(default_factory=list)
    in_degree: list[int] = field(default_factory=list)
    # node lookup: (kind, box_index) -> node id, per kind
    index: dict[str, dict[int, int]] = field(
        default_factory=lambda: {k: {} for k in NODE_KINDS}
    )

    def add_node(self, kind: str, box_index: int, level: int, tree: str, n_points: int = 0) -> int:
        nid = len(self.nodes)
        self.nodes.append(
            DagNode(id=nid, kind=kind, box_index=box_index, level=level, tree=tree, n_points=n_points)
        )
        self.out_edges.append([])
        self.in_degree.append(0)
        self.index[kind][box_index] = nid
        return nid

    def add_edge(self, src: int, dst: int, op: str, aux=None) -> None:
        self.out_edges[src].append(Edge(src=src, dst=dst, op=op, aux=aux))
        self.in_degree[dst] += 1

    # -- statistics (Tables I and II) -------------------------------------------
    def node_stats(self, size_model=None) -> dict[str, dict]:
        """Per-kind count, size range and in/out-degree range (Table I)."""
        by_kind: dict[str, list[DagNode]] = defaultdict(list)
        for n in self.nodes:
            by_kind[n.kind].append(n)
        out_deg = [len(e) for e in self.out_edges]
        stats = {}
        for kind in NODE_KINDS:
            ns = by_kind.get(kind, [])
            if not ns:
                continue
            ids = [n.id for n in ns]
            din = [self.in_degree[i] for i in ids]
            dout = [out_deg[i] for i in ids]
            entry = {
                "count": len(ns),
                "din_min": min(din),
                "din_max": max(din),
                "dout_min": min(dout),
                "dout_max": max(dout),
            }
            if size_model is not None:
                sizes = [size_model.node_bytes(kind, n_points=n.n_points) for n in ns]
                entry["size_min"] = min(sizes)
                entry["size_max"] = max(sizes)
            stats[kind] = entry
        return stats

    def edge_stats(self, size_model=None) -> dict[str, dict]:
        """Per-op count and message-size range (Table II)."""
        counts: dict[str, int] = defaultdict(int)
        smin: dict[str, int] = {}
        smax: dict[str, int] = {}
        for edges in self.out_edges:
            for e in edges:
                counts[e.op] += 1
                if size_model is not None:
                    npts = self.nodes[e.src].n_points
                    b = size_model.payload_bytes(e.op, n_src_points=npts)
                    smin[e.op] = min(smin.get(e.op, b), b)
                    smax[e.op] = max(smax.get(e.op, b), b)
        out = {}
        for op, c in counts.items():
            entry = {"count": c}
            if size_model is not None:
                entry["size_min"] = smin[op]
                entry["size_max"] = smax[op]
            out[op] = entry
        return out

    @property
    def n_edges(self) -> int:
        return sum(len(e) for e in self.out_edges)

    def critical_path_length(self, cost_fn=None) -> float:
        """Longest path through the DAG (unit edge cost by default)."""
        order = self._topological_order()
        dist = [0.0] * len(self.nodes)
        for nid in order:
            for e in self.out_edges[nid]:
                w = 1.0 if cost_fn is None else cost_fn(e)
                if dist[nid] + w > dist[e.dst]:
                    dist[e.dst] = dist[nid] + w
        return max(dist) if dist else 0.0

    def _topological_order(self) -> list[int]:
        indeg = list(self.in_degree)
        stack = [n.id for n in self.nodes if indeg[n.id] == 0]
        order = []
        while stack:
            nid = stack.pop()
            order.append(nid)
            for e in self.out_edges[nid]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    stack.append(e.dst)
        if len(order) != len(self.nodes):
            raise RuntimeError("DAG has a cycle")
        return order


def _lattice(key: int) -> tuple[int, int, int]:
    _, x, y, z = decode_morton(key)
    return x, y, z


def _dead_below_pruned(tree, pruned: set[int]) -> set[int]:
    """Indices of boxes strictly below any pruned box."""
    dead: set[int] = set()
    for b in tree.boxes:  # BFS order: parents precede children
        pi = tree.key_to_index[b.parent] if b.parent is not None else None
        if pi is not None and (pi in pruned or pi in dead):
            dead.add(b.index)
    return dead


def build_fmm_dag(dual: DualTree, lists: InteractionLists, advanced: bool = True) -> DAG:
    """Build the explicit FMM DAG (basic 8-operator or advanced 11-operator)."""
    src, tgt = dual.source, dual.target
    dag = DAG()
    dead = _dead_below_pruned(tgt, lists.pruned)

    # --- source side: S nodes at leaves, M everywhere -------------------------
    for b in src.boxes:
        dag.add_node("M", b.index, b.level, "source")
    for b in src.boxes:
        if b.is_leaf and b.count > 0:
            s = dag.add_node("S", b.index, b.level, "source", n_points=b.count)
            dag.add_edge(s, dag.index["M"][b.index], "S2M")
    for b in src.boxes:
        if b.parent is not None:
            pi = src.key_to_index[b.parent]
            dag.add_edge(
                dag.index["M"][b.index], dag.index["M"][pi], "M2M", aux=b.key & 7
            )

    # --- target side: L for live boxes at level >= 2, T at eval boxes ----------
    for b in tgt.boxes:
        if b.index in dead:
            continue
        if b.level >= 2:
            dag.add_node("L", b.index, b.level, "target")
    for b in tgt.boxes:
        if b.index in dead:
            continue
        if (b.is_leaf or b.index in lists.pruned) and b.count > 0:
            t = dag.add_node("T", b.index, b.level, "target", n_points=b.count)
            if b.index in dag.index["L"]:
                dag.add_edge(dag.index["L"][b.index], t, "L2T")
    # L2L downward
    for b in tgt.boxes:
        if b.index not in dag.index["L"] or b.level < 3:
            continue
        pi = tgt.key_to_index[b.parent]
        if pi in dag.index["L"]:
            dag.add_edge(
                dag.index["L"][pi], dag.index["L"][b.index], "L2L", aux=b.key & 7
            )

    # --- list 2 ------------------------------------------------------------------
    if advanced:
        # group pairs by (target box); create Is/It lazily
        for ti, sis in lists.l2.items():
            t = tgt.boxes[ti]
            tx, ty, tz = _lattice(t.key)
            if ti not in dag.index["It"]:
                it = dag.add_node("It", ti, t.level, "target")
                dag.add_edge(it, dag.index["L"][ti], "I2L")
            it = dag.index["It"][ti]
            for si in sis:
                s = src.boxes[si]
                sx, sy, sz = _lattice(s.key)
                delta = (tx - sx, ty - sy, tz - sz)
                d = assign_direction(delta)
                if si not in dag.index["Is"]:
                    isid = dag.add_node("Is", si, s.level, "source")
                    dag.add_edge(dag.index["M"][si], isid, "M2I")
                dag.add_edge(dag.index["Is"][si], it, "I2I", aux=(d, delta))
    else:
        for ti, sis in lists.l2.items():
            t = tgt.boxes[ti]
            tx, ty, tz = _lattice(t.key)
            for si in sis:
                s = src.boxes[si]
                sx, sy, sz = _lattice(s.key)
                delta = (tx - sx, ty - sy, tz - sz)
                dag.add_edge(
                    dag.index["M"][si], dag.index["L"][ti], "M2L", aux=delta
                )

    # --- adaptive lists -------------------------------------------------------------
    for ti, sis in lists.l3.items():
        t = dag.index["T"].get(ti)
        if t is None:
            continue
        for si in sis:
            dag.add_edge(dag.index["M"][si], t, "M2T")
    for ti, sis in lists.l4.items():
        for si in sis:
            s_node = dag.index["S"].get(si)
            if s_node is None:
                continue
            dag.add_edge(s_node, dag.index["L"][ti], "S2L")
    for ti, sis in lists.l1.items():
        t = dag.index["T"].get(ti)
        if t is None:
            continue
        for si in sis:
            s_node = dag.index["S"].get(si)
            if s_node is None:
                continue
            dag.add_edge(s_node, t, "S2T")

    return dag


def build_bh_dag(dual: DualTree, mac_pairs: dict[int, list[tuple[str, int]]]) -> DAG:
    """Explicit DAG for Barnes-Hut.

    ``mac_pairs`` maps target leaf box index -> list of ("M2T"|"S2T",
    source box index) decisions from the MAC traversal.
    """
    src, tgt = dual.source, dual.target
    dag = DAG()
    for b in src.boxes:
        dag.add_node("M", b.index, b.level, "source")
    for b in src.boxes:
        if b.is_leaf and b.count > 0:
            s = dag.add_node("S", b.index, b.level, "source", n_points=b.count)
            dag.add_edge(s, dag.index["M"][b.index], "S2M")
    for b in src.boxes:
        if b.parent is not None:
            pi = src.key_to_index[b.parent]
            dag.add_edge(dag.index["M"][b.index], dag.index["M"][pi], "M2M", aux=b.key & 7)
    for ti, ops in mac_pairs.items():
        t_box = tgt.boxes[ti]
        t = dag.add_node("T", ti, t_box.level, "target", n_points=t_box.count)
        for op, si in ops:
            if op == "M2T":
                dag.add_edge(dag.index["M"][si], t, "M2T")
            else:
                s_node = dag.index["S"].get(si)
                if s_node is not None:
                    dag.add_edge(s_node, t, "S2T")
    return dag
