"""DASHMM's public evaluator: the runtime-independent user interface.

Mirrors the framework's design objectives (Section I): the concrete
method and interaction kernel are parameters, and no knowledge of the
underlying runtime is required.  One call chain:

    ev = DashmmEvaluator(LaplaceKernel(p=10), method="fmm")
    report = ev.evaluate(sources, weights, targets)
    report.potentials      # numeric results (numeric mode)
    report.time            # virtual evaluation time on the simulated cluster
    report.runtime_stats   # tasks, steals, parcels, remote bytes
    report.tracer          # per-operation event trace (Figs. 4/5)

``mode="phantom"`` runs the same DAG through the same runtime with the
cost model only (no numerics), enabling paper-scale scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.dashmm.dag import DAG, build_bh_dag, build_fmm_dag
from repro.dashmm.distribution import DistributionPolicy, FmmPolicy
from repro.dashmm.registrar import Registrar
from repro.hpx.runtime import Runtime, RuntimeConfig
from repro.hpx.tracing import Tracer
from repro.kernels.base import Kernel
from repro.kernels.fitops import OperatorFactory
from repro.methods.barneshut import mac_pairs
from repro.sim.costmodel import CostModel, SizeModel
from repro.tree.dualtree import DualTree, build_dual_tree
from repro.tree.lists import InteractionLists, build_lists

METHODS = ("fmm", "fmm-basic", "bh")


@dataclass
class EvaluationReport:
    """Everything one evaluation produced."""

    potentials: np.ndarray | None
    time: float
    runtime_stats: dict[str, Any]
    tracer: Tracer
    dag: DAG
    dual: DualTree
    lists: InteractionLists | None = None
    extras: dict[str, Any] = field(default_factory=dict)


class DashmmEvaluator:
    """Generic HMM evaluation on the asynchronous many-tasking runtime.

    Parameters
    ----------
    kernel:
        Interaction kernel (Laplace, Yukawa, or user-defined).
    method:
        ``"fmm"`` (advanced, merge-and-shift), ``"fmm-basic"`` (eight
        operators, direct M->L), or ``"bh"`` (Barnes-Hut).
    threshold:
        Tree refinement threshold (paper: 60).
    policy:
        Distribution policy for DAG nodes (default: the paper's).
    runtime_config:
        Simulated-cluster configuration (localities, cores, network,
        priorities ...).
    mode:
        ``"numeric"`` computes real potentials; ``"phantom"`` simulates
        cost/communication only.
    theta:
        Barnes-Hut opening angle (ignored for FMM).
    vectorized_setup:
        Run the whole setup phase (tree carving, interaction lists, MAC
        traversal, DAG assembly) through the array-based passes (the
        default).  ``False`` selects the per-box reference loops; both
        produce identical trees, lists and DAGs, hence identical virtual
        clocks.
    assembly:
        ``"declarative"`` (default) materializes the DAG through the
        method's declared schema and the validated
        :class:`repro.dag.DagBuilder`; ``"legacy"`` keeps the original
        imperative assembly (the bit-identity oracle).  Both produce
        the same graph, potentials and virtual clock.
    validate_dag:
        Type-check the built graph against its schema on every build
        (declarative assembly only).  Off by default on the evaluation
        hot path - the golden-graph and property suites gate the
        builder - but cheap enough to enable for debugging.
    """

    def __init__(
        self,
        kernel: Kernel,
        method: str = "fmm",
        threshold: int = 60,
        policy: DistributionPolicy | None = None,
        runtime_config: RuntimeConfig | None = None,
        mode: str = "numeric",
        cost_model: CostModel | None = None,
        size_model: SizeModel | None = None,
        coalesce: bool = True,
        sequential_edges: bool = True,
        batch_edges: bool = True,
        theta: float = 0.5,
        eps: float = 1e-4,
        factory: OperatorFactory | None = None,
        vectorized_setup: bool = True,
        assembly: str = "declarative",
        validate_dag: bool = False,
    ):
        if method not in METHODS:
            raise ValueError(f"method must be one of {METHODS}")
        if assembly not in ("declarative", "legacy"):
            raise ValueError("assembly must be 'declarative' or 'legacy'")
        self.kernel = kernel
        self.method = method
        self.assembly = assembly
        self.validate_dag = validate_dag
        self.threshold = threshold
        self.policy = policy or FmmPolicy()
        self.runtime_config = runtime_config or RuntimeConfig()
        self.mode = mode
        self.cost_model = cost_model or CostModel.for_kernel(kernel.name)
        self.size_model = size_model or SizeModel()
        self.coalesce = coalesce
        self.sequential_edges = sequential_edges
        self.batch_edges = batch_edges
        self.theta = theta
        self.eps = eps
        self.vectorized_setup = vectorized_setup
        # the shared factory fits each translation operator at most once
        # per process, no matter how many evaluators are constructed
        self.factory = factory or (
            OperatorFactory.shared(kernel, eps=eps) if mode == "numeric" else None
        )

    # -- DAG construction -------------------------------------------------------
    @property
    def schema(self):
        """The method's declared DAG schema (:class:`repro.dag.MethodSchema`)."""
        from repro.dag import method_schema

        return method_schema(self.method)

    def _builder(self):
        from repro.dag import DagBuilder

        return DagBuilder(self.schema, validate=self.validate_dag)

    def build_dag(
        self,
        dual: DualTree,
        lists: InteractionLists | None = None,
    ) -> tuple[DAG, InteractionLists | None]:
        vec = self.vectorized_setup
        declarative = self.assembly == "declarative"
        if self.method == "bh":
            pairs = mac_pairs(dual, self.theta, vectorized=vec)
            if declarative:
                return self._builder().build(dual, mac_pairs=pairs), None
            return build_bh_dag(dual, pairs, vectorized=vec), None
        if lists is None:
            lists = build_lists(dual, vectorized=vec)
        if declarative:
            return self._builder().build(dual, lists=lists), lists
        dag = build_fmm_dag(dual, lists, advanced=(self.method == "fmm"), vectorized=vec)
        return dag, lists

    def _resolved_config(self) -> RuntimeConfig:
        """The runtime config with method-aware policy resolution.

        The ``"critical-path"`` policy string is resolved here rather
        than in the scheduler so the near/far operator split matches the
        method actually being evaluated (FMM vs Barnes-Hut); the hpx
        layer never imports method modules.
        """
        cfg = self.runtime_config
        if cfg.policy == "critical-path":
            from repro.hpx.scheduler import CriticalPathPolicy

            if self.method == "bh":
                from repro.methods.barneshut import FAR_FIELD_OPS, NEAR_FIELD_OPS
            else:
                from repro.methods.fmm import FAR_FIELD_OPS, NEAR_FIELD_OPS
            return replace(
                cfg,
                policy=CriticalPathPolicy(
                    near_ops=NEAR_FIELD_OPS, far_ops=FAR_FIELD_OPS
                ),
            )
        return cfg

    # -- evaluation ----------------------------------------------------------------
    def evaluate(
        self,
        sources: np.ndarray,
        weights: np.ndarray,
        targets: np.ndarray,
        dual: DualTree | None = None,
        lists: InteractionLists | None = None,
        dag: DAG | None = None,
    ) -> EvaluationReport:
        """Evaluate potentials at ``targets`` due to weighted ``sources``.

        Prebuilt trees/lists/DAGs may be passed to amortize setup over
        repeated evaluations (the iterative use case of Section IV).
        """
        if self.runtime_config.backend == "parallel":
            # real-core execution: every worker process rebuilds the
            # setup deterministically from the raw arrays, so prebuilt
            # structures are not consumed here (the parent derives the
            # identical ones for the report)
            from repro.dashmm.parallel import evaluate_parallel

            return evaluate_parallel(self, sources, weights, targets)
        if dual is None:
            dual = build_dual_tree(
                sources,
                targets,
                self.threshold,
                source_weights=weights,
                vectorized=self.vectorized_setup,
            )
        if dag is None:
            dag, lists = self.build_dag(dual, lists)
        self.policy.assign(dag, dual, self.runtime_config.n_localities)

        runtime = Runtime(self._resolved_config())
        replay_trace = runtime.schedule_trace
        if self.runtime_config.replay_schedule is not None and replay_trace is not None:
            # the IR anchors replays: a trace recorded against a different
            # graph is a structured divergence, not a silent hang
            want = replay_trace.meta.get("graph_fingerprint")
            if want is not None:
                from repro.dag import dag_fingerprint
                from repro.hpx.scheduler import ReplayDivergence

                have = dag_fingerprint(dag)
                if have != want:
                    raise ReplayDivergence(
                        "replayed trace was recorded against a different DAG "
                        f"(trace graph {want[:16]}..., built graph {have[:16]}...)"
                    )
        reg = Registrar(
            runtime,
            dag,
            dual,
            self.kernel,
            self.factory,
            mode=self.mode,
            cost_model=self.cost_model,
            size_model=self.size_model,
            coalesce=self.coalesce,
            sequential_edges=self.sequential_edges,
            batch_edges=self.batch_edges,
        )
        reg.allocate()
        reg.initial_tasks()
        t = runtime.run()

        potentials = None
        if self.mode == "numeric":
            reg.flush_deferred()
            potentials = np.empty(dual.target.n_points)
            potentials[dual.target.perm] = reg.result
        extras: dict[str, Any] = {
            "untriggered": sum(1 for l in reg.lcos.values() if not l.triggered),
            # the live runtime and registrar, so a checkpointed
            # evaluation can be rewound and resumed (see resume())
            "runtime": runtime,
            "registrar": reg,
        }
        if runtime.checkpoints:
            extras["checkpoints"] = runtime.checkpoints
        if runtime.hazard_detector is not None:
            extras["hazards"] = runtime.hazards
        trace = runtime.schedule_trace
        if trace is not None:
            from repro.dag import dag_fingerprint

            trace.meta.setdefault("method", self.method)
            trace.meta.setdefault("graph_fingerprint", dag_fingerprint(dag))
            extras["schedule_trace"] = trace
        return EvaluationReport(
            potentials=potentials,
            time=t,
            runtime_stats=runtime.stats(),
            tracer=runtime.tracer,
            dag=dag,
            dual=dual,
            lists=lists,
            extras=extras,
        )

    def resume(self, report: EvaluationReport, checkpoint) -> EvaluationReport:
        """Rewind a checkpointed evaluation and drive it to completion.

        ``report`` must come from :meth:`evaluate` on the sim backend
        with ``RuntimeConfig(checkpoint_every=...)`` set (or with an
        abort checkpoint in hand); ``checkpoint`` is one of
        ``report.extras["checkpoints"]`` or the ``exc.checkpoint`` a
        structured abort attached.  The resumed evaluation is
        bit-identical - potentials and virtual clock - to one that was
        never interrupted, which is the fail-safe restart story: a run
        killed at any checkpoint loses only the work since the last
        capture, never its correctness.
        """
        runtime = report.extras["runtime"]
        reg = report.extras["registrar"]
        runtime.restore(checkpoint)
        t = runtime.run()
        potentials = None
        if self.mode == "numeric":
            reg.flush_deferred()
            potentials = np.empty(report.dual.target.n_points)
            potentials[report.dual.target.perm] = reg.result
        extras: dict[str, Any] = {
            "untriggered": sum(1 for l in reg.lcos.values() if not l.triggered),
            "runtime": runtime,
            "registrar": reg,
            "resumed_from": checkpoint.time,
        }
        if runtime.checkpoints:
            extras["checkpoints"] = runtime.checkpoints
        return EvaluationReport(
            potentials=potentials,
            time=t,
            runtime_stats=runtime.stats(),
            tracer=runtime.tracer,
            dag=report.dag,
            dual=report.dual,
            lists=report.lists,
            extras=extras,
        )
