"""DASHMM: the Dynamic Adaptive System for Hierarchical Multipole Methods.

The framework layer of the reproduction (Section IV of the paper): it
builds an *explicit DAG* of expansion nodes and operator edges from the
dual tree and interaction lists, assigns DAG nodes to localities with a
*distribution policy*, instantiates the *implicit DAG* as a network of
user-defined expansion LCOs on the HPX-5-like runtime, and evaluates it
by parallel dataflow with coalesced parcels for remote edges.

The public entry point is :class:`repro.dashmm.evaluator.DashmmEvaluator`,
whose interface is independent of the runtime - end users never touch
:mod:`repro.hpx` directly, mirroring DASHMM's design objective.
"""

from repro.dashmm.dag import DAG, DagNode, build_fmm_dag, build_bh_dag
from repro.dashmm.distribution import (
    BlockPolicy,
    FmmPolicy,
    RandomPolicy,
    partition_points,
)
from repro.dashmm.evaluator import DashmmEvaluator, EvaluationReport
from repro.dashmm.service import EvaluatorSession

__all__ = [
    "DAG",
    "DagNode",
    "build_fmm_dag",
    "build_bh_dag",
    "FmmPolicy",
    "RandomPolicy",
    "BlockPolicy",
    "partition_points",
    "DashmmEvaluator",
    "EvaluationReport",
    "EvaluatorSession",
]
