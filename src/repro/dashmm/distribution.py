"""Distribution policies: mapping the explicit DAG onto localities.

The paper constrains the distribution so that nodes representing the
multipole expansion of a source leaf (and the local expansion of a
target leaf) match the a-priori data distribution: points are sorted at
a coarse level and split equally across localities, so each locality
owns a contiguous Morton range of each ensemble.

The policy evaluated in Section V ("designed for FMMs that implement
the merge-and-shift technique") additionally fixes every source box's
multipole/intermediate node and every target box's local node to the
locality owning that box, and places the *target intermediate* node to
minimize communication while adding slack - implemented here as
majority-vote over the localities of its incoming I2I edges (ties to
the target box's owner).

``RandomPolicy`` and ``BlockPolicy`` are ablation baselines.
"""

from __future__ import annotations

import numpy as np

from repro.dashmm.dag import DAG
from repro.tree.dualtree import DualTree


def partition_points(n_points: int, n_localities: int) -> np.ndarray:
    """Split indices [0, n) into ``n_localities`` near-equal chunks.

    Returns the array of chunk boundaries (length n_localities + 1),
    mirroring the paper's coarse sort + equal distribution.
    """
    return np.linspace(0, n_points, n_localities + 1).astype(np.int64)


def _work_cuts(cw: np.ndarray, n_points: int, n_localities: int) -> np.ndarray:
    """Chunk boundaries splitting cumulative work ``cw`` evenly."""
    total = cw[-1] if len(cw) else 0.0
    if total <= 0:
        return partition_points(n_points, n_localities)
    cuts = [0]
    for i in range(1, n_localities):
        cuts.append(int(np.searchsorted(cw, total * i / n_localities)))
    cuts.append(n_points)
    return np.array(cuts, dtype=np.int64)


def box_owner(box, bounds: np.ndarray) -> int:
    """Locality owning a box: the owner of its middle point.

    Boxes hold contiguous Morton ranges, so this agrees with the data
    distribution at the leaves and is a sensible majority rule above.
    """
    mid = (box.start + box.stop) // 2 if box.count > 0 else box.start
    loc = int(np.searchsorted(bounds, mid, side="right") - 1)
    return min(max(loc, 0), len(bounds) - 2)


class DistributionPolicy:
    """Base class: assigns ``node.locality`` for every DAG node.

    ``balance="count"`` splits each ensemble into equal point counts
    (the paper's coarse sort + equal distribution).  ``balance="work"``
    splits at equal estimated *work* instead, using the cost model to
    weight each box's operations; the paper observes its workloads are
    well-balanced ("each locality reaching the region at the same
    time"), and at reduced problem sizes the work split is what
    recovers that property.
    """

    name = "base"

    def __init__(self, balance: str = "count", cost_model=None):
        if balance not in ("count", "work"):
            raise ValueError("balance must be 'count' or 'work'")
        self.balance = balance
        self.cost_model = cost_model
        # last fingerprint -> cumulative per-point work; the cuts for any
        # locality count derive from these in O(n_localities log n)
        self._work_cache: tuple | None = None

    def assign(self, dag: DAG, dual: DualTree, n_localities: int) -> None:
        raise NotImplementedError

    def _owners(self, dag: DAG, dual: DualTree, n_localities: int):
        if self.balance == "work":
            src_bounds, tgt_bounds = self._work_bounds(dag, dual, n_localities)
        else:
            src_bounds = partition_points(dual.source.n_points, n_localities)
            tgt_bounds = partition_points(dual.target.n_points, n_localities)
        src_owner = [box_owner(b, src_bounds) for b in dual.source.boxes]
        tgt_owner = [box_owner(b, tgt_bounds) for b in dual.target.boxes]
        return src_owner, tgt_owner

    def _work_bounds(self, dag: DAG, dual: DualTree, n_localities: int):
        src_cw, tgt_cw = self._work_cumsums(dag, dual)
        return (
            _work_cuts(src_cw, dual.source.n_points, n_localities),
            _work_cuts(tgt_cw, dual.target.n_points, n_localities),
        )

    def _work_cumsums(self, dag: DAG, dual: DualTree):
        """Cumulative per-point work for both ensembles, cached.

        The edge sweep dominates ``assign``; a scaling study calls
        ``assign`` once per locality count on the *same* DAG, and a
        persistent session re-assigns after every tree splice.  The
        cache keys on the *full* tree fingerprint (counts included) plus
        the DAG's node/edge totals - a value key, not object identity -
        so a spliced tree with shifted per-box counts can never reuse
        stale locality cuts, while a same-distribution resubmit hits.
        """
        from repro.tree.fingerprint import dual_full_fingerprint

        key = (dual_full_fingerprint(dual), len(dag.nodes), dag.n_edges)
        cached = self._work_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]

        from repro.sim.costmodel import CostModel

        cm = self.cost_model or CostModel()
        src_box_work = np.zeros(len(dual.source.boxes))
        tgt_box_work = np.zeros(len(dual.target.boxes))
        for edges in dag.out_edges:
            for e in edges:
                s, t = dag.nodes[e.src], dag.nodes[e.dst]
                c = cm.edge_cost(
                    e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1)
                )
                # source-tree operations execute where the source box
                # lives; everything else lands target-side
                if e.op in ("S2M", "M2M", "M2I", "I2I"):
                    src_box_work[s.box_index] += c
                else:
                    tgt_box_work[t.box_index] += c

        def cumsum_for(tree, box_work):
            pt = np.zeros(tree.n_points)
            for b in tree.boxes:
                if b.count > 0 and box_work[b.index] > 0:
                    pt[b.start : b.stop] += box_work[b.index] / b.count
            return np.cumsum(pt)

        src_cw = cumsum_for(dual.source, src_box_work)
        tgt_cw = cumsum_for(dual.target, tgt_box_work)
        self._work_cache = (key, src_cw, tgt_cw)
        return src_cw, tgt_cw


class FmmPolicy(DistributionPolicy):
    """The paper's merge-and-shift distribution policy."""

    name = "fmm"

    def assign(self, dag: DAG, dual: DualTree, n_localities: int) -> None:
        src_owner, tgt_owner = self._owners(dag, dual, n_localities)
        # pass 1: everything except It is fixed to the owning locality
        for n in dag.nodes:
            owner = src_owner if n.tree == "source" else tgt_owner
            n.locality = owner[n.box_index]
        # pass 2: It placed by incoming-traffic majority (comm cost), ties
        # to the target owner (slack: stays near its consumer)
        incoming: dict[int, dict[int, int]] = {}
        for edges in dag.out_edges:
            for e in edges:
                if e.op == "I2I":
                    src_loc = dag.nodes[e.src].locality
                    incoming.setdefault(e.dst, {}).setdefault(src_loc, 0)
                    incoming[e.dst][src_loc] += 1
        for n in dag.nodes:
            if n.kind != "It":
                continue
            votes = incoming.get(n.id)
            if not votes:
                continue
            owner = tgt_owner[n.box_index]
            best = max(votes.items(), key=lambda kv: (kv[1], kv[0] == owner))
            n.locality = best[0]


class BlockPolicy(DistributionPolicy):
    """Everything at the owning locality (no It optimization)."""

    name = "block"

    def assign(self, dag: DAG, dual: DualTree, n_localities: int) -> None:
        src_owner, tgt_owner = self._owners(dag, dual, n_localities)
        for n in dag.nodes:
            owner = src_owner if n.tree == "source" else tgt_owner
            n.locality = owner[n.box_index]


class RandomPolicy(DistributionPolicy):
    """Random placement of internal nodes (leaf data stays fixed).

    A deliberately bad baseline: the constraint on leaf S/M and leaf
    L/T nodes is honoured, everything else scatters uniformly.
    """

    name = "random"

    def __init__(self, seed: int = 999, balance: str = "count", cost_model=None):
        super().__init__(balance=balance, cost_model=cost_model)
        self.seed = seed

    def assign(self, dag: DAG, dual: DualTree, n_localities: int) -> None:
        rng = np.random.default_rng(self.seed)
        src_owner, tgt_owner = self._owners(dag, dual, n_localities)
        src, tgt = dual.source, dual.target
        for n in dag.nodes:
            owner = src_owner if n.tree == "source" else tgt_owner
            tree = src if n.tree == "source" else tgt
            box = tree.boxes[n.box_index]
            fixed = (
                n.kind in ("S", "T")
                or (n.kind == "M" and box.is_leaf)
                or (n.kind == "L" and box.is_leaf)
            )
            if fixed:
                n.locality = owner[n.box_index]
            else:
                n.locality = int(rng.integers(0, n_localities))
