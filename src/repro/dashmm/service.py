"""Persistent evaluation service: the session API over DASHMM.

:class:`~repro.dashmm.evaluator.DashmmEvaluator.evaluate` rebuilds the
dual tree, the interaction lists and the explicit DAG on every call.
The serving regime this module targets - many repeated queries over a
slowly-moving point set, the time-stepped reuse case of Section IV -
amortizes all of that:

* **Incremental trees** (:mod:`repro.tree.incremental`): a perturbed
  point set updates the previous tree by splicing or re-carving only
  the dirty Morton ranges; unchanged boxes keep their ids.
* **DAG templates**: the structural DAG, the LCO network, the box
  centers and the operator-geometry caches are keyed by the method's
  declared-schema fingerprint (:meth:`repro.dag.MethodSchema.fingerprint`)
  plus the tree-shape fingerprint (:mod:`repro.tree.fingerprint`) and
  kept alive in a small LRU; a repeat submission with the same schema
  and shape skips interaction-list construction and DAG assembly
  entirely and only resets/refills the numeric state, while a method
  (or schema) change misses instead of replaying a stale graph.
* **A long-lived session**: :class:`EvaluatorSession` exposes
  ``submit(points, charges) -> potentials`` over both backends.  On
  ``sim`` the template's registrar is re-driven in process; on
  ``parallel`` the worker processes, their shared-memory arena and
  their rebuilt metadata survive across submissions
  (:class:`repro.dashmm.parallel.PersistentParallelService`).

Correctness bar: every ``submit`` returns potentials bit-identical to a
cold-start evaluation over the same tree.  The warm path changes *when*
work happens, never *what* is computed: LCO folds run in canonical
dedup-key order and every batched flush groups canonically (see
:mod:`repro.dashmm.registrar`), so the direct FIFO drive below is just
another legal schedule of the same dataflow.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.dashmm.dag import DAG, refresh_n_points
from repro.dashmm.registrar import Registrar, _marker_order
from repro.hpx.scheduler import Task, resolve_policy
from repro.tree.box import Domain
from repro.tree.dualtree import DualTree, build_dual_tree
from repro.tree.fingerprint import (
    dual_full_fingerprint,
    dual_shape_fingerprint,
    geometry_token,
)
from repro.tree.incremental import update_dual_tree


class _DirectScheduler:
    """FIFO task drain with the scheduler surface the LCO layer expects.

    The direct drive has no virtual clock and no worker mesh: tasks run
    to completion in enqueue order, with effects applied immediately -
    the same execution discipline as one parallel-backend worker
    (:class:`repro.hpx.parallel.WorkerScheduler`), whose bit-identity
    to the simulator is already certified.  Priorities are ignored on
    purpose: result bits are schedule-independent by construction, and
    a FIFO needs no level bookkeeping.
    """

    def __init__(self, policy):
        self.policy = policy
        self.schedule_driver = None
        self.now = 0.0
        self.hazards = None
        self.lco_dedup = True
        self.lco_dups_suppressed = 0
        self.lco_sets_applied = 0
        self.tasks_run = 0
        self._fifo: deque = deque()

    def enqueue(self, task: Task, locality: int, t: float = 0.0, worker_hint=None) -> None:
        self._fifo.append((task, locality))

    def pop(self):
        if not self._fifo:
            return None
        self.tasks_run += 1
        return self._fifo.popleft()

    def has_ready(self) -> bool:
        return bool(self._fifo)


class _DirectContext:
    """Task context for the direct drive.

    Same surface as the simulator's ``TaskContext`` /
    :class:`repro.hpx.parallel.ParallelContext`; ``locality`` is set by
    the drain loop to the locality each task was enqueued at, so the
    registrar's local/remote edge partitioning - and therefore the
    batched group compositions - match the simulated run exactly.
    """

    __slots__ = ("scheduler", "runtime", "locality", "worker", "time", "hb")

    def __init__(self, scheduler: _DirectScheduler, runtime: "_DirectRuntime"):
        self.scheduler = scheduler
        self.runtime = runtime
        self.locality = 0
        self.worker = 0
        self.time = 0.0
        self.hb = None

    def charge(self, op_class: str, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative charge")

    def spawn(self, task: Task, locality: int | None = None) -> None:
        self.scheduler.enqueue(task, self.locality if locality is None else locality)

    def send_parcel(self, parcel) -> None:
        fn = self.runtime.action(parcel.action)
        self.scheduler.enqueue(
            Task(
                fn=lambda ctx, f=fn, p=parcel: f(ctx, p.target, *p.args, **p.kwargs),
                op_class=parcel.op_class,
                priority=parcel.priority,
            ),
            parcel.target_locality,
        )

    def lco_set(self, lco, value=None, key=None, op_class=None) -> None:
        self.scheduler.lco_sets_applied += 1
        lco._apply_set(value, 0.0, self.scheduler, key=key, op_class=op_class)

    def call_at_completion(self, fn) -> None:
        fn(0.0)


class _DirectRuntime:
    """In-process runtime facade backing one DAG template.

    The subset of the :class:`~repro.hpx.runtime.Runtime` surface the
    registrar touches; parcels short-circuit to task enqueues at the
    destination locality (everything is in one address space).
    """

    def __init__(self, n_localities: int, policy):
        from repro.hpx.gas import GlobalAddressSpace

        self.scheduler = _DirectScheduler(policy)
        self.gas = GlobalAddressSpace(n_localities)
        self._actions: dict = {}

    def register_action(self, name: str, fn) -> None:
        if name in self._actions:
            raise ValueError(f"action {name!r} already registered")
        self._actions[name] = fn

    def action(self, name: str):
        fn = self._actions.get(name)
        if fn is None:
            raise KeyError(f"unregistered action {name!r}")
        return fn

    def enqueue_task(self, task: Task, locality: int) -> None:
        self.scheduler.enqueue(task, locality)

    def drain(self, ctx: _DirectContext) -> None:
        sched = self.scheduler
        while True:
            item = sched.pop()
            if item is None:
                return
            task, loc = item
            ctx.locality = loc
            task.fn(ctx, *task.args)


@dataclass
class _Template:
    """One cached shape: structural DAG + live LCO network + caches."""

    dual: DualTree
    lists: Any
    dag: DAG
    runtime: _DirectRuntime
    registrar: Registrar
    full_fp: tuple
    geom_token: int
    uses: int = 0
    replay: "Any | None" = None


#: edge ops the replay fast path knows how to re-execute; a DAG with
#: anything else (a future method) falls back to the full task drain
_REPLAY_EAGER = frozenset({"S2M", "M2M", "S2L", "M2L"})
_REPLAY_LAZY = frozenset({"M2I", "I2I", "I2L", "L2L"})
_REPLAY_DEFERRED = frozenset({"S2T", "M2T", "L2T"})
_REPLAY_OPS = _REPLAY_EAGER | _REPLAY_LAZY | _REPLAY_DEFERRED


@dataclass
class _ReplayPlan:
    """Shape-frozen execution recipe recorded from one drained run.

    The task drain only decides *when* values are computed and folded;
    *what* is computed is fixed by the DAG (eager edge set, batch group
    compositions, canonical fold order) and the flush cascade groups
    its markers canonically regardless of accumulation order.  The plan
    therefore stores the eager fold lists, the cold S->L batch groups
    and the pre-sorted lazy/deferred edge lists; replaying them against
    fresh weights/coordinates reproduces the drained run bit for bit
    while skipping every task-queue and LCO-inbox round trip.

    Validity: shape + node assignment.  Geometry and weights may change
    freely (everything coordinate-dependent is recomputed or served by
    ``geom_cache`` under its own invalidation); a locality reassignment
    drops the plan because the S->L groups bake destination localities
    in.
    """

    m_folds: list  # (dst id, in-edges sorted by fold key), deepest level first
    l_folds: list  # (dst id, eager in-edges sorted by fold key)
    s2l_groups: list  # cold batch groups: [[edge, ...], ...]
    lazy: tuple  # canonically pre-sorted (m2i, i2i, i2l, l2l) marker lists
    deferred: list  # canonically pre-sorted leaf-output edges


def _capture_replay(reg: Registrar) -> "_ReplayPlan | None":
    """Record a replay plan from a just-drained registrar (pre-flush)."""
    if not (reg.sequential_edges and reg.batch_edges and reg.mode == "numeric"):
        return None
    dag = reg.dag
    nodes = dag.nodes
    edge_key = reg._edge_key
    ins_m: dict[int, list] = {}
    ins_l: dict[int, list] = {}
    s2l_map: "dict[tuple, list]" = {}
    for edges in dag.out_edges:
        for e in edges:
            op = e.op
            if op not in _REPLAY_OPS:
                return None
            if op in ("S2M", "M2M"):
                ins_m.setdefault(e.dst, []).append(e)
            elif op in ("S2L", "M2L"):
                ins_l.setdefault(e.dst, []).append(e)
                if op == "S2L":
                    # one batch group per (source, destination locality,
                    # target level): exactly the composition _run_edges
                    # sees after _process_edges partitions by locality,
                    # preserving out-edge order within the group
                    dst = nodes[e.dst]
                    s2l_map.setdefault(
                        (e.src, dst.locality, dst.level), []
                    ).append(e)
    m_folds = []
    for dst, es in ins_m.items():
        es.sort(key=edge_key)
        m_folds.append((nodes[dst].level, dst, es))
    # children strictly precede parents: deepest destinations first
    m_folds.sort(key=lambda t: (-t[0], t[1]))
    l_folds = []
    for dst, es in ins_l.items():
        es.sort(key=edge_key)
        l_folds.append((dst, es))
    return _ReplayPlan(
        m_folds=[(dst, es) for _, dst, es in m_folds],
        l_folds=l_folds,
        s2l_groups=list(s2l_map.values()),
        lazy=(
            sorted(reg._lazy_m2i, key=_marker_order),
            sorted(reg._lazy_i2i, key=_marker_order),
            sorted(reg._lazy_i2l, key=_marker_order),
            sorted(reg._lazy_l2l, key=_marker_order),
        ),
        deferred=sorted(reg._deferred, key=lambda e: (e.src, e.dst, e.op)),
    )


def _drop_geometry_entries(cache: dict) -> None:
    """Invalidate point-geometry-derived matrices, keep shape-only ones.

    The i2i translation stacks depend only on the DAG's edge set, so
    they survive a point perturbation that preserves the shape; the p2m
    basis rows and the m2t/l2t evaluation matrices are functions of the
    coordinates and must go.
    """
    for k in list(cache):
        if k[0] != "i2i":
            del cache[k]


class EvaluatorSession:
    """Long-lived evaluation service over one :class:`DashmmEvaluator`.

    ``submit(points, charges)`` evaluates the potentials of ``charges``
    at ``points`` (or at an explicit ``targets`` ensemble), reusing
    everything legitimately reusable from previous submissions:

    * identical geometry  -> weights-only refill (no tree work at all);
    * perturbed points    -> incremental tree update; a preserved shape
      reuses the cached DAG template (zero list construction, zero DAG
      assembly - assert via ``repro.tree.lists.COUNTERS`` and
      ``repro.dashmm.dag.COUNTERS``);
    * new shape           -> full template build, cached for next time.

    The session pins the root cube at first use (or takes an explicit
    ``domain``), so every tree of the session lives in one coordinate
    frame and Morton keys stay comparable across submissions; points
    drifting outside the cube are clamped to the boundary cells exactly
    like a cold build over the same domain would clamp them.

    Results are bit-identical to a cold-start
    :meth:`~repro.dashmm.evaluator.DashmmEvaluator.evaluate` over the
    same domain, on both the ``sim`` and ``parallel`` backends.
    """

    def __init__(
        self,
        evaluator,
        domain: Domain | None = None,
        max_templates: int = 4,
    ):
        if evaluator.mode != "numeric":
            raise ValueError(
                "EvaluatorSession serves numeric potentials; phantom-mode "
                "scaling studies run through evaluate()"
            )
        self.evaluator = evaluator
        self.backend = evaluator.runtime_config.backend
        self.domain = domain
        self.max_templates = max_templates
        self._templates: "OrderedDict[tuple, _Template]" = OrderedDict()
        self._current: _Template | None = None
        self._parallel = None
        self._shapes_seen: set = set()
        self.stats: dict[str, Any] = {
            "submits": 0,
            "template_hits": 0,
            "template_misses": 0,
            "tree_updates": [],
        }

    def _schema_token(self) -> str:
        """Declared-schema fingerprint of the evaluator's current method.

        Read at submit time, not cached: a session whose evaluator's
        method is swapped mid-life must key fresh templates under the
        new schema.
        """
        return self.evaluator.schema.fingerprint()

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Release templates and shut down parallel workers (idempotent)."""
        self._templates.clear()
        self._current = None
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "EvaluatorSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        points: np.ndarray,
        charges: np.ndarray,
        targets: np.ndarray | None = None,
    ) -> np.ndarray:
        """Potentials at ``targets`` (default: ``points``) due to ``charges``."""
        sources = np.ascontiguousarray(points, dtype=np.float64)
        charges = np.ascontiguousarray(charges, dtype=np.float64)
        tgts = (
            sources
            if targets is None
            else np.ascontiguousarray(targets, dtype=np.float64)
        )
        if self.domain is None:
            # first use pins the session frame; identical to what a cold
            # evaluate() derives for the same inputs
            self.domain = Domain.bounding(sources, tgts)
        self.stats["submits"] += 1
        if self.backend == "parallel":
            return self._submit_parallel(sources, charges, tgts)
        return self._submit_sim(sources, charges, tgts)

    def submit_many(self, requests) -> list[np.ndarray]:
        """Evaluate a batch of ``(points, charges[, targets])`` requests.

        Requests are coalesced by point-set identity: all queries over
        one geometry run back to back, so after the first one the rest
        ride the pure warm path - shared tree, shared DAG template,
        shared geometry matrices - and their numeric work collapses to
        the batched GEMMs against the cached operator stacks.  Results
        come back in the original request order.
        """
        reqs = [tuple(r) for r in requests]
        order: dict[int, list[int]] = {}
        for i, req in enumerate(reqs):
            gkey = zlib.crc32(np.ascontiguousarray(req[0], dtype=np.float64).tobytes())
            if len(req) > 2 and req[2] is not None:
                gkey = zlib.crc32(
                    np.ascontiguousarray(req[2], dtype=np.float64).tobytes(), gkey
                )
            order.setdefault(gkey, []).append(i)
        out: list = [None] * len(reqs)
        for idxs in order.values():
            for i in idxs:
                out[i] = self.submit(*reqs[i])
        return out

    # -- sim backend -------------------------------------------------------------
    def _submit_sim(self, sources, weights, targets) -> np.ndarray:
        ev = self.evaluator
        cur = self._current
        dual = None
        info = {"source": "rebuilt", "target": "rebuilt"}
        if (
            cur is not None
            and cur.dual.source.n_points == len(sources)
            and cur.dual.target.n_points == len(targets)
        ):
            dual, info = update_dual_tree(
                cur.dual,
                sources,
                targets,
                source_weights=weights,
                vectorized=ev.vectorized_setup,
            )
        if dual is None:
            dual = build_dual_tree(
                sources,
                targets,
                ev.threshold,
                source_weights=weights,
                vectorized=ev.vectorized_setup,
                domain=self.domain,
            )
        self.stats["tree_updates"].append(info)

        # templates are keyed by (schema fingerprint, tree shape): the
        # declared method schema is the identity of the graph-shaping
        # rules, so swapping the evaluator's method (or editing a
        # schema) misses instead of replaying a stale template
        shape = (self._schema_token(), dual_shape_fingerprint(dual))
        tpl = self._templates.get(shape)
        if tpl is None:
            self.stats["template_misses"] += 1
            tpl = self._build_template(dual)
            self._templates[shape] = tpl
            while len(self._templates) > self.max_templates:
                _, evicted = self._templates.popitem(last=False)
                if evicted is self._current:
                    self._current = None
        else:
            self.stats["template_hits"] += 1
            self._templates.move_to_end(shape)
            self._refresh_template(tpl, dual, weights)
        tpl.uses += 1
        self._current = tpl
        return self._execute(tpl)

    def _build_template(self, dual: DualTree) -> _Template:
        ev = self.evaluator
        cfg = ev._resolved_config()
        dag, lists = ev.build_dag(dual)
        ev.policy.assign(dag, dual, cfg.n_localities)
        runtime = _DirectRuntime(
            cfg.n_localities, resolve_policy(cfg.policy, cfg.priorities)
        )
        reg = Registrar(
            runtime,
            dag,
            dual,
            ev.kernel,
            ev.factory,
            mode="numeric",
            cost_model=ev.cost_model,
            size_model=ev.size_model,
            coalesce=ev.coalesce,
            sequential_edges=ev.sequential_edges,
            batch_edges=ev.batch_edges,
        )
        reg.geom_cache = {}
        reg.plan_caching = True
        reg.allocate()
        return _Template(
            dual=dual,
            lists=lists,
            dag=dag,
            runtime=runtime,
            registrar=reg,
            full_fp=dual_full_fingerprint(dual),
            geom_token=geometry_token(dual.source.points, dual.target.points),
        )

    def _refresh_template(self, tpl: _Template, dual: DualTree, weights) -> None:
        """Rebind a cached template to this submission's tree + charges."""
        ev = self.evaluator
        reg = tpl.registrar
        gt = geometry_token(dual.source.points, dual.target.points)
        if gt == tpl.geom_token:
            # pure re-query: same coordinates, (possibly) new charges -
            # keep the template's own tree and every geometry cache
            tpl.dual.source.set_weights(weights)
        else:
            reg.rebind(dual)
            full = dual_full_fingerprint(dual)
            if full != tpl.full_fp:
                # points crossed leaf boundaries: node sizes and (under
                # work balancing) locality cuts may have shifted
                refresh_n_points(tpl.dag, dual)
                old_locs = [nd.locality for nd in tpl.dag.nodes]
                ev.policy.assign(
                    tpl.dag, dual, ev._resolved_config().n_localities
                )
                if [nd.locality for nd in tpl.dag.nodes] != old_locs:
                    # the replay plan, the flush plans and the i2i
                    # stacks all bake group-by-locality compositions
                    # in; a shifted assignment makes them stale (the
                    # locality-keyed cache entries could otherwise
                    # alias a different group of the same size)
                    tpl.replay = None
                    reg.invalidate_plans()
                    reg.geom_cache.clear()
                tpl.full_fp = full
            _drop_geometry_entries(reg.geom_cache)
            tpl.geom_token = gt
            tpl.dual = dual
        reg.reset()

    def _execute(self, tpl: _Template) -> np.ndarray:
        reg, runtime = tpl.registrar, tpl.runtime
        if tpl.replay is not None:
            self._replay(tpl)
        else:
            ctx = _DirectContext(runtime.scheduler, runtime)
            reg.initial_tasks()
            runtime.drain(ctx)
            tpl.replay = _capture_replay(reg)
        reg.flush_deferred()
        out = np.empty(tpl.dual.target.n_points)
        out[tpl.dual.target.perm] = reg.result
        return out

    def _replay(self, tpl: _Template) -> None:
        """Re-execute a recorded plan against the current tree + charges.

        Leaves the registrar in exactly the state a full task drain
        leaves it in - M/L expansions folded in canonical key order,
        marker and deferred lists populated in canonical order - so the
        ordinary :meth:`Registrar.flush_deferred` cascade finishes the
        evaluation bit-identically.
        """
        reg = tpl.registrar
        rp = tpl.replay
        lcos = reg.lcos
        nodes = reg.dag.nodes
        dom = reg.dual.domain
        m2m = reg.factory.m2m
        # upward sweep: stacked leaf fits, then per-node canonical folds
        s2m = reg._leaf_multipoles()
        for dst, es in rp.m_folds:
            acc = None
            for e in es:
                if e.op == "S2M":
                    v = s2m[nodes[e.src].box_index]
                else:
                    v = m2m(e.aux, dom.box_size(nodes[e.src].level)) @ lcos[e.src].data
                acc = v if acc is None else acc + v
            lcos[dst].data = acc
        # list-X contributions in the cold batch compositions
        values: dict[int, object] = {}
        for group in rp.s2l_groups:
            if len(group) == 1:
                values[id(group[0])] = reg._edge_value(group[0])
            else:
                key = ("S2L", nodes[group[0].dst].level)
                reg._batch_values(key, group, values)
        for dst, es in rp.l_folds:
            acc = None
            for e in es:
                v = values[id(e)] if e.op == "S2L" else reg._edge_value(e)
                acc = v if acc is None else acc + v
            lcos[dst].data = acc
        # the bridge, downward shift and leaf outputs flush from here
        m2i, i2i, i2l, l2l = rp.lazy
        reg._lazy_m2i = list(m2i)
        reg._lazy_i2i = list(i2i)
        reg._lazy_i2l = list(i2l)
        reg._lazy_l2l = list(l2l)
        reg._deferred = list(rp.deferred)

    # -- parallel backend --------------------------------------------------------
    def _submit_parallel(self, sources, weights, targets) -> np.ndarray:
        from repro.dashmm.parallel import PersistentParallelService

        svc = self._parallel
        if svc is not None and not svc.compatible(len(sources), len(targets)):
            # n changed: the shm blocks are fixed-size, so the service
            # respawns (the operator cache still carries over via disk)
            svc.close()
            svc = self._parallel = None
        try:
            if svc is None:
                svc = self._parallel = PersistentParallelService(
                    self.evaluator, self.domain
                )
                out, info = svc.start(sources, weights, targets)
            else:
                out, info = svc.submit(sources, weights, targets)
        except BaseException:
            # a terminally failed service has already torn its fleet
            # down; drop the reference so the next submit starts a
            # fresh one instead of raising "service failed" forever
            self._parallel = None
            raise
        self.stats["tree_updates"].append(info["tree"])
        shape = (self._schema_token(), info["shape"])
        if shape in self._shapes_seen:
            self.stats["template_hits"] += 1
        else:
            self.stats["template_misses"] += 1
            self._shapes_seen.add(shape)
        return out
