"""Explicit-DAG export for inspection and external tooling.

DASHMM keeps the explicit DAG around for partitioning and distribution;
here it can also be dumped as JSON (full fidelity) or Graphviz DOT
(small DAGs, for figures like the paper's Fig. 1c) and round-tripped.
"""

from __future__ import annotations

import json

from repro.dashmm.dag import DAG, DagNode, Edge

_KIND_COLORS = {
    "S": "lightblue",
    "M": "gold",
    "Is": "orange",
    "It": "tomato",
    "L": "palegreen",
    "T": "plum",
}


def dag_to_json(dag: DAG) -> str:
    """Serialize a DAG (nodes, edges, localities) to a JSON string."""
    data = {
        "nodes": [
            {
                "id": n.id,
                "kind": n.kind,
                "box": n.box_index,
                "level": n.level,
                "tree": n.tree,
                "n_points": n.n_points,
                "locality": n.locality,
            }
            for n in dag.nodes
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "op": e.op, "aux": _aux_to_json(e.aux)}
            for edges in dag.out_edges
            for e in edges
        ],
    }
    return json.dumps(data)


def dag_from_json(text: str) -> DAG:
    """Inverse of :func:`dag_to_json`."""
    data = json.loads(text)
    dag = DAG()
    for n in data["nodes"]:
        nid = dag.add_node(n["kind"], n["box"], n["level"], n["tree"], n["n_points"])
        dag.nodes[nid].locality = n["locality"]
    for e in data["edges"]:
        dag.add_edge(e["src"], e["dst"], e["op"], aux=_aux_from_json(e["aux"]))
    return dag


def _aux_to_json(aux):
    if aux is None or isinstance(aux, (int, str)):
        return aux
    if isinstance(aux, tuple):
        return {"t": [_aux_to_json(v) for v in aux]}
    return aux


def _aux_from_json(aux):
    if isinstance(aux, dict) and "t" in aux:
        return tuple(_aux_from_json(v) for v in aux["t"])
    if isinstance(aux, list):
        return tuple(aux)
    return aux


def dag_to_dot(dag: DAG, max_nodes: int = 500) -> str:
    """Graphviz DOT rendering (refuses DAGs too large to draw)."""
    if len(dag.nodes) > max_nodes:
        raise ValueError(
            f"DAG has {len(dag.nodes)} nodes; raise max_nodes to render anyway"
        )
    lines = ["digraph dashmm {", "  rankdir=LR;"]
    for n in dag.nodes:
        color = _KIND_COLORS.get(n.kind, "white")
        lines.append(
            f'  n{n.id} [label="{n.kind}{n.box_index}@L{n.level}"'
            f' style=filled fillcolor={color}];'
        )
    for edges in dag.out_edges:
        for e in edges:
            lines.append(f'  n{e.src} -> n{e.dst} [label="{e.op}"];')
    lines.append("}")
    return "\n".join(lines)
