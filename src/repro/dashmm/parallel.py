"""Real-parallel DASHMM evaluation: the worker body and entry point.

``RuntimeConfig(backend="parallel")`` routes
:meth:`~repro.dashmm.evaluator.DashmmEvaluator.evaluate` here.  The
generic process/queue/shared-memory machinery lives in
:mod:`repro.hpx.parallel`; this module supplies the DASHMM-specific
pieces: what each locality process does, and how the evaluation DAG is
partitioned, executed and made to produce potentials **bit-identical**
to the simulator backend.

Execution model - *replicated metadata, partitioned execution*:

* Bulk data (source/target points, weights, the result vector) lives in
  shared memory; each worker maps the same pages.
* Every worker deterministically rebuilds the dual tree, interaction
  lists, DAG and distribution from those arrays - setup is a pure
  function of the inputs, so all ranks (and the parent) agree on node
  ids, edge order and localities without shipping the structures.
* Each worker allocates expansion LCOs only for *its* nodes and runs
  the standard :class:`~repro.dashmm.registrar.Registrar` machinery on
  them.  Remote out-edges leave as framed queue parcels through the
  unchanged coalescing path; each parcel ships the source node's
  expansion data, which the receiver mirrors so
  ``Registrar._data_of`` works for remote sources.

Why the result is bit-identical to the simulator:

* LCO contributions fold at trigger time in canonical dedup-key order,
  so fold order never depends on arrival order (PRs 4/5).
* Every batched flush groups by a canonical key that *includes the
  destination node's locality*, and an edge always executes at its
  destination's locality - so the markers one worker accumulates are
  exactly one locality-keyed simulator group, and the stacked GEMM
  operands (hence the floats) match byte for byte.
* The lazy bridge/downward cascade needs remote expansion data only at
  flush time, which runs as a staged pipeline with deterministic
  exchanges: dataflow quiescence, then M->I flush (M data already
  mirrored), Is exchange, I->I flush, It exchange, I->L flush, a
  per-level L->L loop (parent-L exchange before each level), a final-L
  exchange for remote L->T reads, and the deferred leaf-output flush.
  Exchange contents and barrier counts are derived from the replicated
  DAG, identically on every rank.
"""

from __future__ import annotations

import queue as _queue
import shutil
import tempfile
import traceback

import numpy as np

from repro.dashmm.registrar import Registrar
from repro.hpx.parallel import (
    LocalityRuntime,
    ParallelError,
    ParallelRuntime,
    QueueChannel,
    WorkerScheduler,
    seed_worker_rngs,
)
from repro.hpx.scheduler import ScheduleFuzzer, Task, resolve_policy


class ParallelRegistrar(Registrar):
    """Registrar for one locality process.

    Differences from the simulator registrar, all confined here:

    * :meth:`allocate` creates LCOs only for this rank's nodes;
    * :meth:`_data_of` falls back to the parcel/stage mirror for remote
      nodes;
    * ``_mp_localities`` restricts the batched leaf-multipole fit to
      this rank's batches (the base keying already matches).
    """

    def __init__(self, rank: int, *args, **kwargs):
        self._rank = rank
        self._mirror: dict[int, object] = {}
        super().__init__(*args, **kwargs)
        self._mp_localities = {rank}

    def _data_of(self, node_id: int):
        lco = self.lcos.get(node_id)
        if lco is not None:
            return lco.data
        return self._mirror[node_id]

    def allocate(self) -> None:
        from repro.dashmm.registrar import ExpansionLCO

        for node in self.dag.nodes:
            n_in = self.dag.in_degree[node.id]
            if node.kind == "S" or n_in == 0 or node.locality != self._rank:
                continue
            lco = ExpansionLCO(self.runtime, node.locality, node, n_in, self)
            self.lcos[node.id] = lco
            lco.register_continuation(
                Task(
                    fn=self._continuation,
                    args=(node.id,),
                    op_class=f"edges:{node.kind}",
                    priority=self._node_priority(node),
                )
            )


def _stage_plan(dag, rank: int, n: int) -> dict:
    """Deterministic exchange plan for the staged flush pipeline.

    For each stage, which locally-owned expansion nodes this rank must
    ship to which peers (source nodes of cross-locality lazy edges),
    plus the global, rank-independent list of L->L parent levels (every
    rank walks the same level sequence so the barrier counts line up).
    """
    nodes = dag.nodes
    sends: dict[object, dict[int, set]] = {
        "i2i": {}, "i2l": {}, "l2t": {}
    }
    l2l_levels: set[int] = set()
    for edges in dag.out_edges:
        for e in edges:
            op = e.op
            if op == "I2I":
                stage: object = "i2i"
            elif op == "I2L":
                stage = "i2l"
            elif op == "L2T":
                stage = "l2t"
            elif op == "L2L":
                lvl = nodes[e.src].level
                l2l_levels.add(lvl)
                stage = ("l2l", lvl)
                sends.setdefault(stage, {})
            else:
                continue
            sloc, dloc = nodes[e.src].locality, nodes[e.dst].locality
            if sloc == rank and dloc != rank:
                sends[stage].setdefault(dloc, set()).add(e.src)
    return {
        "sends": {
            k: {dst: sorted(v) for dst, v in m.items()}
            for k, m in sends.items()
        },
        "l2l_levels": sorted(l2l_levels),
    }


class _WorkerBody:
    """The evaluation loop of one locality process."""

    def __init__(self, rank: int, n: int, spec: dict, manifest: dict, inboxes, parent_q):
        self.rank = rank
        self.n = n
        self.spec = spec
        self.inbox = inboxes[rank]
        self.parent_q = parent_q
        self.channel = QueueChannel(rank, inboxes)
        self._stage_ends: dict[object, int] = {}
        self._expected = 0
        self._stopped = False
        self._build(manifest)

    # -- deterministic setup (untimed) -----------------------------------------
    def _build(self, manifest) -> None:
        from repro.dashmm.evaluator import DashmmEvaluator
        from repro.hpx.gas import ShmArena
        from repro.kernels.fitops import OperatorFactory
        from repro.tree.dualtree import build_dual_tree

        spec = self.spec
        seed_worker_rngs(spec["seed"], self.rank)
        self.arena = ShmArena.attach(manifest)
        sources = self.arena.get("sources")
        weights = self.arena.get("weights")
        targets = self.arena.get("targets")

        factory = OperatorFactory.shared(spec["kernel"], eps=spec["eps"])
        if spec["factory_path"]:
            factory.load(path=spec["factory_path"], strict=False)
        ev = DashmmEvaluator(
            spec["kernel"],
            method=spec["method"],
            threshold=spec["threshold"],
            policy=spec["policy"],
            runtime_config=spec["config"],
            mode="numeric",
            cost_model=spec["cost_model"],
            size_model=spec["size_model"],
            theta=spec["theta"],
            eps=spec["eps"],
            factory=factory,
            vectorized_setup=spec["vectorized_setup"],
        )
        dual = build_dual_tree(
            sources,
            targets,
            ev.threshold,
            source_weights=weights,
            vectorized=ev.vectorized_setup,
        )
        dag, _ = ev.build_dag(dual)
        ev.policy.assign(dag, dual, self.n)

        rcfg = ev._resolved_config()
        policy = resolve_policy(rcfg.policy, rcfg.priorities)
        driver = (
            ScheduleFuzzer(rcfg.fuzz_schedule + self.rank)
            if rcfg.fuzz_schedule is not None
            else None
        )
        self.sched = WorkerScheduler(self.rank, policy, schedule_driver=driver)
        lrt = LocalityRuntime(self.rank, self.n, self.sched)
        self.reg = ParallelRegistrar(
            self.rank,
            lrt,
            dag,
            dual,
            ev.kernel,
            factory,
            mode="numeric",
            cost_model=ev.cost_model,
            size_model=ev.size_model,
            coalesce=True,
            sequential_edges=True,
            batch_edges=True,
        )
        # all ranks share the one result vector; each writes only the
        # target-box slices of its own T nodes (disjoint by construction)
        self.reg.result = self.arena.get("result")
        self.reg.allocate()
        self._expected = sum(
            dag.in_degree[nid] for nid in self.reg.lcos
        )
        self.plan = _stage_plan(dag, self.rank, self.n)
        from repro.hpx.parallel import ParallelContext

        self.ctx = ParallelContext(self.sched, self._on_parcel)

    # -- parcel egress ---------------------------------------------------------
    def _on_parcel(self, parcel) -> None:
        if parcel.action != "dashmm_edges":
            raise ParallelError(
                f"parallel backend cannot route action {parcel.action!r}"
            )
        node_id, positions = parcel.args
        lco = self.reg.lcos.get(node_id)
        data = lco.data if lco is not None else None
        self.channel.send(
            parcel.target_locality,
            "edges",
            (node_id, positions, parcel.priority, data),
        )

    # -- frame ingress ---------------------------------------------------------
    def _drain(self, block: bool = False, timeout: float = 0.05) -> bool:
        """Process one inbox message; False when none was available."""
        try:
            msg = self.inbox.get(block, timeout) if block else self.inbox.get_nowait()
        except _queue.Empty:
            return False
        tag = msg[0]
        if tag == "frame":
            _, src, seq, kind, payload = msg
            if self.channel.handle_frame(src, seq, kind):
                self._dispatch(kind, payload)
        elif tag == "ack":
            self.channel.handle_ack(msg[2])
        elif tag == "stop":
            self._stopped = True
        # "go" is consumed by run() before the loops start
        return True

    def _dispatch(self, kind: str, payload) -> None:
        if kind == "edges":
            node_id, positions, priority, data = payload
            if data is not None:
                self.reg._mirror[node_id] = data
            self.sched.enqueue(
                Task(
                    fn=self.reg._edges_action,
                    args=(self.rank, node_id, positions),
                    op_class="parcel:edges",
                    priority=priority,
                ),
                self.rank,
            )
        elif kind == "stage":
            name, data = payload
            self.reg._mirror.update(data)
        elif kind == "stage_end":
            self._stage_ends[payload] = self._stage_ends.get(payload, 0) + 1
        else:  # pragma: no cover - defensive
            raise ParallelError(f"unknown frame kind {kind!r}")

    # -- dataflow phase --------------------------------------------------------
    def _run_dataflow(self) -> None:
        """Drive the DAG until local quiescence.

        Local termination detection: this rank is done when every input
        of every local LCO has been applied (``applied == expected``; an
        arriving edge frame always applies at least one, so reaching the
        total implies no frame is still in flight toward us), the ready
        queues are empty, and all our outbound frames are acked.
        """
        self.reg.initial_tasks()
        sched, ctx = self.sched, self.ctx
        while (
            sched.lco_sets_applied < self._expected
            or sched.has_ready()
            or self.channel.unacked
        ):
            while self._drain(block=False):
                pass
            task = sched.pop()
            if task is not None:
                task.fn(ctx, *task.args)
            elif (
                sched.lco_sets_applied < self._expected or self.channel.unacked
            ):
                self._drain(block=True, timeout=0.05)

    # -- staged flush pipeline -------------------------------------------------
    def _exchange(self, stage, send_map: dict) -> None:
        """Ship stage data, then barrier on every peer's stage_end."""
        for dst in sorted(send_map):
            payload = {nid: self.reg._data_of(nid) for nid in send_map[dst]}
            self.channel.send(dst, "stage", (stage, payload))
        for dst in range(self.n):
            if dst != self.rank:
                self.channel.send(dst, "stage_end", stage)
        while (
            self._stage_ends.get(stage, 0) < self.n - 1
            or self.channel.unacked
        ):
            self._drain(block=True, timeout=0.05)

    def _run_flushes(self) -> None:
        reg, plan = self.reg, self.plan
        sends = plan["sends"]
        if reg._lazy_m2i:
            reg._flush_m2i()
        if self.n > 1:
            self._exchange("i2i", sends["i2i"])
        if reg._lazy_i2i:
            reg._flush_i2i()
        if self.n > 1:
            self._exchange("i2l", sends["i2l"])
        if reg._lazy_i2l:
            reg._flush_i2l()
        by_level = dict(reg._l2l_by_level())
        for level in plan["l2l_levels"]:
            if self.n > 1:
                self._exchange(("l2l", level), sends.get(("l2l", level), {}))
            edges = by_level.get(level)
            if edges:
                reg._flush_l2l_level(level, edges)
        if self.n > 1:
            self._exchange("l2t", sends["l2t"])
        reg.flush_deferred()

    # -- protocol --------------------------------------------------------------
    def run(self) -> None:
        self.parent_q.put(("ready", self.rank))
        while True:  # wait for GO (nothing else can arrive before it)
            msg = self.inbox.get()
            if msg[0] == "go":
                break
            if msg[0] == "stop":
                self.arena.close()
                return
        self._run_dataflow()
        self._run_flushes()
        self.parent_q.put(("done", self.rank, self.stats()))
        while not self._stopped:
            self._drain(block=True, timeout=1.0)
        self.arena.close()

    def stats(self) -> dict:
        return {
            "rank": self.rank,
            "tasks_run": self.sched.tasks_run,
            "lco_sets": self.sched.lco_sets_applied,
            "lcos": len(self.reg.lcos),
            **self.channel.stats(),
        }


def _worker_main(rank: int, n: int, spec: dict, manifest: dict, inboxes, parent_q) -> None:
    """Process entry point (module-level for spawn picklability)."""
    try:
        _WorkerBody(rank, n, spec, manifest, inboxes, parent_q).run()
    except BaseException:
        try:
            parent_q.put(("error", rank, traceback.format_exc()))
        finally:
            raise


def _validate(evaluator) -> None:
    cfg = evaluator.runtime_config
    if evaluator.mode != "numeric":
        raise ValueError(
            "backend='parallel' computes real potentials; phantom-mode "
            "scaling studies run on the simulator backend"
        )
    for flag in ("coalesce", "sequential_edges", "batch_edges"):
        if not getattr(evaluator, flag):
            raise ValueError(
                f"backend='parallel' requires {flag}=True (the ablation "
                "paths are simulator-only)"
            )
    if cfg.replay_schedule is not None:
        raise ValueError(
            "schedule replay records simulator decisions; it cannot "
            "drive the parallel backend"
        )
    if cfg.detect_hazards:
        raise ValueError(
            "the happens-before detector instruments the simulator's "
            "virtual clock; run hazard detection on backend='sim'"
        )


def evaluate_parallel(evaluator, sources, weights, targets):
    """Run one evaluation on real cores; returns an EvaluationReport.

    Setup (trees, DAG, operator fits) is rebuilt deterministically in
    every worker and excluded from the timed window, which spans GO to
    the last worker's DONE.  The parent's fitted-operator cache is
    handed to workers through a disk snapshot so fits warmed by a prior
    simulator run are not refitted per rank.
    """
    from repro.dashmm.evaluator import EvaluationReport
    from repro.hpx.tracing import Tracer
    from repro.tree.dualtree import build_dual_tree

    _validate(evaluator)
    cfg = evaluator.runtime_config
    sources = np.ascontiguousarray(sources, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    targets = np.ascontiguousarray(targets, dtype=np.float64)

    # parent-side replica of the setup, for the report and the inverse
    # permutation (identical to what every worker derives)
    dual = build_dual_tree(
        sources,
        targets,
        evaluator.threshold,
        source_weights=weights,
        vectorized=evaluator.vectorized_setup,
    )
    dag, lists = evaluator.build_dag(dual)
    evaluator.policy.assign(dag, dual, cfg.n_localities)

    tmpdir = tempfile.mkdtemp(prefix="hmmops_")
    try:
        factory_path = None
        if evaluator.factory is not None:
            factory_path = str(evaluator.factory.save(directory=tmpdir))
        spec = {
            "kernel": evaluator.kernel,
            "method": evaluator.method,
            "threshold": evaluator.threshold,
            "policy": evaluator.policy,
            "config": cfg,
            "cost_model": evaluator.cost_model,
            "size_model": evaluator.size_model,
            "theta": evaluator.theta,
            "eps": evaluator.eps,
            "vectorized_setup": evaluator.vectorized_setup,
            "factory_path": factory_path,
            "seed": cfg.seed,
        }
        runtime = ParallelRuntime(
            cfg.n_localities,
            _worker_main,
            spec,
            arrays={"sources": sources, "weights": weights, "targets": targets},
            outputs={"result": ((dual.target.n_points,), np.float64)},
            start_method=cfg.start_method,
        )
        out = runtime.run()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    potentials = np.empty(dual.target.n_points)
    potentials[dual.target.perm] = out["result"]
    stats = {
        "backend": "parallel",
        "n_localities": cfg.n_localities,
        "start_method": cfg.start_method,
        "wall_time": runtime.wall_time,
        "tasks": sum(w["tasks_run"] for w in runtime.worker_stats),
        "workers": runtime.worker_stats,
    }
    return EvaluationReport(
        potentials=potentials,
        time=runtime.wall_time,
        runtime_stats=stats,
        tracer=Tracer(enabled=False),
        dag=dag,
        dual=dual,
        lists=lists,
        extras={"backend": "parallel"},
    )
