"""Real-parallel DASHMM evaluation: the worker body and entry point.

``RuntimeConfig(backend="parallel")`` routes
:meth:`~repro.dashmm.evaluator.DashmmEvaluator.evaluate` here.  The
generic process/queue/shared-memory machinery lives in
:mod:`repro.hpx.parallel`; this module supplies the DASHMM-specific
pieces: what each locality process does, and how the evaluation DAG is
partitioned, executed and made to produce potentials **bit-identical**
to the simulator backend.

Execution model - *replicated metadata, partitioned execution*:

* Bulk data (source/target points, weights, the result vector) lives in
  shared memory; each worker maps the same pages.
* Every worker deterministically rebuilds the dual tree, interaction
  lists, DAG and distribution from those arrays - setup is a pure
  function of the inputs, so all ranks (and the parent) agree on node
  ids, edge order and localities without shipping the structures.
* Each worker allocates expansion LCOs only for *its* nodes and runs
  the standard :class:`~repro.dashmm.registrar.Registrar` machinery on
  them.  Remote out-edges leave as framed queue parcels through the
  unchanged coalescing path; each parcel ships the source node's
  expansion data, which the receiver mirrors so
  ``Registrar._data_of`` works for remote sources.

Why the result is bit-identical to the simulator:

* LCO contributions fold at trigger time in canonical dedup-key order,
  so fold order never depends on arrival order (PRs 4/5).
* Every batched flush groups by a canonical key that *includes the
  destination node's locality*, and an edge always executes at its
  destination's locality - so the markers one worker accumulates are
  exactly one locality-keyed simulator group, and the stacked GEMM
  operands (hence the floats) match byte for byte.
* The lazy bridge/downward cascade needs remote expansion data only at
  flush time, which runs as a staged pipeline with deterministic
  exchanges: dataflow quiescence, then M->I flush (M data already
  mirrored), Is exchange, I->I flush, It exchange, I->L flush, a
  per-level L->L loop (parent-L exchange before each level), a final-L
  exchange for remote L->T reads, and the deferred leaf-output flush.
  Exchange contents and barrier counts are derived from the replicated
  DAG, identically on every rank.
"""

from __future__ import annotations

import queue as _queue
import shutil
import tempfile
import time
import traceback

import numpy as np

from repro.dashmm.registrar import Registrar
from repro.hpx.parallel import (
    LocalityRuntime,
    ParallelError,
    ParallelRuntime,
    QueueChannel,
    WorkerScheduler,
    seed_worker_rngs,
)
from repro.hpx.scheduler import ScheduleFuzzer, Task, resolve_policy


class ParallelRegistrar(Registrar):
    """Registrar for one locality process.

    Differences from the simulator registrar, all confined here:

    * :meth:`allocate` creates LCOs only for this rank's nodes;
    * :meth:`_data_of` falls back to the parcel/stage mirror for remote
      nodes;
    * ``_mp_localities`` restricts the batched leaf-multipole fit to
      this rank's batches (the base keying already matches).
    """

    def __init__(self, rank: int, *args, **kwargs):
        self._rank = rank
        self._mirror: dict[int, object] = {}
        super().__init__(*args, **kwargs)
        self._mp_localities = {rank}

    def _data_of(self, node_id: int):
        lco = self.lcos.get(node_id)
        if lco is not None:
            return lco.data
        return self._mirror[node_id]

    def allocate(self) -> None:
        from repro.dashmm.registrar import ExpansionLCO

        for node in self.dag.nodes:
            n_in = self.dag.in_degree[node.id]
            if node.kind == "S" or n_in == 0 or node.locality != self._rank:
                continue
            lco = ExpansionLCO(self.runtime, node.locality, node, n_in, self)
            self.lcos[node.id] = lco
            lco.register_continuation(
                Task(
                    fn=self._continuation,
                    args=(node.id,),
                    op_class=f"edges:{node.kind}",
                    priority=self._node_priority(node),
                )
            )


def _stage_plan(dag, rank: int, n: int) -> dict:
    """Deterministic exchange plan for the staged flush pipeline.

    For each stage, which locally-owned expansion nodes this rank must
    ship to which peers (source nodes of cross-locality lazy edges),
    plus the global, rank-independent list of L->L parent levels (every
    rank walks the same level sequence so the barrier counts line up).
    """
    nodes = dag.nodes
    sends: dict[object, dict[int, set]] = {
        "i2i": {}, "i2l": {}, "l2t": {}
    }
    l2l_levels: set[int] = set()
    for edges in dag.out_edges:
        for e in edges:
            op = e.op
            if op == "I2I":
                stage: object = "i2i"
            elif op == "I2L":
                stage = "i2l"
            elif op == "L2T":
                stage = "l2t"
            elif op == "L2L":
                lvl = nodes[e.src].level
                l2l_levels.add(lvl)
                stage = ("l2l", lvl)
                sends.setdefault(stage, {})
            else:
                continue
            sloc, dloc = nodes[e.src].locality, nodes[e.dst].locality
            if sloc == rank and dloc != rank:
                sends[stage].setdefault(dloc, set()).add(e.src)
    return {
        "sends": {
            k: {dst: sorted(v) for dst, v in m.items()}
            for k, m in sends.items()
        },
        "l2l_levels": sorted(l2l_levels),
    }


class _WorkerBody:
    """The evaluation loop of one locality process."""

    def __init__(self, rank: int, n: int, spec: dict, manifest: dict, inboxes, parent_q):
        self.rank = rank
        self.n = n
        self.spec = spec
        self.inbox = inboxes[rank]
        self.parent_q = parent_q
        self.channel = QueueChannel(rank, inboxes)
        self._stage_ends: dict[object, int] = {}
        self._expected = 0
        self._stopped = False
        self._build(manifest)

    # -- deterministic setup (untimed) -----------------------------------------
    def _build(self, manifest) -> None:
        from repro.dashmm.evaluator import DashmmEvaluator
        from repro.hpx.gas import ShmArena
        from repro.kernels.fitops import OperatorFactory
        from repro.tree.dualtree import build_dual_tree

        spec = self.spec
        seed_worker_rngs(spec["seed"], self.rank)
        self.arena = ShmArena.attach(manifest)
        sources = self.arena.get("sources")
        weights = self.arena.get("weights")
        targets = self.arena.get("targets")

        factory = OperatorFactory.shared(spec["kernel"], eps=spec["eps"])
        if spec["factory_path"]:
            factory.load(path=spec["factory_path"], strict=False)
        self.factory = factory
        self.ev = DashmmEvaluator(
            spec["kernel"],
            method=spec["method"],
            threshold=spec["threshold"],
            policy=spec["policy"],
            runtime_config=spec["config"],
            mode="numeric",
            cost_model=spec["cost_model"],
            size_model=spec["size_model"],
            theta=spec["theta"],
            eps=spec["eps"],
            factory=factory,
            vectorized_setup=spec["vectorized_setup"],
        )
        # a persistent session pins the root cube so trees of every
        # round live in one coordinate frame (absent for single-shot)
        self.dual = build_dual_tree(
            sources,
            targets,
            self.ev.threshold,
            source_weights=weights,
            vectorized=self.ev.vectorized_setup,
            domain=spec.get("domain"),
        )
        self.dag, _ = self.ev.build_dag(self.dual)
        self.ev.policy.assign(self.dag, self.dual, self.n)
        # geometry-matrix cache shared by every registrar this body
        # builds across rounds; only worth the memory when rounds repeat
        self._geom_cache = {} if spec.get("persistent") else None
        self._make_registrar(self.dual, self.dag)

    def _make_registrar(self, dual, dag, centers: dict | None = None) -> None:
        """(Re)build the per-round execution state over ``dual``/``dag``.

        Called at setup and again whenever a round changes the node
        distribution or the tree shape; the shared-memory arena, the
        parcel channel, the operator factory and the geometry cache all
        survive rebuilds.
        """
        ev = self.ev
        rcfg = ev._resolved_config()
        policy = resolve_policy(rcfg.policy, rcfg.priorities)
        driver = (
            ScheduleFuzzer(rcfg.fuzz_schedule + self.rank)
            if rcfg.fuzz_schedule is not None
            else None
        )
        self.sched = WorkerScheduler(self.rank, policy, schedule_driver=driver)
        lrt = LocalityRuntime(self.rank, self.n, self.sched)
        self.reg = ParallelRegistrar(
            self.rank,
            lrt,
            dag,
            dual,
            ev.kernel,
            self.factory,
            mode="numeric",
            cost_model=ev.cost_model,
            size_model=ev.size_model,
            coalesce=True,
            sequential_edges=True,
            batch_edges=True,
            centers=centers,
        )
        self.reg.geom_cache = self._geom_cache
        # flush plans pay off exactly when rounds repeat; a rebuilt
        # registrar starts with fresh plans, so a changed assignment
        # can never replay stale group compositions
        self.reg.plan_caching = self._geom_cache is not None
        # all ranks share the one result vector; each writes only the
        # target-box slices of its own T nodes (disjoint by construction)
        self.reg.result = self.arena.get("result")
        self.reg.allocate()
        self._expected = sum(
            dag.in_degree[nid] for nid in self.reg.lcos
        )
        self.plan = _stage_plan(dag, self.rank, self.n)
        from repro.hpx.parallel import ParallelContext

        self.ctx = ParallelContext(self.sched, self._on_parcel)

    # -- between-round state updates (persistent service) ----------------------
    def _round_update(self, update: dict) -> None:
        """Apply one round's input change; every rank derives the same
        conclusion independently (replicated metadata, as at setup).

        ``kind="weights"``: coordinates untouched - swap the charges
        into the existing tree and rewind the LCO network.
        ``kind="points"``: incrementally update the tree.  A preserved
        shape with an unchanged node distribution rebinds the live
        registrar; a shifted distribution or a changed shape rebuilds
        the registrar (and, for a shape change, the lists/DAG) while
        keeping the process, arena, factory and channel.
        """
        from repro.dashmm.dag import refresh_n_points
        from repro.tree.fingerprint import dual_shape_fingerprint
        from repro.tree.incremental import update_dual_tree

        self.reg._mirror.clear()
        self._stage_ends.clear()
        self.sched.lco_sets_applied = 0
        sources = self.arena.get("sources")
        weights = self.arena.get("weights")
        targets = self.arena.get("targets")
        if update["kind"] == "weights":
            self.dual.source.set_weights(weights)
            self.reg.reset(zero_result=False)
            return
        old_shape = dual_shape_fingerprint(self.dual)
        new_dual, _info = update_dual_tree(
            self.dual,
            sources,
            targets,
            source_weights=weights,
            vectorized=self.ev.vectorized_setup,
        )
        cache = self._geom_cache
        if cache:
            # coordinate-derived matrices are stale; i2i translation
            # stacks only depend on the DAG and survive a same-shape move
            for k in list(cache):
                if k[0] != "i2i":
                    del cache[k]
        if dual_shape_fingerprint(new_dual) == old_shape:
            refresh_n_points(self.dag, new_dual)
            old_locs = [nd.locality for nd in self.dag.nodes]
            self.ev.policy.assign(self.dag, new_dual, self.n)
            self.dual = new_dual
            if [nd.locality for nd in self.dag.nodes] == old_locs:
                self.reg.rebind(new_dual)
                self.reg.reset(zero_result=False)
            else:
                # ownership moved: the local LCO set changes, so the
                # network reallocates (box centers stay shape-valid).
                # The surviving i2i stacks are keyed by locality and
                # could alias a different group of the same size under
                # the new cuts - drop them too.
                if cache:
                    cache.clear()
                self._make_registrar(new_dual, self.dag, centers=self.reg._centers)
            return
        if cache:
            cache.clear()
        dag, _ = self.ev.build_dag(new_dual)
        self.ev.policy.assign(dag, new_dual, self.n)
        self.dual, self.dag = new_dual, dag
        self._make_registrar(new_dual, dag)

    # -- parcel egress ---------------------------------------------------------
    def _on_parcel(self, parcel) -> None:
        if parcel.action != "dashmm_edges":
            raise ParallelError(
                f"parallel backend cannot route action {parcel.action!r}"
            )
        node_id, positions = parcel.args
        lco = self.reg.lcos.get(node_id)
        data = lco.data if lco is not None else None
        self.channel.send(
            parcel.target_locality,
            "edges",
            (node_id, positions, parcel.priority, data),
        )

    # -- frame ingress ---------------------------------------------------------
    def _drain(self, block: bool = False, timeout: float = 0.05) -> bool:
        """Process one inbox message; False when none was available."""
        try:
            msg = self.inbox.get(block, timeout) if block else self.inbox.get_nowait()
        except _queue.Empty:
            return False
        tag = msg[0]
        if tag == "frame":
            _, src, seq, kind, payload = msg
            if self.channel.handle_frame(src, seq, kind):
                self._dispatch(kind, payload)
        elif tag == "ack":
            self.channel.handle_ack(msg[2])
        elif tag == "stop":
            self._stopped = True
        # "go" is consumed by run() before the loops start
        return True

    def _dispatch(self, kind: str, payload) -> None:
        if kind == "edges":
            node_id, positions, priority, data = payload
            if data is not None:
                self.reg._mirror[node_id] = data
            self.sched.enqueue(
                Task(
                    fn=self.reg._edges_action,
                    args=(self.rank, node_id, positions),
                    op_class="parcel:edges",
                    priority=priority,
                ),
                self.rank,
            )
        elif kind == "stage":
            name, data = payload
            self.reg._mirror.update(data)
        elif kind == "stage_end":
            self._stage_ends[payload] = self._stage_ends.get(payload, 0) + 1
        else:  # pragma: no cover - defensive
            raise ParallelError(f"unknown frame kind {kind!r}")

    # -- dataflow phase --------------------------------------------------------
    def _run_dataflow(self) -> None:
        """Drive the DAG until local quiescence.

        Local termination detection: this rank is done when every input
        of every local LCO has been applied (``applied == expected``; an
        arriving edge frame always applies at least one, so reaching the
        total implies no frame is still in flight toward us), the ready
        queues are empty, and all our outbound frames are acked.
        """
        self.reg.initial_tasks()
        sched, ctx = self.sched, self.ctx
        while (
            sched.lco_sets_applied < self._expected
            or sched.has_ready()
            or self.channel.unacked
        ):
            while self._drain(block=False):
                pass
            task = sched.pop()
            if task is not None:
                task.fn(ctx, *task.args)
            elif (
                sched.lco_sets_applied < self._expected or self.channel.unacked
            ):
                self._drain(block=True, timeout=0.05)

    # -- staged flush pipeline -------------------------------------------------
    def _exchange(self, stage, send_map: dict) -> None:
        """Ship stage data, then barrier on every peer's stage_end."""
        for dst in sorted(send_map):
            payload = {nid: self.reg._data_of(nid) for nid in send_map[dst]}
            self.channel.send(dst, "stage", (stage, payload))
        for dst in range(self.n):
            if dst != self.rank:
                self.channel.send(dst, "stage_end", stage)
        while (
            self._stage_ends.get(stage, 0) < self.n - 1
            or self.channel.unacked
        ):
            self._drain(block=True, timeout=0.05)

    def _run_flushes(self) -> None:
        reg, plan = self.reg, self.plan
        sends = plan["sends"]
        if reg._lazy_m2i:
            reg._flush_m2i()
        if self.n > 1:
            self._exchange("i2i", sends["i2i"])
        if reg._lazy_i2i:
            reg._flush_i2i()
        if self.n > 1:
            self._exchange("i2l", sends["i2l"])
        if reg._lazy_i2l:
            reg._flush_i2l()
        by_level = dict(reg._l2l_by_level())
        for level in plan["l2l_levels"]:
            if self.n > 1:
                self._exchange(("l2l", level), sends.get(("l2l", level), {}))
            edges = by_level.get(level)
            if edges:
                reg._flush_l2l_level(level, edges)
        if self.n > 1:
            self._exchange("l2t", sends["l2t"])
        reg.flush_deferred()

    # -- protocol --------------------------------------------------------------
    def run(self) -> None:
        """READY, then rounds of GO -> evaluate -> DONE until STOP.

        The single-shot runtime sends ``("go",)`` then ``("stop",)``; a
        persistent service sends ``("go", update)`` per submission and
        one final STOP.  Round boundaries are quiet by construction -
        every exchange barriers on its acks, so no frame is in flight
        when DONE is posted - which is what makes the per-round state
        rewind in :meth:`_round_update` sufficient.
        """
        self.parent_q.put(("ready", self.rank))
        while not self._stopped:
            msg = self.inbox.get()
            tag = msg[0]
            if tag == "stop":
                break
            if tag == "frame":  # stragglers between rounds (defensive)
                _, src, seq, kind, payload = msg
                if self.channel.handle_frame(src, seq, kind):
                    self._dispatch(kind, payload)
                continue
            if tag == "ack":
                self.channel.handle_ack(msg[2])
                continue
            if tag != "go":  # pragma: no cover - defensive
                raise ParallelError(f"unexpected message {tag!r} between rounds")
            update = msg[1] if len(msg) > 1 else None
            if update is not None:
                self._round_update(update)
            self._run_dataflow()
            self._run_flushes()
            self.parent_q.put(("done", self.rank, self.stats()))
        self.arena.close()

    def stats(self) -> dict:
        return {
            "rank": self.rank,
            "tasks_run": self.sched.tasks_run,
            "lco_sets": self.sched.lco_sets_applied,
            "lcos": len(self.reg.lcos),
            **self.channel.stats(),
        }


def _worker_main(rank: int, n: int, spec: dict, manifest: dict, inboxes, parent_q) -> None:
    """Process entry point (module-level for spawn picklability)."""
    try:
        _WorkerBody(rank, n, spec, manifest, inboxes, parent_q).run()
    except BaseException:
        try:
            parent_q.put(("error", rank, traceback.format_exc()))
        finally:
            raise


def _validate(evaluator) -> None:
    cfg = evaluator.runtime_config
    if evaluator.mode != "numeric":
        raise ValueError(
            "backend='parallel' computes real potentials; phantom-mode "
            "scaling studies run on the simulator backend"
        )
    for flag in ("coalesce", "sequential_edges", "batch_edges"):
        if not getattr(evaluator, flag):
            raise ValueError(
                f"backend='parallel' requires {flag}=True (the ablation "
                "paths are simulator-only)"
            )
    if cfg.replay_schedule is not None:
        raise ValueError(
            "schedule replay records simulator decisions; it cannot "
            "drive the parallel backend"
        )
    if cfg.detect_hazards:
        raise ValueError(
            "the happens-before detector instruments the simulator's "
            "virtual clock; run hazard detection on backend='sim'"
        )


def evaluate_parallel(evaluator, sources, weights, targets):
    """Run one evaluation on real cores; returns an EvaluationReport.

    Setup (trees, DAG, operator fits) is rebuilt deterministically in
    every worker and excluded from the timed window, which spans GO to
    the last worker's DONE.  The parent's fitted-operator cache is
    handed to workers through a disk snapshot so fits warmed by a prior
    simulator run are not refitted per rank.
    """
    from repro.dashmm.evaluator import EvaluationReport
    from repro.hpx.tracing import Tracer
    from repro.tree.dualtree import build_dual_tree

    _validate(evaluator)
    cfg = evaluator.runtime_config
    sources = np.ascontiguousarray(sources, dtype=np.float64)
    weights = np.ascontiguousarray(weights, dtype=np.float64)
    targets = np.ascontiguousarray(targets, dtype=np.float64)

    # parent-side replica of the setup, for the report and the inverse
    # permutation (identical to what every worker derives)
    dual = build_dual_tree(
        sources,
        targets,
        evaluator.threshold,
        source_weights=weights,
        vectorized=evaluator.vectorized_setup,
    )
    dag, lists = evaluator.build_dag(dual)
    evaluator.policy.assign(dag, dual, cfg.n_localities)

    tmpdir = tempfile.mkdtemp(prefix="hmmops_")
    try:
        factory_path = None
        if evaluator.factory is not None:
            factory_path = str(evaluator.factory.save(directory=tmpdir))
        spec = {
            "kernel": evaluator.kernel,
            "method": evaluator.method,
            "threshold": evaluator.threshold,
            "policy": evaluator.policy,
            "config": cfg,
            "cost_model": evaluator.cost_model,
            "size_model": evaluator.size_model,
            "theta": evaluator.theta,
            "eps": evaluator.eps,
            "vectorized_setup": evaluator.vectorized_setup,
            "factory_path": factory_path,
            "seed": cfg.seed,
        }
        runtime = ParallelRuntime(
            cfg.n_localities,
            _worker_main,
            spec,
            arrays={"sources": sources, "weights": weights, "targets": targets},
            outputs={"result": ((dual.target.n_points,), np.float64)},
            start_method=cfg.start_method,
        )
        out = runtime.run()
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)

    potentials = np.empty(dual.target.n_points)
    potentials[dual.target.perm] = out["result"]
    stats = {
        "backend": "parallel",
        "n_localities": cfg.n_localities,
        "start_method": cfg.start_method,
        "wall_time": runtime.wall_time,
        "tasks": sum(w["tasks_run"] for w in runtime.worker_stats),
        "workers": runtime.worker_stats,
    }
    return EvaluationReport(
        potentials=potentials,
        time=runtime.wall_time,
        runtime_stats=stats,
        tracer=Tracer(enabled=False),
        dag=dag,
        dual=dual,
        lists=lists,
        extras={"backend": "parallel"},
    )


class PersistentParallelService:
    """Parent half of the persistent parallel backend.

    Where :func:`evaluate_parallel` spawns, runs one round and tears
    everything down, this keeps the worker processes, their attached
    shared-memory arena and each worker's rebuilt metadata (tree, DAG,
    LCO network, operator and geometry caches) alive across
    submissions.  A warm round costs one in-place array overwrite, one
    GO/DONE handshake and the numeric work - no process spawn, no
    operator refit, no tree carve.

    The parent keeps its own tree replica (updated incrementally, like
    every worker) purely for the inverse permutation that unsorts the
    shared result vector.  Drive through
    :class:`repro.dashmm.service.EvaluatorSession`, which owns the
    shape/statistics bookkeeping.
    """

    def __init__(
        self, evaluator, domain, timeout: float = 600.0, max_respawns: int = 1
    ):
        _validate(evaluator)
        self.evaluator = evaluator
        self.domain = domain
        self.timeout = timeout
        self.max_respawns = max_respawns
        self.n = evaluator.runtime_config.n_localities
        self.rounds = 0
        self.respawns = 0
        self.round_stats: list = []
        self._arena = None
        self._procs: list = []
        self._inboxes: list = []
        self._parent_q = None
        self._dual = None
        self._n_src = self._n_tgt = None
        # per-round re-drive state: the worker spec and arena manifest
        # are kept for the life of the service so a failed round can be
        # re-driven on respawned workers (they rebuild deterministically
        # from the live arena arrays)
        self._spec = None
        self._manifest = None
        self._tmpdir = None
        self._failed: BaseException | None = None

    def compatible(self, n_src: int, n_tgt: int) -> bool:
        """Shm blocks are fixed-size: a changed N needs a respawn."""
        return self._n_src == n_src and self._n_tgt == n_tgt

    # -- lifecycle ---------------------------------------------------------------
    def start(self, sources, weights, targets):
        """Spawn workers and run the cold round."""
        import multiprocessing as mp

        from repro.hpx.gas import ShmArena
        from repro.hpx.parallel import _THREAD_ENV, await_workers
        from repro.tree.dualtree import build_dual_tree

        ev = self.evaluator
        cfg = ev.runtime_config
        sources = np.ascontiguousarray(sources, dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        self._n_src, self._n_tgt = len(sources), len(targets)
        self._dual = build_dual_tree(
            sources,
            targets,
            ev.threshold,
            source_weights=weights,
            vectorized=ev.vectorized_setup,
            domain=self.domain,
        )

        # the snapshot directory outlives the cold spawn: respawned
        # workers reload the same operator fits after a mid-round fault
        self._tmpdir = tempfile.mkdtemp(prefix="hmmops_")
        arena = ShmArena()
        try:
            factory_path = None
            if ev.factory is not None:
                factory_path = str(ev.factory.save(directory=self._tmpdir))
            self._spec = {
                "kernel": ev.kernel,
                "method": ev.method,
                "threshold": ev.threshold,
                "policy": ev.policy,
                "config": cfg,
                "cost_model": ev.cost_model,
                "size_model": ev.size_model,
                "theta": ev.theta,
                "eps": ev.eps,
                "vectorized_setup": ev.vectorized_setup,
                "factory_path": factory_path,
                "seed": cfg.seed,
                "domain": self.domain,
                "persistent": True,
            }
            arena.put("sources", sources)
            arena.put("weights", weights)
            arena.put("targets", targets)
            arena.alloc("result", (self._n_tgt,), np.float64)
            self._manifest = arena.manifest()
            self._arena = arena
            self._spawn_workers()
        except BaseException:
            self._arena = arena
            self.close()
            raise
        out = self._round(None)
        return out, self._round_info({"source": "built", "target": "built"})

    def _spawn_workers(self) -> None:
        """Bring up a fresh worker fleet from the retained spec/manifest.

        Used for the cold start and again by :meth:`_respawn` after a
        mid-round fault.  Fresh inboxes and parent queue are created
        each time so stale messages from a failed round (a DONE from a
        rank that finished before a sibling died, or a queued error
        report) can never be mistaken for this fleet's traffic.
        """
        import multiprocessing as mp
        import os as _os

        from repro.hpx.parallel import _THREAD_ENV, await_workers

        ctx = mp.get_context(self.evaluator.runtime_config.start_method)
        self._inboxes = [ctx.Queue() for _ in range(self.n)]
        self._parent_q = ctx.Queue()
        self._procs = []
        saved = {k: _os.environ.get(k) for k in _THREAD_ENV}
        try:
            _os.environ.update({k: "1" for k in _THREAD_ENV})
            for rank in range(self.n):
                p = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        self.n,
                        self._spec,
                        self._manifest,
                        self._inboxes,
                        self._parent_q,
                    ),
                    daemon=True,
                )
                p.start()
                self._procs.append(p)
        finally:
            for k, v in saved.items():
                if v is None:
                    _os.environ.pop(k, None)
                else:
                    _os.environ[k] = v
        await_workers(self._parent_q, self._procs, self.n, "ready", self.timeout)

    def _respawn(self) -> None:
        """Kill any surviving workers and spawn a replacement fleet."""
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=5.0)
        self._spawn_workers()
        self.respawns += 1

    def close(self) -> None:
        """Stop workers and release the arena (idempotent)."""
        for q in self._inboxes:
            try:
                q.put(("stop",))
            except Exception:
                pass
        for p in self._procs:
            p.join(timeout=10.0)
        for p in self._procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=5.0)
        self._procs = []
        self._inboxes = []
        if self._arena is not None:
            self._arena.destroy()
            self._arena = None
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)
            self._tmpdir = None

    # -- rounds ------------------------------------------------------------------
    def submit(self, sources, weights, targets):
        """One warm round: overwrite inputs in place, GO, read result."""
        from repro.tree.incremental import update_dual_tree

        self._check_usable()
        sources = np.ascontiguousarray(sources, dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        targets = np.ascontiguousarray(targets, dtype=np.float64)
        shm_s = self._arena.get("sources")
        shm_w = self._arena.get("weights")
        shm_t = self._arena.get("targets")
        same_geometry = np.array_equal(shm_s, sources) and np.array_equal(
            shm_t, targets
        )
        # workers are blocked on their inboxes between rounds, so the
        # parent owns the arena here and in-place writes are race-free
        shm_w[:] = weights
        if same_geometry:
            self._dual.source.set_weights(weights)
            info = {"source": "unchanged", "target": "unchanged"}
            update = {"kind": "weights"}
        else:
            shm_s[:] = sources
            shm_t[:] = targets
            self._dual, info = update_dual_tree(
                self._dual,
                sources,
                targets,
                source_weights=weights,
                vectorized=self.evaluator.vectorized_setup,
            )
            update = {"kind": "points"}
        out = self._round(update)
        return out, self._round_info(info)

    def _check_usable(self) -> None:
        from repro.hpx.parallel import ParallelError

        if self._failed is not None:
            raise ParallelError(
                "parallel service already failed and was shut down "
                f"({self._failed}); start a new session"
            )
        if self._arena is None:
            raise ParallelError(
                "parallel service is not started (or already closed)"
            )

    def _round(self, update) -> np.ndarray:
        from repro.hpx.parallel import ParallelError, await_workers

        self._check_usable()
        t0 = time.perf_counter()
        msg = ("go",) if update is None else ("go", update)
        attempts = 0
        while True:
            result = self._arena.get("result")
            result[:] = 0.0  # flushes accumulate with +=
            try:
                for q in self._inboxes:
                    q.put(msg)
                stats = await_workers(
                    self._parent_q, self._procs, self.n, "done", self.timeout
                )
                break
            except ParallelError as exc:
                # a worker died (or wedged) mid-round.  The session is
                # still a valid basis for a re-drive: the arena already
                # holds this round's inputs, the parent's tree replica
                # was updated before _round ran, and survivors are
                # killed with the casualty.  Respawned workers rebuild
                # their metadata from the live arrays, so a plain cold
                # GO re-drives the identical round.
                attempts += 1
                if attempts > self.max_respawns:
                    self._failed = exc
                    self.close()
                    raise
                try:
                    self._respawn()
                except BaseException as spawn_exc:
                    self._failed = spawn_exc
                    self.close()
                    raise
                # respawned workers cold-build from the current arrays;
                # an incremental update message would double-apply
                msg = ("go",)
            except BaseException as exc:
                # anything non-recoverable (KeyboardInterrupt, ...):
                # mirror start()'s handling - tear the fleet down so
                # workers are never left alive and blocked on inboxes
                self._failed = exc
                self.close()
                raise
        wall = time.perf_counter() - t0
        self.rounds += 1
        stat = {"wall_time": wall, "workers": stats}
        if attempts:
            stat["respawns"] = attempts
        self.round_stats.append(stat)
        potentials = np.empty(self._n_tgt)
        potentials[self._dual.target.perm] = result
        return potentials

    def _round_info(self, tree_info: dict) -> dict:
        from repro.tree.fingerprint import dual_shape_fingerprint

        return {
            "tree": tree_info,
            "shape": dual_shape_fingerprint(self._dual),
            "wall_time": self.round_stats[-1]["wall_time"],
        }
