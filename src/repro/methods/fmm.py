"""Synchronous Fast Multipole Method evaluator (reference implementation).

Implements both FMM variants of the paper:

* the *basic* FMM with eight operators (S->M, M->M, M->L, M->T, S->L,
  L->L, L->T, S->T), where every list-2 interaction is a direct M->L
  translation (up to 189 per box), and
* the *advanced* FMM with the merge-and-shift technique, which routes
  list-2 interactions through intermediate (exponential) expansions via
  M->I, I->I and I->L, cutting the per-box translation count to ~40.

This evaluator executes the operator DAG synchronously with
level-batched numpy operations; it is the numerical ground truth the
asynchronous (DASHMM/HPX) execution path is tested against, and is also
the natural single-threaded baseline for the benchmarks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.dag import MethodSchema, edge_kinds, node_kinds
from repro.kernels.base import Kernel
from repro.kernels.expo import DIRECTIONS, assign_direction
from repro.kernels.fitops import OperatorFactory
from repro.tree.dualtree import DualTree, build_dual_tree
from repro.tree.lists import InteractionLists, build_lists, list_pairs

#: Declared DAG schema of the advanced (merge-and-shift) FMM: node and
#: operator kinds drawn from the shared catalogs plus the ordered wiring
#: rules the validated builder (:class:`repro.dag.DagBuilder`) runs to
#: materialize the graph.  List-2 interactions route through the
#: intermediate exponential expansions (M2I/I2I/I2L).
FMM_SCHEMA = MethodSchema(
    name="fmm",
    nodes=node_kinds("S", "M", "Is", "It", "L", "T"),
    edges=edge_kinds(
        "S2M", "M2M", "M2I", "I2I", "I2L", "S2L", "L2L", "M2T", "L2T", "S2T"
    ),
    assembly=(
        "source-upward",
        "target-downward",
        "list2-merge-shift",
        "list3-m2t",
        "list4-s2l",
        "list1-s2t",
    ),
)

#: The basic eight-operator FMM: same up/down chains and adaptive lists,
#: but every list-2 interaction is a direct M2L translation (no
#: intermediate expansions, up to 189 translations per box).
FMM_BASIC_SCHEMA = MethodSchema(
    name="fmm-basic",
    nodes=node_kinds("S", "M", "L", "T"),
    edges=edge_kinds("S2M", "M2M", "M2L", "S2L", "L2L", "M2T", "L2T", "S2T"),
    assembly=(
        "source-upward",
        "target-downward",
        "list2-direct",
        "list3-m2t",
        "list4-s2l",
        "list1-s2t",
    ),
)

#: Scheduling classification of the FMM's operator classes, derived
#: from the declared schemas (union over both variants).  Near-field
#: work is the direct particle-particle (P2P) stream - the abundant,
#: dependency-free S->T interactions any idle core can chew on at any
#: time.  Far-field work is everything touching an expansion: the
#: upward chain, the bridge (direct M->L or merge-and-shift M->I/I->I/
#: I->L), the downward shift and the expansion evaluations at the
#: leaves.  An interleaving policy
#: (:class:`repro.hpx.scheduler.CriticalPathPolicy`) uses this split to
#: pipeline the near-field stream under far-field (M2L) bursts.
NEAR_FIELD_OPS = tuple(
    dict.fromkeys(FMM_SCHEMA.near_ops + FMM_BASIC_SCHEMA.near_ops)
)
FAR_FIELD_OPS = tuple(
    dict.fromkeys(FMM_SCHEMA.far_ops + FMM_BASIC_SCHEMA.far_ops)
)


def op_field(op: str) -> str:
    """``"near"`` (P2P) or ``"far"`` (expansion work) for an op class."""
    if op in NEAR_FIELD_OPS:
        return "near"
    if op in FAR_FIELD_OPS:
        return "far"
    raise ValueError(f"unknown FMM op {op}")


@dataclass
class FmmStats:
    """Operation counts of one evaluation (useful for tests/benches)."""

    ops: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, op: str, n: int = 1) -> None:
        self.ops[op] += n


class FmmEvaluator:
    """Adaptive FMM for a kernel, threshold and accuracy.

    Parameters
    ----------
    kernel:
        A :class:`repro.kernels.base.Kernel` (fixes the expansion order).
    threshold:
        Refinement threshold of the adaptive tree (paper: 60).
    advanced:
        Use the merge-and-shift (intermediate expansion) technique.
    factory:
        Optionally share a pre-warmed :class:`OperatorFactory`.
    """

    def __init__(
        self,
        kernel: Kernel,
        threshold: int = 60,
        advanced: bool = True,
        eps: float = 1e-4,
        factory: OperatorFactory | None = None,
    ):
        self.kernel = kernel
        self.threshold = threshold
        self.advanced = advanced
        self.factory = factory or OperatorFactory.shared(kernel, eps=eps)
        self.stats = FmmStats()

    # -- public API ----------------------------------------------------------
    def evaluate(
        self,
        sources: np.ndarray,
        weights: np.ndarray,
        targets: np.ndarray,
        dual: DualTree | None = None,
        lists: InteractionLists | None = None,
        gradients: bool = False,
    ) -> np.ndarray:
        """Potentials at ``targets`` due to ``sources`` with ``weights``.

        A prebuilt dual tree / lists pair may be passed to amortize setup
        over repeated evaluations (the paper's iterative use case).  With
        ``gradients=True`` returns ``(potentials, gradients)`` where the
        gradient array has shape (N, 3) - the negated force per unit
        weight at each target.
        """
        self.stats = FmmStats()
        if dual is None:
            dual = build_dual_tree(sources, targets, self.threshold, source_weights=weights)
        elif dual.source.weights is None:
            raise ValueError("prebuilt dual tree must carry source weights")
        if lists is None:
            lists = build_lists(dual)

        src, tgt = dual.source, dual.target
        dom = dual.domain
        nsb, ntb = len(src.boxes), len(tgt.boxes)
        size = self.kernel.size

        M = np.zeros((nsb, size), dtype=complex)
        L = np.zeros((ntb, size), dtype=complex)
        phi = np.zeros(tgt.n_points)

        src_centers = np.array([dom.box_center(b.key) for b in src.boxes])
        tgt_centers = np.array([dom.box_center(b.key) for b in tgt.boxes])

        self._s2m(src, dom, src_centers, M)
        self._m2m(src, M)
        if self.advanced:
            self._list2_advanced(dual, lists, src_centers, tgt_centers, M, L)
        else:
            self._list2_basic(dual, lists, src_centers, tgt_centers, M, L)
        self._list3(dual, lists, src_centers, M, phi)
        self._list4(dual, lists, tgt_centers, L)
        self._l2l(tgt, L, lists)
        self._l2t(tgt, dom, tgt_centers, L, phi, lists)
        self._s2t(dual, lists, phi)

        out = np.empty_like(phi)
        out[tgt.perm] = phi
        if not gradients:
            return out
        grad = self._gradients(dual, lists, src_centers, tgt_centers, M, L)
        grad_out = np.empty_like(grad)
        grad_out[tgt.perm] = grad
        return out, grad_out

    # -- gradients -----------------------------------------------------------
    def _gradients(self, dual, lists, sc, tc, M, L) -> np.ndarray:
        """Field gradients at every target point (sorted order).

        Far field differentiates the local (and list-3 multipole)
        expansions; near field differentiates the kernel directly.
        """
        k = self.kernel
        src, tgt = dual.source, dual.target
        dom = dual.domain
        grad = np.zeros((tgt.n_points, 3))
        dead: set[int] = set()
        for b in tgt.boxes:
            pi = tgt.key_to_index[b.parent] if b.parent is not None else None
            if pi is not None and (pi in lists.pruned or pi in dead):
                dead.add(b.index)
                continue
            if b.level < 2 or b.count == 0:
                continue
            if b.is_leaf or b.index in lists.pruned:
                h = dom.box_size(b.level)
                rel = (tgt.points[b.start : b.stop] - tc[b.index]) / h
                grad[b.start : b.stop] += k.l2t_gradient(L[b.index], rel, h)
        for ti, sis in lists.l3.items():
            t = tgt.boxes[ti]
            pts = tgt.points[t.start : t.stop]
            for si in sis:
                s = src.boxes[si]
                h = dom.box_size(s.level)
                grad[t.start : t.stop] += k.m2t_gradient(
                    M[s.index], (pts - sc[s.index]) / h, h
                )
        for ti, sis in lists.l1.items():
            t = tgt.boxes[ti]
            tpts = tgt.points[t.start : t.stop]
            for si in sis:
                s = src.boxes[si]
                grad[t.start : t.stop] += k.direct_gradient(
                    tpts,
                    src.points[s.start : s.stop],
                    src.weights[s.start : s.stop],
                )
        return grad

    # -- upward pass -----------------------------------------------------------
    def _s2m(self, src, dom, centers, M, chunk_points: int = 65536) -> None:
        """S->M at every source leaf, batched over points."""
        k = self.kernel
        by_level: dict[int, list] = defaultdict(list)
        for b in src.boxes:
            if b.is_leaf and b.count > 0:
                by_level[b.level].append(b)
        for level, boxes in by_level.items():
            h = dom.box_size(level)
            run: list = []
            npts = 0
            for b in boxes:
                run.append(b)
                npts += b.count
                if npts >= chunk_points:
                    self._s2m_chunk(src, centers, M, run, h)
                    run, npts = [], 0
            if run:
                self._s2m_chunk(src, centers, M, run, h)

    def _s2m_chunk(self, src, centers, M, boxes, h) -> None:
        k = self.kernel
        pts = np.concatenate([src.points[b.start : b.stop] for b in boxes])
        ctr = np.concatenate(
            [np.broadcast_to(centers[b.index], (b.count, 3)) for b in boxes]
        )
        w = np.concatenate([src.weights[b.start : b.stop] for b in boxes])
        rows = k.p2m_matrix((pts - ctr) / h, h) * w[:, None]
        offsets = np.cumsum([0] + [b.count for b in boxes])[:-1]
        sums = np.add.reduceat(rows, offsets, axis=0)
        for i, b in enumerate(boxes):
            M[b.index] += sums[i]
        self.stats.add("S2M", len(boxes))

    def _m2m(self, src, M) -> None:
        """Upward M->M, batched per (level, octant)."""
        for level in range(src.depth, 0, -1):
            h = src.domain.box_size(level)
            groups: dict[int, tuple[list, list]] = defaultdict(lambda: ([], []))
            for bi in src.levels[level]:
                b = src.boxes[bi]
                oct_ = b.key & 7
                groups[oct_][0].append(bi)
                groups[oct_][1].append(src.key_to_index[b.parent])
            for oct_, (kids, parents) in groups.items():
                T = self.factory.m2m(oct_, h)
                M[parents] += M[kids] @ T.T
                self.stats.add("M2M", len(kids))

    # -- list 2 ------------------------------------------------------------------
    def _pairs_by_level(self, dual, lists):
        """list-2 (target box, source box) pairs grouped by level and delta.

        Vectorised: per-pair deltas come from the trees' columnar
        coordinate tables and grouping is one stable argsort over a
        packed (level, delta) code.  Groups keep the first-appearance
        order of the per-pair scan (and pairs within a group keep scan
        order), so downstream accumulation order matches the old
        per-pair loop bit for bit.
        """
        out: dict[int, dict[tuple, tuple[list, list]]] = defaultdict(
            lambda: defaultdict(lambda: ([], []))
        )
        tis, sis = list_pairs(lists.l2)
        if tis.size == 0:
            return out
        sa = dual.source.arrays
        ta = dual.target.arrays
        lvl = ta.levels[tis]
        dx = ta.ix[tis] - sa.ix[sis]
        dy = ta.iy[tis] - sa.iy[sis]
        dz = ta.iz[tis] - sa.iz[sis]
        # list-2 deltas are bounded by +/-3 per axis; 4 bits each suffice
        pack = (((lvl << 4) | (dx + 8)) << 8) | ((dy + 8) << 4) | (dz + 8)
        _, first, inv = np.unique(pack, return_index=True, return_inverse=True)
        rank = first[inv]  # per pair: scan position where its group first appeared
        order = np.argsort(rank, kind="stable")
        ro = rank[order]
        bounds = np.flatnonzero(np.r_[True, ro[1:] != ro[:-1]])
        ends = np.append(bounds[1:], ro.size)
        t_sorted, s_sorted = tis[order], sis[order]
        lvl_s, dx_s, dy_s, dz_s = lvl[order], dx[order], dy[order], dz[order]
        for b, e in zip(bounds.tolist(), ends.tolist()):
            grp = out[int(lvl_s[b])][(int(dx_s[b]), int(dy_s[b]), int(dz_s[b]))]
            grp[0].extend(t_sorted[b:e].tolist())
            grp[1].extend(s_sorted[b:e].tolist())
        return out

    def _list2_basic(self, dual, lists, sc, tc, M, L) -> None:
        by_level = self._pairs_by_level(dual, lists)
        for level, groups in by_level.items():
            h = dual.domain.box_size(level)
            for delta, (tis, sis) in groups.items():
                T = self.factory.m2l(delta, h)
                contrib = M[sis] @ T.T
                np.add.at(L, tis, contrib)
                self.stats.add("M2L", len(tis))

    def _list2_advanced(self, dual, lists, sc, tc, M, L) -> None:
        by_level = self._pairs_by_level(dual, lists)
        size = self.kernel.size
        for level, groups in by_level.items():
            h = dual.domain.box_size(level)
            quad = self.factory.quadrature(h)
            # organize pairs per direction
            per_dir: dict[str, dict[tuple, tuple[list, list]]] = defaultdict(dict)
            for delta, pair in groups.items():
                per_dir[assign_direction(delta)][delta] = pair
            for d, dgroups in per_dir.items():
                src_boxes = sorted({si for _, sis in dgroups.values() for si in sis})
                tgt_boxes = sorted({ti for tis, _ in dgroups.values() for ti in tis})
                s_pos = {si: i for i, si in enumerate(src_boxes)}
                t_pos = {ti: i for i, ti in enumerate(tgt_boxes)}
                W = M[src_boxes] @ self.factory.m2i(d, h).T  # M->I
                self.stats.add("M2I", len(src_boxes))
                V = np.zeros((len(tgt_boxes), quad.nterms), dtype=complex)
                for delta, (tis, sis) in dgroups.items():
                    f = self.factory.i2i(d, delta, h)
                    rows = W[[s_pos[si] for si in sis]] * f
                    np.add.at(V, [t_pos[ti] for ti in tis], rows)
                    self.stats.add("I2I", len(tis))
                Lc = V @ self.factory.i2l(d, h).T  # I->L
                np.add.at(L, tgt_boxes, Lc)
                self.stats.add("I2L", len(tgt_boxes))

    # -- adaptive lists ------------------------------------------------------------
    def _list3(self, dual, lists, sc, M, phi) -> None:
        """M->T: multipoles of list-3 boxes evaluated at leaf target points."""
        k = self.kernel
        src, tgt = dual.source, dual.target
        for ti, sis in lists.l3.items():
            t = tgt.boxes[ti]
            pts = tgt.points[t.start : t.stop]
            for si in sis:
                s = src.boxes[si]
                h = dual.domain.box_size(s.level)
                rel = (pts - sc[s.index]) / h
                phi[t.start : t.stop] += k.m2t(M[s.index], rel, h)
                self.stats.add("M2T", 1)

    def _list4(self, dual, lists, tc, L) -> None:
        """S->L: sources of list-4 leaves accumulated into target locals."""
        k = self.kernel
        src, tgt = dual.source, dual.target
        for ti, sis in lists.l4.items():
            t = tgt.boxes[ti]
            h = dual.domain.box_size(t.level)
            for si in sis:
                s = src.boxes[si]
                rel = (src.points[s.start : s.stop] - tc[t.index]) / h
                L[t.index] += k.p2l(rel, src.weights[s.start : s.stop], h)
                self.stats.add("S2L", 1)

    # -- downward pass ----------------------------------------------------------
    def _l2l(self, tgt, L, lists) -> None:
        """Downward L->L, batched per (level, octant); skips pruned sub-trees."""
        dead: set[int] = set()
        for level in range(1, tgt.depth + 1):
            parent_h = tgt.domain.box_size(level - 1)
            groups: dict[int, tuple[list, list]] = defaultdict(lambda: ([], []))
            for bi in tgt.levels[level]:
                b = tgt.boxes[bi]
                pi = tgt.key_to_index[b.parent]
                if pi in lists.pruned or pi in dead:
                    dead.add(bi)
                    continue
                if b.level < 3:
                    continue  # locals start at level 2; no L->L into level <= 2
                groups[b.key & 7][0].append(pi)
                groups[b.key & 7][1].append(bi)
            for oct_, (parents, kids) in groups.items():
                T = self.factory.l2l(oct_, parent_h)
                L[kids] += L[parents] @ T.T
                self.stats.add("L2L", len(kids))

    def _l2t(self, tgt, dom, tc, L, phi, lists, chunk_points: int = 65536) -> None:
        """L->T at leaves and at pruned boxes (whole sub-tree ranges)."""
        k = self.kernel
        eval_boxes = []
        dead: set[int] = set()
        for b in tgt.boxes:
            pi = tgt.key_to_index[b.parent] if b.parent is not None else None
            if pi is not None and (pi in lists.pruned or pi in dead):
                dead.add(b.index)
                continue
            if b.level < 2:
                continue
            if b.index in lists.pruned or b.is_leaf:
                if b.count > 0:
                    eval_boxes.append(b)
        by_level: dict[int, list] = defaultdict(list)
        for b in eval_boxes:
            by_level[b.level].append(b)
        for level, boxes in by_level.items():
            h = dom.box_size(level)
            run, npts = [], 0
            for b in boxes:
                run.append(b)
                npts += b.count
                if npts >= chunk_points:
                    self._l2t_chunk(tgt, tc, L, phi, run, h)
                    run, npts = [], 0
            if run:
                self._l2t_chunk(tgt, tc, L, phi, run, h)

    def _l2t_chunk(self, tgt, tc, L, phi, boxes, h) -> None:
        k = self.kernel
        pts = np.concatenate([tgt.points[b.start : b.stop] for b in boxes])
        ctr = np.concatenate(
            [np.broadcast_to(tc[b.index], (b.count, 3)) for b in boxes]
        )
        coeff = np.concatenate(
            [np.broadcast_to(L[b.index], (b.count, k.size)) for b in boxes]
        )
        vals = self._l2t_rows(coeff, (pts - ctr) / h, h)
        pos = 0
        for b in boxes:
            phi[b.start : b.stop] += vals[pos : pos + b.count]
            pos += b.count
        self.stats.add("L2T", len(boxes))

    def _l2t_rows(self, coeffs_rows, rel, scale):
        """Row-wise L->T: each point evaluates its own coefficient row."""
        k = self.kernel
        # reuse the kernel's l2t by exploiting that it is linear: build the
        # evaluation matrix via l2t of basis vectors would be O(size^2);
        # instead evaluate via the per-point analytic rows.
        return k.l2t_rows(coeffs_rows, rel, scale)

    # -- near field ---------------------------------------------------------------
    def _s2t(self, dual, lists, phi) -> None:
        """S->T direct interactions over list 1."""
        k = self.kernel
        src, tgt = dual.source, dual.target
        for ti, sis in lists.l1.items():
            t = tgt.boxes[ti]
            tpts = tgt.points[t.start : t.stop]
            for si in sis:
                s = src.boxes[si]
                phi[t.start : t.stop] += k.direct(
                    tpts,
                    src.points[s.start : s.stop],
                    src.weights[s.start : s.stop],
                )
                self.stats.add("S2T", 1)
