"""Barnes-Hut evaluator, the second HMM built into DASHMM.

Barnes-Hut uses only source-side expansions: multipoles are formed over
the source tree (S->M, M->M) and evaluated directly at target points
(M->T) whenever a source box satisfies the multipole acceptance
criterion (MAC) ``size / distance < theta``; otherwise the traversal
recurses, bottoming out in direct S->T interactions.  Its DAG is much
shallower than the FMM's (no local or intermediate expansions), which
is one of the method-dependent DAG topologies the paper uses to
exercise the runtime.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.dag import MethodSchema, edge_kinds, node_kinds
from repro.kernels.base import Kernel
from repro.kernels.fitops import OperatorFactory
from repro.tree.dualtree import DualTree, build_dual_tree
from repro.tree.lists import _ranges

#: Declared DAG schema of Barnes-Hut: source-side multipole chain plus
#: flat MAC-decided M2T/S2T edges into the target leaves - no local or
#: intermediate expansions, the shallowest DAG topology in the paper.
BH_SCHEMA = MethodSchema(
    name="bh",
    nodes=node_kinds("S", "M", "T"),
    edges=edge_kinds("S2M", "M2M", "M2T", "S2T"),
    assembly=("source-upward", "bh-mac"),
)

#: Scheduling classification of the Barnes-Hut operator classes (see
#: the FMM counterpart in :mod:`repro.methods.fmm`), derived from the
#: declared schema: the direct S->T stream is near-field filler, the
#: multipole pipeline and its leaf evaluations are far-field.
NEAR_FIELD_OPS = BH_SCHEMA.near_ops
FAR_FIELD_OPS = BH_SCHEMA.far_ops


@dataclass
class BhStats:
    ops: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, op: str, n: int = 1) -> None:
        self.ops[op] += n


def mac_pairs(
    dual: DualTree, theta: float, vectorized: bool = True
) -> dict[int, list[tuple[str, int]]]:
    """MAC traversal decisions: target leaf index -> [(op, source box)].

    ``op`` is "M2T" when the source box passes the acceptance criterion
    (its multipole is evaluated at the leaf's points) and "S2T" when the
    traversal bottoms out in a direct interaction.  This is the explicit
    form of the Barnes-Hut DAG consumed by the DASHMM layer.

    Both paths emit each target's ops sorted by source box index (the
    decision *set* per target is traversal-order independent), so the
    vectorised breadth-first descent and the reference depth-first stack
    produce identical dictionaries.
    """
    if vectorized:
        return _mac_pairs_vectorized(dual, theta)
    return _mac_pairs_reference(dual, theta)


def _mac_pairs_reference(dual: DualTree, theta: float) -> dict[int, list[tuple[str, int]]]:
    src, tgt = dual.source, dual.target
    dom = dual.domain
    centers = np.array([dom.box_center(b.key) for b in src.boxes])
    out: dict[int, list[tuple[str, int]]] = {}
    for t in tgt.boxes:
        if not (t.is_leaf and t.count > 0):
            continue
        tctr = dom.box_center(t.key)
        t_rad = dom.box_radius(t.level)
        ops: list[tuple[str, int]] = []
        stack = [0]
        while stack:
            si = stack.pop()
            s = src.boxes[si]
            h = dom.box_size(s.level)
            d = centers[si] - tctr
            dd = d * d
            dist = float(np.sqrt(dd[0] + dd[1] + dd[2]))
            if dist > 0 and h / max(dist - t_rad, 1e-300) < theta:
                ops.append(("M2T", si))
            elif s.is_leaf:
                ops.append(("S2T", si))
            else:
                stack.extend(src.key_to_index[c] for c in s.children)
        ops.sort(key=lambda p: p[1])
        out[t.index] = ops
    return out


def _mac_pairs_vectorized(dual: DualTree, theta: float) -> dict[int, list[tuple[str, int]]]:
    """Level-synchronous MAC descent over flat (target, source) frontiers.

    Identical float formulation to the reference (same elementwise
    center/radius arithmetic and the same guarded division), so the
    per-pair accept/recurse decisions agree bit for bit.
    """
    src, tgt = dual.source, dual.target
    dom = dual.domain
    sa, ta = src.arrays, tgt.arrays
    t_sel = np.flatnonzero(ta.leaf & (ta.counts > 0))
    out: dict[int, list[tuple[str, int]]] = {int(ti): [] for ti in t_sel}
    if t_sel.size == 0 or not src.boxes:
        return out
    s_centers = dom.box_centers(sa.keys)
    t_centers = dom.box_centers(ta.keys[t_sel])
    s_h = dom.size / (1 << sa.levels).astype(float)
    t_rad = (dom.size / (1 << ta.levels[t_sel]).astype(float)) * np.sqrt(3.0) / 2.0
    T = np.arange(t_sel.size, dtype=np.int64)
    S = np.zeros(t_sel.size, dtype=np.int64)
    acc_t: list[np.ndarray] = []
    acc_s: list[np.ndarray] = []
    acc_m2t: list[np.ndarray] = []
    while T.size:
        diff = s_centers[S] - t_centers[T]
        dd = diff * diff
        dist = np.sqrt(dd[:, 0] + dd[:, 1] + dd[:, 2])
        mac = (dist > 0) & (s_h[S] / np.maximum(dist - t_rad[T], 1e-300) < theta)
        direct = ~mac & sa.leaf[S]
        done = mac | direct
        if done.any():
            acc_t.append(T[done])
            acc_s.append(S[done])
            acc_m2t.append(mac[done])
        expand = ~done
        p_t, p_s = T[expand], S[expand]
        cnt = sa.child_hi[p_s] - sa.child_lo[p_s]
        S = _ranges(sa.child_lo[p_s], cnt)
        T = np.repeat(p_t, cnt)
    t_all = np.concatenate(acc_t)
    s_all = np.concatenate(acc_s)
    m2t_all = np.concatenate(acc_m2t)
    order = np.lexsort((s_all, t_all))
    t_all, s_all, m2t_all = t_all[order], s_all[order], m2t_all[order]
    bounds = np.flatnonzero(np.r_[True, t_all[1:] != t_all[:-1]])
    ends = np.append(bounds[1:], t_all.size)
    for b, e in zip(bounds.tolist(), ends.tolist()):
        ops = [
            ("M2T" if m else "S2T", si)
            for m, si in zip(m2t_all[b:e].tolist(), s_all[b:e].tolist())
        ]
        out[int(t_sel[t_all[b]])] = ops
    return out


class BarnesHutEvaluator:
    """Barnes-Hut with multipole expansions of order ``kernel.p``.

    ``theta`` is the opening angle of the MAC; smaller is more accurate
    and more expensive (0.3-0.7 are typical).
    """

    def __init__(
        self,
        kernel: Kernel,
        threshold: int = 60,
        theta: float = 0.5,
        factory: OperatorFactory | None = None,
    ):
        if not (0.0 < theta < 1.0):
            raise ValueError("theta must be in (0, 1)")
        self.kernel = kernel
        self.threshold = threshold
        self.theta = theta
        self.factory = factory or OperatorFactory.shared(kernel)
        self.stats = BhStats()

    def evaluate(
        self,
        sources: np.ndarray,
        weights: np.ndarray,
        targets: np.ndarray,
        dual: DualTree | None = None,
    ) -> np.ndarray:
        """Potentials at ``targets`` due to ``sources``."""
        self.stats = BhStats()
        if dual is None:
            dual = build_dual_tree(sources, targets, self.threshold, source_weights=weights)
        src, tgt = dual.source, dual.target
        dom = dual.domain
        k = self.kernel

        # upward pass over the source tree
        M = np.zeros((len(src.boxes), k.size), dtype=complex)
        centers = np.array([dom.box_center(b.key) for b in src.boxes])
        for b in src.boxes:
            if b.is_leaf and b.count > 0:
                h = dom.box_size(b.level)
                rel = (src.points[b.start : b.stop] - centers[b.index]) / h
                M[b.index] = k.p2m(rel, src.weights[b.start : b.stop], h)
                self.stats.add("S2M")
        for level in range(src.depth, 0, -1):
            h = dom.box_size(level)
            # batched per octant
            kids_by_oct: dict[int, tuple[list, list]] = defaultdict(lambda: ([], []))
            for bi in src.levels[level]:
                b = src.boxes[bi]
                kids_by_oct[b.key & 7][0].append(bi)
                kids_by_oct[b.key & 7][1].append(src.key_to_index[b.parent])
            for oct_, (kids, parents) in kids_by_oct.items():
                T = self.factory.m2m(oct_, h)
                M[parents] += M[kids] @ T.T
                self.stats.add("M2M", len(kids))

        # traversal per target leaf
        phi = np.zeros(tgt.n_points)
        for t in tgt.boxes:
            if not (t.is_leaf and t.count > 0):
                continue
            tpts = tgt.points[t.start : t.stop]
            tctr = dom.box_center(t.key)
            stack = [0]
            while stack:
                si = stack.pop()
                s = src.boxes[si]
                h = dom.box_size(s.level)
                dist = float(np.linalg.norm(centers[si] - tctr))
                # conservative MAC: measured from the target box surface
                t_rad = dom.box_radius(t.level)
                if dist > 0 and h / max(dist - t_rad, 1e-300) < self.theta:
                    rel = (tpts - centers[si]) / h
                    phi[t.start : t.stop] += k.m2t(M[si], rel, h)
                    self.stats.add("M2T")
                elif s.is_leaf:
                    phi[t.start : t.stop] += k.direct(
                        tpts,
                        src.points[s.start : s.stop],
                        src.weights[s.start : s.stop],
                    )
                    self.stats.add("S2T")
                else:
                    stack.extend(src.key_to_index[c] for c in s.children)

        out = np.empty_like(phi)
        out[tgt.perm] = phi
        return out
