"""O(N^2) direct summation, the accuracy reference for every method."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel


def direct_potentials(
    kernel: Kernel,
    targets: np.ndarray,
    sources: np.ndarray,
    weights: np.ndarray,
    chunk: int = 1024,
) -> np.ndarray:
    """Exact potentials at ``targets`` due to ``sources`` with ``weights``.

    Coincident source/target pairs contribute zero (self-interaction
    exclusion), matching the convention of the hierarchical methods.
    """
    return kernel.direct(
        np.asarray(targets, dtype=float),
        np.asarray(sources, dtype=float),
        np.asarray(weights, dtype=float),
        chunk=chunk,
    )
