"""Evaluation methods: direct summation, FMM (basic and advanced), Barnes-Hut.

Each method computes potentials at target points due to weighted source
points.  :mod:`repro.methods.fmm` is the synchronous reference
implementation used for correctness testing and as the numerical ground
truth for the AMT execution path in :mod:`repro.dashmm`.
"""

from repro.methods.direct import direct_potentials
from repro.methods.fmm import FmmEvaluator
from repro.methods.barneshut import BarnesHutEvaluator

__all__ = ["direct_potentials", "FmmEvaluator", "BarnesHutEvaluator"]
