"""Box geometry and the computational domain.

The *domain* is the smallest cube containing both ensembles (Section
II).  Boxes are identified by Morton keys; geometric quantities (center,
size, radius) derive from the key and the domain.

Well-separatedness follows the paper: box ``A`` is well-separated from
box ``B`` if the distance between their centers exceeds a
``beta``-dilation of A's radius, where ``beta`` depends on the
dimension.  For the standard 3-D FMM on a uniform lattice this reduces
to "not adjacent at the same level": boxes whose lattice coordinates
differ by more than one in some axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tree.morton import decode_morton

#: Dilation factor for well-separatedness in 3-D.  Two same-level boxes
#: with unit size whose centers are >= 2 apart in some axis satisfy
#: ``dist(centers) >= 2 > beta * radius`` with ``radius = sqrt(3)/2``.
BETA_3D = 2.0 / (np.sqrt(3.0) / 2.0)  # ~2.309


@dataclass(frozen=True)
class Domain:
    """The root cube: ``origin`` corner and edge ``size``."""

    origin: np.ndarray
    size: float

    @staticmethod
    def bounding(*point_sets: np.ndarray, pad: float = 1e-9) -> "Domain":
        """Smallest cube containing all given (N, 3) point sets.

        A tiny relative pad keeps boundary points strictly inside so
        floor-based bucketing is stable.
        """
        stacked = np.vstack([np.asarray(p, dtype=float) for p in point_sets])
        lo = stacked.min(axis=0)
        hi = stacked.max(axis=0)
        size = float((hi - lo).max())
        if size == 0.0:
            size = 1.0
        size *= 1.0 + pad
        center = (lo + hi) / 2.0
        origin = center - size / 2.0
        return Domain(origin=origin, size=size)

    def box_size(self, level: int) -> float:
        """Edge length of a level-``level`` box."""
        return self.size / (1 << level)

    def box_center(self, key: int) -> np.ndarray:
        """Center of the box with Morton key ``key``."""
        level, ix, iy, iz = decode_morton(key)
        h = self.box_size(level)
        return self.origin + h * (np.array([ix, iy, iz], dtype=float) + 0.5)

    def box_centers(self, keys: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`box_center` for an array of same-level keys."""
        level, ix, iy, iz = decode_morton(np.asarray(keys))
        h = self.size / (1 << level).astype(float)
        idx = np.stack([ix, iy, iz], axis=-1).astype(float)
        return self.origin + (h[:, None] * (idx + 0.5))

    def box_radius(self, level: int) -> float:
        """Half-diagonal of a level-``level`` box."""
        return self.box_size(level) * np.sqrt(3.0) / 2.0


@dataclass
class Box:
    """A node of one tree: geometry plus the slice of points it owns.

    Points are stored once per tree in Morton order; each box holds the
    half-open index range ``[start, stop)`` of the points inside it.
    """

    key: int
    level: int
    start: int
    stop: int
    parent: int | None
    children: list[int]
    index: int  # position in the tree's box table

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def count(self) -> int:
        return self.stop - self.start


def lattice_coords(key: int) -> tuple[int, int, int]:
    """Integer lattice coordinates of a box key."""
    _, ix, iy, iz = decode_morton(key)
    return ix, iy, iz


def well_separated(key_a: int, key_b: int) -> bool:
    """Same-level well-separatedness: lattice distance > 1 in some axis."""
    la, ax, ay, az = decode_morton(key_a)
    lb, bx, by, bz = decode_morton(key_b)
    if la != lb:
        raise ValueError("well_separated expects same-level keys")
    return max(abs(ax - bx), abs(ay - by), abs(az - bz)) > 1


def well_separated_levels(domain: Domain, key_a: int, key_b: int) -> bool:
    """General (cross-level) well-separatedness test per the paper.

    ``A`` is well-separated from ``B`` when the distance between their
    centers exceeds ``BETA_3D`` times A's radius.  With ``BETA_3D =
    2/(sqrt(3)/2)`` face neighbours two cells apart sit *exactly* at the
    dilation boundary, so the comparison carries a relative tolerance to
    make the definition agree with the standard lattice rule there.
    """
    la, *_ = decode_morton(key_a)
    ca = domain.box_center(key_a)
    cb = domain.box_center(key_b)
    threshold = BETA_3D * domain.box_radius(la)
    return float(np.linalg.norm(ca - cb)) > threshold * (1.0 - 1e-9)
