"""Incremental tree maintenance: dirty-range detection and splicing.

The serving regime the persistent evaluation layer targets - millions
of repeated queries over slowly-moving point sets - almost never needs
a new tree.  Given the previous :class:`~repro.tree.dualtree.Tree` (and
the sorted deep Morton keys it retained), :func:`update_tree` rebuilds
the box table for perturbed points in one of four escalating ways:

1. **unchanged** - the new sorted key sequence is byte-identical to the
   old one (points moved within their deep cells, or only the weights
   changed): the entire box structure, numbering and point ranges are
   reused as-is.  Zero carving.
2. **spliced** - keys moved but every old box still passes the carve
   invariants against the new key sequence (leaves at or under the
   threshold, internal boxes over it, recorded children nonempty and
   covering their parent): only the ``starts``/``stops``/``counts``
   columns are recomputed (one vectorised ``searchsorted`` over the box
   key ranges) and every box keeps its id.  Zero carving.
3. **recarved** - the structure changed somewhere: the old tree is
   walked top-down, clean subtrees (identical key subsequences) are
   copied with shifted point ranges, and only the dirty subtrees are
   re-carved from their key ranges.  The merged table is renumbered
   level-major with boxes ascending by run start - exactly the order
   both from-scratch carvers emit - so the result is **bit-identical to
   a cold build** (the property the DAG-template layer and all
   downstream caches rely on, and what the tests assert).
4. **rebuilt** - the ensemble size changed or no previous key sequence
   was retained: plain :func:`~repro.tree.dualtree.build_tree`.

Why id stability in case 2 matches the cold numbering: both carvers
emit each level's boxes in ascending run-start order, and within a
level the sorted key sequence makes ascending start equivalent to
ascending box key - which is invariant under any perturbation that
preserves the box structure.

The module-level counters in :mod:`repro.tree.dualtree` record every
full carve and every dirty-subtree re-carve; the warm-path acceptance
gate of the evaluation service asserts both stay at zero for
repeat-shape submissions.
"""

from __future__ import annotations

import numpy as np

from repro.tree.box import Box, Domain
from repro.tree.dualtree import (
    COUNTERS,
    DEEP_LEVEL,
    DualTree,
    Tree,
    TreeArrays,
    build_tree,
)
from repro.tree.morton import encode_points


def _structural_splice(tree: Tree, deep_new: np.ndarray) -> TreeArrays | None:
    """New starts/stops for every old box, or None if the structure broke.

    One vectorised ``searchsorted`` pass recomputes each box's point
    range against the new sorted keys, then the carve invariants are
    checked as whole-array reductions.  Passing them proves a cold
    carve of the new keys would emit exactly the old box table (same
    keys, same leaf statuses, same numbering - see module docstring).
    """
    a = tree.arrays
    shift = (3 * (DEEP_LEVEL - a.levels)).astype(np.int64)
    lo_keys = a.keys << shift
    hi_keys = (a.keys + 1) << shift
    starts = np.searchsorted(deep_new, lo_keys, side="left")
    stops = np.searchsorted(deep_new, hi_keys, side="left")
    counts = stops - starts

    if counts.min(initial=1) < 1:
        return None  # a recorded box emptied out
    internal = ~a.leaf
    thr = tree.threshold
    if np.any(counts[a.leaf & (a.levels < DEEP_LEVEL)] > thr):
        return None  # a leaf would now split
    if np.any(counts[internal] <= thr):
        return None  # an internal box would now be a leaf
    # recorded children must still partition their parent's range: the
    # children of box i are table rows child_lo[i]:child_hi[i]
    # (contiguous by construction), so a prefix sum gives each family's
    # total in O(B)
    csum = np.concatenate(([0], np.cumsum(counts)))
    covered = csum[a.child_hi[internal]] - csum[a.child_lo[internal]]
    if np.any(covered != counts[internal]):
        return None  # points drifted into a pruned child gap
    return TreeArrays(
        keys=a.keys,
        levels=a.levels,
        ix=a.ix,
        iy=a.iy,
        iz=a.iz,
        leaf=a.leaf,
        parent=a.parent,
        counts=counts,
        starts=starts,
        stops=stops,
        child_lo=a.child_lo,
        child_hi=a.child_hi,
    )


def _spliced_boxes(tree: Tree, arrays: TreeArrays) -> list[Box]:
    """Fresh Box objects carrying the spliced ranges (old ids kept).

    The previous tree may still back a live template or registrar, so
    its Box objects are never mutated.
    """
    starts = arrays.starts.tolist()
    stops = arrays.stops.tolist()
    return [
        Box(
            key=b.key,
            level=b.level,
            start=starts[b.index],
            stop=stops[b.index],
            parent=b.parent,
            children=b.children,
            index=b.index,
        )
        for b in tree.boxes
    ]


def _carve_subtree(
    deep_new: np.ndarray,
    lo: int,
    hi: int,
    key: int,
    level: int,
    parent_key: int | None,
    threshold: int,
    out: list[Box],
) -> None:
    """Re-carve one dirty subtree from its new key range (absolute
    positions); boxes are appended to ``out`` unnumbered."""
    COUNTERS["subtree_carves"] += 1
    root = Box(
        key=key, level=level, start=lo, stop=hi,
        parent=parent_key, children=[], index=-1,
    )
    out.append(root)
    frontier = [root]
    while frontier:
        nxt: list[Box] = []
        for box in frontier:
            if box.count <= threshold or box.level >= DEEP_LEVEL:
                continue
            child_level = box.level + 1
            shift = 3 * (DEEP_LEVEL - child_level)
            base = box.key << 3
            bounds = np.array([(base + c) << shift for c in range(9)], dtype=np.int64)
            cuts = np.searchsorted(deep_new[box.start : box.stop], bounds, side="left")
            cuts += box.start
            for c in range(8):
                clo, chi = int(cuts[c]), int(cuts[c + 1])
                if chi <= clo:
                    continue
                child = Box(
                    key=base + c, level=child_level, start=clo, stop=chi,
                    parent=box.key, children=[], index=-1,
                )
                box.children.append(child.key)
                out.append(child)
                nxt.append(child)
        frontier = nxt


def _copy_subtree(tree: Tree, box: Box, delta: int, out: list[Box]) -> None:
    """Copy a clean subtree, shifting every point range by ``delta``."""
    stack = [box]
    boxes, k2i = tree.boxes, tree.key_to_index
    while stack:
        b = stack.pop()
        out.append(
            Box(
                key=b.key, level=b.level,
                start=b.start + delta, stop=b.stop + delta,
                parent=b.parent, children=list(b.children), index=-1,
            )
        )
        for ck in b.children:
            stack.append(boxes[k2i[ck]])


def _merge_update(tree: Tree, deep_new: np.ndarray) -> list[Box]:
    """Top-down dirty walk: copy clean subtrees, re-carve dirty ones.

    Returns the unnumbered merged box list.  A subtree is *clean* when
    its slice of the new sorted keys is byte-identical to the old one
    (only its absolute offset may have changed); a dirty internal box
    whose nonempty-child set survived recurses child by child, anything
    else re-carves in place.
    """
    deep_old = tree.deep_sorted
    thr = tree.threshold
    boxes, k2i = tree.boxes, tree.key_to_index
    out: list[Box] = []

    def visit(b: Box, lo: int, hi: int) -> None:
        count = hi - lo
        old_seg = deep_old[b.start : b.stop]
        if count == b.count and np.array_equal(old_seg, deep_new[lo:hi]):
            _copy_subtree(tree, b, lo - b.start, out)
            return
        if count <= thr or b.level >= DEEP_LEVEL:
            # subtree collapses to a leaf (possibly shedding children)
            out.append(
                Box(key=b.key, level=b.level, start=lo, stop=hi,
                    parent=b.parent, children=[], index=-1)
            )
            return
        if b.is_leaf:
            _carve_subtree(deep_new, lo, hi, b.key, b.level, b.parent, thr, out)
            return
        child_level = b.level + 1
        shift = 3 * (DEEP_LEVEL - child_level)
        base = b.key << 3
        bounds = np.array([(base + c) << shift for c in range(9)], dtype=np.int64)
        cuts = np.searchsorted(deep_new[lo:hi], bounds, side="left")
        cuts += lo
        live = [
            (base + c, int(cuts[c]), int(cuts[c + 1]))
            for c in range(8)
            if cuts[c + 1] > cuts[c]
        ]
        if [k for k, _, _ in live] != b.children:
            # the child set itself changed: re-carve the whole subtree
            _carve_subtree(deep_new, lo, hi, b.key, b.level, b.parent, thr, out)
            return
        out.append(
            Box(key=b.key, level=b.level, start=lo, stop=hi,
                parent=b.parent, children=list(b.children), index=-1)
        )
        for ck, clo, chi in live:
            visit(boxes[k2i[ck]], clo, chi)

    visit(boxes[0], 0, len(deep_new))
    return out


def _renumber(merged: list[Box]) -> tuple[list[Box], dict[int, int], list[list[int]]]:
    """Level-major numbering, ascending start within a level - the exact
    emission order of both from-scratch carvers."""
    merged.sort(key=lambda b: (b.level, b.start))
    key_to_index: dict[int, int] = {}
    levels: list[list[int]] = []
    for i, b in enumerate(merged):
        b.index = i
        key_to_index[b.key] = i
        while len(levels) <= b.level:
            levels.append([])
        levels[b.level].append(i)
    return merged, key_to_index, levels


def update_tree(
    tree: Tree,
    points: np.ndarray,
    weights: np.ndarray | None = None,
    vectorized: bool = True,
) -> tuple[Tree, str]:
    """Rebuild ``tree`` for perturbed ``points``, reusing what survived.

    Returns ``(new_tree, status)`` with status one of ``"unchanged"``,
    ``"spliced"``, ``"recarved"``, ``"rebuilt"`` (see module docstring).
    The new tree is always *value-identical* to a cold
    :func:`~repro.tree.dualtree.build_tree` of the same points over the
    same domain; the old tree is never mutated.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    domain = tree.domain
    if len(points) != tree.n_points or tree.deep_sorted is None:
        new = build_tree(
            points, domain, tree.threshold, weights=weights, vectorized=vectorized
        )
        return new, "rebuilt"

    n = len(points)
    deep = encode_points(points, domain.origin, domain.size, DEEP_LEVEL)
    perm = np.argsort(deep, kind="stable")
    deep_sorted = deep[perm]
    points_sorted = points[perm]
    weights_sorted = None
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("weights must have shape (N,)")
        weights_sorted = weights[perm]

    if np.array_equal(deep_sorted, tree.deep_sorted):
        # same key sequence: structure, ranges and numbering all carry over
        new = Tree(
            domain=domain,
            points=points_sorted,
            weights=weights_sorted,
            perm=perm,
            boxes=tree.boxes,
            key_to_index=tree.key_to_index,
            levels=tree.levels,
            threshold=tree.threshold,
            deep_sorted=deep_sorted,
        )
        new._arrays = tree._arrays
        new._leaf_indices = tree._leaf_indices
        return new, "unchanged"

    arrays = _structural_splice(tree, deep_sorted)
    if arrays is not None:
        new = Tree(
            domain=domain,
            points=points_sorted,
            weights=weights_sorted,
            perm=perm,
            boxes=_spliced_boxes(tree, arrays),
            key_to_index=tree.key_to_index,
            levels=tree.levels,
            threshold=tree.threshold,
            deep_sorted=deep_sorted,
        )
        new._arrays = arrays
        new._leaf_indices = tree._leaf_indices
        return new, "spliced"

    merged = _merge_update(tree, deep_sorted)
    boxes, key_to_index, levels = _renumber(merged)
    new = Tree(
        domain=domain,
        points=points_sorted,
        weights=weights_sorted,
        perm=perm,
        boxes=boxes,
        key_to_index=key_to_index,
        levels=levels,
        threshold=tree.threshold,
        deep_sorted=deep_sorted,
    )
    return new, "recarved"


def update_dual_tree(
    dual: DualTree,
    sources: np.ndarray,
    targets: np.ndarray,
    source_weights: np.ndarray | None = None,
    vectorized: bool = True,
) -> tuple[DualTree, dict]:
    """Incremental :func:`~repro.tree.dualtree.build_dual_tree`.

    The domain is pinned to the previous dual's (sessions carve every
    step against one fixed cube); callers that let the domain float must
    rebuild from scratch instead.
    """
    src, s_status = update_tree(
        dual.source, sources, weights=source_weights, vectorized=vectorized
    )
    tgt, t_status = update_tree(dual.target, targets, vectorized=vectorized)
    new = DualTree(
        domain=dual.domain, source=src, target=tgt, threshold=dual.threshold
    )
    return new, {"source": s_status, "target": t_status}
