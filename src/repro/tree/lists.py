"""Interaction lists L1-L4 (Fig. 1b of the paper).

Each box ``Bt`` of the target tree is connected with up to four sets of
source-tree boxes:

* ``L1(Bt)`` - nonempty only if ``Bt`` is a leaf; leaf source boxes that
  are *not* well-separated from ``Bt``.  Handled by S->T.
* ``L2(Bt)`` - source boxes well-separated from ``Bt`` whose parents are
  not well-separated from ``Bt``'s parent.  Handled by M->L (basic FMM)
  or the M->I / I->I / I->L chain (advanced FMM).
* ``L3(Bt)`` - exists if ``Bt`` is a leaf; boxes ``Bs`` such that ``Bt``
  is well-separated from ``Bs`` but not from ``Bs``'s parent.  Handled
  by M->T.
* ``L4(Bt)`` - leaf source boxes well-separated from ``Bt`` but not from
  ``Bt``'s parent.  Handled by S->L.

The construction is the classic adaptive dual-tree descent: candidate
source boxes flow down the target tree; same-level non-adjacent
candidates become list 2, inherited coarser leaves that stop being
adjacent become list 4, and for leaf targets the adjacent candidates
are refined into list 1 (adjacent leaves) and list 3 (non-adjacent
descendants of adjacent boxes).

When the ensembles are not identical, a non-leaf target box may run out
of candidates entirely; the sub-tree below it can then be pruned (the
local expansion is evaluated directly at every point below), which the
paper notes reduces arithmetic complexity [11].

Two constructions are provided.  The *vectorised* default processes one
target level at a time: the whole frontier of (target, candidate) pairs
is classified with lattice-coordinate adjacency over the trees' cached
decoded-coordinate tables (no per-pair Morton decoding), and the L1/L3
refinement below adjacent colleagues runs as a breadth-wise array
descent.  The per-box *reference* loop is retained as the oracle.  Both
paths return the same canonical ordering (targets ascending, each list
sorted by source box index), so everything downstream - DAG assembly
included - is invariant to the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tree.dualtree import DualTree
from repro.tree.morton import decode_morton_cached


def adjacent(key_a: int, key_b: int) -> bool:
    """Whether two boxes (any levels) touch, i.e. are not well-separated.

    Compares the lattice footprints after scaling the coarser box to the
    finer level; boxes touch when the footprints are within one cell in
    every axis.
    """
    la, ax, ay, az = decode_morton_cached(key_a)
    lb, bx, by, bz = decode_morton_cached(key_b)
    if la < lb:
        sh = lb - la
        alo = (ax << sh, ay << sh, az << sh)
        ahi = (((ax + 1) << sh) - 1, ((ay + 1) << sh) - 1, ((az + 1) << sh) - 1)
        blo = bhi = (bx, by, bz)
    elif lb < la:
        sh = la - lb
        blo = (bx << sh, by << sh, bz << sh)
        bhi = (((bx + 1) << sh) - 1, ((by + 1) << sh) - 1, ((bz + 1) << sh) - 1)
        alo = ahi = (ax, ay, az)
    else:
        alo = ahi = (ax, ay, az)
        blo = bhi = (bx, by, bz)
    for d in range(3):
        gap = max(blo[d] - ahi[d], alo[d] - bhi[d])
        if gap > 1:
            return False
    return True


def adjacent_arrays(la, ax, ay, az, lb, bx, by, bz) -> np.ndarray:
    """Vectorised :func:`adjacent` over parallel coordinate arrays.

    All arguments broadcast; levels and coordinates are int64 arrays as
    stored in :class:`repro.tree.dualtree.TreeArrays`.
    """
    sha = np.maximum(lb - la, 0)
    shb = np.maximum(la - lb, 0)
    ok = None
    for a, b in ((ax, bx), (ay, by), (az, bz)):
        alo = a << sha
        ahi = ((a + 1) << sha) - 1
        blo = b << shb
        bhi = ((b + 1) << shb) - 1
        gap = np.maximum(blo - ahi, alo - bhi)
        axis_ok = gap <= 1
        ok = axis_ok if ok is None else ok & axis_ok
    return ok


@dataclass
class InteractionLists:
    """Per-target-box interaction lists, keyed by target box index.

    ``l1``..``l4`` map a target box index to a list of *source box
    indices*.  ``pruned`` marks non-leaf target boxes whose sub-tree was
    pruned because no candidate source boxes remained (the box behaves
    as an evaluation leaf: its local expansion is evaluated at every
    point below it).
    """

    l1: dict[int, list[int]] = field(default_factory=dict)
    l2: dict[int, list[int]] = field(default_factory=dict)
    l3: dict[int, list[int]] = field(default_factory=dict)
    l4: dict[int, list[int]] = field(default_factory=dict)
    pruned: set[int] = field(default_factory=set)

    def counts(self) -> dict[str, int]:
        """Total number of entries in each list (edge counts)."""
        return {
            "l1": sum(map(len, self.l1.values())),
            "l2": sum(map(len, self.l2.values())),
            "l3": sum(map(len, self.l3.values())),
            "l4": sum(map(len, self.l4.values())),
        }


def canonicalize(lists: InteractionLists) -> InteractionLists:
    """Canonical ordering: targets ascending, each list sorted by source.

    List membership is untouched; only dict insertion order and per-list
    order change.  Both construction paths emit this ordering so the DAG
    (and therefore the simulated virtual clock) is identical either way.
    """

    def canon(table: dict[int, list[int]]) -> dict[int, list[int]]:
        return {ti: sorted(table[ti]) for ti in sorted(table)}

    return InteractionLists(
        l1=canon(lists.l1),
        l2=canon(lists.l2),
        l3=canon(lists.l3),
        l4=canon(lists.l4),
        pruned=lists.pruned,
    )


#: Instrumentation for the persistent-evaluation layer: every from-scratch
#: list construction bumps this; a warm-path submit with a template hit
#: must leave it untouched (asserted by the service tests).
COUNTERS = {"builds": 0}


def build_lists(dual: DualTree, vectorized: bool = True) -> InteractionLists:
    """Construct L1-L4 for every target box of a dual tree.

    ``vectorized=False`` runs the per-box reference descent; both paths
    return identical, canonically ordered lists.
    """
    COUNTERS["builds"] += 1
    if vectorized:
        return _build_lists_vectorized(dual)
    return canonicalize(build_lists_reference(dual))


def build_lists_reference(dual: DualTree) -> InteractionLists:
    """Per-box reference construction (the oracle; natural visit order)."""
    src = dual.source
    tgt = dual.target
    out = InteractionLists()

    def add(table: dict[int, list[int]], tbox_index: int, sbox_index: int) -> None:
        table.setdefault(tbox_index, []).append(sbox_index)

    def descend_adjacent_leaf_target(t, s_index):
        """Classify the sub-tree of adjacent source box ``s`` for leaf
        target ``t``: adjacent leaves -> L1, non-adjacent children -> L3
        (their parent is adjacent so ``t`` is not well-separated from
        it), adjacent internals recurse."""
        stack = [s_index]
        while stack:
            si = stack.pop()
            s = src.boxes[si]
            if s.is_leaf:
                add(out.l1, t.index, si)
                continue
            for ck in s.children:
                ci = src.key_to_index[ck]
                if adjacent(t.key, ck):
                    stack.append(ci)
                else:
                    add(out.l3, t.index, ci)

    # Candidate source boxes flow down the target tree.  Each entry of
    # ``cand[t_index]`` is a source box index at the same level as the
    # target box, or a *coarser leaf* inherited from above.
    root_t = tgt.boxes[0]
    root_s_index = 0 if src.boxes else None
    cand: dict[int, list[int]] = {root_t.index: [root_s_index] if src.boxes else []}

    # Breadth-first over target levels.
    order = [i for lvl in tgt.levels for i in lvl]
    for ti in order:
        t = tgt.boxes[ti]
        if ti not in cand:
            continue  # below a pruned ancestor
        mine = cand.pop(ti)
        colleagues: list[int] = []  # adjacent candidates (same level or coarser internal)
        for si in mine:
            s = src.boxes[si]
            if s.level < t.level and s.is_leaf:
                # Inherited coarser leaf.
                if adjacent(t.key, s.key):
                    if t.is_leaf:
                        add(out.l1, t.index, si)
                    else:
                        colleagues.append(si)
                else:
                    add(out.l4, t.index, si)
                continue
            # Same-level candidate.
            if adjacent(t.key, s.key):
                colleagues.append(si)
            else:
                add(out.l2, t.index, si)

        if t.is_leaf:
            for si in colleagues:
                s = src.boxes[si]
                if s.is_leaf:
                    add(out.l1, t.index, si)
                else:
                    descend_adjacent_leaf_target(t, si)
            continue

        # Non-leaf target: push candidates to children.
        if not colleagues:
            # Nothing left to classify below: prune the target sub-tree.
            out.pruned.add(ti)
            continue
        passed: list[int] = []
        for si in colleagues:
            s = src.boxes[si]
            if s.is_leaf:
                passed.append(si)  # becomes a coarser-leaf candidate below
            else:
                passed.extend(src.key_to_index[ck] for ck in s.children)
        for ck in t.children:
            cand[tgt.key_to_index[ck]] = list(passed)

    return out


def _ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + c)`` for parallel start/count arrays."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep = np.repeat(starts, counts)
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return rep + offs


def _build_lists_vectorized(dual: DualTree) -> InteractionLists:
    """Level-synchronous array construction of L1-L4.

    The per-target candidate lists of the reference descent become one
    flat frontier of (target, source-candidate) index pairs per target
    level; each level is classified with a constant number of whole-array
    operations.  Pruning (a live non-leaf target with no adjacent
    candidate) is recovered from the frontier with set differences.
    """
    src, tgt = dual.source, dual.target
    sa, ta = src.arrays, tgt.arrays

    acc: dict[str, tuple[list, list]] = {
        "l1": ([], []),
        "l2": ([], []),
        "l3": ([], []),
        "l4": ([], []),
    }

    def emit(name: str, t_arr: np.ndarray, s_arr: np.ndarray) -> None:
        if t_arr.size:
            acc[name][0].append(t_arr)
            acc[name][1].append(s_arr)

    pruned: set[int] = set()

    def descend(d_t: np.ndarray, d_s: np.ndarray) -> None:
        """L1/L3 refinement below adjacent internal colleagues of leaf
        targets, one breadth-wise array pass per source depth."""
        while d_t.size:
            lo = sa.child_lo[d_s]
            cnt = sa.child_hi[d_s] - lo
            r_t = np.repeat(d_t, cnt)
            c_s = _ranges(lo, cnt)
            adj = adjacent_arrays(
                ta.levels[r_t], ta.ix[r_t], ta.iy[r_t], ta.iz[r_t],
                sa.levels[c_s], sa.ix[c_s], sa.iy[c_s], sa.iz[c_s],
            )
            emit("l3", r_t[~adj], c_s[~adj])
            c_leaf = sa.leaf[c_s]
            emit("l1", r_t[adj & c_leaf], c_s[adj & c_leaf])
            keep = adj & ~c_leaf
            d_t, d_s = r_t[keep], c_s[keep]

    # frontier: pairs of (target box index, candidate source box index),
    # all targets at the current level
    T = np.array([0], dtype=np.int64)
    S = np.array([0], dtype=np.int64)
    level = 0
    while T.size:
        t_leaf = ta.leaf[T]
        coarser = sa.levels[S] < level  # inherited coarser source leaves
        adj = adjacent_arrays(
            ta.levels[T], ta.ix[T], ta.iy[T], ta.iz[T],
            sa.levels[S], sa.ix[S], sa.iy[S], sa.iz[S],
        )

        emit("l4", T[coarser & ~adj], S[coarser & ~adj])
        l1_direct = coarser & adj & t_leaf
        emit("l1", T[l1_direct], S[l1_direct])
        emit("l2", T[~coarser & ~adj], S[~coarser & ~adj])

        colleague = adj & ~l1_direct
        # leaf targets: adjacent source leaves -> L1, internals descend
        lc = colleague & t_leaf
        s_leaf = sa.leaf[S]
        emit("l1", T[lc & s_leaf], S[lc & s_leaf])
        descend(T[lc & ~s_leaf], S[lc & ~s_leaf])

        # non-leaf targets: prune if no colleague survived, else expand
        nc = colleague & ~t_leaf
        live_nonleaf = np.unique(T[~t_leaf])
        with_colleague = np.unique(T[nc])
        pruned.update(
            np.setdiff1d(live_nonleaf, with_colleague, assume_unique=True).tolist()
        )

        e_t, e_s = T[nc], S[nc]
        e_s_leaf = sa.leaf[e_s]
        # internal colleagues expand to their children; leaves pass down
        i_t, i_s = e_t[~e_s_leaf], e_s[~e_s_leaf]
        lo = sa.child_lo[i_s]
        cnt = sa.child_hi[i_s] - lo
        p_t = np.concatenate([e_t[e_s_leaf], np.repeat(i_t, cnt)])
        p_s = np.concatenate([e_s[e_s_leaf], _ranges(lo, cnt)])
        # cross every passed candidate with the target's children
        t_cnt = ta.child_hi[p_t] - ta.child_lo[p_t]
        T = _ranges(ta.child_lo[p_t], t_cnt)
        S = np.repeat(p_s, t_cnt)
        level += 1

    def assemble(name: str) -> dict[int, list[int]]:
        t_parts, s_parts = acc[name]
        if not t_parts:
            return {}
        t_all = np.concatenate(t_parts)
        s_all = np.concatenate(s_parts)
        order = np.lexsort((s_all, t_all))
        t_all, s_all = t_all[order], s_all[order]
        bounds = np.flatnonzero(np.r_[True, t_all[1:] != t_all[:-1]])
        ends = np.append(bounds[1:], t_all.size)
        s_list = s_all.tolist()
        return {
            int(t): s_list[lo:hi]
            for t, lo, hi in zip(t_all[bounds].tolist(), bounds.tolist(), ends.tolist())
        }

    return InteractionLists(
        l1=assemble("l1"),
        l2=assemble("l2"),
        l3=assemble("l3"),
        l4=assemble("l4"),
        pruned=pruned,
    )


def list_pairs(table: dict[int, list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten one interaction-list table to parallel (target, source)
    index arrays in dict order (canonical order after :func:`build_lists`)."""
    n_groups = len(table)
    tis = np.fromiter(table.keys(), dtype=np.int64, count=n_groups)
    lens = np.fromiter(
        (len(v) for v in table.values()), dtype=np.int64, count=n_groups
    )
    total = int(lens.sum())
    sis = np.fromiter(
        (s for v in table.values() for s in v), dtype=np.int64, count=total
    )
    return np.repeat(tis, lens), sis


def boxes_below(tree, box_index: int) -> list[int]:
    """All box indices strictly below ``box_index`` (for pruned regions)."""
    res = []
    stack = list(tree.boxes[box_index].children)
    while stack:
        k = stack.pop()
        i = tree.key_to_index[k]
        res.append(i)
        stack.extend(tree.boxes[i].children)
    return res
