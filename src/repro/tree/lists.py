"""Interaction lists L1-L4 (Fig. 1b of the paper).

Each box ``Bt`` of the target tree is connected with up to four sets of
source-tree boxes:

* ``L1(Bt)`` - nonempty only if ``Bt`` is a leaf; leaf source boxes that
  are *not* well-separated from ``Bt``.  Handled by S->T.
* ``L2(Bt)`` - source boxes well-separated from ``Bt`` whose parents are
  not well-separated from ``Bt``'s parent.  Handled by M->L (basic FMM)
  or the M->I / I->I / I->L chain (advanced FMM).
* ``L3(Bt)`` - exists if ``Bt`` is a leaf; boxes ``Bs`` such that ``Bt``
  is well-separated from ``Bs`` but not from ``Bs``'s parent.  Handled
  by M->T.
* ``L4(Bt)`` - leaf source boxes well-separated from ``Bt`` but not from
  ``Bt``'s parent.  Handled by S->L.

The construction is the classic adaptive dual-tree descent: candidate
source boxes flow down the target tree; same-level non-adjacent
candidates become list 2, inherited coarser leaves that stop being
adjacent become list 4, and for leaf targets the adjacent candidates
are refined into list 1 (adjacent leaves) and list 3 (non-adjacent
descendants of adjacent boxes).

When the ensembles are not identical, a non-leaf target box may run out
of candidates entirely; the sub-tree below it can then be pruned (the
local expansion is evaluated directly at every point below), which the
paper notes reduces arithmetic complexity [11].
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tree.dualtree import DualTree
from repro.tree.morton import decode_morton


def adjacent(key_a: int, key_b: int) -> bool:
    """Whether two boxes (any levels) touch, i.e. are not well-separated.

    Compares the lattice footprints after scaling the coarser box to the
    finer level; boxes touch when the footprints are within one cell in
    every axis.
    """
    la, ax, ay, az = decode_morton(key_a)
    lb, bx, by, bz = decode_morton(key_b)
    if la < lb:
        sh = lb - la
        alo = (ax << sh, ay << sh, az << sh)
        ahi = (((ax + 1) << sh) - 1, ((ay + 1) << sh) - 1, ((az + 1) << sh) - 1)
        blo = bhi = (bx, by, bz)
    elif lb < la:
        sh = la - lb
        blo = (bx << sh, by << sh, bz << sh)
        bhi = (((bx + 1) << sh) - 1, ((by + 1) << sh) - 1, ((bz + 1) << sh) - 1)
        alo = ahi = (ax, ay, az)
    else:
        alo = ahi = (ax, ay, az)
        blo = bhi = (bx, by, bz)
    for d in range(3):
        gap = max(blo[d] - ahi[d], alo[d] - bhi[d])
        if gap > 1:
            return False
    return True


@dataclass
class InteractionLists:
    """Per-target-box interaction lists, keyed by target box index.

    ``l1``..``l4`` map a target box index to a list of *source box
    indices*.  ``pruned`` marks non-leaf target boxes whose sub-tree was
    pruned because no candidate source boxes remained (the box behaves
    as an evaluation leaf: its local expansion is evaluated at every
    point below it).
    """

    l1: dict[int, list[int]] = field(default_factory=dict)
    l2: dict[int, list[int]] = field(default_factory=dict)
    l3: dict[int, list[int]] = field(default_factory=dict)
    l4: dict[int, list[int]] = field(default_factory=dict)
    pruned: set[int] = field(default_factory=set)

    def counts(self) -> dict[str, int]:
        """Total number of entries in each list (edge counts)."""
        return {
            "l1": sum(map(len, self.l1.values())),
            "l2": sum(map(len, self.l2.values())),
            "l3": sum(map(len, self.l3.values())),
            "l4": sum(map(len, self.l4.values())),
        }


def build_lists(dual: DualTree) -> InteractionLists:
    """Construct L1-L4 for every target box of a dual tree."""
    src = dual.source
    tgt = dual.target
    out = InteractionLists()

    def add(table: dict[int, list[int]], tbox_index: int, sbox_index: int) -> None:
        table.setdefault(tbox_index, []).append(sbox_index)

    def descend_adjacent_leaf_target(t, s_index):
        """Classify the sub-tree of adjacent source box ``s`` for leaf
        target ``t``: adjacent leaves -> L1, non-adjacent children -> L3
        (their parent is adjacent so ``t`` is not well-separated from
        it), adjacent internals recurse."""
        stack = [s_index]
        while stack:
            si = stack.pop()
            s = src.boxes[si]
            if s.is_leaf:
                add(out.l1, t.index, si)
                continue
            for ck in s.children:
                ci = src.key_to_index[ck]
                if adjacent(t.key, ck):
                    stack.append(ci)
                else:
                    add(out.l3, t.index, ci)

    # Candidate source boxes flow down the target tree.  Each entry of
    # ``cand[t_index]`` is a source box index at the same level as the
    # target box, or a *coarser leaf* inherited from above.
    root_t = tgt.boxes[0]
    root_s_index = 0 if src.boxes else None
    cand: dict[int, list[int]] = {root_t.index: [root_s_index] if src.boxes else []}

    # Breadth-first over target levels.
    order = [i for lvl in tgt.levels for i in lvl]
    for ti in order:
        t = tgt.boxes[ti]
        if ti not in cand:
            continue  # below a pruned ancestor
        mine = cand.pop(ti)
        colleagues: list[int] = []  # adjacent candidates (same level or coarser internal)
        for si in mine:
            s = src.boxes[si]
            if s.level < t.level and s.is_leaf:
                # Inherited coarser leaf.
                if adjacent(t.key, s.key):
                    if t.is_leaf:
                        add(out.l1, t.index, si)
                    else:
                        colleagues.append(si)
                else:
                    add(out.l4, t.index, si)
                continue
            # Same-level candidate.
            if adjacent(t.key, s.key):
                colleagues.append(si)
            else:
                add(out.l2, t.index, si)

        if t.is_leaf:
            for si in colleagues:
                s = src.boxes[si]
                if s.is_leaf:
                    add(out.l1, t.index, si)
                else:
                    descend_adjacent_leaf_target(t, si)
            continue

        # Non-leaf target: push candidates to children.
        if not colleagues:
            # Nothing left to classify below: prune the target sub-tree.
            out.pruned.add(ti)
            continue
        passed: list[int] = []
        for si in colleagues:
            s = src.boxes[si]
            if s.is_leaf:
                passed.append(si)  # becomes a coarser-leaf candidate below
            else:
                passed.extend(src.key_to_index[ck] for ck in s.children)
        for ck in t.children:
            cand[tgt.key_to_index[ck]] = list(passed)

    return out


def boxes_below(tree, box_index: int) -> list[int]:
    """All box indices strictly below ``box_index`` (for pruned regions)."""
    res = []
    stack = list(tree.boxes[box_index].children)
    while stack:
        k = stack.pop()
        i = tree.key_to_index[k]
        res.append(i)
        stack.extend(tree.boxes[i].children)
    return res
