"""Tree-shape fingerprints: the cache keys of the persistent layer.

Two levels of keying, both cheap CRC folds over the columnar box
tables:

* the **shape fingerprint** captures everything the interaction lists
  and the structural DAG depend on: the refinement threshold, the
  domain cube, and each tree's Morton keys and leaf mask.  Box *counts*
  are deliberately excluded - every box holds at least one point by
  construction, and neither the adjacency descent nor DAG wiring reads
  counts beyond "nonempty" - so a perturbation that moves points
  between leaves without changing the box structure keeps the shape
  fingerprint (and therefore the DAG template) valid.
* the **full fingerprint** extends the shape with the per-box counts.
  Anything that reads counts - per-point work estimates, locality cuts,
  S/T node sizes - must key on this one: a spliced tree with shifted
  counts shares the shape but not the workload.

Fingerprints are value keys, not identity keys: two independently built
trees over the same inputs collide on purpose (that is what lets a
worker process agree with the parent, and a re-built session agree with
its template cache).
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.tree.dualtree import DualTree, Tree


def _crc(crc: int, arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes(), crc)


def tree_shape_fingerprint(tree: Tree) -> int:
    """Shape key of one tree: threshold + domain + box keys + leaf mask."""
    a = tree.arrays
    crc = zlib.crc32(
        np.array(
            [tree.threshold, *np.asarray(tree.domain.origin, dtype=float).view(np.int64)],
            dtype=np.int64,
        ).tobytes()
    )
    crc = _crc(crc, np.array([tree.domain.size], dtype=float).view(np.int64))
    crc = _crc(crc, a.keys)
    crc = _crc(crc, a.leaf)
    return crc


def tree_full_fingerprint(tree: Tree) -> int:
    """Shape key + per-box counts (point distribution over the boxes)."""
    return _crc(tree_shape_fingerprint(tree), tree.arrays.counts)


def dual_shape_fingerprint(dual: DualTree) -> tuple[int, int]:
    """Shape key of a dual tree (source shape, target shape)."""
    return (
        tree_shape_fingerprint(dual.source),
        tree_shape_fingerprint(dual.target),
    )


def dual_full_fingerprint(dual: DualTree) -> tuple[int, int]:
    """Full key of a dual tree (source, target), counts included."""
    return (
        tree_full_fingerprint(dual.source),
        tree_full_fingerprint(dual.target),
    )


def geometry_token(*arrays: np.ndarray) -> int:
    """CRC over raw coordinate bytes: keys caches of *numeric* geometry.

    Shape and counts can survive a perturbation while the coordinates do
    not; caches of point-derived matrices (p2m rows, evaluation rows)
    key on this token and drop when any byte of the positions moves.
    """
    crc = 0
    for a in arrays:
        crc = _crc(crc, np.asarray(a, dtype=float))
    return crc
