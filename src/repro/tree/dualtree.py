"""Adaptive hierarchical partitioning and the dual tree (Section II).

A :class:`Tree` is built per ensemble by sorting the points along a
deep Morton curve once and then carving contiguous key ranges into
boxes top-down.  A box is refined while it holds more points than the
refinement *threshold*; empty children are pruned.  The
:class:`DualTree` pairs the source and target trees over the shared
domain; the ensembles may be identical, partially overlapping, or
disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tree.box import Box, Domain
from repro.tree.morton import MAX_LEVEL, encode_points

#: Depth of the space-filling curve used for the one-time sort.  Boxes
#: never refine past this level; duplicate points therefore cannot force
#: unbounded recursion.
DEEP_LEVEL = MAX_LEVEL


@dataclass
class Tree:
    """One adaptive octree over an ensemble of points.

    Attributes
    ----------
    domain:
        Shared root cube.
    points:
        (N, 3) points in Morton order.
    weights:
        (N,) weights (charges/masses) in the same order, or None for a
        target tree.
    perm:
        Original index of each sorted point (``points[i] ==
        original[perm[i]]``).
    boxes:
        Box table; index 0 is the root.
    key_to_index:
        Morton key -> box table index.
    levels:
        ``levels[l]`` lists box indices at level ``l``.
    threshold:
        The refinement threshold used to build the tree.
    """

    domain: Domain
    points: np.ndarray
    weights: np.ndarray | None
    perm: np.ndarray
    boxes: list[Box]
    key_to_index: dict[int, int]
    levels: list[list[int]] = field(default_factory=list)
    threshold: int = 0

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def leaves(self) -> list[Box]:
        return [b for b in self.boxes if b.is_leaf]

    def box(self, key: int) -> Box:
        return self.boxes[self.key_to_index[key]]

    def box_points(self, box: Box) -> np.ndarray:
        return self.points[box.start : box.stop]

    def box_weights(self, box: Box) -> np.ndarray:
        if self.weights is None:
            raise ValueError("tree has no weights (target tree)")
        return self.weights[box.start : box.stop]

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the point weights (given in *original* point order).

        Supports the paper's iterative use case: the same DAG is
        evaluated many times for different inputs, amortizing all setup.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n_points,):
            raise ValueError("weights must have shape (N,)")
        self.weights = weights[self.perm]


@dataclass
class DualTree:
    """Source tree + target tree over a shared domain."""

    domain: Domain
    source: Tree
    target: Tree
    threshold: int


def build_tree(
    points: np.ndarray,
    domain: Domain,
    threshold: int,
    weights: np.ndarray | None = None,
) -> Tree:
    """Build one adaptive octree.

    The points are sorted once by their level-``DEEP_LEVEL`` Morton key;
    every box then owns a contiguous slice of the sorted order, and
    child ranges are found with :func:`numpy.searchsorted` against key
    prefixes, which keeps construction O(N log N) with vectorised
    passes.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    n = len(points)
    deep = encode_points(points, domain.origin, domain.size, DEEP_LEVEL)
    perm = np.argsort(deep, kind="stable")
    deep_sorted = deep[perm]
    points_sorted = points[perm]
    weights_sorted = None
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("weights must have shape (N,)")
        weights_sorted = weights[perm]

    boxes: list[Box] = []
    key_to_index: dict[int, int] = {}
    levels: list[list[int]] = [[]]

    root = Box(key=1, level=0, start=0, stop=n, parent=None, children=[], index=0)
    boxes.append(root)
    key_to_index[1] = 0
    levels[0].append(0)

    # Breadth-first refinement.  A box's deep keys lie in
    # [key << 3*(D-l), (key+1) << 3*(D-l)); children are the nonempty
    # subranges split at the eight child-prefix boundaries.
    frontier = [0]
    level = 0
    while frontier:
        next_frontier: list[int] = []
        child_level = level + 1
        if child_level > DEEP_LEVEL:
            break
        new_level_indices: list[int] = []
        shift = 3 * (DEEP_LEVEL - child_level)
        for bi in frontier:
            box = boxes[bi]
            if box.count <= threshold:
                continue
            base = box.key << 3
            # Boundaries of the eight candidate children in deep-key space.
            bounds = np.array(
                [(base + c) << shift for c in range(9)], dtype=np.int64
            )
            cuts = np.searchsorted(
                deep_sorted[box.start : box.stop], bounds, side="left"
            )
            cuts += box.start
            for c in range(8):
                lo, hi = int(cuts[c]), int(cuts[c + 1])
                if hi <= lo:
                    continue  # prune empty child
                ckey = base + c
                child = Box(
                    key=ckey,
                    level=child_level,
                    start=lo,
                    stop=hi,
                    parent=box.key,
                    children=[],
                    index=len(boxes),
                )
                key_to_index[ckey] = child.index
                boxes.append(child)
                box.children.append(ckey)
                new_level_indices.append(child.index)
                next_frontier.append(child.index)
        if new_level_indices:
            levels.append(new_level_indices)
        frontier = next_frontier
        level = child_level

    return Tree(
        domain=domain,
        points=points_sorted,
        weights=weights_sorted,
        perm=perm,
        boxes=boxes,
        key_to_index=key_to_index,
        levels=levels,
        threshold=threshold,
    )


def build_dual_tree(
    sources: np.ndarray,
    targets: np.ndarray,
    threshold: int,
    source_weights: np.ndarray | None = None,
) -> DualTree:
    """Build the dual tree over the common domain of both ensembles."""
    domain = Domain.bounding(sources, targets)
    src = build_tree(sources, domain, threshold, weights=source_weights)
    tgt = build_tree(targets, domain, threshold)
    return DualTree(domain=domain, source=src, target=tgt, threshold=threshold)
