"""Adaptive hierarchical partitioning and the dual tree (Section II).

A :class:`Tree` is built per ensemble by sorting the points along a
deep Morton curve once and then carving contiguous key ranges into
boxes top-down.  A box is refined while it holds more points than the
refinement *threshold*; empty children are pruned.  The
:class:`DualTree` pairs the source and target trees over the shared
domain; the ensembles may be identical, partially overlapping, or
disjoint.

Two carving strategies produce bit-identical box tables:

* the *vectorised* default discovers every level's boxes in a handful
  of whole-array passes over the sorted deep keys (shifted-prefix run
  detection plus ``searchsorted`` range splits), and
* the *reference* loop refines one box at a time, exactly as the paper
  describes the algorithm; it is retained as the oracle the vectorised
  path is property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tree.box import Box, Domain
from repro.tree.morton import MAX_LEVEL, decode_morton, encode_points

#: Depth of the space-filling curve used for the one-time sort.  Boxes
#: never refine past this level; duplicate points therefore cannot force
#: unbounded recursion.
DEEP_LEVEL = MAX_LEVEL

#: Instrumentation for the persistent-evaluation layer: how many times a
#: tree was carved from scratch and how many dirty subtrees were
#: re-carved by the incremental path.  The warm-path guarantee of
#: :class:`repro.dashmm.service.EvaluatorSession` - a repeat submit with
#: an unchanged shape does *zero* carving - is asserted against these.
COUNTERS = {"full_carves": 0, "subtree_carves": 0}


@dataclass
class TreeArrays:
    """Columnar view of a tree's box table (one row per box).

    Decoded lattice coordinates are computed once per tree, so setup
    passes (adjacency, interaction lists, DAG assembly) never re-decode
    Morton keys pairwise.  ``child_lo:child_hi`` is the contiguous box
    table index range of a box's children (both builders append the
    children of one box consecutively).
    """

    keys: np.ndarray  # int64 Morton keys
    levels: np.ndarray  # int64 level per box
    ix: np.ndarray  # int64 lattice coordinates
    iy: np.ndarray
    iz: np.ndarray
    leaf: np.ndarray  # bool
    parent: np.ndarray  # int64 parent box index, -1 for the root
    counts: np.ndarray  # int64 points per box
    starts: np.ndarray  # int64 point range per box
    stops: np.ndarray
    child_lo: np.ndarray  # int64 children index range [lo, hi)
    child_hi: np.ndarray


def _arrays_from_boxes(boxes: list[Box], key_to_index: dict[int, int]) -> TreeArrays:
    nb = len(boxes)
    keys = np.fromiter((b.key for b in boxes), dtype=np.int64, count=nb)
    starts = np.fromiter((b.start for b in boxes), dtype=np.int64, count=nb)
    stops = np.fromiter((b.stop for b in boxes), dtype=np.int64, count=nb)
    parent = np.fromiter(
        (-1 if b.parent is None else key_to_index[b.parent] for b in boxes),
        dtype=np.int64,
        count=nb,
    )
    child_lo = np.zeros(nb, dtype=np.int64)
    child_hi = np.zeros(nb, dtype=np.int64)
    for b in boxes:
        if b.children:
            child_lo[b.index] = key_to_index[b.children[0]]
            child_hi[b.index] = key_to_index[b.children[-1]] + 1
    levels, ix, iy, iz = decode_morton(keys)
    return TreeArrays(
        keys=keys,
        levels=levels,
        ix=ix,
        iy=iy,
        iz=iz,
        leaf=child_lo == child_hi,
        parent=parent,
        counts=stops - starts,
        starts=starts,
        stops=stops,
        child_lo=child_lo,
        child_hi=child_hi,
    )


@dataclass
class Tree:
    """One adaptive octree over an ensemble of points.

    Attributes
    ----------
    domain:
        Shared root cube.
    points:
        (N, 3) points in Morton order.
    weights:
        (N,) weights (charges/masses) in the same order, or None for a
        target tree.
    perm:
        Original index of each sorted point (``points[i] ==
        original[perm[i]]``).
    boxes:
        Box table; index 0 is the root.
    key_to_index:
        Morton key -> box table index.
    levels:
        ``levels[l]`` lists box indices at level ``l``.
    threshold:
        The refinement threshold used to build the tree.
    """

    domain: Domain
    points: np.ndarray
    weights: np.ndarray | None
    perm: np.ndarray
    boxes: list[Box]
    key_to_index: dict[int, int]
    levels: list[list[int]] = field(default_factory=list)
    threshold: int = 0
    #: sorted deep Morton keys of the points; retained so the
    #: incremental updater can diff a perturbed ensemble against the
    #: exact key sequence this tree was carved from
    deep_sorted: np.ndarray | None = field(default=None, repr=False, compare=False)
    _leaf_indices: np.ndarray | None = field(default=None, repr=False, compare=False)
    _arrays: TreeArrays | None = field(default=None, repr=False, compare=False)

    @property
    def depth(self) -> int:
        return len(self.levels) - 1

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def leaf_indices(self) -> np.ndarray:
        """Box table indices of the leaves, cached at first use."""
        if self._leaf_indices is None:
            self._leaf_indices = np.fromiter(
                (b.index for b in self.boxes if b.is_leaf), dtype=np.int64
            )
        return self._leaf_indices

    @property
    def leaves(self) -> list[Box]:
        boxes = self.boxes
        return [boxes[i] for i in self.leaf_indices]

    @property
    def arrays(self) -> TreeArrays:
        """Columnar box table with decoded coordinates, built once."""
        if self._arrays is None:
            self._arrays = _arrays_from_boxes(self.boxes, self.key_to_index)
        return self._arrays

    def box(self, key: int) -> Box:
        return self.boxes[self.key_to_index[key]]

    def box_points(self, box: Box) -> np.ndarray:
        return self.points[box.start : box.stop]

    def box_weights(self, box: Box) -> np.ndarray:
        if self.weights is None:
            raise ValueError("tree has no weights (target tree)")
        return self.weights[box.start : box.stop]

    def set_weights(self, weights: np.ndarray) -> None:
        """Replace the point weights (given in *original* point order).

        Supports the paper's iterative use case: the same DAG is
        evaluated many times for different inputs, amortizing all setup.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n_points,):
            raise ValueError("weights must have shape (N,)")
        self.weights = weights[self.perm]


@dataclass
class DualTree:
    """Source tree + target tree over a shared domain."""

    domain: Domain
    source: Tree
    target: Tree
    threshold: int


def _carve_reference(
    deep_sorted: np.ndarray, n: int, threshold: int
) -> tuple[list[Box], dict[int, int], list[list[int]]]:
    """Per-box breadth-first refinement (the oracle loop path).

    A box's deep keys lie in ``[key << 3*(D-l), (key+1) << 3*(D-l))``;
    children are the nonempty subranges split at the eight child-prefix
    boundaries.
    """
    boxes: list[Box] = []
    key_to_index: dict[int, int] = {}
    levels: list[list[int]] = [[]]

    root = Box(key=1, level=0, start=0, stop=n, parent=None, children=[], index=0)
    boxes.append(root)
    key_to_index[1] = 0
    levels[0].append(0)

    frontier = [0]
    level = 0
    while frontier:
        next_frontier: list[int] = []
        child_level = level + 1
        if child_level > DEEP_LEVEL:
            break
        new_level_indices: list[int] = []
        shift = 3 * (DEEP_LEVEL - child_level)
        for bi in frontier:
            box = boxes[bi]
            if box.count <= threshold:
                continue
            base = box.key << 3
            # Boundaries of the eight candidate children in deep-key space.
            bounds = np.array(
                [(base + c) << shift for c in range(9)], dtype=np.int64
            )
            cuts = np.searchsorted(
                deep_sorted[box.start : box.stop], bounds, side="left"
            )
            cuts += box.start
            for c in range(8):
                lo, hi = int(cuts[c]), int(cuts[c + 1])
                if hi <= lo:
                    continue  # prune empty child
                ckey = base + c
                child = Box(
                    key=ckey,
                    level=child_level,
                    start=lo,
                    stop=hi,
                    parent=box.key,
                    children=[],
                    index=len(boxes),
                )
                key_to_index[ckey] = child.index
                boxes.append(child)
                box.children.append(ckey)
                new_level_indices.append(child.index)
                next_frontier.append(child.index)
        if new_level_indices:
            levels.append(new_level_indices)
        frontier = next_frontier
        level = child_level

    return boxes, key_to_index, levels


def _carve_vectorized(
    deep_sorted: np.ndarray, n: int, threshold: int
) -> tuple[list[Box], dict[int, int], list[list[int]]]:
    """Whole-level box discovery from the sorted deep-key array.

    Every box at level ``l`` is a maximal run of equal level-``l`` key
    prefixes inside its parent's range.  One level is carved with three
    array passes: a run-boundary scan of the shifted prefixes restricted
    to the over-threshold parent ranges, a ``searchsorted`` to attribute
    each run to its parent, and a clipped shift to find run stops.  The
    resulting box table is bit-identical to :func:`_carve_reference`.
    """
    boxes = [Box(key=1, level=0, start=0, stop=n, parent=None, children=[], index=0)]
    key_to_index: dict[int, int] = {1: 0}
    levels: list[list[int]] = [[0]]

    cur_starts = np.array([0], dtype=np.int64)
    cur_stops = np.array([n], dtype=np.int64)
    cur_index = np.array([0], dtype=np.int64)
    level = 0
    while cur_starts.size and level < DEEP_LEVEL:
        child_level = level + 1
        split = (cur_stops - cur_starts) > threshold
        if not split.any():
            break
        starts_p = cur_starts[split]
        stops_p = cur_stops[split]
        index_p = cur_index[split]

        # Level-(child_level) key of every point: deep key shifted so the
        # marker bit lands at 3*child_level (exactly the box key).
        prefix = deep_sorted >> np.int64(3 * (DEEP_LEVEL - child_level))

        # Child boxes are runs of equal prefix inside split parents.
        delta = np.zeros(n + 1, dtype=np.int64)
        delta[starts_p] += 1
        delta[stops_p] -= 1
        in_split = np.cumsum(delta[:-1]) > 0
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(prefix[1:], prefix[:-1], out=change[1:])
        run_starts = np.flatnonzero(change & in_split)
        child_keys = prefix[run_starts]
        owner = np.searchsorted(starts_p, run_starts, side="right") - 1
        run_stops = np.minimum(
            np.append(run_starts[1:], n), stops_p[owner]
        )

        base = len(boxes)
        ck = child_keys.tolist()
        lo = run_starts.tolist()
        hi = run_stops.tolist()
        pk = (child_keys >> 3).tolist()
        for k, s, e, p in zip(ck, lo, hi, pk):
            boxes.append(
                Box(
                    key=k,
                    level=child_level,
                    start=s,
                    stop=e,
                    parent=p,
                    children=[],
                    index=len(boxes),
                )
            )
        key_to_index.update(zip(ck, range(base, base + len(ck))))
        per_parent = np.bincount(owner, minlength=starts_p.size)
        off = 0
        for p_idx, c in zip(index_p.tolist(), per_parent.tolist()):
            boxes[p_idx].children = ck[off : off + c]
            off += c
        levels.append(list(range(base, base + len(ck))))

        cur_starts, cur_stops = run_starts, run_stops
        cur_index = np.arange(base, base + len(ck), dtype=np.int64)
        level = child_level

    return boxes, key_to_index, levels


def build_tree(
    points: np.ndarray,
    domain: Domain,
    threshold: int,
    weights: np.ndarray | None = None,
    vectorized: bool = True,
) -> Tree:
    """Build one adaptive octree.

    The points are sorted once by their level-``DEEP_LEVEL`` Morton key;
    every box then owns a contiguous slice of the sorted order.  With
    ``vectorized=True`` (the default) whole levels of boxes are carved
    per array pass; ``vectorized=False`` runs the per-box reference
    loop.  Both produce bit-identical trees.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    n = len(points)
    deep = encode_points(points, domain.origin, domain.size, DEEP_LEVEL)
    perm = np.argsort(deep, kind="stable")
    deep_sorted = deep[perm]
    points_sorted = points[perm]
    weights_sorted = None
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (n,):
            raise ValueError("weights must have shape (N,)")
        weights_sorted = weights[perm]

    carve = _carve_vectorized if vectorized else _carve_reference
    COUNTERS["full_carves"] += 1
    boxes, key_to_index, levels = carve(deep_sorted, n, threshold)

    return Tree(
        domain=domain,
        points=points_sorted,
        weights=weights_sorted,
        perm=perm,
        boxes=boxes,
        key_to_index=key_to_index,
        levels=levels,
        threshold=threshold,
        deep_sorted=deep_sorted,
    )


def build_dual_tree(
    sources: np.ndarray,
    targets: np.ndarray,
    threshold: int,
    source_weights: np.ndarray | None = None,
    vectorized: bool = True,
    domain: Domain | None = None,
) -> DualTree:
    """Build the dual tree over the common domain of both ensembles.

    ``domain`` pins the root cube explicitly (a time-stepped session
    carves every step against one fixed domain so box keys stay
    comparable across steps); by default it is the bounding cube of the
    two ensembles.
    """
    if domain is None:
        domain = Domain.bounding(sources, targets)
    src = build_tree(
        sources, domain, threshold, weights=source_weights, vectorized=vectorized
    )
    tgt = build_tree(targets, domain, threshold, vectorized=vectorized)
    return DualTree(domain=domain, source=src, target=tgt, threshold=threshold)
