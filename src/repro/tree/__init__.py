"""Adaptive dual-tree substrate for hierarchical multipole methods.

The tree machinery follows Section II of the paper: the computational
domain (the smallest cube containing both ensembles) is hierarchically
partitioned into nested boxes; a box is refined while it holds more
points than the *refinement threshold*; empty children are pruned.  Two
trees are built, one for the source ensemble and one for the target
ensemble, which may be identical, partially overlapping, or disjoint.
"""

from repro.tree.box import Box, Domain
from repro.tree.dualtree import DualTree, Tree, build_dual_tree, build_tree
from repro.tree.lists import InteractionLists, build_lists
from repro.tree.morton import (
    decode_morton,
    encode_morton,
    encode_points,
    morton_ancestor,
    morton_children,
    morton_level,
    morton_parent,
)

__all__ = [
    "Box",
    "Domain",
    "DualTree",
    "Tree",
    "build_dual_tree",
    "build_tree",
    "InteractionLists",
    "build_lists",
    "encode_morton",
    "decode_morton",
    "encode_points",
    "morton_parent",
    "morton_children",
    "morton_level",
    "morton_ancestor",
]
