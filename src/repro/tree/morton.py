"""3-D Morton (Z-order) keys for octree boxes.

A box at level ``l`` has integer lattice coordinates ``(ix, iy, iz)``
with ``0 <= i < 2**l``.  Its Morton key interleaves the bits of the
three coordinates (x lowest) and prepends a *level marker* bit so keys
of different levels never collide:

    key(l, ix, iy, iz) = (1 << 3*l) | interleave(ix, iy, iz)

Keys are plain Python ints / int64 numpy arrays.  Vectorised helpers
accept numpy arrays throughout; levels up to 20 fit in an int64.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Deepest level representable with the int64 keys used throughout.
MAX_LEVEL = 20

def _spread_bits(v: np.ndarray | int) -> np.ndarray | int:
    """Dilate the low 21 bits of ``v`` so bit i moves to bit 3*i."""
    v = np.asarray(v, dtype=np.uint64) if not np.isscalar(v) else np.uint64(v)
    x = v & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact_bits(v: np.ndarray | int) -> np.ndarray | int:
    """Inverse of :func:`_spread_bits`."""
    v = np.asarray(v, dtype=np.uint64) if not np.isscalar(v) else np.uint64(v)
    x = v & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def encode_morton(level, ix, iy, iz):
    """Morton key of the box at ``level`` with lattice coords (ix, iy, iz).

    Scalar or array arguments are accepted; arrays must broadcast.
    """
    marker = np.uint64(1) << np.uint64(3 * int(level))
    key = (
        _spread_bits(ix)
        | (_spread_bits(iy) << np.uint64(1))
        | (_spread_bits(iz) << np.uint64(2))
    )
    out = key | marker
    if np.isscalar(ix) and np.isscalar(iy) and np.isscalar(iz):
        return int(out)
    return out.astype(np.int64)


def decode_morton(key):
    """Return ``(level, ix, iy, iz)`` for a Morton key (scalar or array)."""
    if np.isscalar(key):
        k = int(key)
        level = (k.bit_length() - 1) // 3
        body = k ^ (1 << (3 * level))
        return (
            level,
            int(_compact_bits(body)),
            int(_compact_bits(body >> 1)),
            int(_compact_bits(body >> 2)),
        )
    key = np.asarray(key, dtype=np.uint64)
    level = morton_level(key)
    body = key ^ (np.uint64(1) << (np.uint64(3) * level.astype(np.uint64)))
    ix = _compact_bits(body).astype(np.int64)
    iy = _compact_bits(body >> np.uint64(1)).astype(np.int64)
    iz = _compact_bits(body >> np.uint64(2)).astype(np.int64)
    return level.astype(np.int64), ix, iy, iz


@lru_cache(maxsize=1 << 18)
def decode_morton_cached(key: int) -> tuple[int, int, int, int]:
    """Memoized scalar :func:`decode_morton`.

    Setup-phase code (adjacency tests, interaction-list descents) decodes
    the same small set of box keys over and over; the cache turns the
    repeated bit-twiddling into a dict hit.  Only scalar keys are
    accepted - for whole-array decoding use :func:`decode_morton`, which
    is vectorised.
    """
    return decode_morton(int(key))


def morton_level(key):
    """Level of a Morton key (scalar int or int array)."""
    if np.isscalar(key):
        return (int(key).bit_length() - 1) // 3
    key = np.asarray(key, dtype=np.uint64)
    # bit_length via float log2 is unsafe near 2**53; use a loop over the
    # 64 possible positions instead (vectorised comparisons).
    nbits = np.zeros(key.shape, dtype=np.int64)
    v = key.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        big = v >= (np.uint64(1) << np.uint64(shift))
        nbits[big] += shift
        v[big] >>= np.uint64(shift)
    return nbits // 3


def morton_parent(key):
    """Key of the parent box (one level up)."""
    if np.isscalar(key):
        return int(key) >> 3
    return (np.asarray(key, dtype=np.uint64) >> np.uint64(3)).astype(np.int64)


def morton_children(key):
    """The eight child keys of ``key`` (scalar -> list of 8 ints)."""
    base = int(key) << 3
    return [base | c for c in range(8)]


def morton_ancestor(key, levels_up: int):
    """Ancestor ``levels_up`` levels above ``key``."""
    if np.isscalar(key):
        return int(key) >> (3 * levels_up)
    return (np.asarray(key, dtype=np.uint64) >> np.uint64(3 * levels_up)).astype(
        np.int64
    )


def encode_points(points: np.ndarray, origin: np.ndarray, size: float, level: int):
    """Morton keys at ``level`` for an (N, 3) array of points.

    ``origin`` and ``size`` describe the root cube.  Points must lie
    inside the cube; coordinates exactly on the far face are clamped
    into the last cell.
    """
    n = 1 << level
    scaled = (np.asarray(points) - origin) * (n / size)
    idx = np.floor(scaled).astype(np.int64)
    np.clip(idx, 0, n - 1, out=idx)
    return encode_morton(level, idx[:, 0], idx[:, 1], idx[:, 2])
