"""Point distributions used in Section V, plus one clustered extension.

The paper's two distributions:

* *cube* - points uniform in a cube.  Produces fairly uniform dual
  trees where every leaf has the same depth, so the critical path is
  shorter.
* *sphere* - points uniform on the surface of a sphere.  Produces much
  more non-uniform (adaptive) trees with a longer critical path.

``plummer`` (a classic gravitating-cluster density) is provided as an
extra stress test of adaptivity beyond the paper's evaluation.
"""

from __future__ import annotations

import numpy as np


def cube_points(n: int, seed: int = 0, side: float = 1.0) -> np.ndarray:
    """``n`` points uniform in the cube [0, side]^3."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, side, size=(n, 3))


def sphere_points(n: int, seed: int = 0, radius: float = 0.5) -> np.ndarray:
    """``n`` points uniform on the surface of a sphere."""
    rng = np.random.default_rng(seed)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return radius * v + radius


def plummer_points(n: int, seed: int = 0, scale: float = 0.1) -> np.ndarray:
    """``n`` points from a Plummer sphere (heavily clustered core).

    Radii are clipped at ten scale lengths to keep the domain bounded.
    """
    rng = np.random.default_rng(seed)
    m = rng.uniform(1e-6, 1.0 - 1e-6, size=n)
    r = scale / np.sqrt(m ** (-2.0 / 3.0) - 1.0)
    r = np.minimum(r, 10.0 * scale)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1)[:, None]
    return r[:, None] * v + 10.0 * scale


def random_charges(n: int, seed: int = 0, neutral: bool = False) -> np.ndarray:
    """Standard-normal weights; optionally shifted to zero net charge."""
    rng = np.random.default_rng(seed + 7)
    q = rng.normal(size=n)
    if neutral:
        q -= q.mean()
    return q
