"""Workload generators for the paper's test problems."""

from repro.workloads.distributions import cube_points, sphere_points, plummer_points

__all__ = ["cube_points", "sphere_points", "plummer_points"]
