"""repro: reproduction of "Scalable Hierarchical Multipole Methods using
an Asynchronous Many-Tasking Runtime System" (IPDPSW 2017).

Public entry points:

* :class:`repro.dashmm.DashmmEvaluator` - the generic HMM evaluator on
  the simulated AMT runtime (the paper's DASHMM).
* :class:`repro.methods.FmmEvaluator` / :class:`repro.methods.BarnesHutEvaluator`
  - synchronous reference implementations.
* :mod:`repro.kernels` - Laplace / Yukawa / user-defined kernels.
* :mod:`repro.hpx` - the HPX-5-like runtime itself.
"""

__version__ = "1.0.0"

from repro.dashmm import DashmmEvaluator
from repro.kernels import LaplaceKernel, YukawaKernel
from repro.methods import BarnesHutEvaluator, FmmEvaluator, direct_potentials

__all__ = [
    "DashmmEvaluator",
    "LaplaceKernel",
    "YukawaKernel",
    "FmmEvaluator",
    "BarnesHutEvaluator",
    "direct_potentials",
    "__version__",
]
