"""Declarative DAG IR: schemas, validated builder, export/diff tooling.

See :mod:`repro.dag.schema` for the subsystem; method declarations live
with their methods (:data:`repro.methods.fmm.FMM_SCHEMA`,
:data:`repro.methods.fmm.FMM_BASIC_SCHEMA`,
:data:`repro.methods.barneshut.BH_SCHEMA`) and are resolved lazily by
:func:`method_schema` to keep this package import-light.
"""

from repro.dag.schema import (
    DagBuilder,
    DagDiff,
    EDGE_KIND_CATALOG,
    EdgeKind,
    MethodSchema,
    NODE_KIND_CATALOG,
    NodeKind,
    SchemaValidationError,
    dag_fingerprint,
    diff_dags,
    edge_kinds,
    export_dag,
    node_kinds,
    validate_dag,
)

__all__ = [
    "DagBuilder",
    "DagDiff",
    "EDGE_KIND_CATALOG",
    "EdgeKind",
    "MethodSchema",
    "NODE_KIND_CATALOG",
    "NodeKind",
    "SchemaValidationError",
    "dag_fingerprint",
    "diff_dags",
    "edge_kinds",
    "export_dag",
    "method_schema",
    "node_kinds",
    "validate_dag",
]


def method_schema(name: str) -> MethodSchema:
    """Resolve a built-in method name to its declared schema.

    Lazy by design: the method modules import this package for the
    declaration types, so the reverse lookup must not import them at
    module load.
    """
    if name == "fmm":
        from repro.methods.fmm import FMM_SCHEMA

        return FMM_SCHEMA
    if name == "fmm-basic":
        from repro.methods.fmm import FMM_BASIC_SCHEMA

        return FMM_BASIC_SCHEMA
    if name in ("bh", "barneshut"):
        from repro.methods.barneshut import BH_SCHEMA

        return BH_SCHEMA
    raise KeyError(f"no declared schema for method {name!r}")
