"""Declarative DAG schema: node/edge kinds, validated builder, export/diff.

The explicit DAG used to be assembled by method-specific imperative code
(:func:`repro.dashmm.dag.build_fmm_dag` / ``build_bh_dag``); nothing
type-checked the graph before the runtime executed it.  Following the
explicit-wiring architecture of the QUARK and Charm++ FMM pipelines -
the method is *data* consumed by a generic engine - this module turns
the graph into a declared, validated intermediate representation:

* **Kind catalogs** (:data:`NODE_KIND_CATALOG`, :data:`EDGE_KIND_CATALOG`)
  describe every node class (S, M, Is, It, L, T - tree side, level
  floor, degree bounds) and every operator class (S2M ... S2T - endpoint
  kinds, level relation, aux signature, near/far field, critical-path
  group) once, as frozen data.
* **Method schemas** (:class:`MethodSchema`) select kinds from the
  catalogs and declare an ordered list of *wiring rules*; the method
  modules (:mod:`repro.methods.fmm`, :mod:`repro.methods.barneshut`)
  own their declarations and derive their near/far operator splits from
  them.
* A single :class:`DagBuilder` materializes the graph from tree +
  interaction lists (or MAC decisions) by running the declared rules,
  type-checks the result (:func:`validate_dag`), stamps critical-path
  priorities on request, and exposes a canonical :func:`export_dag` /
  :func:`dag_fingerprint` and a structural :func:`diff_dags`.

Node ids, edge order and aux payloads are bit-identical to the legacy
imperative assembly (kept alive as the oracle), so the executed output
- potentials AND virtual clock - does not depend on which assembly
produced the graph.  The golden-graph regression suite
(``tests/goldens/``) pins the canonical exports so refactors cannot
silently reshape the graph.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.dashmm.dag import (
    COUNTERS,
    DAG,
    DagNode,
    _batch_edges,
    _batch_nodes,
    _dead_mask,
    _delta_tuples,
    _deltas,
    _DIR_LABELS,
    assign_direction_arrays,
)
from repro.kernels.expo import assign_direction
from repro.tree.lists import list_pairs

__all__ = [
    "NodeKind",
    "EdgeKind",
    "MethodSchema",
    "SchemaValidationError",
    "DagBuilder",
    "NODE_KIND_CATALOG",
    "EDGE_KIND_CATALOG",
    "node_kinds",
    "edge_kinds",
    "validate_dag",
    "export_dag",
    "dag_fingerprint",
    "diff_dags",
    "DagDiff",
]


# -- declarations ----------------------------------------------------------------
@dataclass(frozen=True)
class NodeKind:
    """One node class of the explicit DAG, with its typing rules.

    ``in_max``/``out_max`` of ``None`` mean unbounded; the degree
    bounds are structural invariants of the octree wiring (e.g. an M
    node folds at most its 8 children), not tuning knobs.
    """

    name: str
    tree: str  # "source" | "target"
    has_points: bool = False
    min_level: int = 0
    in_min: int = 0
    in_max: int | None = None
    out_min: int = 0
    out_max: int | None = None


@dataclass(frozen=True)
class EdgeKind:
    """One operator class: endpoint kinds, geometry and scheduling tags.

    ``level`` is the level relation between the endpoints (``"same"``,
    ``"up"`` = into the parent level, ``"down"`` = into the child
    level, ``"any"``); ``aux`` the operator-signature of the edge
    payload (``"none"``, ``"octant"``, ``"delta"``, ``"dir_delta"``);
    ``field`` the near/far scheduling class and ``group`` the paper's
    critical-path group (up / bridge / down).  ``same_box`` pins both
    endpoints to one box, ``in_unique`` allows at most one edge of this
    kind into a node, ``in_max_per_dst`` bounds the fan-in (the 189 of
    list 2), and ``well_separated`` requires a list-2 delta (Chebyshev
    distance 2..3).
    """

    name: str
    src: str
    dst: str
    level: str = "any"
    aux: str = "none"
    field: str = "far"
    group: str = "bridge"
    same_box: bool = False
    in_unique: bool = False
    in_max_per_dst: int | None = None
    well_separated: bool = False


#: every node class any built-in method uses, keyed by name
NODE_KIND_CATALOG: dict[str, NodeKind] = {
    "S": NodeKind("S", "source", has_points=True, in_max=0, out_min=1),
    "M": NodeKind("M", "source", in_max=8),
    "Is": NodeKind("Is", "source", min_level=2, in_min=1, in_max=1, out_min=1),
    "It": NodeKind("It", "target", min_level=2, in_min=1, in_max=189, out_min=1, out_max=1),
    "L": NodeKind("L", "target", min_level=2, out_max=9),
    "T": NodeKind("T", "target", has_points=True, out_max=0),
}

#: every operator class any built-in method uses, keyed by name
EDGE_KIND_CATALOG: dict[str, EdgeKind] = {
    "S2M": EdgeKind("S2M", "S", "M", level="same", group="up", same_box=True, in_unique=True),
    "M2M": EdgeKind("M2M", "M", "M", level="up", aux="octant", group="up"),
    "M2L": EdgeKind(
        "M2L", "M", "L", level="same", aux="delta", well_separated=True, in_max_per_dst=189
    ),
    "M2I": EdgeKind("M2I", "M", "Is", level="same", same_box=True, in_unique=True),
    "I2I": EdgeKind("I2I", "Is", "It", level="same", aux="dir_delta", well_separated=True),
    "I2L": EdgeKind("I2L", "It", "L", level="same", same_box=True, in_unique=True),
    "S2L": EdgeKind("S2L", "S", "L"),
    "M2T": EdgeKind("M2T", "M", "T"),
    "L2L": EdgeKind("L2L", "L", "L", level="down", aux="octant", group="down", in_unique=True),
    "L2T": EdgeKind("L2T", "L", "T", level="same", group="down", same_box=True, in_unique=True),
    "S2T": EdgeKind("S2T", "S", "T", field="near", group="down"),
}


def node_kinds(*names: str) -> tuple[NodeKind, ...]:
    """Select node kinds from the catalog, in the given order."""
    return tuple(NODE_KIND_CATALOG[n] for n in names)


def edge_kinds(*names: str) -> tuple[EdgeKind, ...]:
    """Select edge kinds from the catalog, in the given order."""
    return tuple(EDGE_KIND_CATALOG[n] for n in names)


@dataclass
class MethodSchema:
    """A method's DAG declared as data: kinds plus ordered wiring rules.

    ``assembly`` names the wiring rules :class:`DagBuilder` runs, in
    order, to materialize the graph; every rule only emits node/edge
    kinds the schema declares (checked at construction).  The schema
    fingerprint is the cache token of everything keyed "per method
    graph shape" (e.g. the persistent service's DAG-template LRU).
    """

    name: str
    nodes: tuple[NodeKind, ...]
    edges: tuple[EdgeKind, ...]
    assembly: tuple[str, ...]

    def __post_init__(self) -> None:
        self._node_by_name = {k.name: k for k in self.nodes}
        self._edge_by_name = {k.name: k for k in self.edges}
        for ek in self.edges:
            for endpoint in (ek.src, ek.dst):
                if endpoint not in self._node_by_name:
                    raise ValueError(
                        f"schema {self.name!r}: edge kind {ek.name} touches "
                        f"undeclared node kind {endpoint!r}"
                    )
        for rule in self.assembly:
            if rule not in _ASSEMBLY_RULES:
                raise ValueError(f"schema {self.name!r}: unknown wiring rule {rule!r}")
        for rule in self.assembly:
            for op in _RULE_EMITS[rule][1]:
                if op not in self._edge_by_name:
                    raise ValueError(
                        f"schema {self.name!r}: rule {rule!r} emits undeclared "
                        f"edge kind {op!r}"
                    )
        self._fp: str | None = None

    # -- lookups -----------------------------------------------------------------
    def node_kind(self, name: str) -> NodeKind | None:
        return self._node_by_name.get(name)

    def edge_kind(self, name: str) -> EdgeKind | None:
        return self._edge_by_name.get(name)

    @property
    def ops(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.edges)

    @property
    def near_ops(self) -> tuple[str, ...]:
        """Operator classes of the near-field (P2P filler) stream."""
        return tuple(k.name for k in self.edges if k.field == "near")

    @property
    def far_ops(self) -> tuple[str, ...]:
        """Operator classes of the far-field (expansion) pipeline."""
        return tuple(k.name for k in self.edges if k.field == "far")

    def groups(self) -> dict[str, tuple[str, ...]]:
        """Critical-path groups (up/bridge/down) -> operator classes."""
        out: dict[str, list[str]] = {"up": [], "bridge": [], "down": []}
        for k in self.edges:
            out[k.group].append(k.name)
        return {g: tuple(ops) for g, ops in out.items()}

    # -- identity ----------------------------------------------------------------
    def to_json(self) -> dict:
        """Canonical JSON form of the declarations (the identity)."""
        return {
            "name": self.name,
            "nodes": [
                [k.name, k.tree, k.has_points, k.min_level, k.in_min, k.in_max, k.out_min, k.out_max]
                for k in self.nodes
            ],
            "edges": [
                [
                    k.name,
                    k.src,
                    k.dst,
                    k.level,
                    k.aux,
                    k.field,
                    k.group,
                    k.same_box,
                    k.in_unique,
                    k.in_max_per_dst,
                    k.well_separated,
                ]
                for k in self.edges
            ],
            "assembly": list(self.assembly),
        }

    def fingerprint(self) -> str:
        """Hex digest of the canonical declaration JSON (cache token)."""
        if self._fp is None:
            blob = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
            self._fp = hashlib.sha256(blob.encode()).hexdigest()
        return self._fp


# -- validation ------------------------------------------------------------------
class SchemaValidationError(ValueError):
    """A DAG violated its schema; names the offending node/edge and rule.

    ``rule`` is the machine-readable check name (``node-kind``,
    ``in-degree``, ``edge-level`` ...); ``node`` the offending node id
    (or None); ``edge`` the offending ``(src, dst, op)`` triple (or
    None); ``detail`` the human-readable explanation.
    """

    def __init__(self, rule: str, detail: str, node: int | None = None, edge=None):
        self.rule = rule
        self.detail = detail
        self.node = node
        self.edge = edge
        where = ""
        if node is not None:
            where = f" [node {node}]"
        if edge is not None:
            where += f" [edge {edge[0]}->{edge[1]} {edge[2]}]"
        super().__init__(f"{rule}{where}: {detail}")


def _node_desc(n: DagNode) -> str:
    return f"{n.kind}#{n.id}(box={n.box_index}, L{n.level}, {n.tree})"


def _check_delta(delta, ek: EdgeKind, edge_id) -> None:
    if (
        not isinstance(delta, tuple)
        or len(delta) != 3
        or not all(isinstance(d, (int, np.integer)) for d in delta)
    ):
        raise SchemaValidationError(
            "edge-aux", f"{ek.name} aux must be a 3-int delta, got {delta!r}", edge=edge_id
        )
    if ek.well_separated:
        cheb = max(abs(int(d)) for d in delta)
        if not (2 <= cheb <= 3):
            raise SchemaValidationError(
                "edge-separation",
                f"{ek.name} delta {delta} is not well separated "
                f"(Chebyshev distance {cheb}, expected 2..3)",
                edge=edge_id,
            )


def validate_dag(schema: MethodSchema, dag: DAG) -> None:
    """Type-check a DAG against its schema; raise on the first violation.

    Checks, in order: node kinds/trees/level floors, the in-degree
    table's consistency with the edge set, per-kind degree bounds,
    per-edge endpoint kinds, level relations, same-box pins, aux
    operator signatures (octant range, delta arity, direction/delta
    agreement, list-2 separation), per-destination edge-kind
    multiplicity, and acyclicity.
    """
    nodes = dag.nodes
    n = len(nodes)
    for node in nodes:
        kind = schema.node_kind(node.kind)
        if kind is None:
            raise SchemaValidationError(
                "node-kind",
                f"{_node_desc(node)}: kind {node.kind!r} is not declared by "
                f"schema {schema.name!r}",
                node=node.id,
            )
        if node.tree != kind.tree:
            raise SchemaValidationError(
                "node-tree",
                f"{_node_desc(node)}: kind {node.kind} lives on the "
                f"{kind.tree} tree, node claims {node.tree!r}",
                node=node.id,
            )
        if node.level < kind.min_level:
            raise SchemaValidationError(
                "node-level",
                f"{_node_desc(node)}: below the kind's level floor "
                f"{kind.min_level}",
                node=node.id,
            )
        if not kind.has_points and node.n_points:
            raise SchemaValidationError(
                "node-points",
                f"{_node_desc(node)}: kind {node.kind} carries no leaf points "
                f"but n_points={node.n_points}",
                node=node.id,
            )

    # one pass over the edge set: recompute in-degrees, bucket by op,
    # count per-(op, dst) multiplicity
    indeg = [0] * n
    multiplicity: Counter = Counter()
    for edges in dag.out_edges:
        for e in edges:
            eid = (e.src, e.dst, e.op)
            ek = schema.edge_kind(e.op)
            if ek is None:
                raise SchemaValidationError(
                    "edge-op",
                    f"operator {e.op!r} is not declared by schema {schema.name!r}",
                    edge=eid,
                )
            if not (0 <= e.src < n) or not (0 <= e.dst < n):
                raise SchemaValidationError(
                    "edge-endpoints", "edge endpoint is not a node id", edge=eid
                )
            s, d = nodes[e.src], nodes[e.dst]
            if s.kind != ek.src or d.kind != ek.dst:
                raise SchemaValidationError(
                    "edge-endpoint-kind",
                    f"{ek.name} connects {ek.src}->{ek.dst}, got "
                    f"{_node_desc(s)} -> {_node_desc(d)}",
                    edge=eid,
                )
            if ek.level == "same":
                ok = d.level == s.level
            elif ek.level == "up":
                ok = d.level == s.level - 1
            elif ek.level == "down":
                ok = d.level == s.level + 1
            else:
                ok = True
            if not ok:
                raise SchemaValidationError(
                    "edge-level",
                    f"{ek.name} requires a {ek.level!r} level relation, got "
                    f"L{s.level} -> L{d.level}",
                    edge=eid,
                )
            if ek.same_box and s.box_index != d.box_index:
                raise SchemaValidationError(
                    "edge-box",
                    f"{ek.name} pins both endpoints to one box, got boxes "
                    f"{s.box_index} -> {d.box_index}",
                    edge=eid,
                )
            aux = e.aux
            if ek.aux == "none":
                if aux is not None:
                    raise SchemaValidationError(
                        "edge-aux", f"{ek.name} carries no aux, got {aux!r}", edge=eid
                    )
            elif ek.aux == "octant":
                if not isinstance(aux, (int, np.integer)) or not (0 <= aux <= 7):
                    raise SchemaValidationError(
                        "edge-aux",
                        f"{ek.name} aux must be an octant 0..7, got {aux!r}",
                        edge=eid,
                    )
            elif ek.aux == "delta":
                _check_delta(aux, ek, eid)
            else:  # dir_delta
                if not isinstance(aux, tuple) or len(aux) != 2:
                    raise SchemaValidationError(
                        "edge-aux",
                        f"{ek.name} aux must be (direction, delta), got {aux!r}",
                        edge=eid,
                    )
                direction, delta = aux
                _check_delta(delta, ek, eid)
                want = assign_direction(tuple(int(v) for v in delta))
                if direction != want:
                    raise SchemaValidationError(
                        "edge-direction",
                        f"{ek.name} direction {direction!r} disagrees with its "
                        f"delta {delta} (expected {want!r})",
                        edge=eid,
                    )
            indeg[e.dst] += 1
            if ek.in_unique or ek.in_max_per_dst is not None:
                multiplicity[(e.op, e.dst)] += 1

    recorded = list(dag.in_degree)
    if indeg != recorded:
        bad = next(i for i in range(n) if indeg[i] != (recorded[i] if i < len(recorded) else None))
        raise SchemaValidationError(
            "in-degree-table",
            f"{_node_desc(nodes[bad])}: recorded in-degree "
            f"{recorded[bad] if bad < len(recorded) else '<missing>'} but the "
            f"edge set delivers {indeg[bad]}",
            node=bad,
        )

    for node in nodes:
        kind = schema.node_kind(node.kind)
        din, dout = indeg[node.id], len(dag.out_edges[node.id])
        if din < kind.in_min or (kind.in_max is not None and din > kind.in_max):
            raise SchemaValidationError(
                "in-degree",
                f"{_node_desc(node)}: in-degree {din} outside "
                f"[{kind.in_min}, {kind.in_max if kind.in_max is not None else 'inf'}]",
                node=node.id,
            )
        if dout < kind.out_min or (kind.out_max is not None and dout > kind.out_max):
            raise SchemaValidationError(
                "out-degree",
                f"{_node_desc(node)}: out-degree {dout} outside "
                f"[{kind.out_min}, {kind.out_max if kind.out_max is not None else 'inf'}]",
                node=node.id,
            )

    for (op, dst), count in multiplicity.items():
        ek = schema.edge_kind(op)
        cap = 1 if ek.in_unique else ek.in_max_per_dst
        if count > cap:
            raise SchemaValidationError(
                "edge-multiplicity",
                f"{_node_desc(nodes[dst])}: {count} {op} in-edges exceed the "
                f"kind's cap of {cap}",
                node=dst,
            )

    try:
        dag._topological_order()
    except RuntimeError as exc:
        raise SchemaValidationError("acyclic", str(exc)) from exc


# -- canonical export / fingerprint / diff ---------------------------------------
def _aux_canon(aux):
    """Aux payload as a canonical JSON-native value."""
    if aux is None or isinstance(aux, str):
        return aux
    if isinstance(aux, (int, np.integer)):
        return int(aux)
    if isinstance(aux, tuple):
        return [_aux_canon(v) for v in aux]
    return aux


def export_dag(dag: DAG, schema: MethodSchema | None = None) -> dict:
    """Canonical structural form of a DAG (JSON-native, order-free).

    Nodes are keyed ``(kind, tree, box)`` - unique by construction -
    and sorted; edges reference endpoints by node key and are sorted by
    ``(op, src key, dst key, aux)``.  Localities are *excluded*: they
    are a distribution-policy decision, not graph structure.  The same
    graph exports identically no matter which assembly (declarative or
    legacy, vectorized or reference) produced it or how node ids were
    allocated.
    """
    nodes = [[n.kind, n.tree, n.box_index, n.level, n.n_points] for n in dag.nodes]
    nodes.sort()
    edges = []
    dag_nodes = dag.nodes
    for out in dag.out_edges:
        for e in out:
            s, d = dag_nodes[e.src], dag_nodes[e.dst]
            edges.append(
                [
                    e.op,
                    s.kind,
                    s.tree,
                    s.box_index,
                    d.kind,
                    d.tree,
                    d.box_index,
                    json.dumps(_aux_canon(e.aux)),
                ]
            )
    edges.sort()
    return {
        "format": 1,
        "schema": schema.name if schema is not None else None,
        "nodes": nodes,
        "edges": edges,
    }


def dag_fingerprint(dag_or_export, schema: MethodSchema | None = None) -> str:
    """Hex digest of the canonical graph structure.

    Accepts a :class:`DAG` or a dict from :func:`export_dag`.  The
    schema *name* is provenance, not structure, so it is excluded: two
    assemblies of the same graph always agree.
    """
    ex = _as_export(dag_or_export, schema)
    blob = json.dumps(
        {"format": ex["format"], "nodes": ex["nodes"], "edges": ex["edges"]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _as_export(x, schema: MethodSchema | None = None) -> dict:
    if isinstance(x, DAG):
        return export_dag(x, schema)
    if isinstance(x, dict) and "nodes" in x and "edges" in x:
        return x
    raise TypeError(f"expected a DAG or an export dict, got {type(x).__name__}")


@dataclass
class DagDiff:
    """Structural delta between two DAGs, in node/edge-key space."""

    nodes_only_a: list = field(default_factory=list)
    nodes_only_b: list = field(default_factory=list)
    node_changes: list = field(default_factory=list)  # (key, field, a, b)
    edges_only_a: list = field(default_factory=list)  # (edge key, count delta)
    edges_only_b: list = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (
            self.nodes_only_a
            or self.nodes_only_b
            or self.node_changes
            or self.edges_only_a
            or self.edges_only_b
        )

    def report(self, limit: int = 20) -> str:
        """Human-readable delta summary (truncated per section)."""
        if self.empty:
            return "DAGs are structurally identical"
        lines = []

        def section(title, rows, fmt):
            if not rows:
                return
            lines.append(f"{title} ({len(rows)}):")
            for row in rows[:limit]:
                lines.append(f"  {fmt(row)}")
            if len(rows) > limit:
                lines.append(f"  ... {len(rows) - limit} more")

        nk = lambda k: f"{k[0]}[{k[1]} box {k[2]}]"
        section("nodes only in A", self.nodes_only_a, nk)
        section("nodes only in B", self.nodes_only_b, nk)
        section(
            "node attribute changes",
            self.node_changes,
            lambda c: f"{nk(c[0])}: {c[1]} {c[2]!r} -> {c[3]!r}",
        )
        ek = lambda r: (
            f"{r[0][0]}: {r[0][1]}[{r[0][2]} box {r[0][3]}] -> "
            f"{r[0][4]}[{r[0][5]} box {r[0][6]}] aux={r[0][7]} (x{r[1]})"
        )
        section("edges only in A", self.edges_only_a, ek)
        section("edges only in B", self.edges_only_b, ek)
        return "\n".join(lines)


def diff_dags(a, b) -> DagDiff:
    """Structural node/edge delta between two DAGs (or exports).

    Nodes match on ``(kind, tree, box)``; matched nodes are compared on
    level and point count.  Edges are compared as a multiset of
    ``(op, src key, dst key, aux)`` rows, so the diff is independent of
    node-id allocation and edge emission order.
    """
    ea, eb = _as_export(a), _as_export(b)
    out = DagDiff()
    na = {(r[0], r[1], r[2]): r for r in ea["nodes"]}
    nb = {(r[0], r[1], r[2]): r for r in eb["nodes"]}
    for key in sorted(na.keys() - nb.keys()):
        out.nodes_only_a.append(key)
    for key in sorted(nb.keys() - na.keys()):
        out.nodes_only_b.append(key)
    for key in sorted(na.keys() & nb.keys()):
        ra, rb = na[key], nb[key]
        if ra[3] != rb[3]:
            out.node_changes.append((key, "level", ra[3], rb[3]))
        if ra[4] != rb[4]:
            out.node_changes.append((key, "n_points", ra[4], rb[4]))
    ca = Counter(tuple(r) for r in ea["edges"])
    cb = Counter(tuple(r) for r in eb["edges"])
    for key in sorted(ca.keys() | cb.keys()):
        d = ca.get(key, 0) - cb.get(key, 0)
        if d > 0:
            out.edges_only_a.append((key, d))
        elif d < 0:
            out.edges_only_b.append((key, -d))
    return out


# -- wiring rules ----------------------------------------------------------------
class _BuildState:
    """Mutable assembly context shared by the wiring rules of one build."""

    __slots__ = (
        "dual",
        "lists",
        "mac",
        "dag",
        "dst_acc",
        "sa",
        "ta",
        "nsb",
        "ntb",
        "s_of",
        "l_of",
        "t_of",
    )

    def __init__(self, dual, lists=None, mac=None):
        self.dual = dual
        self.lists = lists
        self.mac = mac
        self.dag = DAG()
        self.dst_acc: list[np.ndarray] = []
        self.sa = dual.source.arrays
        self.ta = dual.target.arrays
        self.nsb = len(dual.source.boxes)
        self.ntb = len(dual.target.boxes)
        self.s_of: np.ndarray | None = None
        self.l_of: np.ndarray | None = None
        self.t_of: np.ndarray | None = None


def _rule_source_upward(st: _BuildState) -> None:
    """M at every source box, S at nonempty leaves; S2M and M2M edges."""
    dag, sa, nsb = st.dag, st.sa, st.nsb
    _batch_nodes(dag, "M", np.arange(nsb, dtype=np.int64), sa.levels, "source")
    s_boxes = np.flatnonzero(sa.leaf & (sa.counts > 0))
    s_base = _batch_nodes(dag, "S", s_boxes, sa.levels[s_boxes], "source", sa.counts[s_boxes])
    s_ids = np.arange(s_base, s_base + s_boxes.size, dtype=np.int64)
    st.s_of = np.full(nsb, -1, dtype=np.int64)
    st.s_of[s_boxes] = s_ids
    _batch_edges(dag, s_ids, s_boxes, "S2M")
    st.dst_acc.append(s_boxes)
    kids = np.arange(1, nsb, dtype=np.int64)
    m2m_dst = sa.parent[kids]
    _batch_edges(dag, kids, m2m_dst, "M2M", auxs=sa.keys[kids] & 7)
    st.dst_acc.append(m2m_dst)


def _rule_target_downward(st: _BuildState) -> None:
    """L for live boxes at level >= 2, T at eval boxes; L2T and L2L edges."""
    dag, ta, ntb = st.dag, st.ta, st.ntb
    dead = _dead_mask(st.dual.target, st.lists.pruned)
    pruned_mask = np.zeros(ntb, dtype=bool)
    if st.lists.pruned:
        pruned_mask[
            np.fromiter(st.lists.pruned, dtype=np.int64, count=len(st.lists.pruned))
        ] = True
    l_boxes = np.flatnonzero(~dead & (ta.levels >= 2))
    l_base = _batch_nodes(dag, "L", l_boxes, ta.levels[l_boxes], "target")
    l_of = st.l_of = np.full(ntb, -1, dtype=np.int64)
    l_of[l_boxes] = np.arange(l_base, l_base + l_boxes.size, dtype=np.int64)
    t_boxes = np.flatnonzero(~dead & (ta.counts > 0) & (ta.leaf | pruned_mask))
    t_base = _batch_nodes(dag, "T", t_boxes, ta.levels[t_boxes], "target", ta.counts[t_boxes])
    t_of = st.t_of = np.full(ntb, -1, dtype=np.int64)
    t_of[t_boxes] = np.arange(t_base, t_base + t_boxes.size, dtype=np.int64)
    has_l = l_of[t_boxes] >= 0
    l2t_dst = t_of[t_boxes[has_l]]
    _batch_edges(dag, l_of[t_boxes[has_l]], l2t_dst, "L2T")
    st.dst_acc.append(l2t_dst)
    ll = np.flatnonzero((l_of >= 0) & (ta.levels >= 3))
    ll = ll[l_of[ta.parent[ll]] >= 0]
    l2l_dst = l_of[ll]
    _batch_edges(dag, l_of[ta.parent[ll]], l2l_dst, "L2L", auxs=ta.keys[ll] & 7)
    st.dst_acc.append(l2l_dst)


def _rule_list2_merge_shift(st: _BuildState) -> None:
    """Merge-and-shift list 2: Is/It nodes, M2I, I2I (dir+delta), I2L."""
    dag, sa, ta = st.dag, st.sa, st.ta
    ti2, si2 = list_pairs(st.lists.l2)
    if not ti2.size:
        return
    dx, dy, dz = _deltas(sa, ta, ti2, si2)
    # It at each target-group start, Is at the first pair-scan
    # occurrence of each source box (the reference's lazy order)
    group_pos = np.flatnonzero(np.r_[True, ti2[1:] != ti2[:-1]])
    uniq_si, first_pos = np.unique(si2, return_index=True)
    ev_pos = np.concatenate([group_pos, first_pos])
    ev_is = np.concatenate(
        [np.zeros(group_pos.size, np.int64), np.ones(first_pos.size, np.int64)]
    )
    ev_box = np.concatenate([ti2[group_pos], uniq_si])
    order = np.lexsort((ev_is, ev_pos))
    it_of = np.full(st.ntb, -1, dtype=np.int64)
    is_of = np.full(st.nsb, -1, dtype=np.int64)
    nodes, oe = dag.nodes, dag.out_edges
    it_index, is_index = dag.index["It"], dag.index["Is"]
    i2l_src: list[int] = []
    m2i_src: list[int] = []
    m2i_dst: list[int] = []
    t_levels = ta.levels
    s_levels = sa.levels
    for is_source, box in zip(ev_is[order].tolist(), ev_box[order].tolist()):
        nid = len(nodes)
        if is_source:
            nodes.append(
                DagNode(id=nid, kind="Is", box_index=box, level=int(s_levels[box]), tree="source")
            )
            oe.append([])
            is_index[box] = nid
            is_of[box] = nid
            m2i_src.append(box)
            m2i_dst.append(nid)
        else:
            nodes.append(
                DagNode(id=nid, kind="It", box_index=box, level=int(t_levels[box]), tree="target")
            )
            oe.append([])
            it_index[box] = nid
            it_of[box] = nid
            i2l_src.append(nid)
    i2l_dst = st.l_of[ti2[group_pos]]
    _batch_edges(dag, i2l_src, i2l_dst, "I2L")
    st.dst_acc.append(i2l_dst)
    _batch_edges(dag, m2i_src, m2i_dst, "M2I")
    st.dst_acc.append(np.asarray(m2i_dst, dtype=np.int64))
    d_codes = assign_direction_arrays(dx, dy, dz)
    auxs = list(zip(_DIR_LABELS[d_codes].tolist(), _delta_tuples(dx, dy, dz)))
    i2i_dst = it_of[ti2]
    _batch_edges(dag, is_of[si2], i2i_dst, "I2I", auxs=auxs)
    st.dst_acc.append(i2i_dst)


def _rule_list2_direct(st: _BuildState) -> None:
    """Basic-FMM list 2: direct M2L translations (delta aux)."""
    ti2, si2 = list_pairs(st.lists.l2)
    if not ti2.size:
        return
    dx, dy, dz = _deltas(st.sa, st.ta, ti2, si2)
    m2l_dst = st.l_of[ti2]
    _batch_edges(st.dag, si2, m2l_dst, "M2L", auxs=_delta_tuples(dx, dy, dz))
    st.dst_acc.append(m2l_dst)


def _rule_list3_m2t(st: _BuildState) -> None:
    """List 3: multipoles of coarse source boxes evaluated at leaf targets."""
    ti3, si3 = list_pairs(st.lists.l3)
    if not ti3.size:
        return
    keep = st.t_of[ti3] >= 0
    m2t_dst = st.t_of[ti3[keep]]
    _batch_edges(st.dag, si3[keep], m2t_dst, "M2T")
    st.dst_acc.append(m2t_dst)


def _rule_list4_s2l(st: _BuildState) -> None:
    """List 4: sources of coarse leaves accumulated into target locals."""
    ti4, si4 = list_pairs(st.lists.l4)
    if not ti4.size:
        return
    keep = st.s_of[si4] >= 0
    s2l_dst = st.l_of[ti4[keep]]
    _batch_edges(st.dag, st.s_of[si4[keep]], s2l_dst, "S2L")
    st.dst_acc.append(s2l_dst)


def _rule_list1_s2t(st: _BuildState) -> None:
    """List 1: direct near-field interactions."""
    ti1, si1 = list_pairs(st.lists.l1)
    if not ti1.size:
        return
    keep = (st.t_of[ti1] >= 0) & (st.s_of[si1] >= 0)
    s2t_dst = st.t_of[ti1[keep]]
    _batch_edges(st.dag, st.s_of[si1[keep]], s2t_dst, "S2T")
    st.dst_acc.append(s2t_dst)


def _rule_bh_mac(st: _BuildState) -> None:
    """Barnes-Hut MAC decisions: T nodes plus M2T/S2T edges."""
    dag, ta = st.dag, st.ta
    mac = st.mac
    t_keys = np.fromiter(mac.keys(), dtype=np.int64, count=len(mac))
    lens = np.fromiter((len(v) for v in mac.values()), dtype=np.int64, count=len(mac))
    total = int(lens.sum())
    flat_s = np.fromiter(
        (si for ops in mac.values() for _, si in ops), dtype=np.int64, count=total
    )
    flat_m2t = np.fromiter(
        (op == "M2T" for ops in mac.values() for op, _ in ops), dtype=bool, count=total
    )
    t_base = _batch_nodes(dag, "T", t_keys, ta.levels[t_keys], "target", ta.counts[t_keys])
    t_ids = np.arange(t_base, t_base + t_keys.size, dtype=np.int64)
    flat_t = np.repeat(t_ids, lens)

    m2t_dst = flat_t[flat_m2t]
    _batch_edges(dag, flat_s[flat_m2t], m2t_dst, "M2T")
    st.dst_acc.append(m2t_dst)
    s2t_mask = ~flat_m2t & (st.s_of[flat_s] >= 0)
    s2t_dst = flat_t[s2t_mask]
    _batch_edges(dag, st.s_of[flat_s[s2t_mask]], s2t_dst, "S2T")
    st.dst_acc.append(s2t_dst)


#: rule name -> implementation
_ASSEMBLY_RULES = {
    "source-upward": _rule_source_upward,
    "target-downward": _rule_target_downward,
    "list2-merge-shift": _rule_list2_merge_shift,
    "list2-direct": _rule_list2_direct,
    "list3-m2t": _rule_list3_m2t,
    "list4-s2l": _rule_list4_s2l,
    "list1-s2t": _rule_list1_s2t,
    "bh-mac": _rule_bh_mac,
}

#: rule name -> (node kinds, edge kinds) it may emit (schema coherence check)
_RULE_EMITS = {
    "source-upward": (("S", "M"), ("S2M", "M2M")),
    "target-downward": (("L", "T"), ("L2T", "L2L")),
    "list2-merge-shift": (("Is", "It"), ("M2I", "I2I", "I2L")),
    "list2-direct": ((), ("M2L",)),
    "list3-m2t": ((), ("M2T",)),
    "list4-s2l": ((), ("S2L",)),
    "list1-s2t": ((), ("S2T",)),
    "bh-mac": (("T",), ("M2T", "S2T")),
}

#: rules that need interaction lists / MAC decisions as input
_NEEDS_LISTS = frozenset(
    ("target-downward", "list2-merge-shift", "list2-direct", "list3-m2t", "list4-s2l", "list1-s2t")
)
_NEEDS_MAC = frozenset(("bh-mac",))


# -- the builder -----------------------------------------------------------------
class DagBuilder:
    """Materializes, validates, stamps, exports and diffs method DAGs.

    One builder per :class:`MethodSchema`; :meth:`build` runs the
    schema's declared wiring rules over tree + interaction data and
    (by default) type-checks the result before anything executes it.
    """

    def __init__(self, schema: MethodSchema, validate: bool = True):
        self.schema = schema
        self.validate_on_build = validate

    def build(self, dual, lists=None, mac_pairs=None) -> DAG:
        """Build the method DAG from a dual tree plus interaction inputs.

        ``lists`` feeds the FMM list rules, ``mac_pairs`` the
        Barnes-Hut MAC rule; passing the wrong one for the schema's
        declared rules raises immediately.  Bumps the shared assembly
        counter (:data:`repro.dashmm.dag.COUNTERS`) exactly like the
        legacy builders, so template-reuse accounting sees both paths.
        """
        for rule in self.schema.assembly:
            if rule in _NEEDS_LISTS and lists is None:
                raise ValueError(f"rule {rule!r} needs interaction lists")
            if rule in _NEEDS_MAC and mac_pairs is None:
                raise ValueError(f"rule {rule!r} needs Barnes-Hut MAC decisions")
        COUNTERS["assemblies"] += 1
        st = _BuildState(dual, lists=lists, mac=mac_pairs)
        rules = _ASSEMBLY_RULES
        for rule in self.schema.assembly:
            rules[rule](st)
        n_nodes = len(st.dag.nodes)
        if st.dst_acc:
            all_dst = np.concatenate([np.asarray(d, dtype=np.int64) for d in st.dst_acc])
            st.dag.in_degree = np.bincount(all_dst, minlength=n_nodes).tolist()
        else:
            st.dag.in_degree = [0] * n_nodes
        if self.validate_on_build:
            self.validate(st.dag)
        return st.dag

    def validate(self, dag: DAG) -> None:
        """Type-check ``dag`` against this builder's schema."""
        validate_dag(self.schema, dag)

    def stamp_priorities(self, dag: DAG, cost_model=None, levels: int = 3) -> list[int]:
        """Grade and stamp quantized critical-path priorities onto the DAG.

        Delegates to
        :func:`repro.analysis.critical_path.node_priorities` (monotone
        quantized downstream distances) and records the stamp on
        ``dag.priorities``; the registrar reuses a matching stamp
        instead of re-grading.
        """
        from repro.analysis.critical_path import node_priorities

        values = node_priorities(dag, cost_model=cost_model, levels=levels)
        dag.priorities = {"levels": levels, "values": values, "cost": cost_model}
        return values

    def export(self, dag: DAG) -> dict:
        """Canonical structural export (see :func:`export_dag`)."""
        return export_dag(dag, self.schema)

    def fingerprint(self, dag: DAG) -> str:
        """Canonical graph fingerprint (see :func:`dag_fingerprint`)."""
        return dag_fingerprint(dag, self.schema)

    def diff(self, a, b) -> DagDiff:
        """Structural delta between two DAGs (see :func:`diff_dags`)."""
        return diff_dags(a, b)
