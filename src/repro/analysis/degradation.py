"""Fault-degradation accounting: what disruption costs, and what it doesn't.

The reliable parcel transport (:mod:`repro.hpx.transport`) turns
network faults from correctness failures into pure virtual-time
overhead: results stay bit-identical to the fault-free run while
retries, acks and backoff stretch the makespan.  This module condenses
one faulty run (or a sweep of fault rates) against a fault-free
baseline into a report of exactly that trade: added makespan vs.
retries / duplicate suppressions / injected faults, plus an explicit
bit-identity check of the potentials.

Reports are plain dicts of scalars so they serialize straight to JSON
(the CI degradation artifact) and feed the benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np


def _transport_stats(stats: dict) -> dict:
    xp = stats.get("transport", {}) or {}
    return {
        "retries": int(xp.get("retries", 0)),
        "acks_sent": int(xp.get("acks_sent", 0)),
        "dups_suppressed": int(xp.get("dups_suppressed", 0)),
        "stale_acks": int(xp.get("stale_acks", 0)),
        "in_flight": int(xp.get("in_flight", 0)),
    }


def degradation_report(baseline, faulty) -> dict[str, Any]:
    """Compare a faulty evaluation against its fault-free baseline.

    Both arguments are :class:`~repro.dashmm.evaluator.EvaluationReport`
    (or anything with ``.time``, ``.runtime_stats`` and
    ``.potentials``).  Returns a JSON-ready dict with the makespans,
    the fractional overhead, the transport/fault counters of the faulty
    run, and whether the potentials are bit-identical.
    """
    t_base, t_faulty = float(baseline.time), float(faulty.time)
    row: dict[str, Any] = {
        "makespan_fault_free": t_base,
        "makespan_faulty": t_faulty,
        "makespan_overhead": (t_faulty - t_base) / t_base if t_base > 0 else 0.0,
        "lco_dups_suppressed": int(
            faulty.runtime_stats.get("lco_dups_suppressed", 0)
        ),
        "transport": _transport_stats(faulty.runtime_stats),
        "network_faults": dict(faulty.runtime_stats.get("network_faults", {})),
    }
    a, b = baseline.potentials, faulty.potentials
    if a is not None and b is not None:
        row["bit_identical"] = bool(
            a.shape == b.shape and np.array_equal(a, b)
        )
        row["max_abs_diff"] = float(np.max(np.abs(a - b))) if a.shape == b.shape else float("inf")
    else:
        row["bit_identical"] = None
        row["max_abs_diff"] = None
    return row


def degradation_sweep(
    run: Callable[[float], Any], rates: Sequence[float]
) -> dict[str, Any]:
    """Sweep fault rates against the ``rate == 0`` baseline.

    ``run(rate)`` evaluates one configuration (rate is typically the
    drop *and* duplicate probability of a
    :class:`~repro.hpx.network.FaultyNetwork`) and returns an
    evaluation report; ``run(0.0)`` must be the fault-free baseline.
    Returns ``{"baseline_makespan": ..., "rows": [...]}``, one row per
    rate (see :func:`degradation_report`), each tagged with its rate.
    """
    baseline = run(0.0)
    rows = []
    for rate in rates:
        row = degradation_report(baseline, run(rate))
        row["rate"] = float(rate)
        rows.append(row)
    return {"baseline_makespan": float(baseline.time), "rows": rows}
