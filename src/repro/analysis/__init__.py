"""Trace and scaling analysis: Eq. (1)-(2) utilization, speedups, critical path."""

from repro.analysis.degradation import degradation_report, degradation_sweep
from repro.analysis.utilization import (
    class_utilization,
    total_utilization,
    underutilized_region,
)
from repro.analysis.scaling import efficiency, speedup, scaling_table
from repro.analysis.critical_path import dag_critical_path, op_group
from repro.analysis.parallelism import (
    bottleneck_round,
    fanout_after_bottleneck,
    wavefront_profile,
)
from repro.analysis.schedules import SweepResult, SweepRow, fuzz_sweep

__all__ = [
    "fuzz_sweep",
    "SweepResult",
    "SweepRow",
    "degradation_report",
    "degradation_sweep",
    "total_utilization",
    "class_utilization",
    "underutilized_region",
    "speedup",
    "efficiency",
    "scaling_table",
    "dag_critical_path",
    "op_group",
    "wavefront_profile",
    "bottleneck_round",
    "fanout_after_bottleneck",
]
