"""Strong-scaling bookkeeping for Fig. 3 style experiments."""

from __future__ import annotations

import numpy as np


def speedup(times: dict[int, float], base_cores: int | None = None) -> dict[int, float]:
    """Speedup relative to the smallest (or given) core count.

    The paper plots ``t_32 / t_n`` - speedup relative to one node.
    """
    if not times:
        return {}
    base = base_cores if base_cores is not None else min(times)
    t0 = times[base]
    return {n: t0 / t for n, t in sorted(times.items())}


def efficiency(times: dict[int, float], base_cores: int | None = None) -> dict[int, float]:
    """Parallel efficiency: speedup divided by the core-count ratio."""
    if not times:
        return {}
    base = base_cores if base_cores is not None else min(times)
    sp = speedup(times, base)
    return {n: sp[n] / (n / base) for n in sp}


def scaling_table(times: dict[int, float], base_cores: int | None = None) -> list[dict]:
    """Rows of (cores, time, speedup, efficiency) for reporting."""
    sp = speedup(times, base_cores)
    eff = efficiency(times, base_cores)
    return [
        {"cores": n, "time": times[n], "speedup": sp[n], "efficiency": eff[n]}
        for n in sorted(times)
    ]
