"""Strong-scaling bookkeeping for Fig. 3 style experiments."""

from __future__ import annotations

import numpy as np


def speedup(times: dict[int, float], base_cores: int | None = None) -> dict[int, float]:
    """Speedup relative to the smallest (or given) core count.

    The paper plots ``t_32 / t_n`` - speedup relative to one node.
    """
    if not times:
        return {}
    base = base_cores if base_cores is not None else min(times)
    t0 = times[base]
    return {n: t0 / t for n, t in sorted(times.items())}


def efficiency(times: dict[int, float], base_cores: int | None = None) -> dict[int, float]:
    """Parallel efficiency: speedup divided by the core-count ratio."""
    if not times:
        return {}
    base = base_cores if base_cores is not None else min(times)
    sp = speedup(times, base)
    return {n: sp[n] / (n / base) for n in sp}


def scaling_table(times: dict[int, float], base_cores: int | None = None) -> list[dict]:
    """Rows of (cores, time, speedup, efficiency) for reporting."""
    sp = speedup(times, base_cores)
    eff = efficiency(times, base_cores)
    return [
        {"cores": n, "time": times[n], "speedup": sp[n], "efficiency": eff[n]}
        for n in sorted(times)
    ]


def shape_compare(
    measured: dict[int, float], predicted: dict[int, float]
) -> dict:
    """Compare the *shape* of two scaling curves on common core counts.

    Used to hold the real-parallel backend's measured wall-clock curve
    against the simulator's Fig. 3 style prediction: absolute times are
    incomparable (virtual cost model vs one machine's cores), but both
    normalize to speedup-vs-base curves whose shapes should agree.
    Returns the per-point speedups, their ratio, the maximum
    ``|log(measured/predicted)|`` deviation, and whether each curve is
    monotone non-decreasing in cores.
    """
    common = sorted(set(measured) & set(predicted))
    sub_m = {n: measured[n] for n in common}
    sub_p = {n: predicted[n] for n in common}
    sp_m = speedup(sub_m)
    sp_p = speedup(sub_p)
    ratio = {n: sp_m[n] / sp_p[n] for n in common}
    return {
        "cores": common,
        "measured_speedup": sp_m,
        "predicted_speedup": sp_p,
        "ratio": ratio,
        "max_log_deviation": (
            max(abs(float(np.log(r))) for r in ratio.values()) if common else 0.0
        ),
        "measured_monotone": all(
            sp_m[a] <= sp_m[b] for a, b in zip(common, common[1:])
        ),
        "predicted_monotone": all(
            sp_p[a] <= sp_p[b] for a, b in zip(common, common[1:])
        ),
    }
