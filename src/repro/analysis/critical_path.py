"""Critical-path analysis of the explicit DAG (Section V.C).

The paper divides the FMM DAG into three operation groups: work moving
up the source tree (S->M, M->M), work bridging source to target tree
(M->I, I->I, I->L, M->L, M->T, S->L), and work moving down the target
tree to the final values (S->T, L->L, L->T).  The critical path runs up
the source tree and back down the target tree, which is why delaying
the (cheap) upward work throttles the whole evaluation.
"""

from __future__ import annotations

from repro.dashmm.dag import DAG
from repro.sim.costmodel import CostModel

GROUPS = {
    "up": ("S2M", "M2M"),
    "bridge": ("M2I", "I2I", "I2L", "M2L", "M2T", "S2L"),
    "down": ("S2T", "L2L", "L2T"),
}


def op_group(op: str) -> str:
    """Which of the paper's three groups an edge class belongs to."""
    for g, ops in GROUPS.items():
        if op in ops:
            return g
    raise ValueError(f"unknown op {op}")


def dag_critical_path(dag: DAG, cost_model: CostModel | None = None) -> dict:
    """Critical-path length in edge count and (optionally) in seconds.

    With a cost model, edge weights are the per-edge costs (point counts
    taken from the source/destination nodes), giving the minimum
    possible evaluation time on infinitely many cores.
    """
    hops = dag.critical_path_length()
    out = {"edges": hops}
    if cost_model is not None:

        def w(e):
            s = dag.nodes[e.src]
            t = dag.nodes[e.dst]
            return cost_model.edge_cost(e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1))

        out["seconds"] = dag.critical_path_length(cost_fn=w)
    return out


def work_by_group(dag: DAG, cost_model: CostModel) -> dict[str, float]:
    """Total work (seconds of task time) per operation group.

    Quantifies the paper's observation that the absolute amount of
    upward work is small compared to the bridge and downward groups.
    """
    acc = {g: 0.0 for g in GROUPS}
    for edges in dag.out_edges:
        for e in edges:
            s, t = dag.nodes[e.src], dag.nodes[e.dst]
            acc[op_group(e.op)] += cost_model.edge_cost(
                e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1)
            )
    return acc
