"""Critical-path analysis of the explicit DAG (Section V.C).

The paper divides the FMM DAG into three operation groups: work moving
up the source tree (S->M, M->M), work bridging source to target tree
(M->I, I->I, I->L, M->L, M->T, S->L), and work moving down the target
tree to the final values (S->T, L->L, L->T).  The critical path runs up
the source tree and back down the target tree, which is why delaying
the (cheap) upward work throttles the whole evaluation.
"""

from __future__ import annotations

from repro.dag.schema import EDGE_KIND_CATALOG
from repro.dashmm.dag import DAG
from repro.sim.costmodel import CostModel


def _groups_from_catalog() -> dict[str, tuple[str, ...]]:
    out: dict[str, list[str]] = {"up": [], "bridge": [], "down": []}
    for kind in EDGE_KIND_CATALOG.values():
        out[kind.group].append(kind.name)
    return {g: tuple(ops) for g, ops in out.items()}


#: The paper's three operation groups, derived from the declared edge
#: kinds (each :class:`repro.dag.EdgeKind` carries its ``group`` tag):
#: up = S2M/M2M, bridge = M2I/I2I/I2L/M2L/M2T/S2L, down = S2T/L2L/L2T.
GROUPS = _groups_from_catalog()


def op_group(op: str) -> str:
    """Which of the paper's three groups an edge class belongs to."""
    for g, ops in GROUPS.items():
        if op in ops:
            return g
    raise ValueError(f"unknown op {op}")


def dag_critical_path(dag: DAG, cost_model: CostModel | None = None) -> dict:
    """Critical-path length in edge count and (optionally) in seconds.

    With a cost model, edge weights are the per-edge costs (point counts
    taken from the source/destination nodes), giving the minimum
    possible evaluation time on infinitely many cores.
    """
    hops = dag.critical_path_length()
    out = {"edges": hops}
    if cost_model is not None:

        def w(e):
            s = dag.nodes[e.src]
            t = dag.nodes[e.dst]
            return cost_model.edge_cost(e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1))

        out["seconds"] = dag.critical_path_length(cost_fn=w)
    return out


def node_priorities(
    dag: DAG, cost_model: CostModel | None = None, levels: int = 3
) -> list[int]:
    """Quantized critical-path priority level per DAG node.

    A node's *downstream distance* is the cost of the longest path from
    it to any sink, with edge weights from ``cost_model`` (hop count
    when None).  Distances quantize linearly into ``levels`` buckets:
    the largest distance maps to level 0 (most critical - the S nodes
    feeding the upward chain), the sinks (T nodes) to ``levels - 1``.
    Levels are monotone along every edge (``level[src] <= level[dst]``),
    so draining lower levels first always advances the critical path.

    The DASHMM registrar stamps these levels onto continuation tasks
    and parcels at registration time when the runtime's scheduling
    policy is graded (see
    :class:`repro.hpx.scheduler.CriticalPathPolicy`).
    """
    n = len(dag.nodes)
    dist = [0.0] * n
    nodes = dag.nodes
    out_edges = dag.out_edges
    if cost_model is not None:
        edge_cost = cost_model.edge_cost

        def w(e):
            s, t = nodes[e.src], nodes[e.dst]
            return edge_cost(
                e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1)
            )

    else:

        def w(e):
            return 1.0

    for nid in reversed(dag._topological_order()):
        best = 0.0
        for e in out_edges[nid]:
            d = w(e) + dist[e.dst]
            if d > best:
                best = d
        dist[nid] = best
    dmax = max(dist, default=0.0)
    if dmax <= 0.0 or levels < 2:
        return [0] * n
    top = levels - 1
    scale = top / dmax
    return [max(top - int(d * scale), 0) for d in dist]


def work_by_group(dag: DAG, cost_model: CostModel) -> dict[str, float]:
    """Total work (seconds of task time) per operation group.

    Quantifies the paper's observation that the absolute amount of
    upward work is small compared to the bridge and downward groups.
    """
    acc = {g: 0.0 for g in GROUPS}
    for edges in dag.out_edges:
        for e in edges:
            s, t = dag.nodes[e.src], dag.nodes[e.dst]
            acc[op_group(e.op)] += cost_model.edge_cost(
                e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1)
            )
    return acc
