"""Schedule-fuzz sweep analysis: certify schedule independence.

The paper's central correctness claim is that the DAG execution is
*schedule independent*: randomized work stealing, parcel coalescing and
LCO dataflow may interleave work arbitrarily, yet potentials (and any
other result folded in canonical order) must come out bit-identical.
:func:`fuzz_sweep` operationalizes that claim as a measurement: run one
workload under many fuzz seeds, compare every result against the
deterministic baseline bit for bit, and aggregate the hazard reports -
while also checking that the sweep actually *exercised* different
schedules (distinct makespans / steal counts / decision traces), since
a sweep that never perturbs anything certifies nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np


@dataclass
class SweepRow:
    """One fuzzed run of the sweep."""

    seed: int
    bit_identical: bool
    max_abs_diff: float
    time: float
    steals: int
    hazards: dict[str, int] = field(default_factory=dict)
    decisions: int = 0


@dataclass
class SweepResult:
    """Aggregate of a :func:`fuzz_sweep`.

    ``all_bit_identical`` is the schedule-independence verdict;
    ``distinct_makespans`` / ``distinct_steals`` measure how much
    schedule diversity the sweep actually generated (both 1 would mean
    the fuzzer changed nothing and the verdict is vacuous).
    """

    baseline_time: float
    rows: list[SweepRow] = field(default_factory=list)

    @property
    def all_bit_identical(self) -> bool:
        return all(r.bit_identical for r in self.rows)

    @property
    def distinct_makespans(self) -> int:
        return len({r.time for r in self.rows} | {self.baseline_time})

    @property
    def distinct_steals(self) -> int:
        return len({r.steals for r in self.rows})

    @property
    def hazard_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.rows:
            for kind, n in r.hazards.items():
                out[kind] = out.get(kind, 0) + n
        return out

    @property
    def total_hazards(self) -> int:
        return sum(self.hazard_counts.values())

    def summary(self) -> str:
        return (
            f"{len(self.rows)} fuzzed schedules: "
            f"bit-identical={self.all_bit_identical} "
            f"distinct makespans={self.distinct_makespans} "
            f"distinct steal counts={self.distinct_steals} "
            f"hazards={self.hazard_counts or 0}"
        )


def _run_stats(report) -> tuple[float, int, dict, int]:
    stats = report.runtime_stats
    trace = report.extras.get("schedule_trace")
    return (
        report.time,
        stats.get("steals", 0),
        stats.get("hazards", {}),
        len(trace) if trace is not None else 0,
    )


def fuzz_sweep(
    run: Callable[[int | None], Any],
    seeds: Iterable[int],
    baseline=None,
) -> SweepResult:
    """Sweep ``run`` over fuzz seeds and compare against the baseline.

    ``run(seed)`` must perform one evaluation with
    ``RuntimeConfig(fuzz_schedule=seed)`` (and ideally
    ``detect_hazards=True``) and return an object exposing
    ``.potentials``, ``.time``, ``.runtime_stats`` and ``.extras`` - an
    :class:`repro.dashmm.evaluator.EvaluationReport` fits.  ``run(None)``
    is called for the deterministic baseline unless one is passed in.
    """
    if baseline is None:
        baseline = run(None)
    base_pot = baseline.potentials
    result = SweepResult(baseline_time=baseline.time)
    for seed in seeds:
        rep = run(seed)
        t, steals, hazards, decisions = _run_stats(rep)
        pot = rep.potentials
        if base_pot is None or pot is None:
            identical = base_pot is None and pot is None
            diff = float("nan")
        else:
            identical = bool(np.array_equal(pot, base_pot))
            diff = float(np.max(np.abs(pot - base_pot))) if pot.size else 0.0
        result.rows.append(
            SweepRow(
                seed=seed,
                bit_identical=identical,
                max_abs_diff=diff,
                time=t,
                steals=steals,
                hazards=dict(hazards),
                decisions=decisions,
            )
        )
    return result
