"""Utilization fractions from execution traces (Section V.B).

The paper defines, over ``M`` uniform intervals of the total evaluation
time ``dt_k = dt_total / M`` and ``n`` scheduler threads,

    f_k^(i) = dt_k^(i) / (n dt_k)        (Eq. 1)
    f_k     = sum_i f_k^(i)              (Eq. 2)

where ``dt_k^(i)`` is the time spent in operation class ``i`` during
interval ``k``.  Busy intervals from the tracer are clipped against the
bin edges so work spanning bins is attributed proportionally.
"""

from __future__ import annotations

import numpy as np

from repro.hpx.tracing import Tracer

#: classes that are runtime bookkeeping, not DASHMM work (excluded from
#: the DASHMM utilization fractions like the paper's instrumentation)
RUNTIME_CLASSES = ("_progress",)


def _bin_intervals(t0: np.ndarray, t1: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Total busy time per bin for a set of [t0, t1) intervals.

    Interval endpoints are clipped to the binning window first: an
    interval reaching past ``edges[-1]`` (or starting before
    ``edges[0]``) only contributes the part inside the window.  The old
    code clipped the *bin index* but added the full duration, so e.g. a
    trace interval ending after ``total_time`` inflated the last bin
    and utilization fractions could exceed 1.0.
    """
    M = len(edges) - 1
    out = np.zeros(M)
    t0 = np.clip(t0, edges[0], edges[-1])
    t1 = np.clip(t1, edges[0], edges[-1])
    keep = t1 > t0
    t0, t1 = t0[keep], t1[keep]
    if len(t0) == 0:
        return out
    lo = np.clip(np.searchsorted(edges, t0, side="right") - 1, 0, M - 1)
    hi = np.clip(np.searchsorted(edges, t1, side="left") - 1, 0, M - 1)
    same = lo == hi
    np.add.at(out, lo[same], (t1 - t0)[same])
    for i in np.nonzero(~same)[0]:
        a, b = lo[i], hi[i]
        out[a] += edges[a + 1] - t0[i]
        out[b] += t1[i] - edges[b]
        if b > a + 1:
            out[a + 1 : b] += np.diff(edges[a + 1 : b + 1])
    return out


def total_utilization(
    tracer: Tracer,
    n_workers: int,
    total_time: float,
    n_intervals: int = 100,
    include_runtime: bool = False,
) -> np.ndarray:
    """Total utilization fraction f_k per interval (Eq. 2)."""
    fks = class_utilization(
        tracer, n_workers, total_time, n_intervals, include_runtime=include_runtime
    )
    if not fks:
        return np.zeros(n_intervals)
    return np.sum(list(fks.values()), axis=0)


def class_utilization(
    tracer: Tracer,
    n_workers: int,
    total_time: float,
    n_intervals: int = 100,
    include_runtime: bool = False,
) -> dict[str, np.ndarray]:
    """Per-class utilization fractions f_k^(i) (Eq. 1)."""
    if total_time <= 0 or len(tracer) == 0:
        return {}
    worker, cls_id, t0, t1 = tracer.arrays()
    classes = tracer.classes
    edges = np.linspace(0.0, total_time, n_intervals + 1)
    dt_k = total_time / n_intervals
    out: dict[str, np.ndarray] = {}
    for i, name in enumerate(classes):
        if not include_runtime and name in RUNTIME_CLASSES:
            continue
        mask = cls_id == i
        if not mask.any():
            continue
        out[name] = _bin_intervals(t0[mask], t1[mask], edges) / (n_workers * dt_k)
    return out


def underutilized_region(
    fk: np.ndarray, frac_of_plateau: float = 0.5, settle: float = 0.2
) -> tuple[int, int]:
    """Locate the late-execution utilization dip the paper analyses.

    The plateau level is the median utilization after the startup ramp
    (the first ``settle`` fraction of intervals); the region is the
    longest contiguous run of intervals below ``frac_of_plateau *
    plateau`` after the ramp.  Returns half-open (start, end) interval
    indices; (M, M) when there is no dip.
    """
    M = len(fk)
    s = int(M * settle)
    if s >= M:
        return (M, M)
    plateau = float(np.median(fk[s:]))
    thr = frac_of_plateau * plateau
    best = (M, M)
    run_start: int | None = None
    for i in range(s, M + 1):
        low = i < M and fk[i] < thr
        if low and run_start is None:
            run_start = i
        elif not low and run_start is not None:
            if (i - run_start) > (best[1] - best[0]) or best == (M, M):
                best = (run_start, i)
            run_start = None
    return best


def estimate_priority_gain(fk: np.ndarray, settle: float = 0.2) -> float:
    """The paper's Section-VI back-of-envelope estimate.

    "Given the known widths of the starved region, and under the simple
    assumption that the utilization during those times would return to
    its saturated value, one can estimate how long the work occurring
    during that phase would take" - i.e. compress every post-ramp
    interval to run at the plateau utilization and report the fractional
    time saved.  The paper concludes "the effect is to increase the
    scaling efficiency by 10% or more".
    """
    M = len(fk)
    s = int(M * settle)
    if s >= M:
        return 0.0
    plateau = float(np.median(fk[s:]))
    if plateau <= 0:
        return 0.0
    # time (in intervals) to do the post-ramp work at plateau utilization
    work = float(np.sum(fk[s:]))
    compressed = work / plateau
    actual = M - s
    saved = max(0.0, actual - compressed)
    return saved / M
