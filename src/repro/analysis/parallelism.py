"""DAG parallelism profiles (Section V.C).

The paper observes that following the local-expansion dependence up to
the root "there is a severe bottleneck at the top of the tree, after
which the amount of available parallelism rises sharply".  The
*parallelism profile* makes that quantitative: level-synchronous
wavefronts of the DAG (all nodes whose inputs are satisfied run in one
round) give, per round, how many tasks could execute concurrently.
"""

from __future__ import annotations

import numpy as np

from repro.dashmm.dag import DAG


def wavefront_profile(dag: DAG) -> np.ndarray:
    """Number of simultaneously-ready nodes per dependency round.

    Round 0 holds all in-degree-0 nodes (the S nodes); each later round
    holds the nodes whose last input arrived in the previous round.  The
    length of the profile is the DAG's depth in rounds; its values are
    the available parallelism assuming unit-time nodes.
    """
    indeg = list(dag.in_degree)
    current = [n.id for n in dag.nodes if indeg[n.id] == 0]
    profile = []
    while current:
        profile.append(len(current))
        nxt = []
        for nid in current:
            for e in dag.out_edges[nid]:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    nxt.append(e.dst)
        current = nxt
    return np.array(profile, dtype=np.int64)


def bottleneck_round(dag: DAG) -> tuple[int, int]:
    """(round index, width) of the narrowest non-initial wavefront.

    For the FMM this is the top-of-tree bottleneck: the round where the
    fewest tasks are runnable before the final fan-out.
    """
    prof = wavefront_profile(dag)
    if len(prof) < 3:
        return (0, int(prof[0]) if len(prof) else 0)
    # ignore the first and last rounds (sources / final sinks)
    inner = prof[1:-1]
    i = int(np.argmin(inner)) + 1
    return (i, int(prof[i]))


def fanout_after_bottleneck(dag: DAG) -> float:
    """Ratio of the widest post-bottleneck wavefront to the bottleneck
    width - the paper's "rises sharply" factor."""
    prof = wavefront_profile(dag)
    i, width = bottleneck_round(dag)
    if width == 0 or i + 1 >= len(prof):
        return 1.0
    return float(prof[i + 1 :].max()) / float(width)
