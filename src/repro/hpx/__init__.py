"""An HPX-5-like asynchronous many-tasking runtime on a simulated cluster.

This package reproduces the HPX-5 programming model of Section III of
the paper - a global address space, active-message *parcels* that are
the only way to spawn lightweight threads, and event-driven *LCOs*
(local control objects) that co-locate data and control - on top of a
discrete-event simulation of a cluster: L localities x W worker cores,
a virtual clock, per-worker task deques with local randomized work
stealing, and a latency/bandwidth network with per-NIC serialization.

The simulation executes *real* task bodies (arbitrary Python callables,
e.g. actual expansion translations), so the dataflow is genuine; only
*time* is virtual, advanced by a per-task cost that either comes from a
calibrated cost model or is measured.  This is the documented
substitution for the paper's Big Red II runs (see DESIGN.md): scaling
behaviour emerges from DAG structure, task grain and communication,
all of which are modelled explicitly.

Like HPX-5 itself, the runtime is application-agnostic; everything
FMM-specific lives in :mod:`repro.dashmm`.
"""

from repro.hpx.checkpoint import RuntimeCheckpoint
from repro.hpx.gas import GlobalAddress, GlobalAddressSpace
from repro.hpx.hazards import HazardDetector, HazardReport, concurrent, happens_before
from repro.hpx.lco import AndLCO, Future, LCO, LCOError, ReductionLCO
from repro.hpx.network import FaultyNetwork, InfiniteNetwork, NetworkModel
from repro.hpx.parcel import Parcel
from repro.hpx.runtime import Runtime, RuntimeConfig
from repro.hpx.scheduler import (
    ReplayDivergence,
    ScheduleFuzzer,
    ScheduleReplayer,
    Task,
)
from repro.hpx.tracing import ScheduleTrace, TraceEvent, Tracer
from repro.hpx.transport import DirectTransport, ReliableTransport, TransportError

__all__ = [
    "GlobalAddress",
    "GlobalAddressSpace",
    "HazardDetector",
    "HazardReport",
    "happens_before",
    "concurrent",
    "LCO",
    "LCOError",
    "Future",
    "AndLCO",
    "ReductionLCO",
    "NetworkModel",
    "InfiniteNetwork",
    "FaultyNetwork",
    "Parcel",
    "Runtime",
    "RuntimeConfig",
    "RuntimeCheckpoint",
    "Task",
    "ScheduleFuzzer",
    "ScheduleReplayer",
    "ScheduleTrace",
    "ReplayDivergence",
    "Tracer",
    "TraceEvent",
    "DirectTransport",
    "ReliableTransport",
    "TransportError",
]
