"""Real-parallel execution backend: one OS process per locality.

The discrete-event scheduler (:mod:`repro.hpx.scheduler`) executes the
whole cluster inside one interpreter on a virtual clock.  This module
is the second backend (``RuntimeConfig(backend="parallel")``): each
locality becomes a real ``multiprocessing`` worker process, bulk data
lives in POSIX shared memory (:class:`repro.hpx.gas.ShmArena`), and
parcels travel over OS queues wrapped in the same
:class:`~repro.hpx.transport.Framing` seq/ack/dedup protocol the
simulated reliable transport uses.  The pieces here are generic
runtime machinery; the DASHMM worker body that drives an evaluation
DAG through them is :mod:`repro.dashmm.parallel`.

Design points:

* **Same scheduling policy, same decision funnel.**  A worker's ready
  queue is a :class:`WorkerScheduler`: per-level deques identical to
  one simulator worker's, popped through the shared
  :func:`~repro.hpx.scheduler.pick_level` rule (critical levels first,
  near/far interleaving), with every schedule-freedom decision routed
  through the installed ``schedule_driver`` exactly like the
  simulator - fuzz certification carries over.
* **Reliable framing reuse.**  OS queues are lossless, but the
  pending-until-ack ledger is what gives each worker a precise "all my
  frames were processed" quiescence signal, and receiver dedup is a
  second belt under the LCO dedup keys.
* **Start method.**  ``spawn`` is the default (see
  :class:`~repro.hpx.runtime.RuntimeConfig`): fresh interpreters can't
  inherit BLAS pools, operator caches or RNG state, so runs are
  reproducible across platforms; ``fork``/``forkserver`` are accepted
  for experiments and produce identical results because every worker
  seeds its RNGs explicitly from ``config.seed + rank`` inside the
  worker body.
* **Thread hygiene.**  Worker processes are started with
  ``OPENBLAS/OMP/MKL/NUMEXPR_NUM_THREADS=1`` so ``n`` localities use
  ``n`` cores instead of oversubscribing every BLAS pool.
"""

from __future__ import annotations

import os
import queue as _queue
import time
from collections import deque
from typing import Callable

from repro.hpx.scheduler import SchedulingPolicy, Task, pick_level
from repro.hpx.transport import Framing


class ParallelError(RuntimeError):
    """A worker process failed or the parallel run stalled."""


#: thread-pool environment caps applied to worker processes
_THREAD_ENV = (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


class WorkerScheduler:
    """One locality's ready queue, driven by a :class:`SchedulingPolicy`.

    Implements the scheduler surface the LCO layer and the registrar
    touch (``enqueue`` / ``policy`` / ``schedule_driver`` /
    ``lco_dedup`` / ``hazards`` / ``now``) for a single real worker.
    Level layout and pop order follow the same
    :func:`~repro.hpx.scheduler.pick_level` rule as the simulator, so
    the backend drains work in the same policy order.
    """

    def __init__(self, rank: int, policy: SchedulingPolicy, schedule_driver=None):
        self.rank = rank
        self.policy = policy
        self.schedule_driver = schedule_driver
        self.queues: tuple[deque, ...] = tuple(
            deque() for _ in range(policy.n_levels)
        )
        self._level_of = policy.level_of
        self._burst = 0
        self.now = 0.0
        self.tasks_run = 0
        #: LCO-layer expectations (mirrors the simulated Scheduler)
        self.hazards = None
        self.lco_dedup = True
        self.lco_dups_suppressed = 0
        #: contributions applied through ctx.lco_set; the worker body
        #: compares this against the summed in-degree of its local LCOs
        #: for termination detection
        self.lco_sets_applied = 0

    def enqueue(self, task: Task, locality: int, t: float = 0.0, worker_hint=None) -> None:
        if locality != self.rank:
            raise ParallelError(
                f"task for locality {locality} enqueued on worker {self.rank}; "
                "remote work must travel as parcels"
            )
        self.queues[self._level_of(task)].append(task)

    def pop(self) -> Task | None:
        """The next task in policy order (owner pops LIFO), or None."""
        lvl, self._burst = pick_level(
            self.queues,
            self.policy.n_levels,
            self.policy.interleave,
            self._burst,
            self.schedule_driver,
        )
        if lvl < 0:
            return None
        self.tasks_run += 1
        return self.queues[lvl].pop()

    def has_ready(self) -> bool:
        return any(self.queues)


class QueueChannel:
    """Framed parcel channel over the worker queue mesh.

    ``inboxes[r]`` is worker ``r``'s (multi-producer) inbox queue.  All
    frames carry ``(src, seq)`` ids stamped by a :class:`Framing`
    instance, are acked by the receiver, and are deduplicated - the
    exact bookkeeping of the simulated reliable transport, minus
    retransmission (OS queues do not drop).
    """

    def __init__(self, rank: int, inboxes: list):
        self.rank = rank
        self.inboxes = inboxes
        self.framing = Framing()
        self.frames_sent = 0

    def send(self, dst: int, kind: str, payload) -> None:
        seq = self.framing.stamp(self.rank)
        self.framing.track(seq, (dst, kind))
        self.frames_sent += 1
        self.inboxes[dst].put(("frame", self.rank, seq, kind, payload))

    def handle_frame(self, src: int, seq, kind: str) -> bool:
        """Ack one arriving frame; True when it is fresh (deliver it)."""
        self.framing.acks_sent += 1
        self.inboxes[src].put(("ack", self.rank, seq))
        return self.framing.receive(seq)

    def handle_ack(self, seq) -> None:
        self.framing.ack(seq)

    @property
    def unacked(self) -> int:
        return self.framing.in_flight

    def stats(self) -> dict:
        return {"frames_sent": self.frames_sent, **self.framing.stats()}


class ParallelContext:
    """Task-context stand-in for real execution.

    Same surface as the simulator's :class:`TaskContext`, but effects
    apply immediately: on real cores there is no virtual completion
    time to defer to, and result bit-identity never depended on
    deferral - LCO folds happen in canonical dedup-key order and every
    batched flush groups canonically (see
    :mod:`repro.dashmm.registrar`), so application order is free.
    Charges are dropped (the wall clock is the cost model here).
    """

    __slots__ = ("scheduler", "worker", "locality", "time", "hb", "_on_parcel")

    def __init__(self, scheduler: WorkerScheduler, on_parcel: Callable):
        self.scheduler = scheduler
        self.worker = scheduler.rank
        self.locality = scheduler.rank
        self.time = 0.0
        self.hb = None
        self._on_parcel = on_parcel

    def charge(self, op_class: str, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative charge")

    def spawn(self, task: Task, locality: int | None = None) -> None:
        self.scheduler.enqueue(
            task, self.locality if locality is None else locality
        )

    def send_parcel(self, parcel) -> None:
        self._on_parcel(parcel)

    def lco_set(self, lco, value=None, key=None, op_class=None) -> None:
        self.scheduler.lco_sets_applied += 1
        lco._apply_set(value, 0.0, self.scheduler, key=key, op_class=op_class)

    def call_at_completion(self, fn: Callable) -> None:
        fn(0.0)


class LocalityRuntime:
    """Worker-side runtime facade bound to one locality process.

    The subset of the :class:`~repro.hpx.runtime.Runtime` surface the
    registrar and the LCO layer use; remote work arrives as framed
    queue parcels handled by the worker loop, so ``enqueue_task``
    silently skips tasks addressed to other localities (each process
    enqueues its own).
    """

    def __init__(self, rank: int, n_localities: int, scheduler: WorkerScheduler):
        from repro.hpx.gas import GlobalAddressSpace

        self.rank = rank
        self.n_localities = n_localities
        self.scheduler = scheduler
        self.gas = GlobalAddressSpace(n_localities)
        self._actions: dict[str, Callable] = {}

    def register_action(self, name: str, fn: Callable) -> None:
        if name in self._actions:
            raise ValueError(f"action {name!r} already registered")
        self._actions[name] = fn

    def action(self, name: str) -> Callable:
        fn = self._actions.get(name)
        if fn is None:
            raise KeyError(f"unregistered action {name!r}")
        return fn

    def enqueue_task(self, task: Task, locality: int) -> None:
        if locality == self.rank:
            self.scheduler.enqueue(task, locality)


def seed_worker_rngs(base_seed: int, rank: int) -> None:
    """Deterministic per-locality RNG seeding (RNG hygiene).

    Called inside the worker body - after ``spawn``/``fork`` did
    whatever it did to inherited state - so locality ``rank`` always
    computes with ``random`` seeded ``base_seed + rank`` and NumPy's
    legacy global generator seeded ``(base_seed + rank) % 2**32``,
    independent of the start method.  The stock evaluation pipeline
    draws no randomness (results are schedule- and RNG-independent by
    construction); this guards user kernels and future samplers.
    """
    import random

    import numpy as np

    random.seed(base_seed + rank)
    np.random.seed((base_seed + rank) % (2**32))


class ParallelRuntime:
    """Parent-side manager of one real-parallel run.

    Spawns ``n_localities`` worker processes running ``worker_fn(rank,
    n, spec, manifest, inboxes, parent_q)``, wires the queue mesh and
    the shared-memory arena, and times the parallel region from GO to
    the last DONE (setup - tree builds, operator fits from cache,
    allocation - happens before READY and is excluded, matching the
    iterative-evaluation regime the paper targets).

    ``arrays`` are copied into shared memory; ``outputs`` allocates
    zero-filled shared blocks (``label -> (shape, dtype)``) the workers
    fill and the parent reads back.
    """

    def __init__(
        self,
        n_localities: int,
        worker_fn: Callable,
        spec: dict,
        arrays: dict | None = None,
        outputs: dict | None = None,
        start_method: str = "spawn",
        timeout: float = 600.0,
    ):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        self.n = n_localities
        self.worker_fn = worker_fn
        self.spec = spec
        self.arrays = arrays or {}
        self.outputs = outputs or {}
        self.start_method = start_method
        self.timeout = timeout
        self.wall_time: float | None = None
        self.worker_stats: list[dict] = []

    def run(self) -> dict:
        """Execute the run; returns ``{label: array}`` output copies."""
        import multiprocessing as mp

        from repro.hpx.gas import ShmArena

        ctx = mp.get_context(self.start_method)
        arena = ShmArena()
        procs: list = []
        try:
            for label, arr in self.arrays.items():
                arena.put(label, arr)
            for label, (shape, dtype) in self.outputs.items():
                arena.alloc(label, shape, dtype)
            manifest = arena.manifest()
            inboxes = [ctx.Queue() for _ in range(self.n)]
            parent_q = ctx.Queue()
            saved = {k: os.environ.get(k) for k in _THREAD_ENV}
            try:
                os.environ.update({k: "1" for k in _THREAD_ENV})
                for rank in range(self.n):
                    p = ctx.Process(
                        target=self.worker_fn,
                        args=(rank, self.n, self.spec, manifest, inboxes, parent_q),
                        daemon=True,
                    )
                    p.start()
                    procs.append(p)
            finally:
                for k, v in saved.items():
                    if v is None:
                        os.environ.pop(k, None)
                    else:
                        os.environ[k] = v

            self._await(parent_q, procs, "ready")
            t0 = time.perf_counter()
            for q in inboxes:
                q.put(("go",))
            self.worker_stats = self._await(parent_q, procs, "done")
            self.wall_time = time.perf_counter() - t0
            for q in inboxes:
                q.put(("stop",))
            for p in procs:
                p.join(timeout=30.0)
            out = {label: arena.get(label).copy() for label in self.outputs}
            return out
        finally:
            for p in procs:
                if p.is_alive():
                    p.terminate()
                    p.join(timeout=5.0)
            arena.destroy()

    def _await(self, parent_q, procs, expected: str) -> list:
        return await_workers(parent_q, procs, self.n, expected, self.timeout)


def await_workers(parent_q, procs, n: int, expected: str, timeout: float) -> list:
    """Collect one ``expected`` message per worker, rank-ordered.

    Shared by the single-shot :class:`ParallelRuntime` and the
    persistent service (:mod:`repro.dashmm.parallel`), which awaits a
    DONE per round over the same queue protocol.
    """
    got: dict[int, object] = {}
    deadline = time.monotonic() + timeout
    while len(got) < n:
        try:
            msg = parent_q.get(timeout=1.0)
        except _queue.Empty:
            dead = [r for r, p in enumerate(procs) if not p.is_alive()]
            if dead and not _drain_errors(parent_q):
                hint = ""
                if expected == "ready":
                    # the classic spawn trap: a script that calls
                    # evaluate() at module top level is re-imported
                    # by every worker, which tries to spawn again
                    hint = (
                        "; if this run was started from a script, make "
                        "sure the evaluate() call is under an "
                        "`if __name__ == \"__main__\":` guard (required "
                        "by the spawn start method)"
                    )
                raise ParallelError(
                    f"worker(s) {dead} died without reporting "
                    f"(while waiting for {expected!r}){hint}"
                )
            if time.monotonic() > deadline:
                raise ParallelError(
                    f"timed out waiting for {expected!r} "
                    f"({len(got)}/{n} received)"
                )
            continue
        if msg[0] == "error":
            raise ParallelError(
                f"worker {msg[1]} failed:\n{msg[2]}"
            )
        if msg[0] != expected:
            raise ParallelError(
                f"protocol violation: expected {expected!r}, got {msg[0]!r}"
            )
        got[msg[1]] = msg[2] if len(msg) > 2 else None
    return [got[r] for r in range(n)]


def _drain_errors(parent_q) -> bool:
    """Surface a queued error report, if any (raises); False if none."""
    try:
        while True:
            msg = parent_q.get_nowait()
            if msg[0] == "error":
                raise ParallelError(f"worker {msg[1]} failed:\n{msg[2]}")
    except _queue.Empty:
        return False
