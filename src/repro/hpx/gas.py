"""Global address space (Section III).

HPX-5 exposes a global shared-memory abstraction: global allocation,
address resolution, and asynchronous memput/memget.  Global addresses
are the targets of parcels, and localities are mapped into the address
space so messages can target them by index.

Here a :class:`GlobalAddress` is an opaque (locality, slot) pair.  The
statically partitioned configuration used in the paper ("HPX-5 was
configured with a statically partitioned global address space") means
an address's home locality never changes, which is what this
implementation provides.  Resolution (`translate`) only succeeds on the
home locality - remote access must go through parcels or memget,
exactly the discipline DASHMM has to follow.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True, order=True)
class GlobalAddress:
    """An address in the global address space: (home locality, slot)."""

    locality: int
    slot: int

    def __repr__(self) -> str:  # compact, shows up in traces/debugging
        return f"ga({self.locality}:{self.slot})"


class GlobalAddressSpace:
    """Statically partitioned GAS with per-locality heaps.

    When a ``monitor`` (the happens-before hazard detector,
    :mod:`repro.hpx.hazards`) is attached, every resolution is reported
    as a read and every replacement as a write, so unsynchronized
    accesses to one address - e.g. racing asynchronous ``memput`` s -
    are flagged.  Allocation is not monitored: a fresh slot cannot
    race.  With no monitor the hooks cost one attribute check.
    """

    def __init__(self, n_localities: int):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        self.n_localities = n_localities
        self._heaps: list[dict[int, Any]] = [dict() for _ in range(n_localities)]
        self._next: list[int] = [0] * n_localities
        #: optional access monitor with on_gas_read/on_gas_write hooks
        self.monitor = None

    def alloc(self, locality: int, obj: Any = None) -> GlobalAddress:
        """Allocate a slot on ``locality`` holding ``obj``."""
        self._check(locality)
        slot = self._next[locality]
        self._next[locality] += 1
        self._heaps[locality][slot] = obj
        return GlobalAddress(locality, slot)

    def alloc_cyclic(self, count: int, objs=None) -> list[GlobalAddress]:
        """Block-cyclic allocation across localities (one per locality,
        round-robin), mirroring HPX-5's cyclic allocator."""
        out = []
        for i in range(count):
            obj = objs[i] if objs is not None else None
            out.append(self.alloc(i % self.n_localities, obj))
        return out

    def translate(self, addr: GlobalAddress, at_locality: int) -> Any:
        """Resolve a global address to its object - home locality only."""
        if addr.locality != at_locality:
            raise ValueError(
                f"cannot translate {addr} at locality {at_locality}: "
                "remote access must use parcels/memget"
            )
        if self.monitor is not None:
            self.monitor.on_gas_read(addr)
        return self._heaps[addr.locality][addr.slot]

    def put_local(self, addr: GlobalAddress, obj: Any, at_locality: int) -> None:
        """Replace the object at ``addr`` - home locality only."""
        if addr.locality != at_locality:
            raise ValueError(f"cannot put to {addr} from locality {at_locality}")
        if self.monitor is not None:
            self.monitor.on_gas_write(addr)
        self._heaps[addr.locality][addr.slot] = obj

    def free(self, addr: GlobalAddress) -> None:
        self._heaps[addr.locality].pop(addr.slot, None)

    def _check(self, locality: int) -> None:
        if not (0 <= locality < self.n_localities):
            raise ValueError(f"locality {locality} out of range")


# -- shared-memory GAS blocks (real-parallel backend) ----------------------------
#
# The real-parallel backend (repro.hpx.parallel) keeps the bulk data of
# an evaluation - source/target points, weights, the result vector - in
# POSIX shared memory so every locality process maps the same pages
# instead of receiving pickled copies.  ShmArena is the small
# allocator/registry the ISSUE calls for: the parent allocates named
# blocks, ships a manifest (names + shapes + dtypes) to the workers,
# and the workers attach read-write NumPy views.  Ownership is strict:
# only the creating arena unlinks; attached arenas only close.  The
# registry tracks every segment it created so tests can assert nothing
# leaked into /dev/shm even after worker crashes.

class ShmBlock:
    """One named shared-memory segment viewed as a NumPy array."""

    __slots__ = ("label", "name", "shape", "dtype", "_shm", "array", "_closed")

    def __init__(self, label: str, shm, shape, dtype):
        self.label = label
        self.name = shm.name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._shm = shm
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
        self._closed = False

    def close(self) -> None:
        """Unmap the segment (idempotent; safe to call twice)."""
        if self._closed:
            return
        self._closed = True
        self.array = None  # drop the exported buffer before unmapping
        self._shm.close()

    def unlink(self) -> None:
        """Remove the segment name (owner side; idempotent).

        The arena owns segment lifetime outright (every register is
        balanced by an immediate unregister, see ShmArena), so the name
        is re-registered just before ``SharedMemory.unlink`` - which
        unconditionally unregisters - to keep the shared tracker's
        bookkeeping balanced across the process tree.
        """
        _tracker_register(self._shm)
        try:
            self._shm.unlink()
        except FileNotFoundError:
            _tracker_unregister(self._shm)


def _tracker_register(shm) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass


def _tracker_unregister(shm) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass


class _suppress_tracker:
    """Keep ``SharedMemory`` construction out of the resource tracker.

    On CPython <= 3.12 every construction - create *and* attach -
    registers the segment with the process-tree-shared tracker daemon,
    whose cache is a set: when the parent (create) and a worker (attach)
    each register+unregister one name, interleaved messages collapse the
    double-register and the second unregister raises a KeyError inside
    the daemon.  Arena segments are cleaned up explicitly by the owner's
    ``destroy()``, so the tracker is not wanted at all; suppressing the
    register call at construction (the 3.13 ``track=False`` behaviour)
    removes the race instead of racing to undo it.
    """

    def __enter__(self):
        from multiprocessing import resource_tracker

        self._mod = resource_tracker
        self._orig = resource_tracker.register

        def register(name, rtype, _orig=self._orig):
            if rtype != "shared_memory":  # pragma: no cover - defensive
                _orig(name, rtype)

        resource_tracker.register = register
        return self

    def __exit__(self, *exc):
        self._mod.register = self._orig
        return False


def _unlink_segments(names) -> None:
    """Best-effort unlink of shared-memory segments by name.

    The module-level cleanup path shared by the ``weakref.finalize``
    guard on owning arenas (runs at garbage collection, interpreter
    exit, and on the unwind of a fatal exception) and the orphan reaper
    - i.e. every path where the arena's own ``destroy()`` did not run.
    ``names`` is mutated in place: successfully removed (or already
    absent) segments are dropped, so calling ``destroy()`` after the
    guard fired (or vice versa) is a no-op.
    """
    from multiprocessing import shared_memory

    for name in list(names):
        try:
            with _suppress_tracker():
                seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            names.discard(name)
            continue
        except OSError:  # pragma: no cover - platform-specific failure
            continue
        seg.close()
        _tracker_register(seg)
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - lost a race
            _tracker_unregister(seg)
        names.discard(name)


class ShmArena:
    """Allocator/registry of shared-memory blocks for one evaluation.

    Parent side::

        arena = ShmArena()
        arena.put("sources", sources)      # allocate + copy
        arena.alloc("result", (n,), float) # zero-filled
        spec = arena.manifest()            # picklable, ship to workers
        ... run workers ...
        arena.destroy()                    # close + unlink everything

    Worker side::

        arena = ShmArena.attach(spec)      # maps the same pages
        pts = arena.get("sources")
        ... work ...
        arena.close()                      # unmap only; parent unlinks
    """

    def __init__(self, prefix: str = "hmmgas"):
        self.prefix = prefix
        self.owner = True
        self._blocks: dict[str, ShmBlock] = {}
        self._count = 0
        # fail-safe cleanup: if the owning process dies without running
        # destroy() (exception unwind, gc of a leaked arena, interpreter
        # exit), the finalizer unlinks whatever segments are still live.
        # The callback closes over the name set, not the arena, so it
        # cannot keep the arena alive; destroy() empties the set, making
        # a later firing a no-op.  (A SIGKILL skips finalizers entirely
        # - that is what :meth:`reap_orphans` is for.)
        self._live_names: set[str] = set()
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._live_names
        )

    # -- parent (owner) side ---------------------------------------------------
    def alloc(self, label: str, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a zero-filled named block; returns the array view."""
        from multiprocessing import shared_memory

        if label in self._blocks:
            raise ValueError(f"shm block {label!r} already allocated")
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape, dtype=np.int64)) * dt.itemsize)
        name = f"{self.prefix}_{os.getpid()}_{self._count}"
        self._count += 1
        # the arena owns cleanup (destroy()/unlink() in a finally), so
        # the segment never enters the resource tracker
        with _suppress_tracker():
            shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        block = ShmBlock(label, shm, shape, dt)
        self._blocks[label] = block
        self._live_names.add(name)
        return block.array

    def put(self, label: str, array: np.ndarray) -> np.ndarray:
        """Allocate a block holding a copy of ``array``."""
        view = self.alloc(label, array.shape, array.dtype)
        view[...] = array
        return view

    def manifest(self) -> dict:
        """Picklable description workers use to attach the same blocks.

        Carries the creator pid for diagnostics (leak reports name the
        owning process).
        """
        return {
            "pid": os.getpid(),
            "blocks": {
                label: (b.name, b.shape, b.dtype.str)
                for label, b in self._blocks.items()
            },
        }

    # -- worker side -----------------------------------------------------------
    @classmethod
    def attach(cls, manifest: dict) -> "ShmArena":
        """Attach to the blocks described by a parent's manifest.

        Attachments stay out of the (process-tree-shared)
        ``resource_tracker`` (see :class:`_suppress_tracker`): a worker
        exiting would otherwise unlink segments the parent still owns
        (and warn about "leaked" memory that is not leaked).  The owning
        arena's explicit ``destroy()`` is the sole cleanup path.
        """
        from multiprocessing import shared_memory

        arena = cls.__new__(cls)
        arena.prefix = ""
        arena.owner = False
        arena._blocks = {}
        arena._count = 0
        arena._live_names = set()  # attached arenas never unlink
        with _suppress_tracker():
            for label, (name, shape, dtype) in manifest["blocks"].items():
                shm = shared_memory.SharedMemory(name=name)
                arena._blocks[label] = ShmBlock(label, shm, shape, dtype)
        return arena

    # -- both sides ------------------------------------------------------------
    def get(self, label: str) -> np.ndarray:
        return self._blocks[label].array

    def close(self) -> None:
        """Unmap every block (idempotent)."""
        for b in self._blocks.values():
            b.close()

    def unlink(self) -> None:
        """Remove every segment name (owner only; idempotent)."""
        if not self.owner:
            raise ValueError("only the owning arena may unlink its segments")
        for b in self._blocks.values():
            b.unlink()
        self._live_names.clear()  # disarm the finalize guard

    def destroy(self) -> None:
        """Owner teardown: unmap and unlink everything."""
        self.close()
        if self.owner:
            self.unlink()

    def segment_names(self) -> list[str]:
        return [b.name for b in self._blocks.values()]

    @staticmethod
    def leaked(prefix: str = "hmmgas") -> list[str]:
        """Names of segments with ``prefix`` still present in /dev/shm."""
        try:
            return sorted(
                n for n in os.listdir("/dev/shm") if n.startswith(prefix)
            )
        except FileNotFoundError:  # pragma: no cover - non-Linux
            return []

    @staticmethod
    def reap_orphans(prefix: str = "hmmgas") -> list[str]:
        """Unlink segments whose owning process no longer exists.

        The last line of defense: ``weakref.finalize``/atexit cannot run
        when the owner is SIGKILLed or crashes hard, so its segments
        stay in ``/dev/shm`` until reboot.  Arena segment names embed
        the creator pid (``{prefix}_{pid}_{count}``); any segment whose
        creator is dead is an orphan and is removed.  Segments of live
        owners - including the calling process - are left alone.
        Returns the names reaped.
        """
        orphans: set[str] = set()
        for name in ShmArena.leaked(prefix):
            parts = name[len(prefix) :].split("_")
            if len(parts) < 3 or not parts[1].isdigit():
                continue  # not an arena segment of this prefix
            pid = int(parts[1])
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                orphans.add(name)
            except PermissionError:  # pragma: no cover - other user's pid
                pass
        reaped = sorted(orphans)
        _unlink_segments(orphans)
        return reaped
