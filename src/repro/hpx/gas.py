"""Global address space (Section III).

HPX-5 exposes a global shared-memory abstraction: global allocation,
address resolution, and asynchronous memput/memget.  Global addresses
are the targets of parcels, and localities are mapped into the address
space so messages can target them by index.

Here a :class:`GlobalAddress` is an opaque (locality, slot) pair.  The
statically partitioned configuration used in the paper ("HPX-5 was
configured with a statically partitioned global address space") means
an address's home locality never changes, which is what this
implementation provides.  Resolution (`translate`) only succeeds on the
home locality - remote access must go through parcels or memget,
exactly the discipline DASHMM has to follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class GlobalAddress:
    """An address in the global address space: (home locality, slot)."""

    locality: int
    slot: int

    def __repr__(self) -> str:  # compact, shows up in traces/debugging
        return f"ga({self.locality}:{self.slot})"


class GlobalAddressSpace:
    """Statically partitioned GAS with per-locality heaps.

    When a ``monitor`` (the happens-before hazard detector,
    :mod:`repro.hpx.hazards`) is attached, every resolution is reported
    as a read and every replacement as a write, so unsynchronized
    accesses to one address - e.g. racing asynchronous ``memput`` s -
    are flagged.  Allocation is not monitored: a fresh slot cannot
    race.  With no monitor the hooks cost one attribute check.
    """

    def __init__(self, n_localities: int):
        if n_localities < 1:
            raise ValueError("need at least one locality")
        self.n_localities = n_localities
        self._heaps: list[dict[int, Any]] = [dict() for _ in range(n_localities)]
        self._next: list[int] = [0] * n_localities
        #: optional access monitor with on_gas_read/on_gas_write hooks
        self.monitor = None

    def alloc(self, locality: int, obj: Any = None) -> GlobalAddress:
        """Allocate a slot on ``locality`` holding ``obj``."""
        self._check(locality)
        slot = self._next[locality]
        self._next[locality] += 1
        self._heaps[locality][slot] = obj
        return GlobalAddress(locality, slot)

    def alloc_cyclic(self, count: int, objs=None) -> list[GlobalAddress]:
        """Block-cyclic allocation across localities (one per locality,
        round-robin), mirroring HPX-5's cyclic allocator."""
        out = []
        for i in range(count):
            obj = objs[i] if objs is not None else None
            out.append(self.alloc(i % self.n_localities, obj))
        return out

    def translate(self, addr: GlobalAddress, at_locality: int) -> Any:
        """Resolve a global address to its object - home locality only."""
        if addr.locality != at_locality:
            raise ValueError(
                f"cannot translate {addr} at locality {at_locality}: "
                "remote access must use parcels/memget"
            )
        if self.monitor is not None:
            self.monitor.on_gas_read(addr)
        return self._heaps[addr.locality][addr.slot]

    def put_local(self, addr: GlobalAddress, obj: Any, at_locality: int) -> None:
        """Replace the object at ``addr`` - home locality only."""
        if addr.locality != at_locality:
            raise ValueError(f"cannot put to {addr} from locality {at_locality}")
        if self.monitor is not None:
            self.monitor.on_gas_write(addr)
        self._heaps[addr.locality][addr.slot] = obj

    def free(self, addr: GlobalAddress) -> None:
        self._heaps[addr.locality].pop(addr.slot, None)

    def _check(self, locality: int) -> None:
        if not (0 <= locality < self.n_localities):
            raise ValueError(f"locality {locality} out of range")
