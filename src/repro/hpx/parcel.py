"""Parcels: active messages, the basis of parallel computation.

A parcel contains a description of the action to perform, argument
data, and (optionally) continuation information, and is sent to the
global address on which the action should run.  The scheduler invokes
arriving parcels as lightweight threads; *sending a parcel is the only
way to spawn a thread* - in shared-memory execution all targets simply
live on one locality (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.hpx.gas import GlobalAddress


@dataclass
class Parcel:
    """An active message.

    ``action`` is a registered action name; ``target`` the global
    address (or bare locality index) it runs at; ``args`` arbitrary
    argument data; ``size_bytes`` the modelled wire size (argument data
    plus header) used by the network model; ``op_class`` labels the
    spawned thread's work for tracing; ``priority`` is the scheduling
    hint evaluated only when the runtime has priorities enabled (the
    paper's proposed HPX-5 extension - 0 is high, 1 is low).
    """

    action: str
    target: GlobalAddress | int
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    size_bytes: int = 64
    op_class: str = "parcel"
    priority: int = 1
    #: stamped by the scheduler at send time; None for externally injected
    origin: int | None = None
    #: reliable-transport sequence id ``(src_locality, n)``; stamped by
    #: :class:`repro.hpx.transport.ReliableTransport`, None otherwise
    seq: tuple | None = None
    #: happens-before event of the sending task (hazard detection);
    #: shared by every delivered copy, so a retransmission carries the
    #: same causal history as the original send
    hb: object | None = None

    @property
    def target_locality(self) -> int:
        if isinstance(self.target, GlobalAddress):
            return self.target.locality
        return int(self.target)
