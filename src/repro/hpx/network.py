"""Network model between localities (the Photon substitution).

The paper's testbed connects localities through the Cray Gemini
interconnect driven by the Photon RMA middleware.  The simulation
replaces it with a latency/bandwidth model with per-NIC injection
serialization:

* a parcel of ``size`` bytes sent at ``t`` from locality ``a`` starts
  injecting at ``max(t, nic_free[a])``, occupies the NIC for
  ``size / bandwidth`` and arrives ``latency`` later;
* same-locality parcels bypass the network entirely (HPX-5's
  parcel-thread equivalence: local sends are just thread spawns).

Defaults are in the neighbourhood of Gemini-class hardware (~1.5 us
latency, ~6 GB/s effective per-NIC bandwidth); they are knobs, not
claims.

:class:`FaultyNetwork` layers a seeded fault model on top: drop,
duplicate, reorder (small delivery jitter) and long-delay
probabilities, plus per-locality outage windows on the virtual clock.
With the fire-and-forget transport these disruptions reach the
application raw; with the reliable transport
(:mod:`repro.hpx.transport`) they only cost virtual time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class NetworkModel:
    """Latency/bandwidth network with per-source-NIC serialization."""

    latency: float = 1.5e-6  # seconds
    bandwidth: float = 6.0e9  # bytes / second
    per_parcel_overhead: float = 0.3e-6  # software send cost, seconds
    _nic_free: dict[int, float] = field(default_factory=dict, repr=False)

    def reset(self) -> None:
        self._nic_free.clear()

    def deliver_time(self, src_locality: int, t_send: float, size_bytes: int) -> float:
        """Arrival time of a parcel; advances the source NIC's clock."""
        start = max(t_send, self._nic_free.get(src_locality, 0.0))
        inject = self.per_parcel_overhead + size_bytes / self.bandwidth
        self._nic_free[src_locality] = start + inject
        return start + inject + self.latency

    def delivery_times(
        self, src_locality: int, dst_locality: int, t_send: float, size_bytes: int
    ) -> list[float]:
        """Arrival times of the copies of one send (faults may yield 0 or 2+).

        The base model is perfectly reliable: exactly one copy, at
        :meth:`deliver_time`.  Fault models override this.
        """
        return [self.deliver_time(src_locality, t_send, size_bytes)]

    def fault_stats(self) -> dict:
        """Counters of injected disruptions (empty for reliable models)."""
        return {}


@dataclass
class InfiniteNetwork(NetworkModel):
    """Zero-cost network (useful to isolate scheduling effects in tests)."""

    latency: float = 0.0
    per_parcel_overhead: float = 0.0

    def deliver_time(self, src_locality: int, t_send: float, size_bytes: int) -> float:
        return t_send


@dataclass
class FaultyNetwork(NetworkModel):
    """Latency/bandwidth network that loses, clones, jitters and stalls.

    Every remote send first pays the normal NIC/latency arithmetic
    (:meth:`NetworkModel.deliver_time` - a lost packet still occupied
    the injection pipeline), then a seeded RNG decides its fate:

    * ``drop``       - probability the (sole) copy vanishes in flight;
    * ``duplicate``  - probability a second copy is delivered, slightly
      later than the first;
    * ``reorder``    - probability a copy picks up uniform jitter of up
      to ``reorder_jitter`` seconds, enough to overtake neighbours;
    * ``delay``      - probability a copy stalls for up to
      ``delay_time`` extra seconds (congestion / route flap scale);
    * ``outages``    - ``(locality, t0, t1)`` windows on the virtual
      clock during which everything to or from that locality is lost.

    All draws come from one ``random.Random(seed)`` reseeded by
    :meth:`reset`, so a fixed seed gives a bit-reproducible fault
    schedule for a given send sequence.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    reorder_jitter: float = 5e-6
    delay_time: float = 100e-6
    seed: int = 0
    #: per-locality blackout windows: (locality, t_start, t_end)
    outages: tuple = ()
    _rng: random.Random | None = field(default=None, repr=False)
    _counts: dict = field(default_factory=dict, repr=False)

    def reset(self) -> None:
        super().reset()
        self._rng = random.Random(self.seed)
        self._counts = {
            "dropped": 0,
            "duplicated": 0,
            "reordered": 0,
            "delayed": 0,
            "outage_dropped": 0,
        }

    def fault_stats(self) -> dict:
        return dict(self._counts) if self._counts else {}

    def _in_outage(self, locality: int, t: float) -> bool:
        for loc, t0, t1 in self.outages:
            if loc == locality and t0 <= t < t1:
                return True
        return False

    def outage_clear(
        self, localities, t_from: float, t_until: float
    ) -> float | None:
        """When the outages blanketing ``localities`` over an interval lift.

        Outage windows are static configuration, so the reliable
        transport can *attribute* a retry-budget exhaustion: if any
        window involving one of ``localities`` overlaps
        ``[t_from, t_until]``, the loss is explained by the outage and
        the returned time - the end of the last overlapping window,
        extended through any windows chained onto it - is when a
        suspended parcel should reattempt delivery.  Returns None when
        no window overlaps the interval (the destination is genuinely
        unreachable as far as the configuration knows).
        """
        locs = set(localities)
        wins = sorted((t0, t1) for loc, t0, t1 in self.outages if loc in locs)
        if not wins:
            return None
        merged: list[list[float]] = []
        for t0, t1 in wins:
            if merged and t0 <= merged[-1][1]:
                if t1 > merged[-1][1]:
                    merged[-1][1] = t1
            else:
                merged.append([t0, t1])
        clear = None
        for t0, t1 in merged:
            if t0 <= t_until and t1 > t_from:
                clear = t1 if clear is None else max(clear, t1)
        return clear

    def delivery_times(
        self, src_locality: int, dst_locality: int, t_send: float, size_bytes: int
    ) -> list[float]:
        if self._rng is None:
            self.reset()
        base = self.deliver_time(src_locality, t_send, size_bytes)
        counts = self._counts
        if self._in_outage(src_locality, t_send) or self._in_outage(dst_locality, base):
            counts["outage_dropped"] += 1
            return []
        rng = self._rng
        if rng.random() < self.drop:
            counts["dropped"] += 1
            return []
        times = [base]
        if rng.random() < self.duplicate:
            counts["duplicated"] += 1
            times.append(base + rng.random() * self.reorder_jitter)
        out = []
        for t in times:
            if self.reorder and rng.random() < self.reorder:
                counts["reordered"] += 1
                t += rng.random() * self.reorder_jitter
            if self.delay and rng.random() < self.delay:
                counts["delayed"] += 1
                t += rng.random() * self.delay_time
            out.append(t)
        return out
