"""Network model between localities (the Photon substitution).

The paper's testbed connects localities through the Cray Gemini
interconnect driven by the Photon RMA middleware.  The simulation
replaces it with a latency/bandwidth model with per-NIC injection
serialization:

* a parcel of ``size`` bytes sent at ``t`` from locality ``a`` starts
  injecting at ``max(t, nic_free[a])``, occupies the NIC for
  ``size / bandwidth`` and arrives ``latency`` later;
* same-locality parcels bypass the network entirely (HPX-5's
  parcel-thread equivalence: local sends are just thread spawns).

Defaults are in the neighbourhood of Gemini-class hardware (~1.5 us
latency, ~6 GB/s effective per-NIC bandwidth); they are knobs, not
claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkModel:
    """Latency/bandwidth network with per-source-NIC serialization."""

    latency: float = 1.5e-6  # seconds
    bandwidth: float = 6.0e9  # bytes / second
    per_parcel_overhead: float = 0.3e-6  # software send cost, seconds
    _nic_free: dict[int, float] = field(default_factory=dict)

    def reset(self) -> None:
        self._nic_free.clear()

    def deliver_time(self, src_locality: int, t_send: float, size_bytes: int) -> float:
        """Arrival time of a parcel; advances the source NIC's clock."""
        start = max(t_send, self._nic_free.get(src_locality, 0.0))
        inject = self.per_parcel_overhead + size_bytes / self.bandwidth
        self._nic_free[src_locality] = start + inject
        return start + inject + self.latency


@dataclass
class InfiniteNetwork(NetworkModel):
    """Zero-cost network (useful to isolate scheduling effects in tests)."""

    latency: float = 0.0
    per_parcel_overhead: float = 0.0

    def deliver_time(self, src_locality: int, t_send: float, size_bytes: int) -> float:
        return t_send
