"""Checkpoint/restore of a running simulated HPX-5 instance.

A :class:`RuntimeCheckpoint` captures the complete mutable execution
state of one :class:`~repro.hpx.runtime.Runtime` at a *quiescent
point* - between two events of the discrete-event loop, where no task
body is mid-flight and every heap/deque/LCO/transport invariant holds.
Periodic capture (``RuntimeConfig(checkpoint_every=...)``) pauses the
bounded event loop on the virtual clock; a structured scheduler abort
(:meth:`~repro.hpx.scheduler.Scheduler.abort`) quiesces to the same
kind of point before the error propagates, so even a failed run leaves
a restorable snapshot behind.

Design: in-place restore
------------------------
Scheduler-heap tasks are Python closures over live registrar and LCO
objects, so a pickled or cloned snapshot could never be resumed - the
clones would not be the objects the closures reference.  Instead the
checkpoint keeps every long-lived object (LCOs, tasks, parcels,
pending-transmission entries, timer events) *by reference* and records
only their mutable contents; :meth:`RuntimeCheckpoint.restore` writes
those contents back into the same object graph.  Restoring therefore
targets the runtime the checkpoint was captured from, and a restored
run is bit-identical - potentials *and* virtual clock - to one that
was never interrupted, because the rewound state is exactly the state
the uninterrupted run passed through.

What a snapshot contains:

* **scheduler** - the event heap (tuple entries by reference; ``done``
  events get their :class:`~repro.hpx.scheduler.TaskContext` charges
  and effects deep-captured, since contexts are pooled and recycled),
  per-worker deques, busy/idle bookkeeping, round-robin and burst
  counters, the monotonic event sequence number, the steal-RNG state
  and all statistics counters;
* **transport** - the framing ledger (pending/seen/seq and its
  counters), per-parcel attempt counts and timer references, the
  cancelled flag of every scheduled ``call`` event, and the
  suspended-parcel table;
* **network** - per-NIC injection clocks, and for a
  :class:`~repro.hpx.network.FaultyNetwork` the fault-RNG state and
  fault counters;
* **GAS** - the per-locality heap maps and allocation cursors (objects
  by reference);
* **LCOs** - every GAS-resident object exposing the
  ``checkpoint_state()`` / ``restore_state()`` protocol (the
  :class:`~repro.hpx.lco.LCO` base class implements it generically)
  has its mutable fields captured, with container and ndarray values
  copied;
* **schedule driver** - the fuzz-RNG state and trace length (the trace
  is truncated on restore), or the replayer cursor;
* **tracer** - the interval count (restored by truncation, so a
  resumed run does not double-record intervals);
* **participants** - any object registered in
  ``Runtime.checkpoint_participants`` (e.g. the DASHMM registrar,
  whose lazy/deferred accumulators and result vector live outside the
  GAS) contributes an opaque state blob via the same protocol.

Restore invariants: the checkpoint must have been captured from the
same runtime instance; hazard detection must be off (vector-clock
state is not snapshotted); a checkpoint may be restored any number of
times (captured containers are copied again on every restore).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.hpx.scheduler import TaskContext


def copy_state(value: Any) -> Any:
    """Container-aware copy for snapshot values.

    Lists, dicts, sets and tuples are copied recursively and ndarrays
    are copied by value; everything else (tasks, parcels, LCO and tree
    references, scalars) is shared by reference - identity of
    long-lived objects is exactly what in-place restore relies on.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [copy_state(v) for v in value]
    if isinstance(value, tuple):
        return tuple(copy_state(v) for v in value)
    if isinstance(value, dict):
        return {k: copy_state(v) for k, v in value.items()}
    if isinstance(value, set):
        return set(value)
    return value


class RuntimeCheckpoint:
    """One quiescent-point snapshot of a :class:`Runtime`'s mutable state.

    Build via :meth:`capture` (or ``Runtime.checkpoint()``); apply via
    ``Runtime.restore(checkpoint)``.  Restoring rewinds the runtime's
    live object graph in place - see the module docstring.
    """

    __slots__ = (
        "runtime",
        "time",
        "label",
        "_sched",
        "_heap",
        "_contexts",
        "_calls",
        "_transport",
        "_entries",
        "_network",
        "_gas",
        "_lcos",
        "_driver",
        "_trace_len",
        "_participants",
    )

    # -- capture -----------------------------------------------------------------
    @classmethod
    def capture(cls, runtime, label: str = "periodic") -> "RuntimeCheckpoint":
        cp = cls.__new__(cls)
        cp.runtime = runtime
        cp.label = label
        sched = runtime.scheduler
        cp.time = sched.now

        # scheduler scalars + per-worker structures
        cp._sched = {
            "now": sched.now,
            "seq": sched._seq,
            "tasks_run": sched.tasks_run,
            "steals": sched.steals,
            "parcels_sent": sched.parcels_sent,
            "remote_bytes": sched.remote_bytes,
            "lco_dups_suppressed": sched.lco_dups_suppressed,
            "busy": list(sched.busy),
            "rr": list(sched._rr),
            "burst": list(sched._burst),
            "idle": tuple(tuple(d) for d in sched._idle),
            "idle_set": set(sched._idle_set),
            "deques": tuple(
                tuple(tuple(d) for d in levels) for levels in sched.deques
            ),
            "rng": sched._rng.getstate(),
        }

        # the event heap: entries are immutable tuples, kept by
        # reference.  "done" payloads hold pooled TaskContexts whose
        # lists are recycled after the event fires, so their contents
        # are captured by value (rebuilt as fresh contexts on restore);
        # "call" payloads are cancellable _Event objects whose
        # cancelled flag is captured here and rewound on restore.
        heap = tuple(sched._heap)
        cp._heap = heap
        contexts = {}
        calls = []
        for i, (_, _, _, kind, data) in enumerate(heap):
            if kind == "done":
                worker, ctx = data
                contexts[i] = (
                    worker,
                    ctx.time,
                    tuple(ctx.charges),
                    copy_state(tuple(ctx.effects)),
                    ctx.hb,
                )
            elif kind == "call":
                calls.append((data, data.cancelled))
        cp._contexts = contexts
        cp._calls = calls

        # reliable transport: framing ledger + per-entry retry state
        transport = sched.transport
        framing = getattr(transport, "framing", None)
        if framing is not None:
            entries = {}
            for entry in framing._pending.values():
                entries[id(entry)] = (
                    entry,
                    entry.attempts,
                    entry.last_send,
                    entry.timer,
                )
            suspended = getattr(transport, "_suspended", {})
            for entry in suspended.values():
                entries.setdefault(
                    id(entry),
                    (entry, entry.attempts, entry.last_send, entry.timer),
                )
            cp._transport = {
                "seq": framing._seq,
                "pending": dict(framing._pending),
                "seen": set(framing._seen),
                "acks_sent": framing.acks_sent,
                "dups_suppressed": framing.dups_suppressed,
                "stale_acks": framing.stale_acks,
                "retries": transport.retries,
                "suspensions": getattr(transport, "suspensions", 0),
                "resumes": getattr(transport, "resumes", 0),
                "suspended": dict(suspended),
            }
            cp._entries = tuple(entries.values())
        else:
            cp._transport = None
            cp._entries = ()

        # network model
        net = sched.network
        cp._network = {
            "nic_free": dict(net._nic_free),
            "rng": net._rng.getstate() if getattr(net, "_rng", None) else None,
            "counts": dict(net._counts) if getattr(net, "_counts", None) else None,
        }

        # GAS heaps (slot -> object reference) + allocation cursors,
        # and the mutable state of every checkpointable resident
        gas = runtime.gas
        cp._gas = {
            "heaps": [dict(h) for h in gas._heaps],
            "next": list(gas._next),
        }
        lcos = []
        for heap_map in gas._heaps:
            for obj in heap_map.values():
                snap = getattr(obj, "checkpoint_state", None)
                if snap is not None:
                    lcos.append((obj, snap()))
        cp._lcos = lcos

        # schedule driver: fuzzer records (rewound by truncating its
        # trace), replayer consumes (rewound by resetting its cursor)
        drv = sched.schedule_driver
        if drv is None:
            cp._driver = None
        elif hasattr(drv, "_rng"):
            cp._driver = ("fuzz", drv._rng.getstate(), len(drv.trace.decisions))
        else:
            cp._driver = ("replay", drv._i)

        cp._trace_len = len(runtime.tracer)

        participants = getattr(runtime, "checkpoint_participants", ())
        cp._participants = tuple((p, p.checkpoint_state()) for p in participants)
        return cp

    # -- restore -----------------------------------------------------------------
    def restore(self, runtime) -> None:
        if runtime is not self.runtime:
            raise ValueError(
                "a RuntimeCheckpoint rewinds live object state in place "
                "and can only be restored onto the runtime it was "
                "captured from"
            )
        sched = runtime.scheduler
        st = self._sched
        sched.now = st["now"]
        sched._seq = st["seq"]
        sched.tasks_run = st["tasks_run"]
        sched.steals = st["steals"]
        sched.parcels_sent = st["parcels_sent"]
        sched.remote_bytes = st["remote_bytes"]
        sched.lco_dups_suppressed = st["lco_dups_suppressed"]
        sched.busy[:] = st["busy"]
        sched._rr[:] = st["rr"]
        sched._burst[:] = st["burst"]
        for d, items in zip(sched._idle, st["idle"]):
            d.clear()
            d.extend(items)
        sched._idle_set.clear()
        sched._idle_set.update(st["idle_set"])
        for levels, snap_levels in zip(sched.deques, st["deques"]):
            for d, items in zip(levels, snap_levels):
                d.clear()
                d.extend(items)
        sched._rng.setstate(st["rng"])
        sched._abort = None
        sched.aborted = None
        sched._ctx_pool.clear()

        # rebuild the heap in captured order (a valid heap layout):
        # "done" entries get fresh contexts populated from the snapshot
        contexts = self._contexts
        heap = []
        for i, entry in enumerate(self._heap):
            if i in contexts:
                worker, time, charges, effects, hb = contexts[i]
                ctx = TaskContext(sched, worker, time)
                ctx.charges.extend(charges)
                ctx.effects.extend(copy_state(effects))
                ctx.hb = hb
                t, tie, seq, kind, _ = entry
                heap.append((t, tie, seq, kind, (worker, ctx)))
            else:
                heap.append(entry)
        sched._heap = heap
        for event, cancelled in self._calls:
            event.cancelled = cancelled

        tr = self._transport
        if tr is not None:
            transport = sched.transport
            framing = transport.framing
            framing._seq = tr["seq"]
            framing._pending.clear()
            framing._pending.update(tr["pending"])
            framing._seen.clear()
            framing._seen.update(tr["seen"])
            framing.acks_sent = tr["acks_sent"]
            framing.dups_suppressed = tr["dups_suppressed"]
            framing.stale_acks = tr["stale_acks"]
            transport.retries = tr["retries"]
            transport.suspensions = tr["suspensions"]
            transport.resumes = tr["resumes"]
            transport._suspended.clear()
            transport._suspended.update(tr["suspended"])
            for entry, attempts, last_send, timer in self._entries:
                entry.attempts = attempts
                entry.last_send = last_send
                entry.timer = timer

        net = sched.network
        nst = self._network
        net._nic_free.clear()
        net._nic_free.update(nst["nic_free"])
        if nst["rng"] is not None:
            net._rng.setstate(nst["rng"])
        if nst["counts"] is not None:
            net._counts.clear()
            net._counts.update(nst["counts"])

        gas = runtime.gas
        for heap_map, snap in zip(gas._heaps, self._gas["heaps"]):
            heap_map.clear()
            heap_map.update(snap)
        gas._next[:] = self._gas["next"]
        for obj, state in self._lcos:
            obj.restore_state(state)

        drv = sched.schedule_driver
        if self._driver is not None:
            if self._driver[0] == "fuzz":
                _, rng_state, n = self._driver
                drv._rng.setstate(rng_state)
                del drv.trace.decisions[n:]
            else:
                drv._i = self._driver[1]

        tracer = runtime.tracer
        n = self._trace_len
        del tracer._worker[n:]
        del tracer._cls[n:]
        del tracer._t0[n:]
        del tracer._t1[n:]

        for participant, state in self._participants:
            participant.restore_state(state)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<RuntimeCheckpoint t={self.time:.6g} label={self.label!r} "
            f"events={len(self._heap)} lcos={len(self._lcos)}>"
        )
