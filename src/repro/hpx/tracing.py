"""Execution-event tracing (Section V.B of the paper).

The paper instruments DASHMM to emit events marking the beginning and
end of every operation class (translations, evaluations, accumulations,
direct interactions); utilization fractions are computed from these
traces via Eq. (1)-(2).  The tracer here records one interval per
operation segment: ``(worker, op_class, t_start, t_end)``.

Intervals accumulate in plain lists and are exported as numpy arrays on
demand; for large runs :meth:`Tracer.utilization` bins on the fly.

Besides busy intervals this module also defines the *schedule decision
trace* (:class:`ScheduleTrace`): the flat, replayable record of every
nondeterministic scheduling choice a fuzzed run made - ready-queue
tie-breaks, steal victim selection, idle-worker wakeups, task placement
and parcel coalescing order.  Feeding a saved trace back through
``RuntimeConfig(replay_schedule=...)`` reproduces the run decision for
decision, which is what turns a fuzzer-found failure into a committed
regression test (see DESIGN.md, "Happens-before model & replay").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TraceEvent:
    worker: int
    op_class: str
    t_start: float
    t_end: float


class Tracer:
    """Collects per-worker, per-class busy intervals on the virtual clock."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._worker: list[int] = []
        self._cls: list[str] = []
        self._t0: list[float] = []
        self._t1: list[float] = []

    def record(self, worker: int, op_class: str, t_start: float, t_end: float) -> None:
        if not self.enabled or t_end <= t_start:
            return
        self._worker.append(worker)
        self._cls.append(op_class)
        self._t0.append(t_start)
        self._t1.append(t_end)

    def __len__(self) -> int:
        return len(self._t0)

    @property
    def classes(self) -> list[str]:
        return sorted(set(self._cls))

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(worker, class-id, t0, t1) arrays plus see :attr:`classes`."""
        cls_index = {c: i for i, c in enumerate(self.classes)}
        return (
            np.array(self._worker, dtype=np.int64),
            np.array([cls_index[c] for c in self._cls], dtype=np.int64),
            np.array(self._t0),
            np.array(self._t1),
        )

    def events(self) -> list[TraceEvent]:
        return [
            TraceEvent(w, c, a, b)
            for w, c, a, b in zip(self._worker, self._cls, self._t0, self._t1)
        ]

    def to_csv(self, path) -> None:
        """Export the trace (worker, op_class, t_start, t_end) as CSV."""
        with open(path, "w") as f:
            f.write("worker,op_class,t_start,t_end\n")
            for w, c, a, b in zip(self._worker, self._cls, self._t0, self._t1):
                f.write(f"{w},{c},{a!r},{b!r}\n")

    @classmethod
    def from_csv(cls, path) -> "Tracer":
        """Load a trace written by :meth:`to_csv`."""
        tr = cls(enabled=True)
        with open(path) as f:
            next(f)  # header
            for line in f:
                w, c, a, b = line.rstrip("\n").split(",")
                tr.record(int(w), c, float(a), float(b))
        return tr

    def busy_time(self, op_class: str | None = None) -> float:
        """Total busy time, optionally restricted to one class."""
        if op_class is None:
            return float(np.sum(np.array(self._t1) - np.array(self._t0))) if self._t0 else 0.0
        tot = 0.0
        for c, a, b in zip(self._cls, self._t0, self._t1):
            if c == op_class:
                tot += b - a
        return tot


#: decision kinds a schedule trace may contain, in the vocabulary of the
#: fuzzer/replayer (see :mod:`repro.hpx.scheduler`):
#:
#: * ``tie``        - ready-queue tie-break key for one event push
#: * ``victim``     - steal victim worker id
#: * ``wake``       - idle worker chosen to receive a fresh task
#: * ``place``      - worker a task is placed on when nobody is idle
#: * ``coalesce``   - destination-locality order of one out-edge wave
#: * ``interleave`` - near/far pipelining pick: critical level vs the
#:   filler (near-field) level, when both hold work under an
#:   interleaving policy
SCHEDULE_DECISION_KINDS = ("tie", "victim", "wake", "place", "coalesce", "interleave")


@dataclass
class ScheduleTrace:
    """A replayable record of every schedule decision of one run.

    ``decisions`` is a flat list of ``[kind, value]`` pairs in the exact
    order the run consumed them; ``meta`` carries provenance (the fuzz
    seed, free-form workload notes) so a trace file is self-describing.
    All values are JSON-native (ints or lists of ints), so a trace
    round-trips losslessly through :meth:`save`/:meth:`load` and can be
    committed next to the regression test that replays it.
    """

    meta: dict = field(default_factory=dict)
    decisions: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.decisions)

    def counts(self) -> dict[str, int]:
        """Decision tally by kind (diagnostic/diversity metric)."""
        out: dict[str, int] = {}
        for kind, _ in self.decisions:
            out[kind] = out.get(kind, 0) + 1
        return out

    def save(self, path) -> None:
        with open(path, "w") as f:
            json.dump({"meta": self.meta, "decisions": self.decisions}, f)

    @classmethod
    def load(cls, path) -> "ScheduleTrace":
        with open(path) as f:
            raw = json.load(f)
        return cls(meta=raw.get("meta", {}), decisions=raw["decisions"])
