"""Discrete-event scheduler: localities, workers, work stealing.

Models the paper's configuration - one HPX-5 scheduler thread per core,
per-worker task deques with *local randomized work stealing* (stealing
never crosses locality boundaries; remote work moves only via parcels).

Execution model
---------------
Tasks are real Python callables ``fn(ctx, *args)``.  When a worker
picks a task at virtual time ``t`` the body runs immediately (so all
state it reads reflects every effect applied up to ``t``) but its
*effects* - LCO sets, new task spawns, parcel sends - are buffered in
the :class:`TaskContext` and released at ``t + cost``, when the task
logically completes.  ``cost`` is the sum of the body's
``ctx.charge(op_class, dt)`` calls (or the task's static cost); each
charge also emits one trace interval, mirroring the paper's
begin/end event instrumentation.

Scheduling discipline
---------------------
Owner pops LIFO (work-first, depth-first into the DAG), thieves steal
FIFO from a random victim on the same locality.  With ``priorities``
enabled, each worker keeps a high- and a low-priority deque and always
drains high first - this is exactly the "binary choice between low and
high priority" extension the paper's Section VI proposes for HPX-5,
off by default to match stock HPX-5.

RNG streams & seed plumbing
---------------------------
Three independent seeded streams touch a run; they are never shared,
so perturbing one cannot silently shift another:

* the **steal RNG** - ``random.Random(steal_seed)``, owned by the
  scheduler, consumed only for steal victim selection on the default
  (unfuzzed) path;
* the **fuzz RNG** - ``random.Random(fuzz_seed)`` inside a
  :class:`ScheduleFuzzer` installed as ``schedule_driver`` by
  ``RuntimeConfig(fuzz_schedule=seed)``.  When a driver is installed it
  *replaces* the steal RNG at every decision point (the steal RNG is
  not consumed at all), so fuzzed victim choices cannot advance or
  alias the baseline stream;
* the **fault RNG** - ``random.Random(seed)`` inside
  :class:`~repro.hpx.network.FaultyNetwork`, reseeded by ``reset()``
  per :class:`~repro.hpx.runtime.Runtime` (each runtime deep-copies
  its network), never visible to the scheduler.

Schedule fuzzing & deterministic replay
---------------------------------------
Every source of schedule freedom is funnelled through the installed
``schedule_driver``: ready-queue tie-breaking at equal virtual
timestamps (the second element of each heap entry), steal victim
selection, idle-worker wakeup, task placement, and - via
:mod:`repro.dashmm.registrar` - parcel coalescing order.  A
:class:`ScheduleFuzzer` draws each decision from its dedicated RNG and
appends it to a :class:`~repro.hpx.tracing.ScheduleTrace`; a
:class:`ScheduleReplayer` feeds a recorded trace back, raising
:class:`ReplayDivergence` on any mismatch.  With no driver installed
the tie-break key is a constant zero and every choice follows the
original deterministic rule, so the baseline schedule is bit-identical
to a build without this machinery.
"""

from __future__ import annotations

import heapq
import itertools
import random
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hpx.tracing import ScheduleTrace, Tracer
from repro.hpx.transport import DirectTransport

HIGH = 0
LOW = 1


class ReplayDivergence(RuntimeError):
    """A replayed run made a decision its trace does not contain.

    Raised when the code under replay asks for a different decision
    kind than the trace recorded next, offers an option set that does
    not include the recorded choice, or outlives the trace.  Any of
    these means the program (or its inputs) changed since the trace was
    recorded - the trace is stale, not merely unlucky.
    """

    def __init__(self, message: str, *, index: int | None = None,
                 expected=None, got=None):
        self.index = index
        self.expected = expected
        self.got = got
        super().__init__(
            f"{message} [decision #{index} expected={expected!r} got={got!r}]"
        )


class ScheduleFuzzer:
    """Draws schedule decisions from a dedicated seeded RNG, recording all.

    One fuzzer drives one run; its :attr:`trace` is the complete,
    replayable decision record (see
    :class:`~repro.hpx.tracing.ScheduleTrace`).  The RNG is private to
    the fuzzer - the scheduler's steal RNG and any fault RNG keep their
    own streams untouched.
    """

    def __init__(self, seed: int):
        self._rng = random.Random(seed)
        self.trace = ScheduleTrace(meta={"fuzz_seed": seed})

    def tie(self) -> int:
        """Tie-break key for one event push (reorders same-time events)."""
        v = self._rng.getrandbits(20)
        self.trace.decisions.append(["tie", v])
        return v

    def choose(self, kind: str, options: list) -> int:
        """Pick one element of ``options`` (victim / wake / place)."""
        v = options[self._rng.randrange(len(options))]
        self.trace.decisions.append([kind, v])
        return v

    def permute(self, kind: str, seq: list) -> list:
        """A random permutation of ``seq`` (parcel coalescing order)."""
        out = list(seq)
        self._rng.shuffle(out)
        self.trace.decisions.append([kind, list(out)])
        return out


class ScheduleReplayer:
    """Feeds a recorded :class:`~repro.hpx.tracing.ScheduleTrace` back.

    Presents the same driver interface as :class:`ScheduleFuzzer` but
    consumes decisions instead of drawing them, validating each against
    the live option set so a stale trace fails loudly
    (:class:`ReplayDivergence`) instead of silently diverging.
    """

    def __init__(self, trace: ScheduleTrace):
        self.trace = trace
        self._i = 0

    def _next(self, kind: str):
        i = self._i
        if i >= len(self.trace.decisions):
            raise ReplayDivergence(
                "trace exhausted", index=i, expected=kind, got=None
            )
        rec_kind, value = self.trace.decisions[i]
        if rec_kind != kind:
            raise ReplayDivergence(
                "decision kind mismatch", index=i, expected=rec_kind, got=kind
            )
        self._i = i + 1
        return value

    def tie(self) -> int:
        return self._next("tie")

    def choose(self, kind: str, options: list) -> int:
        v = self._next(kind)
        if v not in options:
            raise ReplayDivergence(
                "recorded choice not among live options",
                index=self._i - 1, expected=v, got=list(options),
            )
        return v

    def permute(self, kind: str, seq: list) -> list:
        v = self._next(kind)
        if sorted(v) != sorted(seq):
            raise ReplayDivergence(
                "recorded permutation does not match live key set",
                index=self._i - 1, expected=v, got=list(seq),
            )
        return list(v)

    @property
    def consumed(self) -> int:
        return self._i


@dataclass
class Task:
    """A lightweight thread to run on some locality."""

    fn: Callable
    args: tuple = ()
    op_class: str = "task"
    cost: float | None = None
    priority: int = LOW
    #: happens-before event assigned by the hazard detector at the
    #: causal site (spawn, LCO trigger, parcel delivery); None when
    #: detection is off or the task is an initial/root task
    hb: Any = None


class TaskContext:
    """Handed to every task body; collects charges and buffered effects."""

    __slots__ = ("scheduler", "worker", "locality", "time", "charges", "effects", "hb")

    def __init__(self, scheduler: "Scheduler", worker: int, time: float):
        self.scheduler = scheduler
        self.worker = worker
        self.locality = scheduler.worker_locality[worker]
        self.time = time
        self.charges: list[tuple[str, float]] = []
        self.effects: list[tuple[str, Any]] = []
        #: the executing task's happens-before event (hazard detection)
        self.hb: Any = None

    # -- cost accounting ----------------------------------------------------
    def charge(self, op_class: str, dt: float) -> None:
        """Account ``dt`` seconds of ``op_class`` work to this task."""
        if dt < 0:
            raise ValueError("negative charge")
        if dt > 0:
            self.charges.append((op_class, dt))

    @property
    def total_cost(self) -> float:
        return sum(dt for _, dt in self.charges)

    # -- buffered effects (released at task completion) ----------------------
    def spawn(self, task: Task, locality: int | None = None) -> None:
        """Spawn a task (on this locality unless stated otherwise)."""
        self.effects.append(("spawn", (task, self.locality if locality is None else locality)))

    def send_parcel(self, parcel) -> None:
        self.effects.append(("parcel", parcel))

    def lco_set(self, lco, value=None, key=None, op_class=None) -> None:
        """Set an LCO input; the LCO must live on this locality.

        ``key`` is an optional per-LCO dedup key identifying the logical
        contribution (e.g. a DAG edge): a repeated key is suppressed
        when the runtime runs a reliable transport and rejected with a
        structured :class:`~repro.hpx.lco.LCOError` otherwise.
        ``op_class`` labels the contribution for diagnostics.
        """
        self.effects.append(("lco_set", (lco, value, key, op_class)))

    def call_at_completion(self, fn: Callable[[float], None]) -> None:
        """Run ``fn(t_end)`` when the task completes (bookkeeping hooks)."""
        self.effects.append(("call", fn))


class Scheduler:
    """Discrete-event engine over L localities x W workers."""

    def __init__(
        self,
        n_localities: int,
        workers_per_locality: int,
        network,
        tracer: Tracer | None = None,
        priorities: bool = False,
        steal_seed: int = 12345,
        measure_costs: bool = False,
        measure_scale: float = 1.0,
    ):
        if n_localities < 1 or workers_per_locality < 1:
            raise ValueError("need at least 1 locality and 1 worker")
        self.n_localities = n_localities
        self.workers_per_locality = workers_per_locality
        self.n_workers = n_localities * workers_per_locality
        self.network = network
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.priorities = priorities
        self.measure_costs = measure_costs
        self.measure_scale = measure_scale
        self._rng = random.Random(steal_seed)

        self.worker_locality = [w // workers_per_locality for w in range(self.n_workers)]
        self.locality_workers = [
            list(range(l * workers_per_locality, (l + 1) * workers_per_locality))
            for l in range(n_localities)
        ]
        # deques[worker][priority]
        self.deques: list[tuple[deque, deque]] = [
            (deque(), deque()) for _ in range(self.n_workers)
        ]
        self.busy = [False] * self.n_workers
        self._idle: list[deque] = [deque() for _ in range(n_localities)]
        self._idle_set: set[int] = set()
        self._rr = [0] * n_localities

        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0.0
        self.tasks_run = 0
        self.steals = 0
        self.parcels_sent = 0
        self.remote_bytes = 0
        # set by the runtime so buffered parcel effects can be routed
        self.deliver_parcel: Callable | None = None
        #: routes remote parcels; the runtime swaps in ReliableTransport
        self.transport = DirectTransport(self)
        #: when True (reliable transport), repeated LCO dedup keys are
        #: suppressed and counted instead of raising LCOError
        self.lco_dedup = False
        self.lco_dups_suppressed = 0
        #: schedule-decision driver: None (deterministic baseline),
        #: ScheduleFuzzer (perturb + record) or ScheduleReplayer
        #: (consume a recorded trace); installed by the runtime
        self.schedule_driver: ScheduleFuzzer | ScheduleReplayer | None = None
        #: happens-before hazard detector (repro.hpx.hazards), or None
        self.hazards = None

    # -- public API -----------------------------------------------------------
    def enqueue(self, task: Task, locality: int, t: float, worker_hint: int | None = None) -> None:
        """Make a task runnable on ``locality`` at time ``t``."""
        pr = task.priority if self.priorities else LOW
        idle = self._idle[locality]
        drv = self.schedule_driver
        if drv is not None and idle:
            # fuzzed wakeup: any idle worker may win the fresh task, not
            # just the longest-idle one (all are legal in real HPX-5)
            live = [w for w in idle if w in self._idle_set]
            idle.clear()
            if live:
                w = drv.choose("wake", live)
                self._idle_set.discard(w)
                for other in live:
                    if other != w:
                        idle.append(other)
                self.deques[w][pr].append(task)
                self._push_event(t, "pick", w)
                return
        else:
            while idle:
                w = idle.popleft()
                if w in self._idle_set:
                    self._idle_set.discard(w)
                    self.deques[w][pr].append(task)
                    self._push_event(t, "pick", w)
                    return
        if drv is not None:
            # fuzzed placement: ignore hint and round-robin position
            w = drv.choose("place", self.locality_workers[locality])
        elif worker_hint is not None and self.worker_locality[worker_hint] == locality:
            w = worker_hint
        else:
            w = self.locality_workers[locality][self._rr[locality] % self.workers_per_locality]
            self._rr[locality] += 1
        self.deques[w][pr].append(task)

    def run(self, until: float | None = None) -> float:
        """Process events until quiescence; returns the final time."""
        # kick every worker so initially enqueued tasks get picked
        for w in range(self.n_workers):
            if not self.busy[w]:
                self._push_event(self.now, "pick", w)
        # hot loop: pre-bind everything touched per event
        heap = self._heap
        heappop = heapq.heappop
        try_pick = self._try_pick
        finish = self._finish
        while heap:
            t, _, _, kind, data = heappop(heap)
            if until is not None and t > until:
                self.now = until
                break
            if kind == "pick":
                self.now = t
                try_pick(data, t)
            elif kind == "done":
                self.now = t
                finish(data, t)
            elif kind == "parcel":
                if self.deliver_parcel is None:
                    raise RuntimeError("no parcel delivery handler installed")
                self.now = t
                self.deliver_parcel(data, t)
            elif kind == "call":
                # transport machinery (arrivals, acks, retry timers); a
                # cancelled timer must not drag the clock forward
                if not data.cancelled:
                    self.now = t
                    data.fn(t)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind}")
        return self.now

    def post_parcel_arrival(self, parcel, t_arrival: float) -> None:
        self._push_event(t_arrival, "parcel", parcel)

    # -- internals --------------------------------------------------------------
    def _push_event(self, t: float, kind: str, data) -> None:
        # heap entries are (t, tie, seq, kind, data): the tie key is a
        # constant 0 on the deterministic path (so ordering degenerates
        # to the monotonic seq, bit-identical to the pre-fuzz layout)
        # and a driver-supplied jitter when fuzzing/replaying, which
        # reorders events at equal virtual timestamps - all such
        # orderings are legal schedules of logically concurrent events
        drv = self.schedule_driver
        tie = 0 if drv is None else drv.tie()
        heapq.heappush(self._heap, (t, tie, next(self._seq), kind, data))

    def _try_pick(self, worker: int, t: float) -> None:
        if self.busy[worker]:
            return  # woke late; its queued work is stealable meanwhile
        self._idle_set.discard(worker)
        task = self._pop_task(worker)
        if task is None:
            self._go_idle(worker)
            return
        self._execute(worker, task, t)

    def _pop_task(self, worker: int) -> Task | None:
        mine = self.deques[worker]
        if mine[HIGH]:
            return mine[HIGH].pop()  # owner pops LIFO
        if mine[LOW]:
            return mine[LOW].pop()
        # randomized stealing within the locality, FIFO end, high first
        deques = self.deques
        victims = [
            w
            for w in self.locality_workers[self.worker_locality[worker]]
            if w != worker and (deques[w][HIGH] or deques[w][LOW])
        ]
        if not victims:
            return None
        drv = self.schedule_driver
        if drv is None:
            chosen = self._rng.choice(victims)
        else:
            # fuzzed victim selection draws from the driver's stream;
            # the steal RNG is deliberately not consumed (see module
            # docstring on RNG stream separation)
            chosen = drv.choose("victim", victims)
        victim = deques[chosen]
        self.steals += 1
        # the victim was non-empty when scanned above; pop directly
        return victim[HIGH].popleft() if victim[HIGH] else victim[LOW].popleft()

    def _go_idle(self, worker: int) -> None:
        if worker not in self._idle_set:
            self._idle_set.add(worker)
            self._idle[self.worker_locality[worker]].append(worker)

    def _execute(self, worker: int, task: Task, t: float) -> None:
        self.busy[worker] = True
        ctx = TaskContext(self, worker, t)
        hz = self.hazards
        if hz is not None:
            # the task's HB event was minted at its causal site (spawn /
            # trigger / parcel); root tasks get one hanging off the
            # bootstrap event here.  It is current for the body (GAS
            # accesses) and re-installed at completion for the effects.
            ctx.hb = hz.begin_task(task, t)
        if self.measure_costs:
            w0 = _time.perf_counter()
            task.fn(ctx, *task.args)
            elapsed = (_time.perf_counter() - w0) * self.measure_scale
            ctx.charges.append((task.op_class, elapsed))
        else:
            task.fn(ctx, *task.args)
            if not ctx.charges:
                ctx.charge(task.op_class, task.cost if task.cost is not None else 0.0)
        if hz is not None:
            hz.end_task()
        self.tasks_run += 1
        cursor = t
        if self.tracer.enabled:
            record = self.tracer.record
            for op_class, dt in ctx.charges:
                record(worker, op_class, cursor, cursor + dt)
                cursor += dt
        else:
            # same left-to-right accumulation (bit-identical clock),
            # without a record() call per charge
            for _, dt in ctx.charges:
                cursor += dt
        self._push_event(cursor, "done", (worker, ctx))

    def _finish(self, data, t: float) -> None:
        worker, ctx = data
        hz = self.hazards
        if hz is not None:
            # effects are released now; they are caused by this task
            hz.current = ctx.hb
        for kind, payload in ctx.effects:
            if kind == "lco_set":
                lco, value, key, op_class = payload
                lco._apply_set(value, t, self, key=key, op_class=op_class)
            elif kind == "spawn":
                task, locality = payload
                if hz is not None and task.hb is None:
                    task.hb = hz.derive(
                        (ctx.hb,), label=f"spawn:{task.op_class}", t=t
                    )
                self.enqueue(task, locality, t, worker_hint=worker)
            elif kind == "parcel":
                parcel = payload
                self.parcels_sent += 1
                src = self.worker_locality[worker]
                parcel.origin = src
                if hz is not None and parcel.hb is None:
                    # the send event; every delivered copy (including
                    # retransmissions) is caused by it
                    parcel.hb = ctx.hb
                dst = parcel.target_locality
                if src == dst:
                    # local sends are thread spawns; no network, no faults
                    self.post_parcel_arrival(parcel, t)
                else:
                    self.remote_bytes += parcel.size_bytes
                    self.transport.send(parcel, src, dst, t)
            elif kind == "call":
                payload(t)
        if hz is not None:
            hz.current = None
        self.busy[worker] = False
        self._try_pick(worker, t)
