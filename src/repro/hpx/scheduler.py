"""Discrete-event scheduler: localities, workers, work stealing.

Models the paper's configuration - one HPX-5 scheduler thread per core,
per-worker task deques with *local randomized work stealing* (stealing
never crosses locality boundaries; remote work moves only via parcels).

Execution model
---------------
Tasks are real Python callables ``fn(ctx, *args)``.  When a worker
picks a task at virtual time ``t`` the body runs immediately (so all
state it reads reflects every effect applied up to ``t``) but its
*effects* - LCO sets, new task spawns, parcel sends - are buffered in
the :class:`TaskContext` and released at ``t + cost``, when the task
logically completes.  ``cost`` is the sum of the body's
``ctx.charge(op_class, dt)`` calls (or the task's static cost); each
charge also emits one trace interval, mirroring the paper's
begin/end event instrumentation.

Scheduling discipline
---------------------
Owner pops LIFO (work-first, depth-first into the DAG), thieves steal
FIFO from a random victim on the same locality.  The ready-queue
discipline beyond that is owned by a :class:`SchedulingPolicy`:

* ``stock`` - one effective ready level, matching stock HPX-5 (the
  measured configuration); the default.
* ``binary`` - each worker keeps a high- and a low-priority deque and
  always drains high first: exactly the "binary choice between low and
  high priority" extension the paper's Section VI proposes for HPX-5
  (also reachable via the legacy ``priorities=True`` knob).
* ``critical-path`` - tasks carry a quantized critical-path level
  stamped offline (longest downstream path through the explicit DAG,
  see :func:`repro.analysis.critical_path.node_priorities`); the last
  level is reserved for near-field (P2P) work, which the policy
  interposes under far-field bursts every ``interleave`` picks, and
  parcel sends are released eagerly for comm/compute overlap.

RNG streams & seed plumbing
---------------------------
Three independent seeded streams touch a run; they are never shared,
so perturbing one cannot silently shift another:

* the **steal RNG** - ``random.Random(steal_seed)``, owned by the
  scheduler, consumed only for steal victim selection on the default
  (unfuzzed) path;
* the **fuzz RNG** - ``random.Random(fuzz_seed)`` inside a
  :class:`ScheduleFuzzer` installed as ``schedule_driver`` by
  ``RuntimeConfig(fuzz_schedule=seed)``.  When a driver is installed it
  *replaces* the steal RNG at every decision point (the steal RNG is
  not consumed at all), so fuzzed victim choices cannot advance or
  alias the baseline stream;
* the **fault RNG** - ``random.Random(seed)`` inside
  :class:`~repro.hpx.network.FaultyNetwork`, reseeded by ``reset()``
  per :class:`~repro.hpx.runtime.Runtime` (each runtime deep-copies
  its network), never visible to the scheduler.

Schedule fuzzing & deterministic replay
---------------------------------------
Every source of schedule freedom is funnelled through the installed
``schedule_driver``: ready-queue tie-breaking at equal virtual
timestamps (the second element of each heap entry), steal victim
selection, idle-worker wakeup, task placement, and - via
:mod:`repro.dashmm.registrar` - parcel coalescing order.  A
:class:`ScheduleFuzzer` draws each decision from its dedicated RNG and
appends it to a :class:`~repro.hpx.tracing.ScheduleTrace`; a
:class:`ScheduleReplayer` feeds a recorded trace back, raising
:class:`ReplayDivergence` on any mismatch.  With no driver installed
the tie-break key is a constant zero and every choice follows the
original deterministic rule, so the baseline schedule is bit-identical
to a build without this machinery.
"""

from __future__ import annotations

import heapq
import random
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hpx.tracing import ScheduleTrace, Tracer
from repro.hpx.transport import DirectTransport

HIGH = 0
LOW = 1


class SchedulingPolicy:
    """Stock HPX-5 ready-queue discipline; base class for all policies.

    A policy owns every degree of freedom of the ready-queue discipline:

    * ``n_levels`` - how many priority deques each worker keeps (level
      0 drains first; thieves steal from the most critical non-empty
      level);
    * ``level_of(task)`` - the level a task's ``priority`` stamp maps
      to at enqueue time;
    * ``interleave`` - when nonzero, one task from the *last* (filler)
      level is interposed after every ``interleave`` consecutive picks
      from more critical levels (near/far pipelining);
    * ``eager_sends`` - release parcel sends at the point the task's
      charge accounting has reached instead of at task completion
      (comm/compute overlap);
    * ``prioritized`` / ``graded`` - whether the DASHMM registrar
      should split critical-chain work from leaf outputs, and whether
      it should stamp offline critical-path levels onto tasks.

    The stock policy keeps two levels but maps every task to the low
    one, which is bit-identical to the historical single-queue
    scheduler and keeps the ``deques[worker][HIGH/LOW]`` layout stable.
    """

    name = "stock"
    n_levels = 2
    interleave = 0
    eager_sends = False
    prioritized = False
    graded = False

    def level_of(self, task: "Task") -> int:
        return LOW

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<{type(self).__name__} {self.name!r} levels={self.n_levels}>"


class BinaryPriorityPolicy(SchedulingPolicy):
    """Section VI's binary high/low extension (legacy ``priorities=True``)."""

    name = "binary"
    prioritized = True

    def level_of(self, task: "Task") -> int:
        return HIGH if task.priority <= HIGH else LOW


class CriticalPathPolicy(SchedulingPolicy):
    """Critical-path-weighted levels with near/far pipelining.

    Tasks carry a level stamped at registration time from the explicit
    DAG (:func:`repro.analysis.critical_path.node_priorities`: longest
    downstream path under the cost model, quantized; level 0 is most
    critical).  The last level is reserved for near-field (P2P) work -
    the ops in ``near_ops`` - which the scheduler interposes under
    far-field bursts every ``interleave`` picks so the abundant S->T
    stream drains while M2L waves monopolize the critical levels.
    ``eager_sends`` releases parcels at the charge point reached inside
    the sending task, overlapping communication with the remainder of
    the task's compute.
    """

    name = "critical-path"
    prioritized = True
    graded = True

    def __init__(
        self,
        levels: int = 4,
        interleave: int = 8,
        eager_sends: bool = True,
        near_ops: tuple = ("S2T",),
        far_ops: tuple = (),
    ):
        if levels < 2:
            raise ValueError("critical-path policy needs at least 2 levels")
        self.n_levels = levels
        self.interleave = interleave
        self.eager_sends = eager_sends
        self.near_ops = frozenset(near_ops)
        self.far_ops = frozenset(far_ops)

    def level_of(self, task: "Task") -> int:
        p = task.priority
        if p <= 0:
            return 0
        last = self.n_levels - 1
        return p if p < last else last


def pick_level(queues, n_levels: int, interleave: int, burst: int, driver) -> tuple[int, int]:
    """The ready-level rule shared by both execution backends.

    Returns ``(level, new_burst)``: the index of the level to pop next
    (-1 when every queue is empty) and the updated critical-pick burst
    counter.  Without interleaving this is simply the most critical
    non-empty level.  With it (critical-path policy), one filler task -
    the last level holds the near-field stream - is interposed after
    every ``interleave`` consecutive critical picks, so P2P work drains
    under M2L bursts.  Under a schedule ``driver`` the choice is
    schedule freedom: recorded by the fuzzer, consumed on replay.  The
    simulator's per-worker deques and the real-parallel per-process
    ready queues both route through here, so the two backends follow
    one policy implementation.
    """
    first = -1
    for i, d in enumerate(queues):
        if d:
            first = i
            break
    if first < 0:
        return -1, burst
    if interleave:
        last = n_levels - 1
        if first != last and queues[last]:
            if driver is not None:
                return driver.choose("interleave", [first, last]), burst
            b = burst + 1
            if b >= interleave:
                return last, 0
            return first, b
    return first, burst


#: policy registry for the string spellings accepted by RuntimeConfig
POLICIES = {
    "stock": SchedulingPolicy,
    "binary": BinaryPriorityPolicy,
    "critical-path": CriticalPathPolicy,
}


def resolve_policy(
    policy: "SchedulingPolicy | str | None" = None, priorities: bool = False
) -> SchedulingPolicy:
    """Resolve a policy spec (instance, name, or None + legacy flag)."""
    if policy is None:
        return BinaryPriorityPolicy() if priorities else SchedulingPolicy()
    if isinstance(policy, str):
        cls = POLICIES.get(policy)
        if cls is None:
            raise ValueError(
                f"unknown scheduling policy {policy!r}; known: {sorted(POLICIES)}"
            )
        return cls()
    return policy


class ReplayDivergence(RuntimeError):
    """A replayed run made a decision its trace does not contain.

    Raised when the code under replay asks for a different decision
    kind than the trace recorded next, offers an option set that does
    not include the recorded choice, or outlives the trace.  Any of
    these means the program (or its inputs) changed since the trace was
    recorded - the trace is stale, not merely unlucky.
    """

    def __init__(self, message: str, *, index: int | None = None,
                 expected=None, got=None):
        self.index = index
        self.expected = expected
        self.got = got
        super().__init__(
            f"{message} [decision #{index} expected={expected!r} got={got!r}]"
        )


class ScheduleFuzzer:
    """Draws schedule decisions from a dedicated seeded RNG, recording all.

    One fuzzer drives one run; its :attr:`trace` is the complete,
    replayable decision record (see
    :class:`~repro.hpx.tracing.ScheduleTrace`).  The RNG is private to
    the fuzzer - the scheduler's steal RNG and any fault RNG keep their
    own streams untouched.
    """

    def __init__(self, seed: int):
        self._rng = random.Random(seed)
        self.trace = ScheduleTrace(meta={"fuzz_seed": seed})

    def tie(self) -> int:
        """Tie-break key for one event push (reorders same-time events)."""
        v = self._rng.getrandbits(20)
        self.trace.decisions.append(["tie", v])
        return v

    def choose(self, kind: str, options: list) -> int:
        """Pick one element of ``options`` (victim / wake / place)."""
        v = options[self._rng.randrange(len(options))]
        self.trace.decisions.append([kind, v])
        return v

    def permute(self, kind: str, seq: list) -> list:
        """A random permutation of ``seq`` (parcel coalescing order)."""
        out = list(seq)
        self._rng.shuffle(out)
        self.trace.decisions.append([kind, list(out)])
        return out


class ScheduleReplayer:
    """Feeds a recorded :class:`~repro.hpx.tracing.ScheduleTrace` back.

    Presents the same driver interface as :class:`ScheduleFuzzer` but
    consumes decisions instead of drawing them, validating each against
    the live option set so a stale trace fails loudly
    (:class:`ReplayDivergence`) instead of silently diverging.
    """

    def __init__(self, trace: ScheduleTrace):
        self.trace = trace
        self._i = 0

    def _next(self, kind: str):
        i = self._i
        if i >= len(self.trace.decisions):
            raise ReplayDivergence(
                "trace exhausted", index=i, expected=kind, got=None
            )
        rec_kind, value = self.trace.decisions[i]
        if rec_kind != kind:
            raise ReplayDivergence(
                "decision kind mismatch", index=i, expected=rec_kind, got=kind
            )
        self._i = i + 1
        return value

    def tie(self) -> int:
        return self._next("tie")

    def choose(self, kind: str, options: list) -> int:
        v = self._next(kind)
        if v not in options:
            raise ReplayDivergence(
                "recorded choice not among live options",
                index=self._i - 1, expected=v, got=list(options),
            )
        return v

    def permute(self, kind: str, seq: list) -> list:
        v = self._next(kind)
        if sorted(v) != sorted(seq):
            raise ReplayDivergence(
                "recorded permutation does not match live key set",
                index=self._i - 1, expected=v, got=list(seq),
            )
        return list(v)

    @property
    def consumed(self) -> int:
        return self._i


@dataclass
class Task:
    """A lightweight thread to run on some locality."""

    fn: Callable
    args: tuple = ()
    op_class: str = "task"
    cost: float | None = None
    priority: int = LOW
    #: happens-before event assigned by the hazard detector at the
    #: causal site (spawn, LCO trigger, parcel delivery); None when
    #: detection is off or the task is an initial/root task
    hb: Any = None


class TaskContext:
    """Handed to every task body; collects charges and buffered effects."""

    __slots__ = ("scheduler", "worker", "locality", "time", "charges", "effects", "hb")

    def __init__(self, scheduler: "Scheduler", worker: int, time: float):
        self.scheduler = scheduler
        self.worker = worker
        self.locality = scheduler.worker_locality[worker]
        self.time = time
        self.charges: list[tuple[str, float]] = []
        self.effects: list[tuple[str, Any]] = []
        #: the executing task's happens-before event (hazard detection)
        self.hb: Any = None

    # -- cost accounting ----------------------------------------------------
    def charge(self, op_class: str, dt: float) -> None:
        """Account ``dt`` seconds of ``op_class`` work to this task."""
        if dt < 0:
            raise ValueError("negative charge")
        if dt > 0:
            self.charges.append((op_class, dt))

    @property
    def total_cost(self) -> float:
        return sum(dt for _, dt in self.charges)

    # -- buffered effects (released at task completion) ----------------------
    def spawn(self, task: Task, locality: int | None = None) -> None:
        """Spawn a task (on this locality unless stated otherwise)."""
        self.effects.append(("spawn", task, self.locality if locality is None else locality))

    def send_parcel(self, parcel) -> None:
        sch = self.scheduler
        if sch._eager_sends:
            # comm/compute overlap (critical-path policy): the parcel
            # leaves at the point the task's charge accounting has
            # reached, not at task completion.  Bodies run at pick time,
            # so this never schedules into the past, and the event ride
            # through _push_event keeps the freedom replayable.
            t_send = self.time + sum(dt for _, dt in self.charges)
            sch._push_event(t_send, "send", (self.worker, self.hb, parcel))
        else:
            self.effects.append(("parcel", parcel))

    def lco_set(self, lco, value=None, key=None, op_class=None) -> None:
        """Set an LCO input; the LCO must live on this locality.

        ``key`` is an optional per-LCO dedup key identifying the logical
        contribution (e.g. a DAG edge): a repeated key is suppressed
        when the runtime runs a reliable transport and rejected with a
        structured :class:`~repro.hpx.lco.LCOError` otherwise.
        ``op_class`` labels the contribution for diagnostics.
        """
        self.effects.append(("lco_set", lco, value, key, op_class))

    def call_at_completion(self, fn: Callable[[float], None]) -> None:
        """Run ``fn(t_end)`` when the task completes (bookkeeping hooks)."""
        self.effects.append(("call", fn))


class Scheduler:
    """Discrete-event engine over L localities x W workers."""

    def __init__(
        self,
        n_localities: int,
        workers_per_locality: int,
        network,
        tracer: Tracer | None = None,
        priorities: bool = False,
        steal_seed: int = 12345,
        measure_costs: bool = False,
        measure_scale: float = 1.0,
        policy: "SchedulingPolicy | str | None" = None,
    ):
        if n_localities < 1 or workers_per_locality < 1:
            raise ValueError("need at least 1 locality and 1 worker")
        self.n_localities = n_localities
        self.workers_per_locality = workers_per_locality
        self.n_workers = n_localities * workers_per_locality
        self.network = network
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: the ready-queue discipline; ``priorities=True`` is the legacy
        #: spelling of the binary policy and is ignored when an explicit
        #: policy is given
        self.policy = resolve_policy(policy, priorities)
        self.priorities = self.policy.prioritized
        self.measure_costs = measure_costs
        self.measure_scale = measure_scale
        self._rng = random.Random(steal_seed)

        self.worker_locality = [w // workers_per_locality for w in range(self.n_workers)]
        self.locality_workers = [
            list(range(l * workers_per_locality, (l + 1) * workers_per_locality))
            for l in range(n_localities)
        ]
        # deques[worker][level]; level 0 drains first
        n_levels = self.policy.n_levels
        self.deques: list[tuple[deque, ...]] = [
            tuple(deque() for _ in range(n_levels)) for _ in range(self.n_workers)
        ]
        # hot-path caches of the policy's knobs
        self._n_levels = n_levels
        self._level_of = self.policy.level_of
        self._interleave = self.policy.interleave
        self._eager_sends = self.policy.eager_sends
        self._burst = [0] * self.n_workers
        #: recycled TaskContexts (slot reuse; see _acquire_ctx)
        self._ctx_pool: list[TaskContext] = []
        self.busy = [False] * self.n_workers
        self._idle: list[deque] = [deque() for _ in range(n_localities)]
        self._idle_set: set[int] = set()
        self._rr = [0] * n_localities

        self._heap: list = []
        # plain int (not itertools.count) so a RuntimeCheckpoint can
        # capture and rewind it; see repro.hpx.checkpoint
        self._seq = 0
        self.now = 0.0
        self.tasks_run = 0
        self.steals = 0
        self.parcels_sent = 0
        self.remote_bytes = 0
        # set by the runtime so buffered parcel effects can be routed
        self.deliver_parcel: Callable | None = None
        #: routes remote parcels; the runtime swaps in ReliableTransport
        self.transport = DirectTransport(self)
        #: when True (reliable transport), repeated LCO dedup keys are
        #: suppressed and counted instead of raising LCOError
        self.lco_dedup = False
        self.lco_dups_suppressed = 0
        #: schedule-decision driver: None (deterministic baseline),
        #: ScheduleFuzzer (perturb + record) or ScheduleReplayer
        #: (consume a recorded trace); installed by the runtime
        self.schedule_driver: ScheduleFuzzer | ScheduleReplayer | None = None
        #: happens-before hazard detector (repro.hpx.hazards), or None
        self.hazards = None
        #: structured-abort request (see :meth:`abort`): set mid-event,
        #: raised by the run loop after the current event completes
        self._abort: BaseException | None = None
        #: the exception the last structured abort raised (the runtime
        #: uses identity against this to tell a quiesced abort - heap
        #: and LCO state intact, checkpointable - from a stray failure)
        self.aborted: BaseException | None = None

    # -- public API -----------------------------------------------------------
    def enqueue(self, task: Task, locality: int, t: float, worker_hint: int | None = None) -> None:
        """Make a task runnable on ``locality`` at time ``t``."""
        pr = self._level_of(task)
        idle = self._idle[locality]
        drv = self.schedule_driver
        if drv is not None and idle:
            # fuzzed wakeup: any idle worker may win the fresh task, not
            # just the longest-idle one (all are legal in real HPX-5).
            # Stale entries (workers already woken) and duplicates are
            # dropped exactly as the deterministic path skips them, and
            # the survivors keep their original relative order so the
            # idle queue never diverges from the unfuzzed layout.
            live: list[int] = []
            seen: set[int] = set()
            for w in idle:
                if w in self._idle_set and w not in seen:
                    live.append(w)
                    seen.add(w)
            idle.clear()
            if live:
                w = drv.choose("wake", live)
                self._idle_set.discard(w)
                for other in live:
                    if other != w:
                        idle.append(other)
                self.deques[w][pr].append(task)
                self._push_event(t, "pick", w)
                return
        else:
            while idle:
                w = idle.popleft()
                if w in self._idle_set:
                    self._idle_set.discard(w)
                    self.deques[w][pr].append(task)
                    self._push_event(t, "pick", w)
                    return
        if drv is not None:
            # fuzzed placement: ignore hint and round-robin position
            w = drv.choose("place", self.locality_workers[locality])
        elif worker_hint is not None and self.worker_locality[worker_hint] == locality:
            w = worker_hint
        else:
            w = self.locality_workers[locality][self._rr[locality] % self.workers_per_locality]
            self._rr[locality] += 1
        self.deques[w][pr].append(task)

    def abort(self, exc: BaseException) -> None:
        """Request a structured abort of the event loop.

        Called from *inside* an event (transport timers, task effects)
        instead of raising: the run loop finishes the current event
        cleanly, then raises ``exc`` between events - with the heap,
        deques, LCO and transport state all internally consistent, i.e.
        at a quiescent, checkpointable point.  The first request wins;
        later ones while an abort is already pending are dropped.
        """
        if self._abort is None:
            self._abort = exc

    def run(self, until: float | None = None) -> float:
        """Process events until quiescence (or ``until``); returns the time.

        A bounded run leaves every unprocessed event - including the
        first one past the horizon - on the heap, so a later ``run()``
        resumes exactly where this one stopped and the combined
        execution is bit-identical to one uninterrupted run.
        """
        heap = self._heap
        # kick workers that are neither busy nor parked idle so
        # initially enqueued tasks get picked.  Idle workers are always
        # woken by enqueue (an idle worker never coexists with
        # stealable work on its locality), and re-kicking them on a
        # resumed run would duplicate their idle-queue entries.
        idle_set = self._idle_set
        busy = self.busy
        kicks = [
            w for w in range(self.n_workers) if not busy[w] and w not in idle_set
        ]
        if kicks:
            drv = self.schedule_driver
            if drv is None and not heap:
                # bulk path: entries at one timestamp with increasing
                # seq form a sorted list, which is already a valid heap
                t0 = self.now
                base = self._seq
                heap.extend((t0, 0, base + i, "pick", w) for i, w in enumerate(kicks))
                self._seq = base + len(kicks)
            else:
                for w in kicks:
                    self._push_event(self.now, "pick", w)
        # hot loop: pre-bind everything touched per event
        heappop = heapq.heappop
        try_pick = self._try_pick
        finish = self._finish
        bounded = until is not None
        while heap:
            if bounded and heap[0][0] > until:
                # cancelled timers past the horizon can never affect
                # state; discard them here so a run paused only by
                # checkpoint boundaries does not ratchet its clock to
                # the boundary when no real work remains beyond it
                if heap[0][3] == "call" and heap[0][4].cancelled:
                    heappop(heap)
                    continue
                # horizon reached: the over-horizon event stays queued
                # for the next run instead of being popped and lost
                self.now = until
                break
            t, _, _, kind, data = heappop(heap)
            if kind == "pick":
                self.now = t
                try_pick(data, t)
            elif kind == "done":
                self.now = t
                finish(data, t)
            elif kind == "parcel":
                if self.deliver_parcel is None:
                    raise RuntimeError("no parcel delivery handler installed")
                self.now = t
                self.deliver_parcel(data, t)
            elif kind == "send":
                # eager parcel release (critical-path policy): the send
                # point inside the still-running task has been reached
                worker, hb, parcel = data
                self.now = t
                self._release_parcel(worker, hb, parcel, t)
            elif kind == "call":
                # transport machinery (arrivals, acks, retry timers); a
                # cancelled timer must not drag the clock forward
                if not data.cancelled:
                    self.now = t
                    data.fn(t)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind}")
            if self._abort is not None:
                # structured abort: the event that requested it has
                # completed; every queue/heap/LCO invariant holds, so
                # the caller may checkpoint before propagating
                exc = self._abort
                self._abort = None
                self.aborted = exc
                raise exc
        return self.now

    def post_parcel_arrival(self, parcel, t_arrival: float) -> None:
        self._push_event(t_arrival, "parcel", parcel)

    # -- internals --------------------------------------------------------------
    def _push_event(self, t: float, kind: str, data) -> None:
        # heap entries are (t, tie, seq, kind, data): the tie key is a
        # constant 0 on the deterministic path (so ordering degenerates
        # to the monotonic seq, bit-identical to the pre-fuzz layout)
        # and a driver-supplied jitter when fuzzing/replaying, which
        # reorders events at equal virtual timestamps - all such
        # orderings are legal schedules of logically concurrent events
        drv = self.schedule_driver
        tie = 0 if drv is None else drv.tie()
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (t, tie, seq, kind, data))

    def _try_pick(self, worker: int, t: float) -> None:
        if self.busy[worker]:
            return  # woke late; its queued work is stealable meanwhile
        self._idle_set.discard(worker)
        task = self._pop_task(worker)
        if task is None:
            self._go_idle(worker)
            return
        self._execute(worker, task, t)

    def _pop_task(self, worker: int) -> Task | None:
        mine = self.deques[worker]
        lvl = self._own_level(worker, mine)
        if lvl >= 0:
            return mine[lvl].pop()  # owner pops LIFO
        # randomized stealing within the locality, FIFO end, most
        # critical non-empty level first
        deques = self.deques
        victims = [
            w
            for w in self.locality_workers[self.worker_locality[worker]]
            if w != worker and any(deques[w])
        ]
        if not victims:
            return None
        drv = self.schedule_driver
        if drv is None:
            chosen = self._rng.choice(victims)
        else:
            # fuzzed victim selection draws from the driver's stream;
            # the steal RNG is deliberately not consumed (see module
            # docstring on RNG stream separation)
            chosen = drv.choose("victim", victims)
        victim = deques[chosen]
        self.steals += 1
        # the victim was non-empty when scanned above; pop directly
        for d in victim:
            if d:
                return d.popleft()
        return None  # pragma: no cover - unreachable

    def _own_level(self, worker: int, mine) -> int:
        """The level this worker pops from next (-1 when all are empty);
        see :func:`pick_level` for the rule."""
        lvl, self._burst[worker] = pick_level(
            mine, self._n_levels, self._interleave,
            self._burst[worker], self.schedule_driver,
        )
        return lvl

    def _go_idle(self, worker: int) -> None:
        if worker not in self._idle_set:
            self._idle_set.add(worker)
            self._idle[self.worker_locality[worker]].append(worker)

    def _acquire_ctx(self, worker: int, t: float) -> TaskContext:
        """A fresh-looking TaskContext, recycled from the pool when possible.

        Contexts are returned to the pool at the end of ``_finish``;
        recycling the object (and its charges/effects lists) removes
        three allocations from the per-task hot path.
        """
        pool = self._ctx_pool
        if pool:
            ctx = pool.pop()
            ctx.worker = worker
            ctx.locality = self.worker_locality[worker]
            ctx.time = t
            ctx.charges.clear()
            ctx.effects.clear()
            ctx.hb = None
            return ctx
        return TaskContext(self, worker, t)

    def _execute(self, worker: int, task: Task, t: float) -> None:
        self.busy[worker] = True
        ctx = self._acquire_ctx(worker, t)
        hz = self.hazards
        if hz is not None:
            # the task's HB event was minted at its causal site (spawn /
            # trigger / parcel); root tasks get one hanging off the
            # bootstrap event here.  It is current for the body (GAS
            # accesses) and re-installed at completion for the effects.
            ctx.hb = hz.begin_task(task, t)
        if self.measure_costs:
            w0 = _time.perf_counter()
            task.fn(ctx, *task.args)
            if not ctx.charges:
                # mirror the static-cost branch: a body that charged
                # explicitly keeps its own accounting; only silent
                # bodies are billed the measured elapsed wall time
                elapsed = (_time.perf_counter() - w0) * self.measure_scale
                ctx.charges.append((task.op_class, elapsed))
        else:
            task.fn(ctx, *task.args)
            if not ctx.charges:
                ctx.charge(task.op_class, task.cost if task.cost is not None else 0.0)
        if hz is not None:
            hz.end_task()
        self.tasks_run += 1
        cursor = t
        if self.tracer.enabled:
            record = self.tracer.record
            for op_class, dt in ctx.charges:
                record(worker, op_class, cursor, cursor + dt)
                cursor += dt
        else:
            # same left-to-right accumulation (bit-identical clock),
            # without a record() call per charge
            for _, dt in ctx.charges:
                cursor += dt
        self._push_event(cursor, "done", (worker, ctx))

    def _release_parcel(self, worker: int, hb, parcel, t: float) -> None:
        """Hand one parcel to the transport (from _finish or a send event)."""
        self.parcels_sent += 1
        src = self.worker_locality[worker]
        parcel.origin = src
        if self.hazards is not None and parcel.hb is None:
            # the send event; every delivered copy (including
            # retransmissions) is caused by it
            parcel.hb = hb
        dst = parcel.target_locality
        if src == dst:
            # local sends are thread spawns; no network, no faults
            self.post_parcel_arrival(parcel, t)
        else:
            self.remote_bytes += parcel.size_bytes
            self.transport.send(parcel, src, dst, t)

    def _finish(self, data, t: float) -> None:
        worker, ctx = data
        hz = self.hazards
        if hz is not None:
            # effects are released now; they are caused by this task
            hz.current = ctx.hb
        for eff in ctx.effects:
            kind = eff[0]
            if kind == "lco_set":
                _, lco, value, key, op_class = eff
                lco._apply_set(value, t, self, key=key, op_class=op_class)
            elif kind == "spawn":
                _, task, locality = eff
                if hz is not None and task.hb is None:
                    task.hb = hz.derive(
                        (ctx.hb,), label=f"spawn:{task.op_class}", t=t
                    )
                self.enqueue(task, locality, t, worker_hint=worker)
            elif kind == "parcel":
                self._release_parcel(worker, ctx.hb, eff[1], t)
            elif kind == "call":
                eff[1](t)
        if hz is not None:
            hz.current = None
        self.busy[worker] = False
        self._ctx_pool.append(ctx)
        self._try_pick(worker, t)
