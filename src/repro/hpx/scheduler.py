"""Discrete-event scheduler: localities, workers, work stealing.

Models the paper's configuration - one HPX-5 scheduler thread per core,
per-worker task deques with *local randomized work stealing* (stealing
never crosses locality boundaries; remote work moves only via parcels).

Execution model
---------------
Tasks are real Python callables ``fn(ctx, *args)``.  When a worker
picks a task at virtual time ``t`` the body runs immediately (so all
state it reads reflects every effect applied up to ``t``) but its
*effects* - LCO sets, new task spawns, parcel sends - are buffered in
the :class:`TaskContext` and released at ``t + cost``, when the task
logically completes.  ``cost`` is the sum of the body's
``ctx.charge(op_class, dt)`` calls (or the task's static cost); each
charge also emits one trace interval, mirroring the paper's
begin/end event instrumentation.

Scheduling discipline
---------------------
Owner pops LIFO (work-first, depth-first into the DAG), thieves steal
FIFO from a random victim on the same locality.  With ``priorities``
enabled, each worker keeps a high- and a low-priority deque and always
drains high first - this is exactly the "binary choice between low and
high priority" extension the paper's Section VI proposes for HPX-5,
off by default to match stock HPX-5.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.hpx.tracing import Tracer
from repro.hpx.transport import DirectTransport

HIGH = 0
LOW = 1


@dataclass
class Task:
    """A lightweight thread to run on some locality."""

    fn: Callable
    args: tuple = ()
    op_class: str = "task"
    cost: float | None = None
    priority: int = LOW


class TaskContext:
    """Handed to every task body; collects charges and buffered effects."""

    __slots__ = ("scheduler", "worker", "locality", "time", "charges", "effects")

    def __init__(self, scheduler: "Scheduler", worker: int, time: float):
        self.scheduler = scheduler
        self.worker = worker
        self.locality = scheduler.worker_locality[worker]
        self.time = time
        self.charges: list[tuple[str, float]] = []
        self.effects: list[tuple[str, Any]] = []

    # -- cost accounting ----------------------------------------------------
    def charge(self, op_class: str, dt: float) -> None:
        """Account ``dt`` seconds of ``op_class`` work to this task."""
        if dt < 0:
            raise ValueError("negative charge")
        if dt > 0:
            self.charges.append((op_class, dt))

    @property
    def total_cost(self) -> float:
        return sum(dt for _, dt in self.charges)

    # -- buffered effects (released at task completion) ----------------------
    def spawn(self, task: Task, locality: int | None = None) -> None:
        """Spawn a task (on this locality unless stated otherwise)."""
        self.effects.append(("spawn", (task, self.locality if locality is None else locality)))

    def send_parcel(self, parcel) -> None:
        self.effects.append(("parcel", parcel))

    def lco_set(self, lco, value=None, key=None, op_class=None) -> None:
        """Set an LCO input; the LCO must live on this locality.

        ``key`` is an optional per-LCO dedup key identifying the logical
        contribution (e.g. a DAG edge): a repeated key is suppressed
        when the runtime runs a reliable transport and rejected with a
        structured :class:`~repro.hpx.lco.LCOError` otherwise.
        ``op_class`` labels the contribution for diagnostics.
        """
        self.effects.append(("lco_set", (lco, value, key, op_class)))

    def call_at_completion(self, fn: Callable[[float], None]) -> None:
        """Run ``fn(t_end)`` when the task completes (bookkeeping hooks)."""
        self.effects.append(("call", fn))


class Scheduler:
    """Discrete-event engine over L localities x W workers."""

    def __init__(
        self,
        n_localities: int,
        workers_per_locality: int,
        network,
        tracer: Tracer | None = None,
        priorities: bool = False,
        steal_seed: int = 12345,
        measure_costs: bool = False,
        measure_scale: float = 1.0,
    ):
        if n_localities < 1 or workers_per_locality < 1:
            raise ValueError("need at least 1 locality and 1 worker")
        import random

        self.n_localities = n_localities
        self.workers_per_locality = workers_per_locality
        self.n_workers = n_localities * workers_per_locality
        self.network = network
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.priorities = priorities
        self.measure_costs = measure_costs
        self.measure_scale = measure_scale
        self._rng = random.Random(steal_seed)

        self.worker_locality = [w // workers_per_locality for w in range(self.n_workers)]
        self.locality_workers = [
            list(range(l * workers_per_locality, (l + 1) * workers_per_locality))
            for l in range(n_localities)
        ]
        # deques[worker][priority]
        self.deques: list[tuple[deque, deque]] = [
            (deque(), deque()) for _ in range(self.n_workers)
        ]
        self.busy = [False] * self.n_workers
        self._idle: list[deque] = [deque() for _ in range(n_localities)]
        self._idle_set: set[int] = set()
        self._rr = [0] * n_localities

        self._heap: list = []
        self._seq = itertools.count()
        self.now = 0.0
        self.tasks_run = 0
        self.steals = 0
        self.parcels_sent = 0
        self.remote_bytes = 0
        # set by the runtime so buffered parcel effects can be routed
        self.deliver_parcel: Callable | None = None
        #: routes remote parcels; the runtime swaps in ReliableTransport
        self.transport = DirectTransport(self)
        #: when True (reliable transport), repeated LCO dedup keys are
        #: suppressed and counted instead of raising LCOError
        self.lco_dedup = False
        self.lco_dups_suppressed = 0

    # -- public API -----------------------------------------------------------
    def enqueue(self, task: Task, locality: int, t: float, worker_hint: int | None = None) -> None:
        """Make a task runnable on ``locality`` at time ``t``."""
        pr = task.priority if self.priorities else LOW
        idle = self._idle[locality]
        while idle:
            w = idle.popleft()
            if w in self._idle_set:
                self._idle_set.discard(w)
                self.deques[w][pr].append(task)
                self._push_event(t, "pick", w)
                return
        if worker_hint is not None and self.worker_locality[worker_hint] == locality:
            w = worker_hint
        else:
            w = self.locality_workers[locality][self._rr[locality] % self.workers_per_locality]
            self._rr[locality] += 1
        self.deques[w][pr].append(task)

    def run(self, until: float | None = None) -> float:
        """Process events until quiescence; returns the final time."""
        # kick every worker so initially enqueued tasks get picked
        for w in range(self.n_workers):
            if not self.busy[w]:
                self._push_event(self.now, "pick", w)
        # hot loop: pre-bind everything touched per event
        heap = self._heap
        heappop = heapq.heappop
        try_pick = self._try_pick
        finish = self._finish
        while heap:
            t, _, kind, data = heappop(heap)
            if until is not None and t > until:
                self.now = until
                break
            if kind == "pick":
                self.now = t
                try_pick(data, t)
            elif kind == "done":
                self.now = t
                finish(data, t)
            elif kind == "parcel":
                if self.deliver_parcel is None:
                    raise RuntimeError("no parcel delivery handler installed")
                self.now = t
                self.deliver_parcel(data, t)
            elif kind == "call":
                # transport machinery (arrivals, acks, retry timers); a
                # cancelled timer must not drag the clock forward
                if not data.cancelled:
                    self.now = t
                    data.fn(t)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind}")
        return self.now

    def post_parcel_arrival(self, parcel, t_arrival: float) -> None:
        self._push_event(t_arrival, "parcel", parcel)

    # -- internals --------------------------------------------------------------
    def _push_event(self, t: float, kind: str, data) -> None:
        heapq.heappush(self._heap, (t, next(self._seq), kind, data))

    def _try_pick(self, worker: int, t: float) -> None:
        if self.busy[worker]:
            return  # woke late; its queued work is stealable meanwhile
        self._idle_set.discard(worker)
        task = self._pop_task(worker)
        if task is None:
            self._go_idle(worker)
            return
        self._execute(worker, task, t)

    def _pop_task(self, worker: int) -> Task | None:
        mine = self.deques[worker]
        if mine[HIGH]:
            return mine[HIGH].pop()  # owner pops LIFO
        if mine[LOW]:
            return mine[LOW].pop()
        # randomized stealing within the locality, FIFO end, high first
        deques = self.deques
        victims = [
            w
            for w in self.locality_workers[self.worker_locality[worker]]
            if w != worker and (deques[w][HIGH] or deques[w][LOW])
        ]
        if not victims:
            return None
        victim = deques[self._rng.choice(victims)]
        self.steals += 1
        # the victim was non-empty when scanned above; pop directly
        return victim[HIGH].popleft() if victim[HIGH] else victim[LOW].popleft()

    def _go_idle(self, worker: int) -> None:
        if worker not in self._idle_set:
            self._idle_set.add(worker)
            self._idle[self.worker_locality[worker]].append(worker)

    def _execute(self, worker: int, task: Task, t: float) -> None:
        self.busy[worker] = True
        ctx = TaskContext(self, worker, t)
        if self.measure_costs:
            import time as _time

            w0 = _time.perf_counter()
            task.fn(ctx, *task.args)
            elapsed = (_time.perf_counter() - w0) * self.measure_scale
            ctx.charges.append((task.op_class, elapsed))
        else:
            task.fn(ctx, *task.args)
            if not ctx.charges:
                ctx.charge(task.op_class, task.cost if task.cost is not None else 0.0)
        self.tasks_run += 1
        cursor = t
        if self.tracer.enabled:
            record = self.tracer.record
            for op_class, dt in ctx.charges:
                record(worker, op_class, cursor, cursor + dt)
                cursor += dt
        else:
            # same left-to-right accumulation (bit-identical clock),
            # without a record() call per charge
            for _, dt in ctx.charges:
                cursor += dt
        self._push_event(cursor, "done", (worker, ctx))

    def _finish(self, data, t: float) -> None:
        worker, ctx = data
        for kind, payload in ctx.effects:
            if kind == "lco_set":
                lco, value, key, op_class = payload
                lco._apply_set(value, t, self, key=key, op_class=op_class)
            elif kind == "spawn":
                task, locality = payload
                self.enqueue(task, locality, t, worker_hint=worker)
            elif kind == "parcel":
                parcel = payload
                self.parcels_sent += 1
                src = self.worker_locality[worker]
                parcel.origin = src
                dst = parcel.target_locality
                if src == dst:
                    # local sends are thread spawns; no network, no faults
                    self.post_parcel_arrival(parcel, t)
                else:
                    self.remote_bytes += parcel.size_bytes
                    self.transport.send(parcel, src, dst, t)
            elif kind == "call":
                payload(t)
        self.busy[worker] = False
        self._try_pick(worker, t)
