"""The runtime facade: configuration, action registry, main loop.

Ties together the GAS, the discrete-event scheduler, the network model
and tracing into the programming model DASHMM targets: register
actions, allocate LCOs, enqueue initial parcels/tasks, call
:meth:`Runtime.run`, read the virtual clock.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable

from repro.hpx.checkpoint import RuntimeCheckpoint
from repro.hpx.gas import GlobalAddressSpace
from repro.hpx.hazards import HazardDetector
from repro.hpx.network import NetworkModel
from repro.hpx.parcel import Parcel
from repro.hpx.scheduler import (
    ScheduleFuzzer,
    ScheduleReplayer,
    Scheduler,
    SchedulingPolicy,
    Task,
)
from repro.hpx.tracing import ScheduleTrace, Tracer
from repro.hpx.transport import ReliableTransport


@dataclass
class RuntimeConfig:
    """Knobs of the simulated cluster.

    ``policy`` selects the scheduling policy: ``"stock"`` (the default,
    matching stock HPX-5), ``"binary"`` (Section VI's high/low
    extension), ``"critical-path"`` (offline critical-path levels with
    near/far interleaving and eager parcel release), or a
    :class:`~repro.hpx.scheduler.SchedulingPolicy` instance.
    ``priorities`` is the legacy boolean spelling of ``"binary"`` and
    is ignored when ``policy`` is given.  ``progress_cost`` models the
    time HPX-5's network progress charges on the receiving locality per
    remote parcel - the paper attributes a small part of the
    utilization deficit to it.

    ``reliable`` turns on the sequence-numbered, acknowledged,
    retry-with-backoff parcel transport (see
    :mod:`repro.hpx.transport`): required for correct execution over a
    :class:`~repro.hpx.network.FaultyNetwork`, a no-op cost-wise over a
    fault-free one except for ack traffic.  ``retry_timeout`` /
    ``retry_backoff`` / ``retry_limit`` shape the retransmission
    schedule; ``ack_bytes`` is the modelled wire size of an ack.

    Concurrency-correctness tooling (all off by default, and with all
    three off the schedule, virtual clock and results are bit-identical
    to a build without the tooling):

    * ``fuzz_schedule`` - seed for a dedicated schedule-fuzzing RNG
      (:class:`~repro.hpx.scheduler.ScheduleFuzzer`).  Perturbs steal
      victim selection, ready-queue tie-breaking at equal virtual
      timestamps, idle-worker wakeup, task placement and parcel
      coalescing order, driving one workload through a different legal
      schedule per seed.  Every decision is recorded; the trace is
      available as :attr:`Runtime.schedule_trace`.
    * ``replay_schedule`` - a recorded
      :class:`~repro.hpx.tracing.ScheduleTrace` (or a path to one saved
      with ``trace.save(path)``) to replay decision for decision;
      mutually exclusive with ``fuzz_schedule``.
    * ``detect_hazards`` - install the happens-before hazard detector
      (:mod:`repro.hpx.hazards`); reports are available as
      :attr:`Runtime.hazards`.

    Execution backend selection:

    * ``backend`` - ``"sim"`` (the default: the discrete-event
      simulator in this module) or ``"parallel"`` (real OS processes,
      one per locality, shared-memory GAS and framed queue parcels; see
      :mod:`repro.hpx.parallel`).  The parallel backend is driven
      through :class:`repro.dashmm.evaluator.DashmmEvaluator`, which
      dispatches on this field; constructing a :class:`Runtime`
      directly with ``backend="parallel"`` raises.
    * ``seed`` - base seed for per-locality worker RNGs: locality
      ``r`` seeds ``random``/NumPy with ``seed + r``, identical under
      ``fork`` and ``spawn`` (seeding happens in the worker body, after
      the start method ran).
    * ``start_method`` - multiprocessing start method for the parallel
      backend.  The default ``"spawn"`` is deliberate: fresh
      interpreters cannot inherit the parent's BLAS thread pools, lazy
      operator caches or RNG state, which keeps worker behaviour
      reproducible and matches the documented RNG hygiene.
    """

    n_localities: int = 1
    workers_per_locality: int = 32
    network: NetworkModel = field(default_factory=NetworkModel)
    priorities: bool = False
    policy: "str | SchedulingPolicy | None" = None
    tracing: bool = True
    steal_seed: int = 12345
    measure_costs: bool = False
    measure_scale: float = 1.0
    progress_cost: float = 0.5e-6
    reliable: bool = False
    retry_timeout: float = 50e-6
    retry_backoff: float = 2.0
    retry_limit: int = 10
    ack_bytes: int = 32
    fuzz_schedule: int | None = None
    replay_schedule: "ScheduleTrace | str | None" = None
    detect_hazards: bool = False
    #: capture a RuntimeCheckpoint every this many seconds of virtual
    #: time (None disables periodic capture).  Checkpoints accumulate
    #: in :attr:`Runtime.checkpoints`; a run restored from any of them
    #: is bit-identical to an uninterrupted one.  Mutually exclusive
    #: with ``detect_hazards`` (vector clocks are not snapshotted).
    checkpoint_every: float | None = None
    backend: str = "sim"
    seed: int = 12345
    start_method: str = "spawn"

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "parallel"):
            raise ValueError(
                f"backend must be 'sim' or 'parallel', got {self.backend!r}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ValueError(f"unknown start method {self.start_method!r}")
        if self.checkpoint_every is not None:
            if self.checkpoint_every <= 0:
                raise ValueError("checkpoint_every must be positive")
            if self.detect_hazards:
                raise ValueError(
                    "checkpoint_every and detect_hazards are mutually "
                    "exclusive (hazard vector clocks are not snapshotted)"
                )

    @property
    def total_cores(self) -> int:
        return self.n_localities * self.workers_per_locality


class Runtime:
    """One simulated HPX-5 instance."""

    def __init__(self, config: RuntimeConfig | None = None):
        self.config = config or RuntimeConfig()
        if self.config.backend != "sim":
            raise ValueError(
                "Runtime is the simulator engine; backend="
                f"{self.config.backend!r} runs are dispatched by "
                "DashmmEvaluator to repro.hpx.parallel.ParallelRuntime"
            )
        self.gas = GlobalAddressSpace(self.config.n_localities)
        self.tracer = Tracer(enabled=self.config.tracing)
        # private copy of the network model: two runtimes built from one
        # RuntimeConfig must not share NIC clocks (or fault RNG state) -
        # resetting a live sibling's network mid-run corrupted both
        self.network = copy.deepcopy(self.config.network)
        self.network.reset()
        self.scheduler = Scheduler(
            n_localities=self.config.n_localities,
            workers_per_locality=self.config.workers_per_locality,
            network=self.network,
            tracer=self.tracer,
            priorities=self.config.priorities,
            policy=self.config.policy,
            steal_seed=self.config.steal_seed,
            measure_costs=self.config.measure_costs,
            measure_scale=self.config.measure_scale,
        )
        self.scheduler.deliver_parcel = self._deliver
        if self.config.reliable:
            self.scheduler.transport = ReliableTransport(
                self.scheduler,
                timeout=self.config.retry_timeout,
                backoff=self.config.retry_backoff,
                retry_limit=self.config.retry_limit,
                ack_bytes=self.config.ack_bytes,
            )
            self.scheduler.lco_dedup = True
        if self.config.replay_schedule is not None:
            if self.config.fuzz_schedule is not None:
                raise ValueError(
                    "fuzz_schedule and replay_schedule are mutually exclusive"
                )
            trace = self.config.replay_schedule
            if not isinstance(trace, ScheduleTrace):
                trace = ScheduleTrace.load(trace)
            self.scheduler.schedule_driver = ScheduleReplayer(trace)
        elif self.config.fuzz_schedule is not None:
            self.scheduler.schedule_driver = ScheduleFuzzer(
                self.config.fuzz_schedule
            )
        self.hazard_detector: HazardDetector | None = None
        if self.config.detect_hazards:
            self.hazard_detector = HazardDetector()
            self.hazard_detector.scheduler = self.scheduler
            self.scheduler.hazards = self.hazard_detector
            self.gas.monitor = self.hazard_detector
        self._actions: dict[str, Callable] = {}
        #: objects with per-run mutable state outside the GAS (e.g. the
        #: DASHMM registrar) register here; each contributes an opaque
        #: blob to every checkpoint via checkpoint_state()/restore_state()
        self.checkpoint_participants: list = []
        #: checkpoints captured so far (periodic and abort), oldest first
        self.checkpoints: list[RuntimeCheckpoint] = []

    # -- actions & parcels -------------------------------------------------------
    def register_action(self, name: str, fn: Callable) -> None:
        """Register an action callable ``fn(ctx, target, *args)``."""
        if name in self._actions:
            raise ValueError(f"action {name!r} already registered")
        self._actions[name] = fn

    def _deliver(self, parcel: Parcel, t: float) -> None:
        fn = self._actions.get(parcel.action)
        if fn is None:
            raise KeyError(f"unregistered action {parcel.action!r}")
        remote = getattr(parcel, "origin", None) not in (None, parcel.target_locality)
        progress = self.config.progress_cost if remote else 0.0

        def body(ctx, *args, **kwargs):
            if progress > 0:
                ctx.charge("_progress", progress)
            fn(ctx, parcel.target, *args, **kwargs)

        task = Task(
            fn=lambda ctx: body(ctx, *parcel.args, **parcel.kwargs),
            op_class=parcel.op_class,
            priority=parcel.priority,
        )
        hz = self.scheduler.hazards
        if hz is not None and parcel.hb is not None:
            # parcel send happens-before the thread it spawns; each
            # delivered copy (faulty duplicates included) is its own
            # event with the same cause
            task.hb = hz.derive((parcel.hb,), label=f"parcel:{parcel.action}", t=t)
        self.scheduler.enqueue(task, parcel.target_locality, t)

    # -- asynchronous global memory access ------------------------------------------
    def memget(self, ctx, addr, size_bytes: int = 64):
        """Asynchronously fetch the object at a global address.

        Returns a :class:`repro.hpx.lco.Future` on the *calling*
        locality that will hold the value; the round trip rides on two
        parcels, so remote gets pay network latency both ways (Section
        III's memput/memget API).
        """
        from repro.hpx.lco import Future

        fut = Future(self, ctx.locality)
        self._ensure_mem_actions()
        ctx.send_parcel(
            Parcel(
                action="_memget",
                target=addr,
                args=(fut.addr, size_bytes),
                size_bytes=64,
                op_class="_memget",
            )
        )
        return fut

    def memput(self, ctx, addr, value, size_bytes: int = 64) -> None:
        """Asynchronously replace the object at a global address."""
        self._ensure_mem_actions()
        ctx.send_parcel(
            Parcel(
                action="_memput",
                target=addr,
                args=(value,),
                size_bytes=size_bytes,
                op_class="_memput",
            )
        )

    def _ensure_mem_actions(self) -> None:
        if "_memget" in self._actions:
            return

        def do_get(ctx, target, fut_addr, size_bytes):
            value = self.gas.translate(target, ctx.locality)
            fut = self.gas.translate(fut_addr, fut_addr.locality) if (
                fut_addr.locality == ctx.locality
            ) else None
            if fut is not None:
                ctx.lco_set(fut, value)
            else:
                # reply parcel carrying the data home
                ctx.send_parcel(
                    Parcel(
                        action="_memget_reply",
                        target=fut_addr,
                        args=(value,),
                        size_bytes=size_bytes,
                        op_class="_memget",
                    )
                )

        def do_reply(ctx, target, value):
            fut = self.gas.translate(target, ctx.locality)
            ctx.lco_set(fut, value)

        def do_put(ctx, target, value):
            self.gas.put_local(target, value, ctx.locality)

        self.register_action("_memget", do_get)
        self.register_action("_memget_reply", do_reply)
        self.register_action("_memput", do_put)

    # -- startup work --------------------------------------------------------------
    def enqueue_task(self, task: Task, locality: int) -> None:
        """Enqueue an initial task (before or between runs)."""
        self.scheduler.enqueue(task, locality, self.scheduler.now)

    def run(self, until: float | None = None) -> float:
        """Drive the simulation to quiescence; returns elapsed virtual time.

        With ``checkpoint_every`` set, the event loop pauses at each
        virtual-clock interval boundary and captures a
        :class:`~repro.hpx.checkpoint.RuntimeCheckpoint` (bounded runs
        resume bit-identically, so the pauses are invisible to the
        schedule).  A structured scheduler abort - e.g. transport retry
        exhaustion against an unreachable destination - quiesces first
        and attaches an abort checkpoint to the exception as
        ``exc.checkpoint`` before it propagates.
        """
        sched = self.scheduler
        every = self.config.checkpoint_every
        try:
            if every is not None:
                while True:
                    bound = sched.now + every
                    if until is not None and bound >= until:
                        t = sched.run(until=until)
                        break
                    t = sched.run(until=bound)
                    if not sched._heap:
                        break
                    self.checkpoint()
            else:
                t = sched.run(until=until)
        except Exception as exc:
            if sched.aborted is exc:
                # structured abort: the loop quiesced before raising,
                # so the state is checkpointable; hand the caller a
                # restore point along with the error
                sched.aborted = None
                exc.checkpoint = self.checkpoint(label="abort")
            raise
        if self.hazard_detector is not None:
            # post-run code (result gathers, test assertions) is
            # ordered after every task - no false races against setup
            self.hazard_detector.quiesce(t)
        return t

    # -- checkpoint/restore ----------------------------------------------------------
    def checkpoint(self, label: str = "periodic") -> RuntimeCheckpoint:
        """Capture a restore point of the current quiescent state.

        Only meaningful between events - i.e. outside :meth:`run`, at a
        ``checkpoint_every`` boundary, or from the structured-abort
        path; never call it from inside a task body.
        """
        if self.hazard_detector is not None:
            raise ValueError(
                "checkpointing is not supported with detect_hazards "
                "(vector-clock state is not snapshotted)"
            )
        cp = RuntimeCheckpoint.capture(self, label=label)
        self.checkpoints.append(cp)
        return cp

    def restore(self, checkpoint: RuntimeCheckpoint) -> float:
        """Rewind this runtime to ``checkpoint``; returns its virtual time.

        The checkpoint must have been captured from this runtime (state
        is restored in place into the live object graph).  After
        restore, :meth:`run` resumes mid-DAG and the completed run is
        bit-identical - potentials and virtual clock - to one that was
        never interrupted.
        """
        checkpoint.restore(self)
        # checkpoints taken after the restore point describe a future
        # that has been rewound away; drop them so a re-run's periodic
        # captures do not interleave with stale ones
        self.checkpoints = [
            cp for cp in self.checkpoints if cp.time <= checkpoint.time
        ]
        return self.scheduler.now

    # -- introspection ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.scheduler.now

    @property
    def schedule_trace(self) -> "ScheduleTrace | None":
        """The schedule decision trace (fuzzed or replayed runs only)."""
        drv = self.scheduler.schedule_driver
        return drv.trace if drv is not None else None

    @property
    def hazards(self) -> list:
        """Hazard reports collected so far (empty without the detector)."""
        det = self.hazard_detector
        return det.reports if det is not None else []

    def stats(self) -> dict:
        s = self.scheduler
        out = {
            "time": s.now,
            "tasks_run": s.tasks_run,
            "steals": s.steals,
            "parcels_sent": s.parcels_sent,
            "remote_bytes": s.remote_bytes,
            "cores": self.config.total_cores,
            "lco_dups_suppressed": s.lco_dups_suppressed,
            "policy": s.policy.name,
        }
        transport = s.transport.stats()
        if transport:
            out["transport"] = transport
        faults = self.network.fault_stats()
        if faults:
            out["network_faults"] = faults
        if self.hazard_detector is not None:
            out["hazards"] = self.hazard_detector.counts()
            out["hazard_reports"] = len(self.hazard_detector.reports)
        if s.schedule_driver is not None:
            out["schedule_decisions"] = len(s.schedule_driver.trace)
        if self.checkpoints:
            out["checkpoints"] = len(self.checkpoints)
        return out
