"""Happens-before hazard detection for the simulated HPX-5 runtime.

The paper's evaluation rests on schedule independence: randomized work
stealing, parcel coalescing and LCO dataflow may reorder work
arbitrarily, yet the result must not change.  A single execution can
certify that property for *all* schedules only if every pair of
conflicting operations is ordered by actual synchronization - the
happens-before (HB) relation - rather than by the accident of this
run's timing.  This module builds that relation online and flags the
three ways DASHMM-style programs break it:

* **set-after-trigger** - a *fresh* contribution (not a transport
  retransmission) arrives at an LCO that already fired.  Under the
  reliable transport a tolerant LCO silently drops it (a lost update);
  without dedup it raises ``LCOError``.  Either way it is a logic bug:
  the LCO's input count and the DAG disagree.
* **unordered non-commutative folds** - two contributions to one LCO
  are concurrent (neither happens-before the other) while the LCO's
  fold is declared non-commutative (``fold_commutative = False``): the
  folded value is schedule-dependent.
* **GAS races** - two writes, or a write and a read, of the same
  global address with no HB path between them (asynchronous
  ``memput``/``memget`` with no LCO synchronization in between).

Happens-before edges tracked
----------------------------
``spawn(parent task -> child task)``, ``LCO set -> LCO trigger ->
continuation task``, ``parcel send -> delivery task`` (shared by every
retransmitted copy), and ``bootstrap -> every root task`` (setup code
runs before the scheduler).  Deliberately *not* edges: same-worker
execution order and same-timestamp coincidences - those hold in this
schedule only, and using them would hide hazards the fuzzer could
expose in another schedule.

Implementation: Fidge/Mattern vector clocks over a greedy chain
decomposition.  Each task execution / LCO trigger is an event placed
on a chain (an event extends the chain of its first still-tip cause,
else starts a fresh chain), with a clock mapping ``chain -> position``.
``e1 happens-before e2`` is then the O(1) test
``e2.clock[e1.chain] >= e1.pos``.  Chain count tracks the DAG's width,
which keeps clocks small on dataflow-shaped programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: stop appending reports for one subject after this many (a single
#: systematic bug would otherwise bury the summary in repeats)
MAX_REPORTS_PER_SUBJECT = 10


@dataclass(frozen=True)
class HazardReport:
    """One detected concurrency hazard, with enough context to act on.

    ``kind`` is one of ``set-after-trigger``,
    ``unordered-noncommutative-fold``, ``gas-write-race``,
    ``gas-read-write-race``.  ``subject`` names the object (LCO class +
    GAS address, or bare GAS address); ``events`` the labels of the
    involved HB events; ``detail`` a human-readable explanation.
    """

    kind: str
    subject: str
    t: float
    detail: str
    events: tuple[str, ...] = ()

    def __str__(self) -> str:  # compact one-liner for logs/assertions
        ev = " vs ".join(self.events) if self.events else "-"
        return f"[{self.kind}] {self.subject} @t={self.t:.3e}: {self.detail} ({ev})"


class _HbEvent:
    """One node of the happens-before DAG (a task run or an LCO trigger)."""

    __slots__ = ("chain", "pos", "clock", "label", "t")

    def __init__(self, chain: int, pos: int, clock: dict, label: str, t: float):
        self.chain = chain
        self.pos = pos
        self.clock = clock  # chain -> highest position included
        self.label = label
        self.t = t

    def __repr__(self) -> str:
        return f"hb({self.label}@{self.chain}:{self.pos})"


def happens_before(e1: _HbEvent, e2: _HbEvent) -> bool:
    """True iff ``e1`` happens-before (or is) ``e2``."""
    return e2.clock.get(e1.chain, -1) >= e1.pos


def concurrent(e1: _HbEvent, e2: _HbEvent) -> bool:
    """True iff neither event happens-before the other."""
    return not happens_before(e1, e2) and not happens_before(e2, e1)


class HazardDetector:
    """Online vector-clock tracker + hazard reporter for one runtime.

    Installed by ``RuntimeConfig(detect_hazards=True)`` as
    ``scheduler.hazards`` and as the GAS ``monitor``.  All hooks are
    no-ops in terms of runtime semantics - the detector observes, it
    never alters the schedule, the virtual clock or any value.
    """

    def __init__(self):
        #: set at wiring time; only used to timestamp GAS reports
        self.scheduler = None
        self._next_chain = 1
        self._tips: dict[int, int] = {0: 0}
        #: everything done before (and after) the scheduler loop is
        #: ordered against all tasks through the bootstrap event
        self.bootstrap = _HbEvent(0, 0, {0: 0}, "bootstrap", 0.0)
        #: HB event of the task currently executing (or releasing its
        #: effects); the single-threaded simulator makes this exact
        self.current: _HbEvent | None = None
        self.reports: list[HazardReport] = []
        #: transport-level duplicate deliveries observed (not hazards -
        #: retransmissions are the reliable protocol working as designed)
        self.transport_dups = 0
        #: address -> (concurrent-frontier writes, reads since them)
        self._gas: dict[Any, tuple[list, list]] = {}
        self._subject_counts: dict[str, int] = {}

    # -- event construction -------------------------------------------------------
    def derive(self, causes: tuple, label: str, t: float) -> _HbEvent:
        """New event caused by ``causes`` (greedy chain extension)."""
        clock: dict[int, int] = {}
        for c in causes:
            cc = c.clock
            if len(cc) > len(clock):
                clock, cc = dict(cc), clock  # merge smaller into larger
            for k, v in cc.items():
                if clock.get(k, -1) < v:
                    clock[k] = v
        chain = -1
        for c in causes:
            if self._tips.get(c.chain) == c.pos:
                chain = c.chain
                pos = c.pos + 1
                break
        if chain < 0:
            chain = self._next_chain
            self._next_chain += 1
            pos = 0
        self._tips[chain] = pos
        clock[chain] = pos
        return _HbEvent(chain, pos, clock, label, t)

    @property
    def n_chains(self) -> int:
        return self._next_chain

    # -- task lifecycle (called by the scheduler) -----------------------------------
    def begin_task(self, task, t: float) -> _HbEvent:
        ev = task.hb
        if ev is None:
            ev = task.hb = self.derive(
                (self.bootstrap,), label=f"root:{task.op_class}", t=t
            )
        self.current = ev
        return ev

    def end_task(self) -> None:
        self.current = None

    def quiesce(self, t: float) -> None:
        """Join every chain: post-run code is ordered after all tasks."""
        clock = {chain: tip for chain, tip in self._tips.items()}
        chain = self._next_chain
        self._next_chain += 1
        pos = 0
        self._tips[chain] = pos
        clock[chain] = pos
        self.bootstrap = _HbEvent(chain, pos, clock, "quiescence", t)

    def _effective(self) -> _HbEvent:
        return self.current if self.current is not None else self.bootstrap

    # -- reporting ------------------------------------------------------------------
    def _report(self, kind: str, subject: str, t: float, detail: str, events) -> None:
        n = self._subject_counts.get(subject, 0)
        self._subject_counts[subject] = n + 1
        if n < MAX_REPORTS_PER_SUBJECT:
            self.reports.append(
                HazardReport(
                    kind=kind,
                    subject=subject,
                    t=t,
                    detail=detail,
                    events=tuple(e.label for e in events),
                )
            )

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.reports:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    # -- LCO hooks (called from repro.hpx.lco) ----------------------------------------
    def _lco_subject(self, lco) -> str:
        # LCOs bound to a DAG-IR node (repro.dag.schema) self-describe:
        # reports then name the node kind/tree/box instead of a bare
        # address.  Detection and per-subject capping are unchanged.
        subject = getattr(lco, "hazard_subject", None)
        if subject is not None:
            return subject
        return f"{type(lco).__name__}@{lco.addr!r}"

    def on_lco_set(self, lco, t: float, op_class=None) -> None:
        """A fresh contribution folded into a not-yet-triggered LCO."""
        sets = getattr(lco, "_hb_sets", None)
        if sets is None:
            sets = lco._hb_sets = []
        sets.append((self._effective(), op_class))

    def on_post_trigger_set(self, lco, t: float, op_class=None, key=None) -> None:
        """A fresh (non-duplicate-key) contribution after the trigger."""
        ev = self._effective()
        trig = getattr(lco, "_hb_trigger", None)
        self._report(
            "set-after-trigger",
            self._lco_subject(lco),
            t,
            f"fresh contribution (op={op_class} key={key!r}) arrived after "
            "the LCO fired; its value is lost or fatal depending on the "
            "transport - the input count and the DAG disagree",
            [ev] + ([trig] if trig is not None else []),
        )

    def on_lco_trigger(self, lco, t: float) -> None:
        """The LCO fired: close out its fold-order check, mint the
        trigger event that orders every continuation after every set."""
        sets = getattr(lco, "_hb_sets", None) or []
        if not getattr(lco, "fold_commutative", True) and len(sets) > 1:
            reported = 0
            for i in range(len(sets)):
                for j in range(i + 1, len(sets)):
                    a, _ = sets[i]
                    b, _ = sets[j]
                    if concurrent(a, b):
                        self._report(
                            "unordered-noncommutative-fold",
                            self._lco_subject(lco),
                            t,
                            "two contributions are concurrent but the fold "
                            "is non-commutative: the folded value depends "
                            "on the schedule",
                            [a, b],
                        )
                        reported += 1
                if reported >= MAX_REPORTS_PER_SUBJECT:
                    break
        causes = tuple(e for e, _ in sets) or (self._effective(),)
        lco._hb_trigger = self.derive(
            causes, label=f"trigger:{type(lco).__name__}", t=t
        )
        lco._hb_sets = None  # sets are summarized by the trigger clock

    def continuation_event(self, lco, op_class: str, t: float) -> _HbEvent:
        """Event for a continuation task of a triggered LCO."""
        trig = getattr(lco, "_hb_trigger", None)
        causes = [trig] if trig is not None else []
        # registration after the trigger is also caused by the registrar
        if self.current is not None:
            causes.append(self.current)
        if not causes:
            causes = [self.bootstrap]
        return self.derive(tuple(causes), label=f"cont:{op_class}", t=t)

    # -- transport hook ---------------------------------------------------------------
    def note_transport_dup(self, parcel) -> None:
        """A retransmitted copy was suppressed by the reliable transport.

        Counted, never reported: exactly-once delivery absorbing a
        duplicate is the protocol working, not an application hazard.
        """
        self.transport_dups += 1

    # -- GAS monitor (called from repro.hpx.gas) ----------------------------------------
    def _now(self) -> float:
        return self.scheduler.now if self.scheduler is not None else 0.0

    def on_gas_write(self, addr, t: float | None = None) -> None:
        if t is None:
            t = self._now()
        e = self._effective()
        entry = self._gas.get(addr)
        if entry is None:
            self._gas[addr] = ([e], [])
            return
        writes, reads = entry
        subject = f"{addr!r}"
        for w in writes:
            if concurrent(w, e):
                self._report(
                    "gas-write-race",
                    subject,
                    t,
                    "two unsynchronized writes to one global address: "
                    "the surviving value depends on the schedule",
                    [w, e],
                )
        for r in reads:
            if concurrent(r, e):
                self._report(
                    "gas-read-write-race",
                    subject,
                    t,
                    "a write races an unsynchronized read of the same "
                    "global address",
                    [r, e],
                )
        # keep only the concurrent frontier: accesses ordered before
        # this write can never race anything that races this write
        writes[:] = [w for w in writes if not happens_before(w, e)] + [e]
        reads[:] = [r for r in reads if not happens_before(r, e)]

    def on_gas_read(self, addr, t: float | None = None) -> None:
        if t is None:
            t = self._now()
        e = self._effective()
        entry = self._gas.get(addr)
        if entry is None:
            self._gas[addr] = ([], [e])
            return
        writes, reads = entry
        for w in writes:
            if concurrent(w, e):
                self._report(
                    "gas-read-write-race",
                    f"{addr!r}",
                    t,
                    "a read races an unsynchronized write of the same "
                    "global address",
                    [w, e],
                )
        reads[:] = [r for r in reads if not happens_before(r, e)] + [e]
