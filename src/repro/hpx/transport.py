"""Parcel transports: fire-and-forget vs. reliable delivery.

HPX-5's parcel layer (over Photon) presents exactly-once delivery to
the application; the DAG execution of the paper leans on that so hard
that a single lost or duplicated ``lco_set`` either hangs or corrupts
an evaluation.  This module separates the *routing* of remote parcels
from the scheduler so the delivery guarantee becomes a pluggable
policy:

* :class:`DirectTransport` - the seed behaviour: every copy the
  network model produces is delivered, nothing is retried.  Over a
  :class:`~repro.hpx.network.FaultyNetwork` the application sees drops
  and duplicates raw (the ablation / failure-demonstration mode).
* :class:`ReliableTransport` - a sequence-numbered, acknowledged,
  retry-with-backoff protocol run entirely as discrete events on the
  virtual clock: the sender stamps each remote parcel with a
  ``(src, seq)`` id and arms a timeout; the receiver suppresses
  duplicate ids and acks every copy (acks ride the same faulty
  network, charging the receiver's NIC); unacked parcels are
  retransmitted with exponential backoff up to a retry budget.  A
  budget exhaustion that overlaps a known
  :class:`~repro.hpx.network.FaultyNetwork` outage window *suspends*
  the parcel and resumes it once the window lifts; only a genuinely
  unreachable destination raises a structured :class:`TransportError`,
  and it does so through :meth:`~repro.hpx.scheduler.Scheduler.abort`
  so the error surfaces between events, at a quiescent,
  checkpointable point (see :mod:`repro.hpx.checkpoint`).

The reliable protocol makes delivery effectively exactly-once, so an
evaluation over a faulty network produces bit-identical results to the
fault-free run - only the virtual clock degrades (retries, backoff,
ack traffic).

Interplay with the concurrency tooling (:mod:`repro.hpx.hazards`,
schedule fuzzing): every transport timer, arrival and ack rides the
scheduler's event heap, so fuzzed tie-breaking reorders them at equal
virtual timestamps like any other event - retry/ack races are part of
the fuzzed schedule space.  A retransmitted parcel carries the
``hb`` stamp of its original send, so the delivered thread's causal
history is identical no matter which copy got through; duplicate
copies suppressed by the receiver are counted with the hazard detector
(:meth:`~repro.hpx.hazards.HazardDetector.note_transport_dup`) but
never reported - exactly-once delivery absorbing a duplicate is the
protocol working, not an application hazard.
"""

from __future__ import annotations

from typing import Any


class TransportError(RuntimeError):
    """A parcel exhausted its retry budget (destination unreachable).

    ``attempts`` counts *transmissions* (the initial send plus every
    retransmission); ``retries`` counts retransmissions only, matching
    the transport's ``retries`` counter - so ``attempts == retries + 1``
    always holds and the two are no longer conflated.
    """

    def __init__(
        self,
        message: str,
        *,
        parcel=None,
        attempts: int | None = None,
        retries: int | None = None,
    ):
        self.parcel = parcel
        self.attempts = attempts
        if retries is None and attempts is not None:
            retries = attempts - 1
        self.retries = retries
        detail = ""
        if parcel is not None:
            detail = (
                f" [action={parcel.action!r} target={parcel.target!r}"
                f" seq={parcel.seq!r} attempts={attempts} retries={retries}]"
            )
        super().__init__(message + detail)


class Framing:
    """Sequence stamping, pending-until-ack and receiver dedup.

    The exactly-once bookkeeping shared by every framed channel: the
    simulated :class:`ReliableTransport` (retries over a lossy virtual
    network) and the real-parallel queue channel
    (:mod:`repro.hpx.parallel`), where OS queues are lossless but the
    same pending/ack ledger provides the quiescence signal ("all my
    frames were processed") and guards against duplicates.  One
    instance serves both directions of one endpoint: it stamps and
    tracks outgoing frames and dedups incoming ones ((src, seq) ids
    never collide across endpoints).
    """

    __slots__ = ("_seq", "_pending", "_seen", "acks_sent", "dups_suppressed", "stale_acks")

    def __init__(self):
        # plain int (not itertools.count) so checkpoints can capture
        # and rewind the stamp stream; see repro.hpx.checkpoint
        self._seq = 0
        self._pending: dict[Any, Any] = {}
        self._seen: set[Any] = set()
        self.acks_sent = 0
        self.dups_suppressed = 0
        self.stale_acks = 0

    # -- sender side -------------------------------------------------------------
    def stamp(self, src) -> tuple:
        """A fresh (src, seq) frame id."""
        seq = self._seq
        self._seq = seq + 1
        return (src, seq)

    def track(self, seq, state) -> None:
        """Remember sender-side state until the frame is acked."""
        self._pending[seq] = state

    def is_pending(self, seq) -> bool:
        return seq in self._pending

    def ack(self, seq):
        """Process an incoming ack; returns the tracked state (None if
        stale - a duplicate ack or the ack of a retransmission)."""
        state = self._pending.pop(seq, None)
        if state is None:
            self.stale_acks += 1
        return state

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # -- receiver side -----------------------------------------------------------
    def receive(self, seq) -> bool:
        """Dedup one arriving frame; True when it is fresh."""
        if seq in self._seen:
            self.dups_suppressed += 1
            return False
        self._seen.add(seq)
        return True

    def stats(self) -> dict:
        return {
            "acks_sent": self.acks_sent,
            "dups_suppressed": self.dups_suppressed,
            "stale_acks": self.stale_acks,
            "in_flight": len(self._pending),
        }


class _Event:
    """A cancellable scheduled callback (retry timers, arrivals, acks)."""

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn):
        self.fn = fn
        self.cancelled = False


class DirectTransport:
    """Fire-and-forget routing: deliver whatever copies the network yields."""

    reliable = False

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def send(self, parcel, src: int, dst: int, t: float) -> None:
        sched = self.scheduler
        for ta in sched.network.delivery_times(src, dst, t, parcel.size_bytes):
            sched._push_event(ta, "parcel", parcel)

    def stats(self) -> dict:
        return {}


class _Pending:
    """Sender-side state of one unacknowledged parcel."""

    __slots__ = ("parcel", "src", "dst", "attempts", "timer", "last_send")

    def __init__(self, parcel, src: int, dst: int):
        self.parcel = parcel
        self.src = src
        self.dst = dst
        self.attempts = 0
        self.timer: _Event | None = None
        #: virtual time of the most recent transmission - used to decide
        #: whether a retry-budget exhaustion overlapped an outage window
        self.last_send = 0.0


class ReliableTransport:
    """Sequence numbers + receiver dedup + acks + bounded backoff retry."""

    reliable = True

    def __init__(
        self,
        scheduler,
        timeout: float = 50e-6,
        backoff: float = 2.0,
        retry_limit: int = 10,
        ack_bytes: int = 32,
    ):
        if timeout <= 0 or backoff < 1.0 or retry_limit < 0:
            raise ValueError("invalid reliable-transport configuration")
        self.scheduler = scheduler
        self.timeout = timeout
        self.backoff = backoff
        self.retry_limit = retry_limit
        self.ack_bytes = ack_bytes
        self.framing = Framing()
        self.retries = 0
        #: parcels parked across a FaultyNetwork outage window, keyed by
        #: frame id: a retry-budget exhaustion attributable to a known
        #: outage suspends the parcel until the window lifts instead of
        #: aborting the run (fail-safe fault handling)
        self._suspended: dict[Any, _Pending] = {}
        self.suspensions = 0
        self.resumes = 0

    # -- sender side -------------------------------------------------------------
    def send(self, parcel, src: int, dst: int, t: float) -> None:
        parcel.seq = self.framing.stamp(src)
        entry = _Pending(parcel, src, dst)
        self.framing.track(parcel.seq, entry)
        self._transmit(entry, t)

    def _transmit(self, entry: _Pending, t: float) -> None:
        sched = self.scheduler
        parcel = entry.parcel
        entry.last_send = t
        arrivals = sched.network.delivery_times(
            entry.src, entry.dst, t, parcel.size_bytes
        )
        for ta in arrivals:
            arrive = _Event(lambda ta, p=parcel: self._on_receive(p, ta))
            sched._push_event(ta, "call", arrive)
        timer = _Event(lambda tt, e=entry: self._on_timeout(e, tt))
        entry.timer = timer
        # the retry clock starts from the copy's scheduled arrival (which
        # includes NIC-serialization queueing - think of a congestion
        # estimate a real transport derives from its send completions),
        # not the send instant: a parcel stuck behind a deep NIC backlog
        # (e.g. the post-outage resume burst) is queued, not lost, and
        # must not burn its retry budget while it drains.  A dropped
        # send has no arrival; its timer runs from the send time.
        base = max(arrivals) if arrivals else t
        sched._push_event(base + self._timeout_for(entry), "call", timer)

    def _timeout_for(self, entry: _Pending) -> float:
        # base timeout plus the transfer time of the payload itself, so
        # big coalesced parcels are not declared lost mid-injection
        bandwidth = getattr(self.scheduler.network, "bandwidth", 0.0)
        transfer = entry.parcel.size_bytes / bandwidth if bandwidth else 0.0
        return (self.timeout + 2.0 * transfer) * (self.backoff**entry.attempts)

    def _on_timeout(self, entry: _Pending, t: float) -> None:
        if not self.framing.is_pending(entry.parcel.seq):
            return  # acked between timer creation and firing
        if entry.attempts >= self.retry_limit:
            resume_at = self._outage_resume_time(entry, t)
            if resume_at is not None:
                # the exhaustion is explained by a known outage window:
                # park the parcel and try again once the window lifts,
                # instead of losing the whole evaluation
                self._suspend(entry, resume_at)
                return
            # genuinely unreachable: park the parcel anyway - the abort
            # checkpoint then holds it in the suspended table with an
            # immediate resume event, so a restored run re-drives it
            # with a fresh budget once the environment is fixed - and
            # route the failure through the structured scheduler abort
            # so the run loop raises *between* events with every
            # heap/LCO/transport invariant intact
            self._suspend(entry, t)
            self.scheduler.abort(
                TransportError(
                    "parcel exhausted its retry budget",
                    parcel=entry.parcel,
                    attempts=entry.attempts + 1,
                    retries=entry.attempts,
                )
            )
            return
        entry.attempts += 1
        self.retries += 1
        self._transmit(entry, t)

    def _outage_resume_time(self, entry: _Pending, t: float) -> float | None:
        """When (if ever) the outage blocking ``entry`` lifts.

        Returns the virtual time to reattempt delivery, or None when no
        known outage window involving the endpoints overlaps the failed
        retry period ``[entry.last_send, t]`` - in which case the
        destination is treated as genuinely unreachable.
        """
        clear_fn = getattr(self.scheduler.network, "outage_clear", None)
        if clear_fn is None:
            return None
        clear = clear_fn((entry.src, entry.dst), entry.last_send, t)
        if clear is None:
            return None
        return max(clear, t)

    def _suspend(self, entry: _Pending, resume_at: float) -> None:
        self.suspensions += 1
        entry.timer = None
        self._suspended[entry.parcel.seq] = entry
        resume = _Event(lambda tt, e=entry: self._on_resume(e, tt))
        self.scheduler._push_event(resume_at, "call", resume)

    def _on_resume(self, entry: _Pending, t: float) -> None:
        self._suspended.pop(entry.parcel.seq, None)
        if not self.framing.is_pending(entry.parcel.seq):
            return  # a straggler copy got through while suspended
        self.resumes += 1
        # the outage explains every failed transmission so far: restart
        # the retry budget for the post-outage reattempts
        entry.attempts = 0
        self._transmit(entry, t)

    def _on_ack(self, seq, t: float) -> None:
        entry = self.framing.ack(seq)
        if entry is None:
            return  # duplicate ack, or ack of a retransmit (counted)
        if entry.timer is not None:
            entry.timer.cancelled = True

    # -- receiver side -----------------------------------------------------------
    def _on_receive(self, parcel, t: float) -> None:
        seq = parcel.seq
        fresh = self.framing.receive(seq)
        if not fresh:
            hz = getattr(self.scheduler, "hazards", None)
            if hz is not None:
                hz.note_transport_dup(parcel)
        # always (re-)ack: the sender may have missed the previous ack
        self._send_ack(parcel, t)
        if fresh:
            self.scheduler.deliver_parcel(parcel, t)

    def _send_ack(self, parcel, t: float) -> None:
        sched = self.scheduler
        self.framing.acks_sent += 1
        seq = parcel.seq
        for ta in sched.network.delivery_times(
            parcel.target_locality, parcel.origin, t, self.ack_bytes
        ):
            sched._push_event(ta, "call", _Event(lambda tt, s=seq: self._on_ack(s, tt)))

    # -- introspection -----------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return self.framing.in_flight

    @property
    def acks_sent(self) -> int:
        return self.framing.acks_sent

    @property
    def dups_suppressed(self) -> int:
        return self.framing.dups_suppressed

    @property
    def stale_acks(self) -> int:
        return self.framing.stale_acks

    @property
    def suspended(self) -> int:
        return len(self._suspended)

    def stats(self) -> dict:
        return {
            "reliable": True,
            "retries": self.retries,
            "suspensions": self.suspensions,
            "resumes": self.resumes,
            "suspended": len(self._suspended),
            **self.framing.stats(),
        }
