"""Local control objects (LCOs): event-driven dataflow synchronization.

An LCO is a lightweight, globally addressable synchronization object
that co-locates data and control (Section III): it has *input slots*, a
*predicate* that decides when it is triggered, and *continuations*
(dependent tasks) that run once it triggers.  HPX-5 ships futures and
reductions and permits user-defined classes; DASHMM's expansion LCO
(:mod:`repro.dashmm.registrar`) is such a user-defined class.

Semantics mirrored here:

* inputs arrive through :meth:`TaskContext.lco_set` (applied when the
  setting task completes) and are folded in by :meth:`_reduce`;
* after each input the :meth:`_predicate` is checked; on the first True
  the LCO triggers and all registered continuations are spawned as
  lightweight threads on the LCO's home locality;
* continuations registered *after* triggering run immediately - that is
  what lets DASHMM backfill out-edges concurrently with execution.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.hpx.scheduler import Task


class LCO:
    """Base LCO.  Subclasses override ``_reduce`` and ``_predicate``."""

    def __init__(self, runtime, locality: int):
        self.runtime = runtime
        self.locality = locality
        self.triggered = False
        self._continuations: list[Task] = []
        self.addr = runtime.gas.alloc(locality, self)

    # -- protocol for subclasses ------------------------------------------------
    def _reduce(self, value: Any) -> None:
        raise NotImplementedError

    def _predicate(self) -> bool:
        raise NotImplementedError

    # -- runtime-facing ---------------------------------------------------------
    def _apply_set(self, value: Any, t: float, scheduler) -> None:
        """Fold one input in at time ``t``; trigger if the predicate holds."""
        if self.triggered:
            raise RuntimeError("input arrived at an already-triggered LCO")
        self._reduce(value)
        if self._predicate():
            self.triggered = True
            for task in self._continuations:
                scheduler.enqueue(task, self.locality, t)
            self._continuations.clear()

    def register_continuation(self, task: Task) -> None:
        """Attach a dependent task; runs at trigger (or now if triggered)."""
        if self.triggered:
            sched = self.runtime.scheduler
            sched.enqueue(task, self.locality, sched.now)
        else:
            self._continuations.append(task)

    def on_trigger(self, fn: Callable, *args, op_class: str = "continuation", cost: float | None = 0.0, priority: int = 1) -> None:
        """Convenience: register ``fn(ctx, *args)`` as a continuation."""
        self.register_continuation(
            Task(fn=fn, args=args, op_class=op_class, cost=cost, priority=priority)
        )


class Future(LCO):
    """Single-assignment LCO: triggers on its first (only) input."""

    def __init__(self, runtime, locality: int):
        super().__init__(runtime, locality)
        self.value: Any = None
        self._set = False

    def _reduce(self, value: Any) -> None:
        self.value = value
        self._set = True

    def _predicate(self) -> bool:
        return self._set


class AndLCO(LCO):
    """Triggers after a fixed number of inputs (values are discarded)."""

    def __init__(self, runtime, locality: int, n_inputs: int):
        if n_inputs < 1:
            raise ValueError("AndLCO needs at least one input")
        super().__init__(runtime, locality)
        self.remaining = n_inputs

    def _reduce(self, value: Any) -> None:
        self.remaining -= 1

    def _predicate(self) -> bool:
        return self.remaining == 0


class ReductionLCO(LCO):
    """Folds ``n_inputs`` values with ``op`` starting from ``init``."""

    def __init__(self, runtime, locality: int, n_inputs: int, op: Callable, init: Any):
        if n_inputs < 1:
            raise ValueError("ReductionLCO needs at least one input")
        super().__init__(runtime, locality)
        self.remaining = n_inputs
        self.op = op
        self.value = init

    def _reduce(self, value: Any) -> None:
        self.value = self.op(self.value, value)
        self.remaining -= 1

    def _predicate(self) -> bool:
        return self.remaining == 0
