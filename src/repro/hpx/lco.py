"""Local control objects (LCOs): event-driven dataflow synchronization.

An LCO is a lightweight, globally addressable synchronization object
that co-locates data and control (Section III): it has *input slots*, a
*predicate* that decides when it is triggered, and *continuations*
(dependent tasks) that run once it triggers.  HPX-5 ships futures and
reductions and permits user-defined classes; DASHMM's expansion LCO
(:mod:`repro.dashmm.registrar`) is such a user-defined class.

Semantics mirrored here:

* inputs arrive through :meth:`TaskContext.lco_set` (applied when the
  setting task completes) and are folded in by :meth:`_reduce`;
* after each input the :meth:`_predicate` is checked; on the first True
  the LCO triggers and all registered continuations are spawned as
  lightweight threads on the LCO's home locality;
* continuations registered *after* triggering run immediately - that is
  what lets DASHMM backfill out-edges concurrently with execution.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.hpx.scheduler import Task


class LCOError(RuntimeError):
    """Structured LCO failure: which LCO, where, and which contribution.

    Replaces the bare ``RuntimeError`` the duplicate-set path used to
    raise, so a fault-injection failure (duplicated parcel replaying an
    edge with the reliable transport off) is diagnosable: the exception
    carries the LCO class, its GAS address, the op class of the
    offending contribution and its dedup key.
    """

    def __init__(
        self,
        message: str,
        *,
        lco: "LCO | None" = None,
        op_class: str | None = None,
        key: Any = None,
    ):
        self.lco_class = type(lco).__name__ if lco is not None else None
        self.addr = lco.addr if lco is not None else None
        self.op_class = op_class
        self.key = key
        super().__init__(
            f"{message} [lco={self.lco_class} addr={self.addr}"
            f" op={op_class} key={key}]"
        )


class LCO:
    """Base LCO.  Subclasses override ``_reduce`` and ``_predicate``."""

    #: when the scheduler runs with LCO dedup on (reliable transport),
    #: a post-trigger set on a tolerant LCO is suppressed, not fatal -
    #: single-assignment futures are naturally idempotent
    tolerate_post_trigger = False

    #: declares whether folding two inputs in either order yields the
    #: same value.  The happens-before hazard detector
    #: (:mod:`repro.hpx.hazards`) flags concurrent contributions to an
    #: LCO whose fold is *not* commutative: their folded value would be
    #: schedule-dependent.  Subclasses with order-sensitive reductions
    #: must set this False (or take it as a constructor parameter, as
    #: :class:`ReductionLCO` does).
    fold_commutative = True

    def __init__(self, runtime, locality: int):
        self.runtime = runtime
        self.locality = locality
        self.triggered = False
        self._continuations: list[Task] = []
        self._seen_keys: set | None = None
        self.addr = runtime.gas.alloc(locality, self)

    # -- protocol for subclasses ------------------------------------------------
    def _reduce(self, value: Any) -> None:
        raise NotImplementedError

    def _predicate(self) -> bool:
        raise NotImplementedError

    def _fold(self, value: Any, key: Any) -> None:
        """Accept one input (default: immediate ``_reduce``)."""
        self._reduce(value)

    def _finalize(self) -> None:
        """Hook run once, just before the LCO triggers."""

    # -- runtime-facing ---------------------------------------------------------
    def _apply_set(
        self, value: Any, t: float, scheduler, key: Any = None, op_class=None
    ) -> None:
        """Fold one input in at time ``t``; trigger if the predicate holds.

        ``key`` identifies the logical contribution for dedup: a
        repeated key is counted and suppressed when ``scheduler.lco_dedup``
        is on (reliable transport - a retransmitted contribution must
        fold exactly once) and raises a structured :class:`LCOError`
        otherwise.
        """
        hz = scheduler.hazards
        if key is not None:
            seen = self._seen_keys
            if seen is None:
                seen = self._seen_keys = set()
            if key in seen:
                # a repeated dedup key is a transport-level duplicate
                # (retransmission), not a logic bug - never a hazard
                if scheduler.lco_dedup:
                    scheduler.lco_dups_suppressed += 1
                    return
                raise LCOError(
                    "duplicate contribution at LCO",
                    lco=self,
                    op_class=op_class,
                    key=key,
                )
            seen.add(key)
        if self.triggered:
            if hz is not None:
                # a *fresh* contribution after the trigger is a logic
                # bug whether or not the runtime tolerates it below
                hz.on_post_trigger_set(self, t, op_class=op_class, key=key)
            if scheduler.lco_dedup and self.tolerate_post_trigger:
                scheduler.lco_dups_suppressed += 1
                return
            raise LCOError(
                "input arrived at an already-triggered LCO",
                lco=self,
                op_class=op_class,
                key=key,
            )
        if hz is not None:
            hz.on_lco_set(self, t, op_class=op_class)
        self._fold(value, key)
        if self._predicate():
            self._finalize()
            self.triggered = True
            if hz is not None:
                hz.on_lco_trigger(self, t)
                for task in self._continuations:
                    if task.hb is None:
                        task.hb = hz.continuation_event(self, task.op_class, t)
            for task in self._continuations:
                scheduler.enqueue(task, self.locality, t)
            self._continuations.clear()

    def register_continuation(self, task: Task) -> None:
        """Attach a dependent task; runs at trigger (or now if triggered)."""
        if self.triggered:
            sched = self.runtime.scheduler
            hz = sched.hazards
            if hz is not None and task.hb is None:
                task.hb = hz.continuation_event(self, task.op_class, sched.now)
            sched.enqueue(task, self.locality, sched.now)
        else:
            self._continuations.append(task)

    def on_trigger(self, fn: Callable, *args, op_class: str = "continuation", cost: float | None = 0.0, priority: int = 1) -> None:
        """Convenience: register ``fn(ctx, *args)`` as a continuation."""
        self.register_continuation(
            Task(fn=fn, args=args, op_class=op_class, cost=cost, priority=priority)
        )

    # -- checkpoint/restore protocol (repro.hpx.checkpoint) ----------------------
    #: instance attributes excluded from the generic snapshot: fixed
    #: identity/wiring that never changes over an LCO's lifetime
    _checkpoint_skip = ("runtime", "addr", "registrar")

    def checkpoint_state(self) -> dict:
        """Snapshot of this LCO's mutable state (trigger flag, fold
        ledgers, buffered continuations).  Container and ndarray values
        are copied; object references (tasks, tree nodes) are shared -
        see :mod:`repro.hpx.checkpoint` on in-place restore.  Works for
        any subclass without ``__slots__``; subclasses with exotic
        state can override the pair."""
        from repro.hpx.checkpoint import copy_state

        skip = self._checkpoint_skip
        return {
            k: copy_state(v) for k, v in self.__dict__.items() if k not in skip
        }

    def restore_state(self, state: dict) -> None:
        """Write a :meth:`checkpoint_state` snapshot back in place (the
        snapshot is re-copied, so one checkpoint restores any number of
        times)."""
        from repro.hpx.checkpoint import copy_state

        for k, v in state.items():
            self.__dict__[k] = copy_state(v)


class Future(LCO):
    """Single-assignment LCO: triggers on its first (only) input.

    Duplicate-set tolerant under a reliable transport: a retransmitted
    reply re-setting an already-triggered future is suppressed (the
    first value stands) instead of crashing the run.
    """

    tolerate_post_trigger = True

    def __init__(self, runtime, locality: int):
        super().__init__(runtime, locality)
        self.value: Any = None
        self._set = False

    def _reduce(self, value: Any) -> None:
        self.value = value
        self._set = True

    def _predicate(self) -> bool:
        return self._set


class AndLCO(LCO):
    """Triggers after a fixed number of inputs (values are discarded)."""

    def __init__(self, runtime, locality: int, n_inputs: int):
        if n_inputs < 1:
            raise ValueError("AndLCO needs at least one input")
        super().__init__(runtime, locality)
        self.remaining = n_inputs

    def _reduce(self, value: Any) -> None:
        self.remaining -= 1

    def _predicate(self) -> bool:
        return self.remaining == 0


class ReductionLCO(LCO):
    """Folds ``n_inputs`` values with ``op`` starting from ``init``.

    ``commutative`` declares whether ``op`` is order-insensitive
    (addition, max, ...); pass ``False`` for order-sensitive folds
    (subtraction, concatenation, matrix products) so the hazard
    detector can flag concurrent contributions, whose fold order - and
    therefore the reduced value - would depend on the schedule.
    """

    def __init__(
        self,
        runtime,
        locality: int,
        n_inputs: int,
        op: Callable,
        init: Any,
        commutative: bool = True,
    ):
        if n_inputs < 1:
            raise ValueError("ReductionLCO needs at least one input")
        super().__init__(runtime, locality)
        self.remaining = n_inputs
        self.op = op
        self.value = init
        self.fold_commutative = commutative

    def _reduce(self, value: Any) -> None:
        self.value = self.op(self.value, value)
        self.remaining -= 1

    def _predicate(self) -> bool:
        return self.remaining == 0
