"""Task cost and message-size models calibrated from the paper.

Table II of the paper reports the average execution time of every DAG
edge class for the 128-core Laplace cube run; those numbers are the
default per-edge costs here.  Costs of point-dependent operations
(S->T, S->M, L->T, ...) scale with the participating point counts,
normalized so a box with the paper's average occupancy (about 14 points
for 30M points over 2^21 leaves) reproduces the Table II average.

The Yukawa kernel's operations are "generally heavier" (Section V.A);
``expansion_factor``/``direct_factor`` scale the expansion and direct
work accordingly.  The paper attributes Yukawa's better scaling to this
larger grain size, so these factors are exactly the knob the grain-size
experiments turn.

Message sizes follow Table I/II (multipole/local 880 B, one
exponential direction 912 B, 32 B per source point, 40 B per target
point) plus a per-edge descriptor overhead for the coalesced parcels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: paper Table II average execution times [s] (Laplace, 128 cores)
PAPER_EDGE_TIMES = {
    "S2T": 1.89e-6,
    "S2M": 10.9e-6,
    "M2M": 4.60e-6,
    "M2I": 29.6e-6,
    "I2I": 1.75e-6,
    "I2L": 38.4e-6,
    "L2L": 4.45e-6,
    "L2T": 13.5e-6,
}

#: average points per leaf in the paper's traced run (30M over 2^21 boxes)
PAPER_AVG_LEAF_POINTS = 30_000_000 / 2_097_152


@dataclass
class CostModel:
    """Virtual-time cost of one DAG edge operation.

    ``base`` holds per-edge costs for fixed-size operations and
    per-unit rates for point-dependent ones (derived from the paper's
    averages in ``__post_init__``).
    """

    #: multiplies expansion-related work (kernel grain size knob)
    expansion_factor: float = 1.0
    #: multiplies direct-interaction work
    direct_factor: float = 1.0
    #: dynamic-allocation cost per remote out-edge (Section V.B: the
    #: utilization deficit is "largely due to dynamic memory allocation
    #: and memory copies related to ... dynamic non-local DAG out edge
    #: handling").  Grain-INDEPENDENT: this is what makes heavier
    #: (Yukawa) tasks scale better.
    remote_edge_alloc: float = 0.5e-6
    #: memory-copy bandwidth for staging remote payloads [bytes/s]
    copy_bandwidth: float = 2.0e9
    base: dict = field(default_factory=dict)

    def __post_init__(self):
        t = PAPER_EDGE_TIMES
        a = PAPER_AVG_LEAF_POINTS
        defaults = {
            # fixed-size expansion translations: per edge
            "M2M": t["M2M"],
            "M2I": t["M2I"],
            "I2I": t["I2I"],
            "I2L": t["I2L"],
            "L2L": t["L2L"],
            "M2L": t["M2I"] / 6.0 * 1.3,  # basic-FMM dense translation
            # point-dependent: per source/target point or per pair
            "S2T_pair": t["S2T"] / (a * a),
            "S2M_pt": t["S2M"] / a,
            "L2T_pt": t["L2T"] / a,
            "M2T_pt": t["L2T"] / a,  # same evaluation structure
            "S2L_pt": t["S2M"] / a,  # same accumulation structure
        }
        for k, v in defaults.items():
            self.base.setdefault(k, v)

    @staticmethod
    def for_kernel(kernel_name: str) -> "CostModel":
        """Paper-flavoured model: Yukawa tasks are heavier than Laplace."""
        if kernel_name == "yukawa":
            return CostModel(expansion_factor=2.2, direct_factor=1.6)
        return CostModel()

    def edge_cost(self, op: str, n_src: int = 1, n_tgt: int = 1) -> float:
        """Cost of one edge operation of class ``op``."""
        f = self.expansion_factor
        if op == "S2T":
            return self.base["S2T_pair"] * n_src * n_tgt * self.direct_factor
        if op == "S2M":
            return self.base["S2M_pt"] * n_src * f
        if op == "L2T":
            return self.base["L2T_pt"] * n_tgt * f
        if op == "M2T":
            return self.base["M2T_pt"] * n_tgt * f
        if op == "S2L":
            return self.base["S2L_pt"] * n_src * f
        return self.base[op] * f

    def remote_handling_cost(self, n_edges: int, payload_bytes: int) -> float:
        """Sender-side cost of staging remote out-edges into a parcel.

        Covers the allocation and memory copies the paper identifies as
        the main utilization deficit; deliberately *not* scaled by the
        kernel grain factors.
        """
        return n_edges * self.remote_edge_alloc + payload_bytes / self.copy_bandwidth


@dataclass
class SizeModel:
    """Wire sizes of node payloads and coalesced-parcel contents [bytes]."""

    source_point: int = 32  # position + weight
    target_point: int = 40  # position + potential + index
    multipole: int = 880  # Table I (p = 9, m >= 0 storage)
    local: int = 880
    expo_direction: int = 912  # one direction of an intermediate expansion
    edge_descriptor: int = 16  # (target address, op) entry in a parcel
    parcel_header: int = 64

    def node_bytes(self, kind: str, n_points: int = 0, n_directions: int = 6) -> int:
        if kind == "S":
            return self.source_point * n_points
        if kind == "T":
            return self.target_point * n_points
        if kind == "M":
            return self.multipole
        if kind == "L":
            return self.local
        if kind in ("Is", "It"):
            return self.expo_direction * n_directions
        raise ValueError(f"unknown node kind {kind}")

    def payload_bytes(self, op: str, n_src_points: int = 0) -> int:
        """Bytes of expansion data shipped along one edge class."""
        if op in ("S2T", "S2L"):
            return self.source_point * n_src_points
        if op in ("S2M",):
            return self.source_point * n_src_points
        if op in ("M2M", "M2L", "M2T", "M2I"):
            return self.multipole
        if op == "I2I":
            return self.expo_direction
        if op == "I2L":
            return self.expo_direction * 6
        if op in ("L2L", "L2T"):
            return self.local
        raise ValueError(f"unknown edge op {op}")

    def parcel_bytes(self, data_bytes: int, n_edges: int) -> int:
        return self.parcel_header + data_bytes + self.edge_descriptor * n_edges
