"""Simulation support: task cost models and message-size models.

These calibrate the virtual clock of :mod:`repro.hpx` so that the
simulated executions reproduce the paper's task-grain and communication
profile (Table II per-operator times, Table I/II message sizes).
"""

from repro.sim.costmodel import CostModel, SizeModel

__all__ = ["CostModel", "SizeModel"]
