"""Exponential quadrature generation: accuracy and scale-variance."""

import numpy as np
import pytest
from scipy.special import j0

from repro.kernels.quadrature import RHO_MAX, Z_RANGE, build_quadrature


def _check_accuracy(kernel, quad, scale, n=400, seed=0):
    rng = np.random.default_rng(seed)
    z = rng.uniform(*Z_RANGE, n)
    rho = rng.uniform(0, RHO_MAX, n)
    approx = (
        quad.weights[None, :]
        * np.exp(-np.outer(z, quad.ts))
        * j0(np.outer(rho, quad.lams))
    ).sum(axis=1)
    exact = kernel.greens(np.sqrt(z**2 + rho**2) * scale) * scale
    return np.max(np.abs(approx - exact))


def test_laplace_accuracy(laplace):
    quad = build_quadrature(laplace, 0.5, eps=1e-4)
    assert _check_accuracy(laplace, quad, 0.5) < 5e-4


def test_yukawa_accuracy(yukawa):
    quad = build_quadrature(yukawa, 0.5, eps=1e-4)
    assert _check_accuracy(yukawa, quad, 0.5) < 5e-4


def test_laplace_scale_invariant(laplace):
    """Laplace rules are identical in box units at any physical scale."""
    q1 = build_quadrature(laplace, 0.5, eps=1e-4)
    q2 = build_quadrature(laplace, 4.0, eps=1e-4)
    assert np.allclose(q1.lams, q2.lams)
    assert np.allclose(q1.weights, q2.weights)


def test_yukawa_length_depends_on_scale(yukawa):
    """The scale-variant kernel's expansion length varies with depth
    (box size) - the paper's Section V.A observation."""
    shallow = build_quadrature(yukawa, 8.0, eps=1e-4)  # large kappa*h
    deep = build_quadrature(yukawa, 0.05, eps=1e-4)  # small kappa*h
    assert shallow.nterms != deep.nterms
    assert shallow.nterms < deep.nterms  # heavy damping needs fewer terms


def test_flat_layout_consistency(laplace):
    quad = build_quadrature(laplace, 0.5, eps=1e-3)
    assert quad.nterms == int(quad.node_counts.sum())
    assert len(quad.lam_f) == len(quad.t_f) == len(quad.w_f) == len(quad.cosa)
    # per-node flattened weights sum back to the node weight
    pos = 0
    for k, m in enumerate(quad.node_counts):
        assert np.allclose(quad.w_f[pos : pos + m].sum(), quad.weights[k])
        pos += m


def test_azimuthal_counts_even_and_bounded(laplace):
    quad = build_quadrature(laplace, 0.5, eps=1e-4)
    assert np.all(quad.node_counts % 2 == 0)
    assert np.all(quad.node_counts >= 4)
    assert np.all(quad.node_counts <= 256)


def test_tighter_eps_needs_more_nodes(laplace):
    loose = build_quadrature(laplace, 0.5, eps=1e-2)
    tight = build_quadrature(laplace, 0.5, eps=1e-5)
    assert tight.nnodes > loose.nnodes
    assert _check_accuracy(laplace, loose, 0.5) < 5e-2
    assert _check_accuracy(laplace, tight, 0.5) < 5e-5
