"""Discrete-event scheduler: virtual time, stealing, priorities, determinism."""

import numpy as np
import pytest

from repro.hpx.network import InfiniteNetwork, NetworkModel
from repro.hpx.scheduler import HIGH, LOW, ScheduleFuzzer, Scheduler, Task
from repro.hpx.tracing import Tracer


def make_sched(L=1, W=2, priorities=False, seed=1):
    return Scheduler(
        n_localities=L,
        workers_per_locality=W,
        network=NetworkModel(),
        tracer=Tracer(enabled=True),
        priorities=priorities,
        steal_seed=seed,
    )


def noop(cost):
    def body(ctx):
        ctx.charge("work", cost)

    return body


def test_single_worker_serializes():
    s = make_sched(W=1)
    for _ in range(5):
        s.enqueue(Task(fn=noop(1e-3), op_class="work"), 0, 0.0)
    t = s.run()
    assert t == pytest.approx(5e-3)


def test_two_workers_halve_makespan():
    s = make_sched(W=2)
    for _ in range(6):
        s.enqueue(Task(fn=noop(1e-3), op_class="work"), 0, 0.0)
    t = s.run()
    assert t == pytest.approx(3e-3)


def test_stealing_balances_one_hot_queue():
    """All tasks land on one worker's deque; the other must steal."""
    s = make_sched(W=2)
    for _ in range(10):
        s.deques[0][LOW].append(Task(fn=noop(1e-3), op_class="work"))
    t = s.run()
    assert t == pytest.approx(5e-3)
    assert s.steals > 0


def test_no_cross_locality_stealing():
    """Work on locality 0 cannot be stolen by locality 1's workers."""
    s = make_sched(L=2, W=1)
    for _ in range(4):
        s.enqueue(Task(fn=noop(1e-3), op_class="work"), 0, 0.0)
    t = s.run()
    assert t == pytest.approx(4e-3)  # serialized on locality 0's only worker


def test_priorities_order_execution():
    s = make_sched(W=1, priorities=True)
    order = []

    def tagged(tag):
        def body(ctx):
            ctx.charge("work", 1e-6)
            order.append(tag)

        return body

    s.enqueue(Task(fn=tagged("low1"), priority=LOW), 0, 0.0)
    s.enqueue(Task(fn=tagged("low2"), priority=LOW), 0, 0.0)
    s.enqueue(Task(fn=tagged("high"), priority=HIGH), 0, 0.0)
    s.run()
    assert order[0] == "high"


def test_priorities_ignored_when_disabled():
    s = make_sched(W=1, priorities=False)
    order = []

    def tagged(tag):
        def body(ctx):
            ctx.charge("work", 1e-6)
            order.append(tag)

        return body

    s.enqueue(Task(fn=tagged("a"), priority=LOW), 0, 0.0)
    s.enqueue(Task(fn=tagged("b"), priority=HIGH), 0, 0.0)
    s.run()
    # LIFO pop: last enqueued runs first, priority has no effect
    assert order == ["b", "a"]


def test_spawned_tasks_run():
    s = make_sched(W=2)
    done = []

    def parent(ctx):
        ctx.charge("work", 1e-6)
        ctx.spawn(Task(fn=lambda c: done.append(1), op_class="child", cost=1e-6))

    s.enqueue(Task(fn=parent, op_class="work"), 0, 0.0)
    s.run()
    assert done == [1]


def test_effects_release_at_completion_time():
    """A long task's spawn lands at its end, not its start."""
    s = make_sched(W=2)
    times = []

    def long_task(ctx):
        ctx.charge("work", 1e-2)
        ctx.spawn(Task(fn=lambda c: times.append(c.time), op_class="child", cost=0.0))

    s.enqueue(Task(fn=long_task), 0, 0.0)
    s.run()
    assert times[0] == pytest.approx(1e-2)


def test_task_static_cost_used_when_no_charges():
    s = make_sched(W=1)
    s.enqueue(Task(fn=lambda ctx: None, op_class="fixed", cost=2e-3), 0, 0.0)
    assert s.run() == pytest.approx(2e-3)


def test_trace_segments_recorded():
    s = make_sched(W=1)

    def multi(ctx):
        ctx.charge("a", 1e-3)
        ctx.charge("b", 2e-3)

    s.enqueue(Task(fn=multi), 0, 0.0)
    s.run()
    tr = s.tracer
    assert tr.classes == ["a", "b"]
    assert tr.busy_time("a") == pytest.approx(1e-3)
    assert tr.busy_time("b") == pytest.approx(2e-3)
    events = tr.events()
    # segments are contiguous within the task
    assert events[0].t_end == pytest.approx(events[1].t_start)


def test_negative_charge_rejected():
    s = make_sched(W=1)

    def bad(ctx):
        ctx.charge("x", -1.0)

    s.enqueue(Task(fn=bad), 0, 0.0)
    with pytest.raises(ValueError):
        s.run()


def test_determinism_across_runs():
    def build_and_run(seed):
        s = make_sched(L=2, W=4, seed=seed)
        rng = np.random.default_rng(0)

        def recursive(depth):
            def body(ctx):
                ctx.charge("w", 1e-6 * (depth + 1))
                if depth < 3:
                    for _ in range(2):
                        ctx.spawn(Task(fn=recursive(depth + 1), op_class="w"))

            return body

        for loc in range(2):
            for _ in range(8):
                s.enqueue(Task(fn=recursive(0), op_class="w"), loc, 0.0)
        return s.run()

    assert build_and_run(5) == build_and_run(5)


def test_idle_workers_wake_for_late_work():
    """A task arriving after quiescence is picked up on the next run."""
    s = make_sched(W=2)
    s.enqueue(Task(fn=noop(1e-3)), 0, 0.0)
    t1 = s.run()
    done = []
    s.enqueue(Task(fn=lambda ctx: done.append(ctx.time), cost=1e-3), 0, t1)
    s.run()
    assert done and done[0] >= t1


def test_run_until_keeps_over_horizon_event():
    """Pausing before a task's completion must not lose its done event."""
    s = make_sched(W=1)
    s.enqueue(Task(fn=noop(1e-3), op_class="work"), 0, 0.0)
    assert s.run(until=4e-4) == pytest.approx(4e-4)
    # the completion (and its buffered effects) fire on the resumed run
    assert s.run() == pytest.approx(1e-3)
    assert s.tasks_run == 1
    assert s.tracer.busy_time("work") == pytest.approx(1e-3)


def _recursive_workload(seed):
    s = make_sched(L=2, W=4, seed=seed)

    def recursive(depth):
        def body(ctx):
            ctx.charge("w", 1e-6 * (depth + 1))
            if depth < 3:
                for _ in range(2):
                    ctx.spawn(Task(fn=recursive(depth + 1), op_class="w"))

        return body

    for loc in range(2):
        for _ in range(8):
            s.enqueue(Task(fn=recursive(0), op_class="w"), loc, 0.0)
    return s


def test_pause_resume_bit_identical():
    """run(until) + run() must equal one uninterrupted run exactly."""
    a = _recursive_workload(5)
    t_end = a.run()

    b = _recursive_workload(5)
    b.run(until=t_end * 0.37)
    b.run(until=t_end * 0.81)
    assert b.run() == t_end
    assert b.steals == a.steals
    assert b.tasks_run == a.tasks_run
    assert b.tracer.events() == a.tracer.events()


def test_measured_costs_respect_explicit_charges():
    """A body that charges explicitly is not also billed wall time."""
    s = Scheduler(1, 1, NetworkModel(), measure_costs=True)

    def explicit(ctx):
        ctx.charge("work", 0.5)

    s.enqueue(Task(fn=explicit, op_class="work"), 0, 0.0)
    assert s.run() == 0.5  # exactly: no measured-elapsed top-up


def test_measured_costs_bill_silent_bodies():
    s = Scheduler(1, 1, NetworkModel(), measure_costs=True, measure_scale=2.0)
    s.enqueue(Task(fn=lambda ctx: None, op_class="work", cost=123.0), 0, 0.0)
    t = s.run()
    assert 0.0 < t < 1.0  # measured elapsed, not the static cost


def test_fuzzed_wakeup_preserves_idle_order():
    """The fuzzed wake drops stale/duplicate entries and keeps order."""
    s = make_sched(W=4)
    s.run()  # quiesce: all four workers park idle in worker order
    assert list(s._idle[0]) == [0, 1, 2, 3]
    # a stale duplicate (as a woken-but-not-removed entry would leave)
    s._idle[0].appendleft(2)
    s.schedule_driver = drv = ScheduleFuzzer(seed=3)
    s.enqueue(Task(fn=noop(1e-6), op_class="work"), 0, s.now)
    woken = next(v for k, v in reversed(drv.trace.decisions) if k == "wake")
    assert woken not in s._idle_set
    remaining = list(s._idle[0])
    assert remaining == [w for w in (2, 0, 1, 3) if w != woken]
    assert len(remaining) == len(set(remaining))  # deduplicated


def test_invalid_configuration():
    with pytest.raises(ValueError):
        Scheduler(0, 1, NetworkModel())
    with pytest.raises(ValueError):
        Scheduler(1, 0, NetworkModel())
