"""Incremental tree maintenance: every update path must be value-identical
to a cold build over the same (pinned) domain, and the cheap paths must
do zero carving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tree.dualtree import COUNTERS, build_dual_tree, build_tree
from repro.tree.fingerprint import (
    dual_full_fingerprint,
    dual_shape_fingerprint,
    tree_shape_fingerprint,
)
from repro.tree.incremental import update_dual_tree, update_tree

THRESHOLD = 25


@pytest.fixture()
def base():
    rng = np.random.default_rng(11)
    n = 900
    src = rng.uniform(0.0, 1.0, (n, 3))
    tgt = rng.uniform(0.0, 1.0, (n, 3))
    w = rng.normal(size=n)
    dual = build_dual_tree(src, tgt, THRESHOLD, source_weights=w)
    return rng, src, tgt, w, dual


def assert_tree_equal(a, b):
    """Structural + numeric value identity (ids, ranges, point order)."""
    assert len(a.boxes) == len(b.boxes)
    for ba, bb in zip(a.boxes, b.boxes):
        assert (ba.key, ba.level, ba.start, ba.stop) == (
            bb.key,
            bb.level,
            bb.start,
            bb.stop,
        )
        assert ba.parent == bb.parent
        assert ba.children == bb.children
        assert ba.index == bb.index
    assert a.key_to_index == b.key_to_index
    assert a.levels == b.levels
    assert np.array_equal(a.perm, b.perm)
    assert np.array_equal(a.points, b.points)
    if a.weights is not None or b.weights is not None:
        assert np.array_equal(a.weights, b.weights)


def test_unchanged_when_only_weights_move(base):
    rng, src, tgt, w, dual = base
    before = dict(COUNTERS)
    new, info = update_dual_tree(dual, src, tgt, source_weights=rng.normal(size=len(w)))
    assert info == {"source": "unchanged", "target": "unchanged"}
    assert dict(COUNTERS) == before  # zero carving
    # box tables are shared outright, ids trivially stable
    assert new.source.boxes is dual.source.boxes
    assert dual_shape_fingerprint(new) == dual_shape_fingerprint(dual)


def test_unchanged_under_subcell_jitter(base):
    rng, src, tgt, w, dual = base
    src2 = src + rng.normal(scale=1e-13, size=src.shape)
    before = dict(COUNTERS)
    new, info = update_dual_tree(dual, src2, tgt, source_weights=w)
    assert info["source"] == "unchanged"
    assert dict(COUNTERS) == before
    assert np.array_equal(new.source.points, src2[new.source.perm])


def test_splice_keeps_ids_and_matches_cold_build(base):
    rng, src, tgt, w, dual = base
    # move a handful of points slightly: keys shift but structure holds
    src2 = src.copy()
    idx = rng.choice(len(src), size=5, replace=False)
    src2[idx] = np.clip(src2[idx] + rng.normal(scale=1e-3, size=(5, 3)), 0.0, 1.0)
    before = dict(COUNTERS)
    new, status = update_tree(dual.source, src2, weights=w)
    assert status in ("unchanged", "spliced")
    assert dict(COUNTERS) == before  # zero carving either way
    # every box keeps its id
    for old_b, new_b in zip(dual.source.boxes, new.boxes):
        assert old_b.key == new_b.key and old_b.index == new_b.index
    cold = build_tree(src2, dual.source.domain, THRESHOLD, weights=w)
    assert_tree_equal(new, cold)
    assert tree_shape_fingerprint(new) == tree_shape_fingerprint(cold)


def test_recarve_matches_cold_build(base):
    rng, src, tgt, w, dual = base
    # move a third of the points a long way: structure must change
    src2 = src.copy()
    idx = rng.choice(len(src), size=len(src) // 3, replace=False)
    src2[idx] = np.clip(src2[idx] + rng.normal(scale=0.3, size=(len(idx), 3)), 0.0, 1.0)
    new, status = update_tree(dual.source, src2, weights=w)
    cold = build_tree(src2, dual.source.domain, THRESHOLD, weights=w)
    assert_tree_equal(new, cold)
    if status == "recarved":
        # the dirty walk must not have fallen back to a full carve
        assert COUNTERS["subtree_carves"] > 0


def test_rebuilt_on_size_change(base):
    rng, src, tgt, w, dual = base
    src2 = rng.uniform(0.0, 1.0, (len(src) + 10, 3))
    new, status = update_tree(dual.source, src2)
    assert status == "rebuilt"
    cold = build_tree(src2, dual.source.domain, THRESHOLD)
    assert_tree_equal(new, cold)


def test_old_tree_never_mutated(base):
    rng, src, tgt, w, dual = base
    snapshot = [(b.key, b.start, b.stop, tuple(b.children)) for b in dual.source.boxes]
    src2 = np.clip(src + rng.normal(scale=0.05, size=src.shape), 0.0, 1.0)
    update_tree(dual.source, src2, weights=w)
    after = [(b.key, b.start, b.stop, tuple(b.children)) for b in dual.source.boxes]
    assert snapshot == after


def test_fingerprints_track_counts(base):
    rng, src, tgt, w, dual = base
    src2 = src.copy()
    idx = rng.choice(len(src), size=5, replace=False)
    src2[idx] = np.clip(src2[idx] + rng.normal(scale=1e-3, size=(5, 3)), 0.0, 1.0)
    new, status = update_dual_tree(dual, src2, tgt, source_weights=w)
    if status["source"] in ("unchanged", "spliced"):
        # the shape fingerprint (DAG-template key) ignores counts and
        # must hold; the full one (work-bounds key) must move exactly
        # when per-box counts moved
        assert dual_shape_fingerprint(new) == dual_shape_fingerprint(dual)
        counts_moved = not np.array_equal(
            new.source.arrays.counts, dual.source.arrays.counts
        )
        full_moved = dual_full_fingerprint(new) != dual_full_fingerprint(dual)
        assert full_moved == counts_moved
