"""Batched edge execution is an ablation, not a different algorithm:
``batch_edges=True`` and ``False`` must produce the same potentials (to
stacked-GEMM rounding) and the *bit-identical* virtual completion time,
since charges and effect ordering are value-independent."""

import numpy as np
import pytest

from repro.dashmm import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.methods.direct import direct_potentials


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(4321)
    n = 1100
    return rng.uniform(0, 1, (n, 3)), rng.normal(size=n), rng.uniform(0, 1, (n, 3))


def _run(batch, laplace, laplace_factory, cloud, method="fmm"):
    src, w, tgt = cloud
    ev = DashmmEvaluator(
        laplace,
        method=method,
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
        factory=laplace_factory,
        batch_edges=batch,
    )
    return ev.evaluate(src, w, tgt)


@pytest.mark.parametrize("method", ["fmm", "fmm-basic"])
def test_batched_matches_per_edge(method, laplace, laplace_factory, cloud):
    ref = _run(False, laplace, laplace_factory, cloud, method)
    bat = _run(True, laplace, laplace_factory, cloud, method)
    np.testing.assert_allclose(bat.potentials, ref.potentials, rtol=0, atol=1e-12)
    # identical DAG, charges and effect ordering -> identical virtual clock
    assert bat.time == ref.time
    assert bat.runtime_stats["tasks_run"] == ref.runtime_stats["tasks_run"]
    assert bat.runtime_stats["steals"] == ref.runtime_stats["steals"]


def test_batched_is_accurate(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    rep = _run(True, laplace, laplace_factory, cloud)
    exact = direct_potentials(laplace, tgt, src, w)
    err = np.linalg.norm(rep.potentials - exact) / np.linalg.norm(exact)
    assert err < 1e-3
    assert rep.extras["untriggered"] == 0
