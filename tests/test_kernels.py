"""Kernel expansions: P2M/M2T, P2L/L2T accuracy, scaling robustness."""

import numpy as np
import pytest

from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel

RNG = np.random.default_rng(123)


def _setup(scale=0.4, n=30, sep=(2.5, 1.0, -2.0)):
    src = RNG.uniform(-0.5, 0.5, (n, 3))
    q = RNG.normal(size=n)
    tgt = RNG.uniform(-0.5, 0.5, (20, 3)) + np.array(sep)
    return src, q, tgt


@pytest.fixture(params=["laplace", "yukawa"])
def kernel(request, laplace, yukawa):
    return laplace if request.param == "laplace" else yukawa


def test_greens_zero_at_origin(kernel):
    r = np.array([0.0, 1.0])
    g = kernel.greens(r)
    assert g[0] == 0.0
    assert g[1] > 0.0


def test_direct_excludes_self(kernel):
    pts = RNG.uniform(0, 1, (10, 3))
    w = np.ones(10)
    phi = kernel.direct(pts, pts, w)
    assert np.isfinite(phi).all()


def test_multipole_accuracy(kernel):
    scale = 0.4
    src, q, tgt = _setup(scale)
    M = kernel.p2m(src, q, scale)
    phi = kernel.m2t(M, tgt, scale)
    exact = kernel.direct(tgt * scale, src * scale, q)
    rel = np.max(np.abs(phi - exact)) / np.max(np.abs(exact))
    assert rel < 1e-6


def test_local_accuracy(kernel):
    scale = 0.4
    src, q, tgt = _setup(scale)
    L = kernel.p2l(tgt, q[:20], scale)
    phi = kernel.l2t(L, src, scale)
    exact = kernel.direct(src * scale, tgt * scale, q[:20])
    rel = np.max(np.abs(phi - exact)) / np.max(np.abs(exact))
    assert rel < 1e-6


def test_p2m_matrix_consistency(kernel):
    src, q, _ = _setup()
    M1 = kernel.p2m(src, q, 0.4)
    M2 = q @ kernel.p2m_matrix(src, 0.4)
    assert np.allclose(M1, M2)


def test_l2t_rows_consistency(kernel):
    src, q, tgt = _setup()
    L = kernel.p2l(tgt, q[:20], 0.4)
    phi1 = kernel.l2t(L, src, 0.4)
    rows = np.broadcast_to(L, (len(src), len(L)))
    phi2 = kernel.l2t_rows(rows, src, 0.4)
    assert np.allclose(phi1, phi2)


def test_linearity_in_charges(kernel):
    src, q, _ = _setup()
    M1 = kernel.p2m(src, q, 0.4)
    M2 = kernel.p2m(src, 2.0 * q, 0.4)
    assert np.allclose(M2, 2.0 * M1)


def test_coefficients_well_scaled(kernel):
    """The per-order scaling keeps coefficient magnitudes moderate."""
    src, q, _ = _setup()
    for scale in (1e-3, 0.1, 1.0, 8.0):
        M = kernel.p2m(src, q, scale)
        assert np.isfinite(M).all()
        assert np.abs(M).max() < 1e6


def test_yukawa_matches_brute_series(yukawa):
    """The 2k/pi prefactor and scipy Bessel conventions are correct."""
    from repro.kernels.sphharm import legendre_poly
    from scipy.special import spherical_in, spherical_kn

    k = yukawa.lam
    x = RNG.normal(size=(3, 3)) * 0.2
    y = RNG.normal(size=(3, 3))
    y *= 2.0 / np.linalg.norm(y, axis=1)[:, None]
    rx = np.linalg.norm(x, axis=1)
    ry = np.linalg.norm(y, axis=1)
    cg = np.sum(x * y, axis=1) / (rx * ry)
    p = 35
    n = np.arange(p + 1)
    series = (2 * k / np.pi) * np.sum(
        (2 * n + 1)
        * spherical_in(n, k * rx[:, None])
        * spherical_kn(n, k * ry[:, None])
        * legendre_poly(p, cg),
        axis=1,
    )
    exact = np.exp(-k * np.linalg.norm(x - y, axis=1)) / np.linalg.norm(x - y, axis=1)
    assert np.allclose(series, exact, rtol=1e-10)


def test_yukawa_level_key_varies_with_scale(yukawa, laplace):
    assert yukawa.level_key(0.5) != yukawa.level_key(0.25)
    assert laplace.level_key(0.5) is None and laplace.level_key(0.25) is None


def test_invalid_construction():
    with pytest.raises(ValueError):
        LaplaceKernel(0)
    with pytest.raises(ValueError):
        YukawaKernel(5, lam=-1.0)


def test_yukawa_reduces_to_laplace_at_small_lam():
    """For lam*r << 1 the Yukawa potential approaches 1/r."""
    yk = YukawaKernel(8, lam=1e-4)
    lp = LaplaceKernel(8)
    src, q, tgt = _setup()
    a = yk.direct(tgt * 0.4, src * 0.4, q)
    b = lp.direct(tgt * 0.4, src * 0.4, q)
    assert np.allclose(a, b, rtol=1e-3)
