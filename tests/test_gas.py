"""Global address space semantics."""

import pytest

from repro.hpx.gas import GlobalAddress, GlobalAddressSpace


def test_alloc_and_translate():
    gas = GlobalAddressSpace(3)
    addr = gas.alloc(1, {"x": 1})
    assert addr.locality == 1
    assert gas.translate(addr, 1) == {"x": 1}


def test_remote_translate_rejected():
    """Statically partitioned GAS: remote access must use parcels."""
    gas = GlobalAddressSpace(2)
    addr = gas.alloc(0, "data")
    with pytest.raises(ValueError):
        gas.translate(addr, 1)


def test_put_local():
    gas = GlobalAddressSpace(2)
    addr = gas.alloc(0, "old")
    gas.put_local(addr, "new", 0)
    assert gas.translate(addr, 0) == "new"
    with pytest.raises(ValueError):
        gas.put_local(addr, "x", 1)


def test_cyclic_allocation_round_robin():
    gas = GlobalAddressSpace(4)
    addrs = gas.alloc_cyclic(10)
    assert [a.locality for a in addrs] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_free():
    gas = GlobalAddressSpace(1)
    addr = gas.alloc(0, 42)
    gas.free(addr)
    with pytest.raises(KeyError):
        gas.translate(addr, 0)


def test_addresses_are_distinct_and_ordered():
    gas = GlobalAddressSpace(2)
    a = gas.alloc(0)
    b = gas.alloc(0)
    assert a != b
    assert a < b


def test_locality_bounds():
    gas = GlobalAddressSpace(2)
    with pytest.raises(ValueError):
        gas.alloc(2)
    with pytest.raises(ValueError):
        GlobalAddressSpace(0)


def test_address_repr():
    assert repr(GlobalAddress(3, 17)) == "ga(3:17)"
