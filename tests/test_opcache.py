"""Operator-cache sharing and disk persistence (OperatorFactory)."""

import numpy as np
import pytest

from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel


@pytest.fixture
def factory():
    # small order keeps each lstsq fit cheap
    return OperatorFactory(LaplaceKernel(4), eps=1e-3, n_extra=16, seed=11)


def test_same_key_fitted_exactly_once(factory):
    assert factory.cache_stats() == {"hits": 0, "misses": 0}
    a = factory.m2m(5, 0.5)
    stats = factory.cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    for _ in range(3):
        assert factory.m2m(5, 0.5) is a
    stats = factory.cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 3


def test_shared_registry_returns_same_instance():
    f1 = OperatorFactory.shared(LaplaceKernel(4), eps=1e-3)
    f2 = OperatorFactory.shared(LaplaceKernel(4), eps=1e-3)
    assert f1 is f2
    # a different expansion order is a different fit signature
    f3 = OperatorFactory.shared(LaplaceKernel(5), eps=1e-3)
    assert f3 is not f1


def test_disk_roundtrip_identical_without_refit(factory, tmp_path):
    ref_m2m = factory.m2m(2, 0.5)
    ref_m2l = factory.m2l((2, -1, 0), 0.5)
    ref_i2i = factory.i2i("+z", (1, 0, 2), 0.5)
    path = factory.save(directory=tmp_path)
    assert path.exists()

    fresh = OperatorFactory(LaplaceKernel(4), eps=1e-3, n_extra=16, seed=11)
    assert fresh.load(directory=tmp_path)
    misses_after_load = fresh.misses
    np.testing.assert_array_equal(fresh.m2m(2, 0.5), ref_m2m)
    np.testing.assert_array_equal(fresh.m2l((2, -1, 0), 0.5), ref_m2l)
    np.testing.assert_array_equal(fresh.i2i("+z", (1, 0, 2), 0.5), ref_i2i)
    # every probe above was a hit: nothing was refit
    assert fresh.misses == misses_after_load
    assert fresh.hits >= 3


def test_signature_mismatch_rejected(factory, tmp_path):
    factory.m2m(0, 0.5)
    path = factory.save(directory=tmp_path)

    other = OperatorFactory(LaplaceKernel(4), eps=1e-5, n_extra=16, seed=11)
    with pytest.raises(ValueError, match="signature mismatch"):
        other.load(path=path)
    assert other.load(path=path, strict=False) is False
    assert not other._cache

    other_p = OperatorFactory(LaplaceKernel(6), eps=1e-3, n_extra=16, seed=11)
    # the default path embeds the signature, so the file is not even found
    assert other_p.load(directory=tmp_path, strict=False) is False
    with pytest.raises(FileNotFoundError):
        other_p.load(directory=tmp_path)


def test_missing_file_nonstrict(factory, tmp_path):
    assert factory.load(directory=tmp_path, strict=False) is False
