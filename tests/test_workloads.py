"""Workload generators: geometry and determinism."""

import numpy as np

from repro.workloads.distributions import (
    cube_points,
    plummer_points,
    random_charges,
    sphere_points,
)


def test_cube_in_bounds():
    pts = cube_points(1000, seed=1)
    assert pts.shape == (1000, 3)
    assert np.all(pts >= 0) and np.all(pts <= 1)


def test_sphere_on_surface():
    pts = sphere_points(1000, seed=1, radius=0.5)
    r = np.linalg.norm(pts - 0.5, axis=1)
    assert np.allclose(r, 0.5)


def test_sphere_tree_is_deeper_than_cube_tree():
    """The paper: sphere data produces more non-uniform trees with a
    longer critical path."""
    from repro.tree.dualtree import build_dual_tree

    n = 20000
    cube = build_dual_tree(cube_points(n, 1), cube_points(n, 2), 60,
                           source_weights=np.ones(n))
    sph = build_dual_tree(sphere_points(n, 1), sphere_points(n, 2), 60,
                          source_weights=np.ones(n))
    assert sph.source.depth >= cube.source.depth
    # non-uniformity: sphere leaves span strictly more levels
    cube_leaf_levels = {b.level for b in cube.source.boxes if b.is_leaf and b.count}
    sph_leaf_levels = {b.level for b in sph.source.boxes if b.is_leaf and b.count}
    assert len(sph_leaf_levels) > len(cube_leaf_levels)


def test_plummer_is_clustered():
    pts = plummer_points(5000, seed=1, scale=0.1)
    r = np.linalg.norm(pts - pts.mean(axis=0), axis=1)
    # half-mass radius much smaller than the max radius
    assert np.median(r) < 0.3 * r.max()


def test_determinism():
    assert np.allclose(cube_points(100, 5), cube_points(100, 5))
    assert np.allclose(sphere_points(100, 5), sphere_points(100, 5))
    assert np.allclose(plummer_points(100, 5), plummer_points(100, 5))
    assert not np.allclose(cube_points(100, 5), cube_points(100, 6))


def test_neutral_charges():
    q = random_charges(1000, seed=1, neutral=True)
    assert abs(q.sum()) < 1e-10
