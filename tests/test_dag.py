"""Explicit DAG construction: node/edge classes, degrees, stats, topology."""

import numpy as np
import pytest

from repro.dashmm.dag import build_bh_dag, build_fmm_dag
from repro.methods.barneshut import mac_pairs
from repro.sim.costmodel import SizeModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(10)
    src = rng.uniform(0, 1, (3000, 3))
    tgt = rng.uniform(0, 1, (3000, 3))
    w = rng.normal(size=3000)
    dual = build_dual_tree(src, tgt, 30, source_weights=w)
    lists = build_lists(dual)
    return dual, lists


def test_advanced_dag_edge_classes(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    es = dag.edge_stats()
    assert "M2I" in es and "I2I" in es and "I2L" in es
    assert "M2L" not in es  # list 2 entirely through intermediates
    assert es["I2I"]["count"] == lists.counts()["l2"]
    assert es["S2T"]["count"] == lists.counts()["l1"]


def test_basic_dag_edge_classes(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=False)
    es = dag.edge_stats()
    assert es["M2L"]["count"] == lists.counts()["l2"]
    assert "I2I" not in es


def test_node_counts(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    ns = dag.node_stats()
    n_src_leaves = sum(1 for b in dual.source.boxes if b.is_leaf and b.count)
    assert ns["S"]["count"] == n_src_leaves
    assert ns["M"]["count"] == len(dual.source.boxes)
    # merge-and-shift: one Is per source box with list-2 out-edges, one
    # It per target box with list-2 in-edges
    assert ns["Is"]["count"] <= ns["M"]["count"]
    assert ns["It"]["count"] == len(lists.l2)


def test_s_nodes_have_no_inputs(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    for n in dag.nodes:
        if n.kind == "S":
            assert dag.in_degree[n.id] == 0
        if n.kind == "T":
            assert not dag.out_edges[n.id]


def test_m2i_single_edge_per_is(setup):
    """The paper's M->I count equals the Is count (one op per box
    covering all six directions)."""
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    ns = dag.node_stats()
    es = dag.edge_stats()
    assert es["M2I"]["count"] == ns["Is"]["count"]
    assert es["I2L"]["count"] == ns["It"]["count"]


def test_dag_is_acyclic(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    assert dag.critical_path_length() > 0  # raises on cycles


def test_critical_path_spans_both_trees(setup):
    """Critical path: up the source tree, across, down the target tree."""
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    hops = dag.critical_path_length()
    # at least S2M + (depth-ish M2M) + M2I + I2I + I2L + (L2L...) + L2T
    assert hops >= 5


def test_size_model_in_stats(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    sm = SizeModel()
    ns = dag.node_stats(size_model=sm)
    assert ns["M"]["size_min"] == ns["M"]["size_max"] == 880
    assert ns["Is"]["size_min"] == 6 * 912
    assert ns["S"]["size_min"] >= 32  # at least one point
    es = dag.edge_stats(size_model=sm)
    assert es["I2I"]["size_min"] == 912


def test_in_degree_matches_edges(setup):
    dual, lists = setup
    dag = build_fmm_dag(dual, lists, advanced=True)
    indeg = [0] * len(dag.nodes)
    for edges in dag.out_edges:
        for e in edges:
            indeg[e.dst] += 1
    assert indeg == dag.in_degree


def test_bh_dag(setup):
    dual, _ = setup
    dag = build_bh_dag(dual, mac_pairs(dual, 0.5))
    es = dag.edge_stats()
    assert set(es) <= {"S2M", "M2M", "M2T", "S2T"}
    assert es["M2T"]["count"] > 0
    ns = dag.node_stats()
    assert "L" not in ns and "It" not in ns  # no local/intermediate side


def test_pruned_subtree_has_no_nodes():
    rng = np.random.default_rng(11)
    src = rng.uniform(0, 0.25, (500, 3))
    tgt = rng.uniform(0, 0.25, (500, 3)) + 2.0
    dual = build_dual_tree(src, tgt, 30, source_weights=np.ones(500))
    lists = build_lists(dual)
    assert lists.pruned
    dag = build_fmm_dag(dual, lists, advanced=True)
    pruned_levels = {dual.target.boxes[i].level for i in lists.pruned}
    # no target-side nodes deeper than any pruned box's subtree
    for n in dag.nodes:
        if n.tree == "target" and n.kind in ("L", "T", "It"):
            box = dual.target.boxes[n.box_index]
            # walk up: no ancestor may be pruned
            b = box
            while b.parent is not None:
                pi = dual.target.key_to_index[b.parent]
                assert pi not in lists.pruned
                b = dual.target.boxes[pi]
