"""Cost and size models: Table II calibration and scaling rules."""

import pytest

from repro.sim.costmodel import (
    PAPER_AVG_LEAF_POINTS,
    PAPER_EDGE_TIMES,
    CostModel,
    SizeModel,
)


def test_fixed_ops_match_table2():
    cm = CostModel()
    for op in ("M2M", "M2I", "I2I", "I2L", "L2L"):
        assert cm.edge_cost(op) == pytest.approx(PAPER_EDGE_TIMES[op])


def test_point_ops_reproduce_table2_at_paper_occupancy():
    cm = CostModel()
    a = PAPER_AVG_LEAF_POINTS
    assert cm.edge_cost("S2T", n_src=a, n_tgt=a) == pytest.approx(PAPER_EDGE_TIMES["S2T"])
    assert cm.edge_cost("S2M", n_src=a) == pytest.approx(PAPER_EDGE_TIMES["S2M"])
    assert cm.edge_cost("L2T", n_tgt=a) == pytest.approx(PAPER_EDGE_TIMES["L2T"])


def test_s2t_scales_with_pair_size():
    cm = CostModel()
    assert cm.edge_cost("S2T", 10, 10) == pytest.approx(4 * cm.edge_cost("S2T", 5, 5))


def test_yukawa_is_heavier():
    lap = CostModel.for_kernel("laplace")
    yuk = CostModel.for_kernel("yukawa")
    for op in ("M2M", "M2I", "I2I", "I2L", "L2L"):
        assert yuk.edge_cost(op) > lap.edge_cost(op)
    assert yuk.edge_cost("S2T", 5, 5) > lap.edge_cost("S2T", 5, 5)


def test_unknown_op_raises():
    with pytest.raises(KeyError):
        CostModel().edge_cost("X2Y")


def test_node_sizes_match_table1():
    sm = SizeModel()
    assert sm.node_bytes("M") == 880
    assert sm.node_bytes("L") == 880
    assert sm.node_bytes("Is") == 5472  # 6 directions x 912 B
    assert sm.node_bytes("S", n_points=1) == 32
    assert sm.node_bytes("S", n_points=60) == 1920
    assert sm.node_bytes("T", n_points=1) == 40
    assert sm.node_bytes("T", n_points=60) == 2400


def test_payload_sizes():
    sm = SizeModel()
    assert sm.payload_bytes("I2I") == 912
    assert sm.payload_bytes("M2M") == 880
    assert sm.payload_bytes("S2T", n_src_points=10) == 320


def test_parcel_framing():
    sm = SizeModel()
    assert sm.parcel_bytes(100, 3) == 64 + 100 + 3 * 16


def test_unknown_kinds_raise():
    sm = SizeModel()
    with pytest.raises(ValueError):
        sm.node_bytes("Q")
    with pytest.raises(ValueError):
        sm.payload_bytes("Q2Q")
