"""Vectorised setup pipeline equals the per-box reference, structure for structure.

The array-based passes (tree carving, interaction lists, MAC traversal,
DAG assembly) must reproduce the reference loops exactly: same box
tables, same list memberships in the same canonical order, same DAG
node/edge multisets and in-degrees, and hence the same simulated
virtual clock.  Property tests sweep random identical, overlapping and
disjoint ensembles; deterministic cases pin the pruned-subtree and
degenerate-point paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dashmm.dag import build_bh_dag, build_fmm_dag
from repro.dashmm.evaluator import DashmmEvaluator
from repro.kernels.laplace import LaplaceKernel
from repro.methods.barneshut import mac_pairs
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists, build_lists_reference, canonicalize, list_pairs


def _ensemble(mode: str, n_src: int, n_tgt: int, seed: int):
    rng = np.random.default_rng(seed)
    src = rng.random((n_src, 3))
    if mode == "identical":
        tgt = src[:n_tgt] if n_tgt <= n_src else np.vstack([src, rng.random((n_tgt - n_src, 3))])
    elif mode == "overlapping":
        tgt = rng.random((n_tgt, 3)) * 0.7 + 0.2
    else:  # disjoint clusters in opposite corners
        src = src * 0.25
        tgt = rng.random((n_tgt, 3)) * 0.25 + 0.75
    return src, tgt


def assert_trees_equal(tv, tr):
    assert len(tv.boxes) == len(tr.boxes)
    for bv, br in zip(tv.boxes, tr.boxes):
        assert (bv.key, bv.level, bv.start, bv.stop, bv.parent, bv.children, bv.index) == (
            br.key,
            br.level,
            br.start,
            br.stop,
            br.parent,
            br.children,
            br.index,
        )
    assert tv.key_to_index == tr.key_to_index
    assert tv.levels == tr.levels
    assert np.array_equal(tv.perm, tr.perm)
    assert np.array_equal(tv.points, tr.points)


def assert_lists_equal(lv, lr):
    for name in ("l1", "l2", "l3", "l4"):
        assert list(getattr(lv, name).items()) == list(getattr(lr, name).items()), name
    assert lv.pruned == lr.pruned


def assert_dags_equal(dv, dr):
    assert dv.nodes == dr.nodes
    assert dv.out_edges == dr.out_edges
    assert dv.in_degree == dr.in_degree
    assert dv.index == dr.index


ENSEMBLES = st.tuples(
    st.sampled_from(["identical", "overlapping", "disjoint"]),
    st.integers(min_value=1, max_value=250),
    st.integers(min_value=1, max_value=250),
    st.integers(min_value=0, max_value=2**31),
)


@settings(max_examples=12, deadline=None)
@given(params=ENSEMBLES, threshold=st.sampled_from([1, 4, 16]))
def test_property_setup_pipeline_matches_reference(params, threshold):
    src, tgt = _ensemble(*params)
    dual_v = build_dual_tree(src, tgt, threshold=threshold, vectorized=True)
    dual_r = build_dual_tree(src, tgt, threshold=threshold, vectorized=False)
    assert_trees_equal(dual_v.source, dual_r.source)
    assert_trees_equal(dual_v.target, dual_r.target)

    lists_v = build_lists(dual_v, vectorized=True)
    lists_r = build_lists(dual_r, vectorized=False)
    assert_lists_equal(lists_v, lists_r)

    for advanced in (True, False):
        assert_dags_equal(
            build_fmm_dag(dual_v, lists_v, advanced=advanced, vectorized=True),
            build_fmm_dag(dual_r, lists_r, advanced=advanced, vectorized=False),
        )

    pairs_v = mac_pairs(dual_v, 0.5, vectorized=True)
    pairs_r = mac_pairs(dual_r, 0.5, vectorized=False)
    assert list(pairs_v.items()) == list(pairs_r.items())
    assert_dags_equal(
        build_bh_dag(dual_v, pairs_v, vectorized=True),
        build_bh_dag(dual_r, pairs_r, vectorized=False),
    )


def test_disjoint_ensembles_prune_and_match():
    # far-apart clusters force pruned target sub-trees; both paths must
    # agree on the pruned set and on everything below it
    rng = np.random.default_rng(3)
    src = rng.random((400, 3)) * 0.2
    tgt = rng.random((400, 3)) * 0.2 + 0.8
    dual_v = build_dual_tree(src, tgt, threshold=10, vectorized=True)
    dual_r = build_dual_tree(src, tgt, threshold=10, vectorized=False)
    lists_v = build_lists(dual_v, vectorized=True)
    lists_r = build_lists(dual_r, vectorized=False)
    assert lists_v.pruned, "expected pruned boxes for disjoint clusters"
    assert_lists_equal(lists_v, lists_r)
    assert_dags_equal(
        build_fmm_dag(dual_v, lists_v, vectorized=True),
        build_fmm_dag(dual_r, lists_r, vectorized=False),
    )


def test_degenerate_coincident_points():
    # all points identical: carving bottoms out at the depth cap
    pts = np.ones((50, 3)) * 0.3
    dual_v = build_dual_tree(pts, pts, threshold=4, vectorized=True)
    dual_r = build_dual_tree(pts, pts, threshold=4, vectorized=False)
    assert_trees_equal(dual_v.source, dual_r.source)
    assert_lists_equal(build_lists(dual_v), build_lists(dual_r, vectorized=False))


def test_canonical_order_is_sorted():
    rng = np.random.default_rng(11)
    dual = build_dual_tree(rng.random((600, 3)), rng.random((600, 3)), threshold=8)
    lists = build_lists(dual)
    for name in ("l1", "l2", "l3", "l4"):
        table = getattr(lists, name)
        keys = list(table.keys())
        assert keys == sorted(keys), name
        for sis in table.values():
            assert sis == sorted(sis), name
    # the reference path is canonicalized identically
    assert_lists_equal(lists, canonicalize(build_lists_reference(dual)))


def test_phantom_virtual_time_identical():
    rng = np.random.default_rng(5)
    src = rng.random((700, 3))
    tgt = rng.random((700, 3))
    w = rng.random(700)
    k = LaplaceKernel(p=3)
    for method in ("fmm", "fmm-basic", "bh"):
        t_vec = DashmmEvaluator(
            k, method=method, threshold=15, mode="phantom", vectorized_setup=True
        ).evaluate(src, w, tgt)
        t_ref = DashmmEvaluator(
            k, method=method, threshold=15, mode="phantom", vectorized_setup=False
        ).evaluate(src, w, tgt)
        assert t_vec.time == t_ref.time, method
        assert len(t_vec.dag.nodes) == len(t_ref.dag.nodes)
        assert t_vec.dag.n_edges == t_ref.dag.n_edges


def test_leaves_cached():
    rng = np.random.default_rng(9)
    dual = build_dual_tree(rng.random((300, 3)), rng.random((300, 3)), threshold=10)
    tree = dual.source
    first = tree.leaf_indices
    assert first is tree.leaf_indices  # cached array object, not recomputed
    leaves = tree.leaves
    assert [b.index for b in leaves] == first.tolist()
    assert all(b.is_leaf for b in leaves)
    assert tree.arrays is tree.arrays  # columnar table cached too


def test_list_pairs_flattening():
    table = {3: [1, 5, 7], 9: [2], 12: []}
    tis, sis = list_pairs(table)
    assert tis.tolist() == [3, 3, 3, 9]
    assert sis.tolist() == [1, 5, 7, 2]
    tis, sis = list_pairs({})
    assert tis.size == 0 and sis.size == 0


def test_setup_smoke_vectorized_not_slower():
    # CI smoke: on the quickstart workload the vectorized setup must be
    # at least as fast as the reference loops (the benchmark asserts the
    # full 3x; here a conservative floor keeps CI signal non-flaky)
    import time

    rng = np.random.default_rng(42)
    src = rng.random((4000, 3))
    tgt = rng.random((4000, 3))

    def run(vec: bool) -> float:
        best = float("inf")
        for _ in range(2):
            t0 = time.process_time()
            dual = build_dual_tree(src, tgt, threshold=60, vectorized=vec)
            lists = build_lists(dual, vectorized=vec)
            build_fmm_dag(dual, lists, vectorized=vec)
            best = min(best, time.process_time() - t0)
        return best

    t_ref = run(False)
    t_vec = run(True)
    assert t_vec <= t_ref, f"vectorized setup slower: {t_vec:.3f}s vs {t_ref:.3f}s"
