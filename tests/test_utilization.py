"""Eq. (1)-(2) utilization fractions and the dip locator."""

import numpy as np
import pytest

from repro.analysis.utilization import (
    _bin_intervals,
    class_utilization,
    total_utilization,
    underutilized_region,
)
from repro.hpx.tracing import Tracer


def test_bin_intervals_within_one_bin():
    edges = np.linspace(0, 1, 11)
    out = _bin_intervals(np.array([0.11]), np.array([0.19]), edges)
    assert out[1] == pytest.approx(0.08)
    assert out.sum() == pytest.approx(0.08)


def test_bin_intervals_spanning_bins():
    edges = np.linspace(0, 1, 11)
    out = _bin_intervals(np.array([0.05]), np.array([0.35]), edges)
    assert out[0] == pytest.approx(0.05)
    assert out[1] == pytest.approx(0.1)
    assert out[2] == pytest.approx(0.1)
    assert out[3] == pytest.approx(0.05)
    assert out.sum() == pytest.approx(0.3)


def test_full_busy_gives_unit_fraction():
    tr = Tracer()
    # 2 workers busy for the whole 1-second run
    tr.record(0, "work", 0.0, 1.0)
    tr.record(1, "work", 0.0, 1.0)
    fk = total_utilization(tr, n_workers=2, total_time=1.0, n_intervals=10)
    assert np.allclose(fk, 1.0)


def test_half_busy():
    tr = Tracer()
    tr.record(0, "work", 0.0, 1.0)  # worker 1 idle throughout
    fk = total_utilization(tr, 2, 1.0, 10)
    assert np.allclose(fk, 0.5)


def test_class_fractions_sum_to_total():
    tr = Tracer()
    tr.record(0, "a", 0.0, 0.5)
    tr.record(0, "b", 0.5, 1.0)
    tr.record(1, "a", 0.2, 0.9)
    fks = class_utilization(tr, 2, 1.0, 20)
    total = total_utilization(tr, 2, 1.0, 20)
    assert np.allclose(fks["a"] + fks["b"], total)


def test_runtime_classes_excluded_by_default():
    tr = Tracer()
    tr.record(0, "work", 0.0, 1.0)
    tr.record(1, "_progress", 0.0, 1.0)
    fk = total_utilization(tr, 2, 1.0, 5)
    assert np.allclose(fk, 0.5)
    fk_all = total_utilization(tr, 2, 1.0, 5, include_runtime=True)
    assert np.allclose(fk_all, 1.0)


def test_empty_trace():
    assert np.allclose(total_utilization(Tracer(), 2, 1.0, 10), 0.0)
    assert class_utilization(Tracer(), 2, 1.0, 10) == {}


def test_underutilized_region_found():
    fk = np.ones(100) * 0.9
    fk[70:85] = 0.2  # a dip
    start, end = underutilized_region(fk)
    assert (start, end) == (70, 85)


def test_underutilized_region_absent():
    fk = np.ones(100) * 0.9
    start, end = underutilized_region(fk)
    assert (start, end) == (100, 100)


def test_underutilized_ignores_startup_ramp():
    fk = np.ones(100) * 0.9
    fk[:10] = 0.1  # startup ramp, inside the settle window
    fk[60:70] = 0.2
    start, end = underutilized_region(fk, settle=0.2)
    assert (start, end) == (60, 70)


def test_tracer_zero_length_intervals_dropped():
    tr = Tracer()
    tr.record(0, "x", 1.0, 1.0)
    assert len(tr) == 0


def test_tracer_disabled():
    tr = Tracer(enabled=False)
    tr.record(0, "x", 0.0, 1.0)
    assert len(tr) == 0


def test_bin_intervals_clips_overhanging_interval():
    """Regression: an interval reaching past the window used to dump its
    overhang into the last bin, pushing utilization above 1.0."""
    edges = np.linspace(0, 1, 11)
    out = _bin_intervals(np.array([0.95]), np.array([1.40]), edges)
    assert out[-1] == pytest.approx(0.05)  # only the in-window part
    assert out.sum() == pytest.approx(0.05)


def test_bin_intervals_clips_before_window():
    edges = np.linspace(0, 1, 11)
    out = _bin_intervals(np.array([-0.30]), np.array([0.05]), edges)
    assert out[0] == pytest.approx(0.05)
    assert out.sum() == pytest.approx(0.05)


def test_bin_intervals_drops_fully_outside():
    edges = np.linspace(0, 1, 11)
    out = _bin_intervals(np.array([1.5, -2.0]), np.array([2.5, -1.0]), edges)
    assert np.allclose(out, 0.0)


def test_utilization_capped_at_one_with_overhang():
    """A busy interval outlasting total_time must not over-attribute."""
    tr = Tracer()
    tr.record(0, "work", 0.0, 1.3)  # runs past the 1.0s analysis window
    fk = total_utilization(tr, n_workers=1, total_time=1.0, n_intervals=10)
    assert np.allclose(fk, 1.0)
    assert fk.max() <= 1.0 + 1e-12
