"""Synchronous FMM: end-to-end accuracy against direct summation."""

import numpy as np
import pytest

from repro.methods.direct import direct_potentials
from repro.methods.fmm import FmmEvaluator
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.workloads.distributions import sphere_points

#: the paper requires 3-digit accuracy; our operators target 1e-4
TOL = 1e-3


def _rel_err(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
@pytest.mark.parametrize("advanced", [True, False])
def test_cube_accuracy(kern, advanced, laplace, yukawa, laplace_factory, yukawa_factory, small_cloud):
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    src, w, tgt = small_cloud
    ev = FmmEvaluator(k, threshold=30, advanced=advanced, factory=F)
    phi = ev.evaluate(src, w, tgt)
    exact = direct_potentials(k, tgt, src, w)
    assert _rel_err(phi, exact) < TOL


def test_sphere_surface_accuracy(laplace, laplace_factory):
    """Sphere data: highly adaptive trees with nonempty lists 3/4."""
    src = sphere_points(2500, seed=1)
    tgt = sphere_points(2500, seed=2)
    w = np.random.default_rng(3).normal(size=2500)
    ev = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    phi = ev.evaluate(src, w, tgt)
    exact = direct_potentials(laplace, tgt, src, w)
    assert _rel_err(phi, exact) < TOL
    assert ev.stats.ops.get("M2T", 0) > 0, "sphere data should exercise list 3"
    assert ev.stats.ops.get("S2L", 0) > 0, "sphere data should exercise list 4"


def test_disjoint_ensembles_with_pruning(laplace, laplace_factory):
    rng = np.random.default_rng(4)
    src = rng.uniform(0, 0.3, (800, 3))
    tgt = rng.uniform(0.7, 1.0, (800, 3)) + 1.5
    w = rng.normal(size=800)
    dual = build_dual_tree(src, tgt, 30, source_weights=w)
    lists = build_lists(dual)
    assert lists.pruned
    ev = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    phi = ev.evaluate(src, w, tgt, dual=dual, lists=lists)
    exact = direct_potentials(laplace, tgt, src, w)
    assert _rel_err(phi, exact) < TOL


def test_mergeshift_reduces_heavy_translations(laplace, laplace_factory, small_cloud):
    """Advanced FMM: many cheap I2I replace heavy M2L; M2I+I2L per box."""
    src, w, tgt = small_cloud
    adv = FmmEvaluator(laplace, threshold=30, advanced=True, factory=laplace_factory)
    adv.evaluate(src, w, tgt)
    basic = FmmEvaluator(laplace, threshold=30, advanced=False, factory=laplace_factory)
    basic.evaluate(src, w, tgt)
    assert adv.stats.ops["I2I"] == basic.stats.ops["M2L"]
    heavy_adv = adv.stats.ops["M2I"] + adv.stats.ops["I2L"]
    assert heavy_adv < basic.stats.ops["M2L"] / 3


def test_prebuilt_tree_reuse(laplace, laplace_factory, small_cloud):
    """Iterative use case: same DAG, different weights."""
    src, w, tgt = small_cloud
    dual = build_dual_tree(src, tgt, 30, source_weights=w)
    lists = build_lists(dual)
    ev = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    phi1 = ev.evaluate(src, w, tgt, dual=dual, lists=lists)
    phi2 = ev.evaluate(src, w, tgt, dual=dual, lists=lists)
    assert np.allclose(phi1, phi2)


def test_weightless_dual_tree_rejected(laplace, small_cloud):
    src, w, tgt = small_cloud
    dual = build_dual_tree(src, tgt, 30)  # no weights
    ev = FmmEvaluator(laplace, threshold=30)
    with pytest.raises(ValueError):
        ev.evaluate(src, w, tgt, dual=dual)


def test_potential_superposition(laplace, laplace_factory, small_cloud):
    src, w, tgt = small_cloud
    ev = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    phi1 = ev.evaluate(src, w, tgt)
    phi2 = ev.evaluate(src, 2.0 * w, tgt)
    assert np.allclose(phi2, 2.0 * phi1, rtol=1e-9, atol=1e-9)


def test_tiny_problem_all_direct(laplace, laplace_factory):
    """Fewer points than the threshold: a single leaf, pure S2T."""
    rng = np.random.default_rng(5)
    src = rng.uniform(0, 1, (20, 3))
    tgt = rng.uniform(0, 1, (20, 3))
    w = rng.normal(size=20)
    ev = FmmEvaluator(laplace, threshold=60, factory=laplace_factory)
    phi = ev.evaluate(src, w, tgt)
    exact = direct_potentials(laplace, tgt, src, w)
    assert np.allclose(phi, exact, rtol=1e-12)
