"""Schedule fuzzing, happens-before hazard detection, deterministic replay.

The tier-1 tests here certify, on small workloads:

* the fuzz machinery is invisible when off (bit-identical baseline);
* fuzzed schedules differ (makespans, steal counts) yet every method's
  potentials stay bit-identical and the hazard detector stays silent -
  the paper's schedule-independence claim as an executable assertion;
* a recorded schedule trace replays decision for decision (same clock,
  same potentials), survives a save/load round trip, and a stale trace
  fails loudly with :class:`ReplayDivergence`;
* a deliberately seeded set-after-trigger bug is always detected, has a
  schedule-dependent outcome under fuzzing, and any one outcome is
  reproduced exactly from its trace;
* GAS races and non-commutative fold orders are flagged, their
  correctly synchronized counterparts are not, and reliable-transport
  retransmissions are never misreported as hazards.

The ``fuzz``-marked sweeps at the bottom push the same assertions
through >= 100 fuzzed schedules per method (run with ``-m fuzz``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.schedules import fuzz_sweep
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.lco import Future, ReductionLCO
from repro.hpx.network import FaultyNetwork
from repro.hpx.parcel import Parcel
from repro.hpx.runtime import Runtime, RuntimeConfig
from repro.hpx.scheduler import ReplayDivergence, Task
from repro.hpx.tracing import SCHEDULE_DECISION_KINDS, ScheduleTrace
from repro.kernels.laplace import LaplaceKernel


@pytest.fixture(scope="module")
def kernel():
    return LaplaceKernel(5)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(7)
    return rng.random((300, 3)), rng.random(300), rng.random((200, 3))


def _evaluate(kernel, cloud, method="fmm", **cfg_kwargs):
    sources, weights, targets = cloud
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=2, **cfg_kwargs)
    ev = DashmmEvaluator(kernel, method=method, threshold=30, runtime_config=cfg)
    return ev.evaluate(sources, weights, targets)


# -- invisibility of the machinery when off -------------------------------------


def test_detector_alone_changes_nothing(kernel, cloud):
    plain = _evaluate(kernel, cloud)
    detected = _evaluate(kernel, cloud, detect_hazards=True)
    assert detected.time == plain.time
    assert np.array_equal(detected.potentials, plain.potentials)
    assert detected.extras["hazards"] == []
    assert "schedule_trace" not in plain.extras


# -- schedule independence under fuzzing ----------------------------------------


@pytest.mark.parametrize("method", ["fmm", "bh"])
def test_fuzzed_schedules_bit_identical(kernel, cloud, method):
    def run(seed):
        return _evaluate(
            kernel, cloud, method=method, fuzz_schedule=seed, detect_hazards=True
        )

    baseline = _evaluate(kernel, cloud, method=method)
    result = fuzz_sweep(run, seeds=range(4), baseline=baseline)
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()
    # the sweep must actually perturb the schedule, or the verdict is vacuous
    assert result.distinct_makespans > 1, result.summary()
    assert all(r.decisions > 0 for r in result.rows)


def test_fuzz_decision_kinds_exercised(kernel, cloud):
    rep = _evaluate(kernel, cloud, fuzz_schedule=1)
    counts = rep.extras["schedule_trace"].counts()
    assert set(counts) <= set(SCHEDULE_DECISION_KINDS)
    # tie-breaks and placement occur on any workload; a multi-locality
    # coalescing run must also permute destination order
    for kind in ("tie", "place", "coalesce"):
        assert counts.get(kind, 0) > 0, counts


# -- priority policies stay schedule-independent ---------------------------------


@pytest.mark.parametrize("policy", ["binary", "critical-path"])
def test_priority_policy_fuzz_sweep(kernel, cloud, policy):
    """Every freedom the priority policies add routes through the driver.

    Fuzzed runs under a priority policy must still produce bit-identical
    potentials (vs that policy's own unfuzzed baseline), stay hazard
    free, and genuinely explore distinct schedules - including the
    interleave choice and eager-send event ordering of the
    critical-path policy.
    """

    def run(seed):
        return _evaluate(
            kernel,
            cloud,
            policy=policy,
            fuzz_schedule=seed,
            detect_hazards=True,
        )

    baseline = _evaluate(kernel, cloud, policy=policy)
    result = fuzz_sweep(run, seeds=range(4), baseline=baseline)
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()
    assert result.distinct_makespans > 1, result.summary()
    assert all(r.decisions > 0 for r in result.rows)


def test_critical_path_fuzz_records_interleave_choices(kernel, cloud):
    rep = _evaluate(kernel, cloud, policy="critical-path", fuzz_schedule=2)
    counts = rep.extras["schedule_trace"].counts()
    assert set(counts) <= set(SCHEDULE_DECISION_KINDS)
    assert counts.get("interleave", 0) > 0, counts


def test_priority_policy_replay_exact(kernel, cloud, tmp_path):
    fuzzed = _evaluate(
        kernel, cloud, policy="critical-path", fuzz_schedule=21, detect_hazards=True
    )
    trace = fuzzed.extras["schedule_trace"]
    path = tmp_path / "cp-schedule.json"
    trace.save(path)
    replayed = _evaluate(
        kernel,
        cloud,
        policy="critical-path",
        replay_schedule=str(path),
        detect_hazards=True,
    )
    assert replayed.time == fuzzed.time
    assert np.array_equal(replayed.potentials, fuzzed.potentials)
    assert replayed.runtime_stats["steals"] == fuzzed.runtime_stats["steals"]
    assert replayed.runtime_stats["schedule_decisions"] == len(trace)


# -- deterministic replay --------------------------------------------------------


def test_record_save_load_replay(kernel, cloud, tmp_path):
    fuzzed = _evaluate(kernel, cloud, fuzz_schedule=11, detect_hazards=True)
    trace = fuzzed.extras["schedule_trace"]
    path = tmp_path / "schedule.json"
    trace.save(path)
    loaded = ScheduleTrace.load(path)
    assert loaded.decisions == trace.decisions
    assert loaded.meta == trace.meta

    replayed = _evaluate(
        kernel, cloud, replay_schedule=str(path), detect_hazards=True
    )
    assert replayed.time == fuzzed.time
    assert np.array_equal(replayed.potentials, fuzzed.potentials)
    assert (
        replayed.runtime_stats["steals"] == fuzzed.runtime_stats["steals"]
    )
    assert replayed.runtime_stats["schedule_decisions"] == len(trace)


def test_fuzz_and_replay_mutually_exclusive():
    with pytest.raises(ValueError):
        Runtime(RuntimeConfig(fuzz_schedule=1, replay_schedule=ScheduleTrace()))


def test_replay_divergence_on_stale_trace():
    stale = ScheduleTrace(decisions=[["victim", 99]])
    cfg = RuntimeConfig(
        n_localities=1, workers_per_locality=2, replay_schedule=stale
    )
    rt = Runtime(cfg)
    with pytest.raises(ReplayDivergence):
        rt.enqueue_task(
            Task(fn=lambda ctx: ctx.charge("x", 1e-6), op_class="x"), 0
        )
        rt.run()


# -- seeded set-after-trigger bug: detect, fuzz, replay ---------------------------


def _racy_future_run(seed=None, replay=None):
    """Two equal-cost tasks race to set one Future with distinct keys.

    Under the reliable transport the future tolerates the post-trigger
    set (dedup suppresses it), so the loser's value is silently lost -
    the winner is decided by the schedule.  This is the deliberately
    seeded bug of the acceptance criteria.
    """
    cfg = RuntimeConfig(
        n_localities=1,
        workers_per_locality=2,
        reliable=True,
        fuzz_schedule=seed,
        replay_schedule=replay,
        detect_hazards=True,
    )
    rt = Runtime(cfg)
    fut = Future(rt, 0)
    winner = []

    def setter(ctx, tag):
        ctx.charge("set", 1e-6)
        ctx.lco_set(fut, tag, key=("racer", tag))

    fut.on_trigger(lambda ctx: winner.append(fut.value))
    for tag in ("A", "B"):
        rt.enqueue_task(Task(fn=setter, args=(tag,), op_class="racer"), 0)
    rt.run()
    return rt, winner[0]


def test_seeded_bug_always_detected_and_schedule_dependent():
    winners = set()
    for seed in range(8):
        rt, winner = _racy_future_run(seed)
        winners.add(winner)
        assert [r.kind for r in rt.hazards] == ["set-after-trigger"]
        # the lost update is visible in the dedup counter too
        assert rt.stats()["lco_dups_suppressed"] == 1
    # the outcome genuinely depends on the schedule
    assert winners == {"A", "B"}


def test_seeded_bug_reproduced_from_trace(tmp_path):
    rt, winner = _racy_future_run(seed=3)
    path = tmp_path / "bug.json"
    rt.schedule_trace.save(path)
    rt2, winner2 = _racy_future_run(replay=str(path))
    assert winner2 == winner
    assert rt2.now == rt.now
    assert [r.kind for r in rt2.hazards] == ["set-after-trigger"]


# -- GAS races --------------------------------------------------------------------


def test_gas_write_race_detected():
    cfg = RuntimeConfig(
        n_localities=2, workers_per_locality=2, detect_hazards=True
    )
    rt = Runtime(cfg)
    addr = rt.gas.alloc(1, 0)

    def put(ctx, v):
        ctx.charge("w", 1e-6)
        rt.memput(ctx, addr, v)

    for v in (1, 2):
        rt.enqueue_task(Task(fn=put, args=(v,), op_class="put"), 0)
    rt.run()
    kinds = {r.kind for r in rt.hazards}
    assert "gas-write-race" in kinds


def test_gas_lco_ordered_writes_clean():
    """write1 -> future trigger -> write2 is a happens-before chain."""
    cfg = RuntimeConfig(
        n_localities=2, workers_per_locality=2, detect_hazards=True
    )
    rt = Runtime(cfg)
    addr = rt.gas.alloc(1, 0)
    done = Future(rt, 1)

    def write1(ctx, target):
        ctx.charge("w", 1e-6)
        rt.gas.put_local(addr, 1, ctx.locality)
        ctx.lco_set(done, None)

    rt.register_action("w1", write1)

    def write2(ctx):
        rt.gas.put_local(addr, 2, ctx.locality)

    done.on_trigger(write2, op_class="w2", cost=1e-6)
    rt.enqueue_task(
        Task(
            fn=lambda ctx: ctx.send_parcel(Parcel(action="w1", target=addr)),
            op_class="start",
            cost=1e-6,
        ),
        0,
    )
    rt.run()
    assert rt.hazards == []
    assert rt.gas.translate(addr, 1) == 2


# -- non-commutative fold order ---------------------------------------------------


@pytest.mark.parametrize("commutative", [False, True])
def test_noncommutative_fold_flagging(commutative):
    cfg = RuntimeConfig(
        n_localities=1, workers_per_locality=2, detect_hazards=True
    )
    rt = Runtime(cfg)
    red = ReductionLCO(
        rt, 0, 2, op=lambda a, b: a + [b], init=[], commutative=commutative
    )

    def setter(ctx, v):
        ctx.charge("s", 1e-6)
        ctx.lco_set(red, v)

    for v in (1, 2):
        rt.enqueue_task(Task(fn=setter, args=(v,), op_class="s"), 0)
    rt.run()
    kinds = [r.kind for r in rt.hazards]
    if commutative:
        assert kinds == []
    else:
        assert kinds == ["unordered-noncommutative-fold"]


# -- transport duplicates are not hazards ----------------------------------------


def test_retransmissions_not_misreported(kernel, cloud):
    def run(seed):
        net = FaultyNetwork(drop=0.05, duplicate=0.05, seed=99)
        return _evaluate(
            kernel,
            cloud,
            network=net,
            reliable=True,
            fuzz_schedule=seed,
            detect_hazards=True,
        )

    baseline = run(None)
    assert baseline.extras["hazards"] == []
    result = fuzz_sweep(run, seeds=range(2), baseline=baseline)
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()


# -- full sweeps (run with -m fuzz) ----------------------------------------------


@pytest.mark.fuzz
@pytest.mark.parametrize("method", ["fmm", "fmm-basic", "bh"])
def test_fuzz_sweep_100_schedules(kernel, cloud, method):
    def run(seed):
        return _evaluate(
            kernel, cloud, method=method, fuzz_schedule=seed, detect_hazards=True
        )

    result = fuzz_sweep(run, seeds=range(100))
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()
    assert result.distinct_makespans > 10, result.summary()


@pytest.mark.fuzz
def test_fuzz_sweep_fault_matrix(kernel, cloud):
    """Fuzzed schedules x faulty networks: still bit-identical, no hazards."""
    faults = {
        "drop": FaultyNetwork(drop=0.1, seed=5),
        "dup": FaultyNetwork(duplicate=0.1, seed=6),
        "both": FaultyNetwork(drop=0.05, duplicate=0.05, seed=7),
    }
    for name, net in faults.items():
        def run(seed, net=net):
            return _evaluate(
                kernel,
                cloud,
                network=net,
                reliable=True,
                fuzz_schedule=seed,
                detect_hazards=True,
            )

        result = fuzz_sweep(run, seeds=range(34))
        assert result.all_bit_identical, f"{name}: {result.summary()}"
        assert result.total_hazards == 0, f"{name}: {result.summary()}"
