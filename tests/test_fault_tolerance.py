"""Fault-injected end-to-end evaluation: the hardening acceptance matrix.

With ``FaultyNetwork`` (drop=dup=0.05, reorder on, fixed seed) and the
reliable transport enabled, FMM and Barnes-Hut evaluations must produce
bit-identical potentials to the fault-free run, quiesce, and report
nonzero retries/dedups; with the transport disabled under the same
faults, the run must fail with a structured ``LCOError``, not a bare
``RuntimeError``.
"""

import numpy as np
import pytest

from repro.analysis import degradation_report, degradation_sweep
from repro.dashmm import DashmmEvaluator
from repro.hpx import FaultyNetwork, LCOError, RuntimeConfig

#: the acceptance-criteria fault mix, plus single-fault ablations
FAULTS = {
    "drop": dict(drop=0.05),
    "duplicate": dict(duplicate=0.05),
    "reorder": dict(reorder=0.5, reorder_jitter=10e-6),
    "delay": dict(delay=0.05, delay_time=100e-6),
    "mixed": dict(drop=0.05, duplicate=0.05, reorder=0.5),
}


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(1234)
    n = 900
    return rng.uniform(0, 1, (n, 3)), rng.normal(size=n), rng.uniform(0, 1, (n, 3))


def _evaluate(kernel, factory, cloud, method="fmm", net=None, reliable=True, **cfg_kw):
    src, w, tgt = cloud
    cfg = RuntimeConfig(
        n_localities=3, workers_per_locality=2, reliable=reliable, **cfg_kw
    )
    if net is not None:
        cfg.network = net
    ev = DashmmEvaluator(
        kernel,
        method=method,
        threshold=30,
        runtime_config=cfg,
        factory=factory,
        theta=0.5,
    )
    return ev.evaluate(src, w, tgt)


@pytest.mark.parametrize("mode", sorted(FAULTS))
@pytest.mark.parametrize("method", ["fmm", "bh"])
def test_bit_identical_under_faults(mode, method, laplace, laplace_factory, cloud):
    clean = _evaluate(laplace, laplace_factory, cloud, method=method)
    faulty = _evaluate(
        laplace,
        laplace_factory,
        cloud,
        method=method,
        net=FaultyNetwork(seed=2024, **FAULTS[mode]),
    )
    # quiescence: every LCO triggered, nothing left in flight
    assert faulty.extras["untriggered"] == 0
    assert faulty.runtime_stats["transport"]["in_flight"] == 0
    # exactly-once delivery: potentials agree to the bit
    assert np.array_equal(clean.potentials, faulty.potentials)
    # only the virtual clock may change (fault-shifted arrivals reshuffle
    # the steal schedule, so the makespan can move in either direction)
    assert faulty.time > 0.0


def test_acceptance_mix_reports_retries_and_dedups(laplace, laplace_factory, cloud):
    faulty = _evaluate(
        laplace,
        laplace_factory,
        cloud,
        net=FaultyNetwork(drop=0.05, duplicate=0.05, reorder=0.5, seed=7),
    )
    xp = faulty.runtime_stats["transport"]
    assert xp["retries"] > 0
    assert xp["dups_suppressed"] > 0
    nf = faulty.runtime_stats["network_faults"]
    assert nf["dropped"] > 0 and nf["duplicated"] > 0 and nf["reordered"] > 0


def test_unreliable_transport_fails_with_structured_error(
    laplace, laplace_factory, cloud
):
    with pytest.raises(LCOError) as ei:
        _evaluate(
            laplace,
            laplace_factory,
            cloud,
            net=FaultyNetwork(drop=0.05, duplicate=0.05, reorder=0.5, seed=7),
            reliable=False,
        )
    err = ei.value
    assert err.lco_class == "ExpansionLCO"
    assert err.addr is not None
    assert err.op_class is not None


def test_fault_schedule_is_deterministic(laplace, laplace_factory, cloud):
    runs = [
        _evaluate(
            laplace,
            laplace_factory,
            cloud,
            net=FaultyNetwork(drop=0.05, duplicate=0.05, reorder=0.5, seed=99),
        )
        for _ in range(2)
    ]
    assert runs[0].time == runs[1].time
    assert np.array_equal(runs[0].potentials, runs[1].potentials)
    assert runs[0].runtime_stats["transport"] == runs[1].runtime_stats["transport"]


def test_outage_window_only_stretches_clock(laplace, laplace_factory, cloud):
    clean = _evaluate(laplace, laplace_factory, cloud)
    net = FaultyNetwork(outages=((1, 0.0, 3e-4),), seed=5)
    faulty = _evaluate(
        laplace, laplace_factory, cloud, net=net, retry_timeout=5e-5, retry_limit=12
    )
    assert np.array_equal(clean.potentials, faulty.potentials)
    assert faulty.time > clean.time


def test_outage_beyond_retry_budget_completes_via_suspend_resume(
    laplace, laplace_factory, cloud
):
    """Acceptance: a blackout longer than the whole retry budget no
    longer raises ``TransportError`` - exhausted parcels suspend, resume
    when the window lifts, and the potentials stay bit-identical."""
    clean = _evaluate(laplace, laplace_factory, cloud)
    net = FaultyNetwork(outages=((1, 1e-4, 2.1e-3),), seed=5)
    faulty = _evaluate(
        laplace,
        laplace_factory,
        cloud,
        net=net,
        retry_timeout=20e-6,
        retry_limit=3,  # budget ~ 20e-6 * (1 + 2 + 4) << the 2ms window
    )
    assert np.array_equal(clean.potentials, faulty.potentials)
    xp = faulty.runtime_stats["transport"]
    assert xp["suspensions"] > 0
    assert xp["resumes"] == xp["suspensions"]
    assert xp["suspended"] == 0 and xp["in_flight"] == 0
    assert faulty.time > clean.time


@pytest.mark.parametrize("fuzz", [3, 44])
def test_short_outage_bit_identical_under_fuzzed_schedules(
    fuzz, laplace, laplace_factory, cloud
):
    """An outage the retry budget rides out converges bit-identically
    no matter how the schedule fuzzer perturbs pick/steal decisions."""
    clean = _evaluate(laplace, laplace_factory, cloud, fuzz_schedule=fuzz)
    net = FaultyNetwork(outages=((1, 0.0, 3e-4),), seed=5)
    faulty = _evaluate(
        laplace,
        laplace_factory,
        cloud,
        net=net,
        retry_timeout=5e-5,
        retry_limit=12,
        fuzz_schedule=fuzz,
    )
    assert np.array_equal(clean.potentials, faulty.potentials)
    assert faulty.runtime_stats["transport"]["suspensions"] == 0


def test_phantom_mode_quiesces_under_faults(laplace, cloud):
    src, w, tgt = cloud
    cfg = RuntimeConfig(
        n_localities=3,
        workers_per_locality=2,
        reliable=True,
        network=FaultyNetwork(drop=0.05, duplicate=0.05, seed=3),
    )
    ev = DashmmEvaluator(laplace, mode="phantom", threshold=30, runtime_config=cfg)
    rep = ev.evaluate(src, w, tgt)
    assert rep.extras["untriggered"] == 0
    assert rep.runtime_stats["transport"]["in_flight"] == 0


# -- degradation accounting ---------------------------------------------------


def test_degradation_report_fields(laplace, laplace_factory, cloud):
    clean = _evaluate(laplace, laplace_factory, cloud)
    faulty = _evaluate(
        laplace,
        laplace_factory,
        cloud,
        net=FaultyNetwork(drop=0.05, duplicate=0.05, reorder=0.5, seed=7),
    )
    row = degradation_report(clean, faulty)
    assert row["bit_identical"] is True
    assert row["max_abs_diff"] == 0.0
    assert row["makespan_overhead"] == pytest.approx(
        (faulty.time - clean.time) / clean.time
    )
    assert row["transport"]["retries"] > 0
    assert row["network_faults"]["dropped"] > 0


def test_degradation_sweep_shape(laplace, laplace_factory, cloud):
    def run(rate):
        net = FaultyNetwork(drop=rate, duplicate=rate, seed=11) if rate else None
        return _evaluate(laplace, laplace_factory, cloud, net=net)

    sweep = degradation_sweep(run, [0.02, 0.05])
    assert sweep["baseline_makespan"] > 0
    assert [r["rate"] for r in sweep["rows"]] == [0.02, 0.05]
    assert all(r["bit_identical"] for r in sweep["rows"])
