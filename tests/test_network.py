"""Network model arithmetic: latency, bandwidth, NIC serialization."""

import pytest

from repro.hpx.network import InfiniteNetwork, NetworkModel


def test_latency_plus_transfer():
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t = net.deliver_time(0, 0.0, 1000)
    assert t == pytest.approx(1e-6 + 1000 / 1e9)


def test_per_parcel_overhead():
    net = NetworkModel(latency=0.0, bandwidth=1e12, per_parcel_overhead=5e-7)
    t = net.deliver_time(0, 0.0, 1)
    assert t == pytest.approx(5e-7, rel=1e-3)


def test_nic_serialization():
    """Two parcels from one locality serialize at the NIC."""
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t1 = net.deliver_time(0, 0.0, 1_000_000)  # 1 ms injection
    t2 = net.deliver_time(0, 0.0, 1_000_000)
    assert t2 == pytest.approx(t1 + 1e-3)


def test_different_nics_independent():
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t1 = net.deliver_time(0, 0.0, 1_000_000)
    t2 = net.deliver_time(1, 0.0, 1_000_000)
    assert t1 == pytest.approx(t2)


def test_nic_idle_gap_not_charged():
    net = NetworkModel(latency=0.0, bandwidth=1e9, per_parcel_overhead=0.0)
    net.deliver_time(0, 0.0, 1000)
    # a much later send is not delayed by the first
    t = net.deliver_time(0, 1.0, 1000)
    assert t == pytest.approx(1.0 + 1e-6)


def test_reset_clears_nic_state():
    net = NetworkModel(latency=0.0, bandwidth=1e9, per_parcel_overhead=0.0)
    net.deliver_time(0, 0.0, 10_000_000)
    net.reset()
    t = net.deliver_time(0, 0.0, 1000)
    assert t == pytest.approx(1e-6)


def test_infinite_network_is_free():
    net = InfiniteNetwork()
    assert net.deliver_time(0, 3.5, 10**9) == 3.5
