"""Network model arithmetic: latency, bandwidth, NIC serialization, faults."""

import pytest

from repro.hpx.network import FaultyNetwork, InfiniteNetwork, NetworkModel


def test_latency_plus_transfer():
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t = net.deliver_time(0, 0.0, 1000)
    assert t == pytest.approx(1e-6 + 1000 / 1e9)


def test_per_parcel_overhead():
    net = NetworkModel(latency=0.0, bandwidth=1e12, per_parcel_overhead=5e-7)
    t = net.deliver_time(0, 0.0, 1)
    assert t == pytest.approx(5e-7, rel=1e-3)


def test_nic_serialization():
    """Two parcels from one locality serialize at the NIC."""
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t1 = net.deliver_time(0, 0.0, 1_000_000)  # 1 ms injection
    t2 = net.deliver_time(0, 0.0, 1_000_000)
    assert t2 == pytest.approx(t1 + 1e-3)


def test_different_nics_independent():
    net = NetworkModel(latency=1e-6, bandwidth=1e9, per_parcel_overhead=0.0)
    t1 = net.deliver_time(0, 0.0, 1_000_000)
    t2 = net.deliver_time(1, 0.0, 1_000_000)
    assert t1 == pytest.approx(t2)


def test_nic_idle_gap_not_charged():
    net = NetworkModel(latency=0.0, bandwidth=1e9, per_parcel_overhead=0.0)
    net.deliver_time(0, 0.0, 1000)
    # a much later send is not delayed by the first
    t = net.deliver_time(0, 1.0, 1000)
    assert t == pytest.approx(1.0 + 1e-6)


def test_reset_clears_nic_state():
    net = NetworkModel(latency=0.0, bandwidth=1e9, per_parcel_overhead=0.0)
    net.deliver_time(0, 0.0, 10_000_000)
    net.reset()
    t = net.deliver_time(0, 0.0, 1000)
    assert t == pytest.approx(1e-6)


def test_infinite_network_is_free():
    net = InfiniteNetwork()
    assert net.deliver_time(0, 3.5, 10**9) == 3.5


def test_delivery_times_matches_deliver_time():
    a = NetworkModel()
    b = NetworkModel()
    t = a.deliver_time(0, 0.0, 5000)
    assert b.delivery_times(0, 1, 0.0, 5000) == [t]
    assert b.fault_stats() == {}


# -- fault injection ----------------------------------------------------------


def test_faultless_faultynet_matches_base():
    net = FaultyNetwork(seed=1)
    ref = NetworkModel()
    for i in range(5):
        assert net.delivery_times(0, 1, 0.0, 1000) == ref.delivery_times(0, 1, 0.0, 1000)


def test_drop_rate_statistics():
    net = FaultyNetwork(drop=0.3, seed=7)
    net.reset()
    lost = sum(1 for _ in range(2000) if not net.delivery_times(0, 1, 0.0, 64))
    assert 450 < lost < 750  # ~600 expected
    assert net.fault_stats()["dropped"] == lost


def test_duplicate_produces_two_copies():
    net = FaultyNetwork(duplicate=1.0, seed=3)
    times = net.delivery_times(0, 1, 0.0, 64)
    assert len(times) == 2
    assert times[1] >= times[0]
    assert net.fault_stats()["duplicated"] == 1


def test_reorder_adds_bounded_jitter():
    net = FaultyNetwork(reorder=1.0, reorder_jitter=1e-6, seed=5)
    base = NetworkModel().deliver_time(0, 0.0, 64)
    (t,) = net.delivery_times(0, 1, 0.0, 64)
    assert base <= t <= base + 1e-6
    assert net.fault_stats()["reordered"] == 1


def test_delay_can_exceed_jitter():
    net = FaultyNetwork(delay=1.0, delay_time=1e-3, seed=11)
    seen = [net.delivery_times(0, 1, 0.0, 64)[0] for _ in range(50)]
    assert max(seen) > 1e-4  # some draw lands deep into the stall window
    assert net.fault_stats()["delayed"] == 50


def test_outage_window_drops_both_directions():
    net = FaultyNetwork(outages=((1, 0.0, 1.0),), seed=0)
    assert net.delivery_times(0, 1, 0.5, 64) == []  # into the dark locality
    assert net.delivery_times(1, 0, 0.5, 64) == []  # out of it
    assert net.delivery_times(0, 1, 2.0, 64) != []  # window over
    assert net.fault_stats()["outage_dropped"] == 2


def test_seeded_fault_schedule_reproducible():
    def schedule():
        net = FaultyNetwork(drop=0.2, duplicate=0.2, reorder=0.5, seed=99)
        net.reset()
        return [tuple(net.delivery_times(0, 1, i * 1e-5, 256)) for i in range(200)]

    assert schedule() == schedule()


def test_reset_reseeds_fault_rng():
    net = FaultyNetwork(drop=0.5, seed=13)
    net.reset()
    a = [tuple(net.delivery_times(0, 1, 0.0, 64)) for _ in range(50)]
    net.reset()
    b = [tuple(net.delivery_times(0, 1, 0.0, 64)) for _ in range(50)]
    assert a == b
