"""Plane-wave (intermediate expansion) operators: frames, P2W/I2I/W2T."""

import numpy as np
import pytest

from repro.kernels.expo import (
    DIRECTIONS,
    assign_direction,
    frame,
    i2i_factor,
    p2w,
    p2w_matrix,
    w2t,
)
from repro.kernels.quadrature import build_quadrature

RNG = np.random.default_rng(7)


def test_frames_are_orthonormal():
    for d in DIRECTIONS:
        F = frame(d)
        assert np.allclose(F @ F.T, np.eye(3))


def test_frame_third_row_is_direction():
    signs = {"+": 1.0, "-": -1.0}
    axes = {"x": 0, "y": 1, "z": 2}
    for d in DIRECTIONS:
        v = np.zeros(3)
        v[axes[d[1]]] = signs[d[0]]
        assert np.allclose(frame(d)[2], v)


def test_assign_direction():
    assert assign_direction((0, 0, 3)) == "+z"
    assert assign_direction((0, 0, -2)) == "-z"
    assert assign_direction((3, 0, 1)) == "+x"
    assert assign_direction((-3, 2, 2)) == "-x"
    assert assign_direction((1, -3, 2)) == "-y"
    # tie prefers z then x then y
    assert assign_direction((2, 2, 2)) == "+z"
    assert assign_direction((2, 2, 0)) == "+x"


@pytest.mark.parametrize("delta", [(0, 0, 2), (1, -2, 3), (-3, 1, 1), (2, 3, -1)])
def test_chain_reproduces_kernel(laplace, delta):
    scale = 0.5
    quad = build_quadrature(laplace, scale, eps=1e-4)
    d = assign_direction(delta)
    src = RNG.uniform(-0.5, 0.5, (25, 3))
    q = RNG.normal(size=25)
    tgt = RNG.uniform(-0.5, 0.5, (15, 3))
    delta = np.asarray(delta, dtype=float)
    W = p2w(quad, d, src, q, scale)
    V = W * i2i_factor(quad, d, delta)
    phi = w2t(quad, d, V, tgt)
    exact = laplace.direct((tgt + delta) * scale, src * scale, q)
    assert np.max(np.abs(phi - exact)) / np.max(np.abs(exact)) < 1e-3


def test_chain_yukawa(yukawa):
    scale = 0.5
    quad = build_quadrature(yukawa, scale, eps=1e-4)
    delta = np.array([0.0, 1.0, 3.0])
    d = assign_direction(delta)
    src = RNG.uniform(-0.5, 0.5, (25, 3))
    q = RNG.normal(size=25)
    tgt = RNG.uniform(-0.5, 0.5, (15, 3))
    W = p2w(quad, d, src, q, scale)
    V = W * i2i_factor(quad, d, delta)
    phi = w2t(quad, d, V, tgt)
    exact = yukawa.direct((tgt + delta) * scale, src * scale, q)
    assert np.max(np.abs(phi - exact)) / np.max(np.abs(exact)) < 1e-3


def test_i2i_composes(laplace):
    """Translating by a+b equals translating by a then by b (diagonal)."""
    quad = build_quadrature(laplace, 0.5, eps=1e-3)
    a = np.array([0.0, 1.0, 1.5])
    b = np.array([1.0, -1.0, 1.5])
    f_ab = i2i_factor(quad, "+z", a + b)
    f_a = i2i_factor(quad, "+z", a)
    f_b = i2i_factor(quad, "+z", b)
    assert np.allclose(f_ab, f_a * f_b, rtol=1e-10)


def test_p2w_matrix_consistency(laplace):
    quad = build_quadrature(laplace, 0.5, eps=1e-3)
    src = RNG.uniform(-0.5, 0.5, (10, 3))
    q = RNG.normal(size=10)
    assert np.allclose(p2w(quad, "+x", src, q, 0.5), q @ p2w_matrix(quad, "+x", src, 0.5))


def test_superposition(laplace):
    """Amplitudes add: W(q1+q2) = W(q1) + W(q2)."""
    quad = build_quadrature(laplace, 0.5, eps=1e-3)
    src = RNG.uniform(-0.5, 0.5, (8, 3))
    q1 = RNG.normal(size=8)
    q2 = RNG.normal(size=8)
    w1 = p2w(quad, "-y", src, q1, 0.5)
    w2 = p2w(quad, "-y", src, q2, 0.5)
    w12 = p2w(quad, "-y", src, q1 + q2, 0.5)
    assert np.allclose(w12, w1 + w2)
