"""Adaptive tree construction invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.box import Domain
from repro.tree.dualtree import build_dual_tree, build_tree
from repro.tree.morton import decode_morton


def _random_points(n, seed=0):
    return np.random.default_rng(seed).uniform(0, 1, size=(n, 3))


def test_domain_bounding_contains_everything():
    a = _random_points(100, 1) * 3 - 1
    b = _random_points(50, 2) * 5 + 2
    dom = Domain.bounding(a, b)
    for pts in (a, b):
        assert np.all(pts >= dom.origin - 1e-12)
        assert np.all(pts <= dom.origin + dom.size + 1e-12)


def test_domain_is_cubic():
    a = np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 10.0]])
    dom = Domain.bounding(a)
    assert dom.size >= 10.0


def test_tree_partitions_points():
    pts = _random_points(2000)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=25)
    # every point belongs to exactly one leaf
    covered = np.zeros(len(pts), dtype=int)
    for b in tree.boxes:
        if b.is_leaf:
            covered[b.start : b.stop] += 1
    assert np.all(covered == 1)


def test_leaf_threshold_respected():
    pts = _random_points(3000, 3)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=40)
    for b in tree.boxes:
        if b.is_leaf:
            assert b.count <= 40 or b.level == 20  # deep-level cap


def test_children_partition_parent_range():
    pts = _random_points(2000, 4)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=30)
    for b in tree.boxes:
        if b.children:
            kids = [tree.box(k) for k in b.children]
            assert sum(k.count for k in kids) == b.count
            kids.sort(key=lambda k: k.start)
            assert kids[0].start == b.start
            assert kids[-1].stop == b.stop
            for a, c in zip(kids, kids[1:]):
                assert a.stop == c.start


def test_no_empty_children():
    pts = _random_points(500, 5)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=5)
    for b in tree.boxes:
        if b.parent is not None:
            assert b.count > 0


def test_points_inside_their_boxes():
    pts = _random_points(1000, 6)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=20)
    for b in tree.boxes:
        if not b.is_leaf or b.count == 0:
            continue
        level, ix, iy, iz = decode_morton(b.key)
        h = dom.box_size(level)
        lo = dom.origin + h * np.array([ix, iy, iz])
        box_pts = tree.box_points(b)
        assert np.all(box_pts >= lo - 1e-9)
        assert np.all(box_pts <= lo + h + 1e-9)


def test_perm_is_inverse_sorted_order():
    pts = _random_points(500, 7)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=10)
    assert np.allclose(tree.points, pts[tree.perm])


def test_weights_sorted_alongside():
    pts = _random_points(300, 8)
    w = np.arange(300.0)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=10, weights=w)
    assert np.allclose(tree.weights, w[tree.perm])


def test_levels_listing():
    pts = _random_points(2000, 9)
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=20)
    seen = set()
    for level, idxs in enumerate(tree.levels):
        for i in idxs:
            assert tree.boxes[i].level == level
            seen.add(i)
    assert seen == set(range(len(tree.boxes)))


def test_duplicate_points_no_infinite_recursion():
    pts = np.tile(np.array([[0.5, 0.5, 0.5]]), (100, 1))
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=10)
    assert tree.n_points == 100  # terminates, all points kept


def test_dual_tree_shares_domain():
    s = _random_points(400, 10)
    t = _random_points(400, 11) + 2.0
    dual = build_dual_tree(s, t, 30, source_weights=np.ones(400))
    assert dual.source.domain is dual.domain
    assert dual.target.domain is dual.domain
    # both ensembles inside the shared cube
    for pts in (s, t):
        assert np.all(pts >= dual.domain.origin)
        assert np.all(pts <= dual.domain.origin + dual.domain.size)


def test_invalid_inputs():
    pts = _random_points(10)
    dom = Domain.bounding(pts)
    with pytest.raises(ValueError):
        build_tree(pts, dom, threshold=0)
    with pytest.raises(ValueError):
        build_tree(pts[:, :2], dom, threshold=5)
    with pytest.raises(ValueError):
        build_tree(pts, dom, threshold=5, weights=np.ones(3))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=400),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_tree_invariants_property(n, threshold, seed):
    pts = np.random.default_rng(seed).uniform(-5, 5, size=(n, 3))
    dom = Domain.bounding(pts)
    tree = build_tree(pts, dom, threshold=threshold)
    covered = np.zeros(n, dtype=int)
    for b in tree.boxes:
        assert b.stop >= b.start
        if b.is_leaf:
            covered[b.start : b.stop] += 1
    assert np.all(covered == 1)
    assert tree.boxes[0].count == n
