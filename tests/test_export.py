"""DAG JSON/DOT export round trip."""

import numpy as np
import pytest

from repro.dashmm.dag import build_fmm_dag
from repro.dashmm.export import dag_from_json, dag_to_dot, dag_to_json
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def small_dag():
    rng = np.random.default_rng(60)
    pts = rng.uniform(0, 1, (300, 3))
    dual = build_dual_tree(pts, pts, 20, source_weights=np.ones(300))
    lists = build_lists(dual)
    return build_fmm_dag(dual, lists, advanced=True)


def test_json_roundtrip(small_dag):
    text = dag_to_json(small_dag)
    back = dag_from_json(text)
    assert len(back.nodes) == len(small_dag.nodes)
    assert back.n_edges == small_dag.n_edges
    assert back.in_degree == small_dag.in_degree
    for a, b in zip(small_dag.nodes, back.nodes):
        assert (a.kind, a.box_index, a.level, a.tree, a.n_points) == (
            b.kind,
            b.box_index,
            b.level,
            b.tree,
            b.n_points,
        )
    # aux survives (I2I carries (direction, delta) tuples)
    for ea, eb in zip(small_dag.out_edges[0], back.out_edges[0]):
        assert ea.op == eb.op and ea.aux == eb.aux


def test_json_preserves_i2i_aux(small_dag):
    back = dag_from_json(dag_to_json(small_dag))
    i2i = [e for edges in back.out_edges for e in edges if e.op == "I2I"]
    assert i2i
    d, delta = i2i[0].aux
    assert isinstance(d, str) and len(delta) == 3


def test_dot_output(small_dag):
    if len(small_dag.nodes) <= 500:
        dot = dag_to_dot(small_dag)
        assert dot.startswith("digraph")
        assert "S2M" in dot


def test_dot_refuses_huge():
    rng = np.random.default_rng(61)
    pts = rng.uniform(0, 1, (5000, 3))
    dual = build_dual_tree(pts, pts, 10, source_weights=np.ones(5000))
    lists = build_lists(dual)
    dag = build_fmm_dag(dual, lists)
    with pytest.raises(ValueError):
        dag_to_dot(dag, max_nodes=100)
