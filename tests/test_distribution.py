"""Distribution policies: data-distribution constraint, balance, It placement."""

import numpy as np
import pytest

from repro.dashmm.dag import build_fmm_dag
from repro.dashmm.distribution import (
    BlockPolicy,
    FmmPolicy,
    RandomPolicy,
    box_owner,
    partition_points,
)
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(20)
    src = rng.uniform(0, 1, (4000, 3))
    tgt = rng.uniform(0, 1, (4000, 3))
    w = rng.normal(size=4000)
    dual = build_dual_tree(src, tgt, 30, source_weights=w)
    lists = build_lists(dual)
    dag = build_fmm_dag(dual, lists, advanced=True)
    return dual, lists, dag


def test_partition_points_covers_everything():
    b = partition_points(100, 7)
    assert b[0] == 0 and b[-1] == 100
    assert np.all(np.diff(b) >= 0)


def test_box_owner_respects_bounds():
    bounds = np.array([0, 50, 100])

    class B:
        start, stop, count = 10, 20, 10

    assert box_owner(B(), bounds) == 0

    class C:
        start, stop, count = 60, 80, 20

    assert box_owner(C(), bounds) == 1


@pytest.mark.parametrize("policy_cls", [FmmPolicy, BlockPolicy, RandomPolicy])
def test_all_nodes_assigned(setup, policy_cls):
    dual, lists, dag = setup
    policy_cls().assign(dag, dual, 4)
    for n in dag.nodes:
        assert 0 <= n.locality < 4


@pytest.mark.parametrize("policy_cls", [FmmPolicy, BlockPolicy, RandomPolicy])
def test_leaf_data_constraint(setup, policy_cls):
    """S/T nodes (and leaf M/L) must match the a-priori data split."""
    dual, lists, dag = setup
    policy_cls().assign(dag, dual, 4)
    sb = partition_points(dual.source.n_points, 4)
    tb = partition_points(dual.target.n_points, 4)
    for n in dag.nodes:
        if n.kind == "S":
            assert n.locality == box_owner(dual.source.boxes[n.box_index], sb)
        if n.kind == "T":
            assert n.locality == box_owner(dual.target.boxes[n.box_index], tb)


def test_fmm_policy_it_majority(setup):
    """It nodes sit where most of their incoming I2I bytes originate."""
    dual, lists, dag = setup
    FmmPolicy().assign(dag, dual, 4)
    incoming = {}
    for edges in dag.out_edges:
        for e in edges:
            if e.op == "I2I":
                incoming.setdefault(e.dst, []).append(dag.nodes[e.src].locality)
    for nid, locs in incoming.items():
        it = dag.nodes[nid]
        best = max(set(locs), key=locs.count)
        assert locs.count(it.locality) >= locs.count(best) or it.locality == best


def test_work_balance_beats_count_balance(setup):
    dual, lists, dag = setup
    cm = CostModel()

    def imbalance(policy):
        policy.assign(dag, dual, 8)
        work = np.zeros(8)
        for edges in dag.out_edges:
            for e in edges:
                s, t = dag.nodes[e.src], dag.nodes[e.dst]
                c = cm.edge_cost(e.op, n_src=max(s.n_points, 1), n_tgt=max(t.n_points, 1))
                if e.op in ("S2M", "M2M", "M2I", "I2I"):
                    work[s.locality] += c
                else:
                    work[t.locality] += c
        return work.max() / work.mean()

    count_imb = imbalance(FmmPolicy(balance="count"))
    work_imb = imbalance(FmmPolicy(balance="work"))
    assert work_imb < count_imb


def test_random_policy_deterministic(setup):
    dual, lists, dag = setup
    RandomPolicy(seed=3).assign(dag, dual, 4)
    locs1 = [n.locality for n in dag.nodes]
    RandomPolicy(seed=3).assign(dag, dual, 4)
    assert locs1 == [n.locality for n in dag.nodes]


def test_invalid_balance():
    with pytest.raises(ValueError):
        FmmPolicy(balance="nope")


def test_single_locality(setup):
    dual, lists, dag = setup
    FmmPolicy().assign(dag, dual, 1)
    assert all(n.locality == 0 for n in dag.nodes)
