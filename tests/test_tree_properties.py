"""Property-based tests (hypothesis) for the tree layer.

Three structural invariants everything downstream rests on:

* Morton keys are a bijection: encode/decode round-trips exactly at
  every level (scalar and vectorised paths), parent/child relations are
  consistent, and keys of different levels never collide;
* tree construction partitions the points: every box's slice of the
  Morton-ordered point array lies geometrically inside the box;
* interaction lists split near from far: the near list (L1, handled by
  direct S->T interactions) never overlaps the far lists (L2/L3/L4,
  handled by expansions) for any target box, and no list contains a
  duplicate.

All runs are derandomized (a fixed hypothesis seed) so the suite is
reproducible; the heavier tree/list properties cap their example count
to stay inside the tier-1 budget.
"""

from __future__ import annotations

import numpy as np
import pytest

hyp = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.tree.box import Domain
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists
from repro.tree.morton import (
    MAX_LEVEL,
    decode_morton,
    encode_morton,
    encode_points,
    morton_children,
    morton_level,
    morton_parent,
)

#: strategy for one (level, ix, iy, iz) lattice coordinate tuple
coords = st.integers(min_value=0, max_value=MAX_LEVEL).flatmap(
    lambda level: st.tuples(
        st.just(level),
        *(st.integers(min_value=0, max_value=(1 << level) - 1),) * 3,
    )
)


@settings(derandomize=True, max_examples=200)
@given(coords)
def test_morton_round_trip_scalar(c):
    level, ix, iy, iz = c
    key = encode_morton(level, ix, iy, iz)
    assert decode_morton(key) == (level, ix, iy, iz)
    assert morton_level(key) == level


@settings(derandomize=True, max_examples=50)
@given(st.lists(coords, min_size=1, max_size=64))
def test_morton_round_trip_vectorized(cs):
    level = np.array([c[0] for c in cs])
    ix = np.array([c[1] for c in cs])
    iy = np.array([c[2] for c in cs])
    iz = np.array([c[3] for c in cs])
    # vectorised encode takes one shared level; encode per-row instead
    keys = np.array(
        [encode_morton(l, x, y, z) for l, x, y, z in cs], dtype=np.int64
    )
    dl, dx, dy, dz = decode_morton(keys)
    np.testing.assert_array_equal(dl, level)
    np.testing.assert_array_equal(dx, ix)
    np.testing.assert_array_equal(dy, iy)
    np.testing.assert_array_equal(dz, iz)


@settings(derandomize=True, max_examples=200)
@given(coords.filter(lambda c: c[0] < MAX_LEVEL))
def test_morton_parent_child_consistency(c):
    level, ix, iy, iz = c
    key = encode_morton(level, ix, iy, iz)
    children = morton_children(key)
    assert len(set(children)) == 8
    for child in children:
        assert morton_parent(child) == key
        cl, cx, cy, cz = decode_morton(child)
        assert cl == level + 1
        assert (cx >> 1, cy >> 1, cz >> 1) == (ix, iy, iz)


@settings(derandomize=True, max_examples=100)
@given(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_encode_points_buckets_correctly(level, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((32, 3))
    domain = Domain(origin=np.zeros(3), size=1.0)
    keys = encode_points(pts, domain.origin, domain.size, level)
    lv, ix, iy, iz = decode_morton(np.asarray(keys))
    np.testing.assert_array_equal(lv, level)
    expected = np.minimum(
        np.floor(pts * (1 << level)).astype(np.int64), (1 << level) - 1
    )
    np.testing.assert_array_equal(np.stack([ix, iy, iz], axis=1), expected)


# -- tree-box containment ---------------------------------------------------------

#: a seeded point-cloud configuration: (rng seed, n points, threshold)
cloud_cfg = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=10, max_value=400),
    st.integers(min_value=4, max_value=40),
)


def _containment(tree):
    domain = tree.domain
    for box in tree.boxes:
        pts = tree.points[box.start : box.stop]
        assert len(pts) == box.count
        h = domain.box_size(box.level)
        center = domain.box_center(box.key)
        lo, hi = center - h / 2, center + h / 2
        # the far domain face is clamped into the last cell, so points
        # may sit exactly on a box's upper boundary
        assert np.all(pts >= lo - 1e-12), (box.key, box.level)
        assert np.all(pts <= hi + 1e-12), (box.key, box.level)


@settings(derandomize=True, max_examples=10, deadline=None)
@given(cloud_cfg)
def test_tree_box_containment(cfg):
    seed, n, threshold = cfg
    rng = np.random.default_rng(seed)
    sources = rng.random((n, 3))
    targets = rng.random((n, 3))
    dual = build_dual_tree(sources, targets, threshold)
    _containment(dual.source)
    _containment(dual.target)
    # the children of any box partition its point slice
    # (``Box.children`` holds the children's Morton keys)
    for tree in (dual.source, dual.target):
        for box in tree.boxes:
            if box.children:
                kids = [tree.box(k) for k in box.children]
                assert kids[0].start == box.start
                assert kids[-1].stop == box.stop
                for a, b in zip(kids, kids[1:]):
                    assert a.stop == b.start


# -- interaction-list disjointness ------------------------------------------------


@settings(derandomize=True, max_examples=8, deadline=None)
@given(cloud_cfg)
def test_interaction_lists_near_far_disjoint(cfg):
    seed, n, threshold = cfg
    rng = np.random.default_rng(seed)
    sources = rng.random((n, 3))
    targets = rng.random((n, 3))
    dual = build_dual_tree(sources, targets, threshold)
    lists = build_lists(dual)
    all_targets = (
        set(lists.l1) | set(lists.l2) | set(lists.l3) | set(lists.l4)
    )
    for tgt in all_targets:
        near = lists.l1.get(tgt, [])
        far = (
            lists.l2.get(tgt, [])
            + lists.l3.get(tgt, [])
            + lists.l4.get(tgt, [])
        )
        # no duplicates within any one list
        for lname in ("l1", "l2", "l3", "l4"):
            entries = getattr(lists, lname).get(tgt, [])
            assert len(entries) == len(set(entries)), (tgt, lname)
        # near (direct S->T) and far (expansion-mediated) never overlap:
        # a source box handled both ways would be double-counted
        assert not set(near) & set(far), tgt
