"""memput/memget, trace export, weight re-evaluation, the SVI estimator."""

import numpy as np
import pytest

from repro.analysis.utilization import estimate_priority_gain
from repro.hpx import Parcel, Runtime, RuntimeConfig
from repro.hpx.scheduler import Task
from repro.hpx.tracing import Tracer


def test_memget_remote_roundtrip():
    rt = Runtime(RuntimeConfig(n_localities=2, workers_per_locality=1))
    addr = rt.gas.alloc(1, {"payload": 7})
    got = {}

    def start(ctx):
        ctx.charge("start", 1e-6)
        fut = rt.memget(ctx, addr, size_bytes=128)
        fut.on_trigger(lambda c: got.update(value=fut.value))

    rt.enqueue_task(Task(fn=start, op_class="start"), 0)
    t = rt.run()
    assert got["value"] == {"payload": 7}
    # two network hops: strictly slower than a local computation
    assert t > 2e-6


def test_memget_local_is_fast():
    rt = Runtime(RuntimeConfig(n_localities=2, workers_per_locality=1))
    addr = rt.gas.alloc(0, 42)
    got = {}

    def start(ctx):
        ctx.charge("start", 1e-6)
        fut = rt.memget(ctx, addr)
        fut.on_trigger(lambda c: got.update(value=fut.value))

    rt.enqueue_task(Task(fn=start, op_class="start"), 0)
    rt.run()
    assert got["value"] == 42


def test_memput_remote():
    rt = Runtime(RuntimeConfig(n_localities=2, workers_per_locality=1))
    addr = rt.gas.alloc(1, "old")

    def start(ctx):
        ctx.charge("start", 1e-6)
        rt.memput(ctx, addr, "new", size_bytes=256)

    rt.enqueue_task(Task(fn=start, op_class="start"), 0)
    rt.run()
    assert rt.gas.translate(addr, 1) == "new"


def test_trace_csv_roundtrip(tmp_path):
    tr = Tracer()
    tr.record(0, "S2M", 0.0, 1.5e-6)
    tr.record(3, "I2I", 2e-6, 2.5e-6)
    path = tmp_path / "trace.csv"
    tr.to_csv(path)
    tr2 = Tracer.from_csv(path)
    assert tr2.classes == tr.classes
    assert tr2.busy_time() == pytest.approx(tr.busy_time())
    assert tr2.events()[0].worker == 0


def test_reevaluate_with_new_weights(laplace, laplace_factory):
    """The iterative use case: one DAG, many right-hand sides."""
    from repro.dashmm import DashmmEvaluator
    from repro.methods.direct import direct_potentials
    from repro.tree.dualtree import build_dual_tree
    from repro.tree.lists import build_lists

    rng = np.random.default_rng(9)
    n = 800
    src = rng.uniform(0, 1, (n, 3))
    tgt = rng.uniform(0, 1, (n, 3))
    w1 = rng.normal(size=n)
    w2 = rng.normal(size=n)

    dual = build_dual_tree(src, tgt, 30, source_weights=w1)
    lists = build_lists(dual)
    ev = DashmmEvaluator(
        laplace,
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=2),
        factory=laplace_factory,
    )
    dag, lists = ev.build_dag(dual, lists)
    r1 = ev.evaluate(src, w1, tgt, dual=dual, lists=lists, dag=dag)
    dual.source.set_weights(w2)
    r2 = ev.evaluate(src, w2, tgt, dual=dual, lists=lists, dag=dag)
    for w, rep in ((w1, r1), (w2, r2)):
        exact = direct_potentials(laplace, tgt, src, w)
        err = np.linalg.norm(rep.potentials - exact) / np.linalg.norm(exact)
        assert err < 1e-3


def test_set_weights_validates_shape(laplace):
    from repro.tree.dualtree import build_dual_tree

    rng = np.random.default_rng(10)
    src = rng.uniform(0, 1, (50, 3))
    dual = build_dual_tree(src, src, 30, source_weights=np.ones(50))
    with pytest.raises(ValueError):
        dual.source.set_weights(np.ones(49))


def test_estimate_priority_gain():
    fk = np.ones(100) * 0.9
    fk[70:90] = 0.2  # starved region of width 20 bins
    gain = estimate_priority_gain(fk)
    # compressing ~20 bins at 0.2 utilization into plateau-rate work
    assert 0.1 < gain < 0.2


def test_estimate_priority_gain_saturated():
    assert estimate_priority_gain(np.ones(100)) == pytest.approx(0.0, abs=1e-9)
