"""Hypothesis properties of the DAG schema validator.

Two sides of the same coin:

* **Soundness of the builder**: over randomly generated point clouds
  (uniform, clustered, degenerate-planar; random sizes and thresholds),
  every graph the declarative builder materializes - for every built-in
  method - passes validation.
* **Completeness of the validator**: seeded structural corruption of a
  valid graph (dropped edge, wrong operator kind, degree violation,
  level inversion) always raises :class:`SchemaValidationError`, and
  the error names the offending node or edge.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import DagBuilder, SchemaValidationError, method_schema, validate_dag
from repro.methods.barneshut import mac_pairs
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists

METHODS = ("fmm", "fmm-basic", "bh")


def _cloud(seed: int, n: int, shape: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    if shape == "uniform":
        return rng.random((n, 3))
    if shape == "clustered":
        centers = rng.random((3, 3))
        who = rng.integers(0, 3, n)
        return np.clip(centers[who] + rng.normal(scale=0.04, size=(n, 3)), 0, 1)
    # degenerate: all points near one plane (deep anisotropic refinement)
    pts = rng.random((n, 3))
    pts[:, 2] = 0.5 + 0.01 * rng.random(n)
    return pts


def _build(method: str, seed: int, n: int, shape: str, threshold: int):
    pts = _cloud(seed, n, shape)
    dual = build_dual_tree(pts, pts, threshold)
    schema = method_schema(method)
    builder = DagBuilder(schema, validate=False)
    if method == "bh":
        dag = builder.build(dual, mac_pairs=mac_pairs(dual, 0.5))
    else:
        dag = builder.build(dual, lists=build_lists(dual))
    return schema, dag


cloud_params = st.tuples(
    st.integers(0, 10_000),
    st.integers(40, 160),
    st.sampled_from(("uniform", "clustered", "planar")),
    st.sampled_from((8, 15, 30)),
)


@settings(max_examples=12, deadline=None)
@given(params=cloud_params, method=st.sampled_from(METHODS))
def test_random_trees_always_validate(params, method):
    seed, n, shape, threshold = params
    schema, dag = _build(method, seed, n, shape, threshold)
    validate_dag(schema, dag)  # must not raise


def _edges(dag):
    return [e for oe in dag.out_edges for e in oe]


def _assert_structured(err: SchemaValidationError, dag):
    """The error names a real element of the graph it rejects."""
    assert err.rule
    assert err.node is not None or err.edge is not None
    if err.node is not None:
        assert 0 <= err.node < len(dag.nodes)
        assert str(err.node) in str(err) or dag.nodes[err.node].kind in str(err)
    if err.edge is not None:
        src, dst, op = err.edge
        assert op in str(err) or f"{src}->{dst}" in str(err)


@settings(max_examples=10, deadline=None)
@given(
    params=cloud_params,
    method=st.sampled_from(METHODS),
    pick=st.integers(0, 1 << 30),
)
def test_dropped_edge_always_rejected(params, method, pick):
    seed, n, shape, threshold = params
    schema, dag = _build(method, seed, n, shape, threshold)
    edges = _edges(dag)
    victim = edges[pick % len(edges)]
    dag.out_edges[victim.src].remove(victim)
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(schema, dag)
    # a dropped edge surfaces as a stale in-degree table or, for a
    # mandatory edge, as a degree-bound violation
    assert err.value.rule in ("in-degree-table", "in-degree", "out-degree")
    _assert_structured(err.value, dag)


@settings(max_examples=10, deadline=None)
@given(
    params=cloud_params,
    method=st.sampled_from(METHODS),
    pick=st.integers(0, 1 << 30),
    op=st.sampled_from(("Q2Q", "P2P", "")),
)
def test_wrong_operator_kind_always_rejected(params, method, pick, op):
    seed, n, shape, threshold = params
    schema, dag = _build(method, seed, n, shape, threshold)
    edges = _edges(dag)
    victim = edges[pick % len(edges)]
    victim.op = op
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(schema, dag)
    assert err.value.rule == "edge-op"
    assert err.value.edge == (victim.src, victim.dst, op)
    _assert_structured(err.value, dag)


@settings(max_examples=10, deadline=None)
@given(
    params=cloud_params,
    method=st.sampled_from(METHODS),
    pick=st.integers(0, 1 << 30),
)
def test_degree_violation_always_rejected(params, method, pick):
    """Duplicating an S2M edge (with a consistent in-degree table)
    violates the kind's uniqueness/fan-in declaration."""
    import copy

    seed, n, shape, threshold = params
    schema, dag = _build(method, seed, n, shape, threshold)
    s2m = [e for e in _edges(dag) if e.op == "S2M"]
    victim = s2m[pick % len(s2m)]
    dag.out_edges[victim.src].append(copy.copy(victim))
    dag.in_degree[victim.dst] += 1
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(schema, dag)
    assert err.value.rule in ("edge-multiplicity", "in-degree")
    assert err.value.node == victim.dst
    _assert_structured(err.value, dag)


@settings(max_examples=10, deadline=None)
@given(
    params=cloud_params,
    method=st.sampled_from(METHODS),
    pick=st.integers(0, 1 << 30),
)
def test_level_inversion_always_rejected(params, method, pick):
    seed, n, shape, threshold = params
    schema, dag = _build(method, seed, n, shape, threshold)
    m2m = [e for e in _edges(dag) if e.op == "M2M"]
    victim = m2m[pick % len(m2m)]
    # invert the parent/child level relation on the destination node
    dag.nodes[victim.dst].level = dag.nodes[victim.src].level + 1
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(schema, dag)
    assert err.value.rule in ("edge-level", "node-level")
    _assert_structured(err.value, dag)
