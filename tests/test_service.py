"""EvaluatorSession: the persistent evaluation layer.

The correctness bar is *bit-identity*: every ``submit()`` must return
exactly the floats a cold-start evaluation of the same inputs would -
on the warm repeat-shape path, after weights-only updates, after an
incremental tree splice, and after a shape change.  On top of that the
warm path must provably do zero structural work: the module counters in
``repro.tree.dualtree``/``repro.tree.lists``/``repro.dashmm.dag``
record every tree carve, interaction-list build and DAG assembly.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.dashmm.dag as dag_mod
import repro.tree.dualtree as dualtree_mod
import repro.tree.lists as lists_mod
from repro.dashmm import DashmmEvaluator, EvaluatorSession
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel


@pytest.fixture(scope="module")
def kernel():
    return LaplaceKernel(5)


@pytest.fixture(scope="module")
def factory(kernel):
    return OperatorFactory(kernel, eps=1e-4)


@pytest.fixture()
def evaluator(kernel, factory):
    return DashmmEvaluator(
        kernel,
        method="fmm",
        threshold=25,
        runtime_config=RuntimeConfig(n_localities=3),
        factory=factory,
    )


@pytest.fixture()
def cloud():
    rng = np.random.default_rng(5)
    n = 700
    return rng, rng.uniform(0, 1, (n, 3)), rng.normal(size=n)


def _counters():
    return (
        dict(dualtree_mod.COUNTERS),
        dict(lists_mod.COUNTERS),
        dict(dag_mod.COUNTERS),
    )


def test_first_submit_matches_cold_evaluate(evaluator, cloud):
    rng, pts, w = cloud
    cold = evaluator.evaluate(pts, w, pts).potentials
    with EvaluatorSession(evaluator) as sess:
        assert np.array_equal(sess.submit(pts, w), cold)


def test_warm_repeat_zero_structural_work(evaluator, cloud):
    rng, pts, w = cloud
    cold = evaluator.evaluate(pts, w, pts).potentials
    with EvaluatorSession(evaluator) as sess:
        first = sess.submit(pts, w)
        trees, lists, dags = _counters()  # snapshot AFTER the cold paths
        for _ in range(3):
            warm = sess.submit(pts, w)
            assert np.array_equal(warm, cold)
        assert np.array_equal(first, cold)
        # zero tree carving, zero list builds, zero DAG assemblies
        assert _counters() == (trees, lists, dags)
        assert sess.stats["template_hits"] == 3
        assert sess.stats["template_misses"] == 1


def test_weights_only_update(evaluator, cloud):
    rng, pts, w = cloud
    w2 = rng.normal(size=len(w))
    cold = evaluator.evaluate(pts, w2, pts).potentials
    with EvaluatorSession(evaluator) as sess:
        sess.submit(pts, w)
        trees, lists, dags = _counters()
        assert np.array_equal(sess.submit(pts, w2), cold)
        assert _counters() == (trees, lists, dags)
        assert sess.stats["tree_updates"][-1]["source"] == "unchanged"


def test_incremental_move_bit_identical(evaluator, cloud):
    rng, pts, w = cloud
    # move <=1% of the points slightly, staying inside the pinned domain
    pts2 = pts.copy()
    idx = rng.choice(len(pts), size=len(pts) // 100, replace=False)
    pts2[idx] = np.clip(
        pts2[idx] + rng.normal(scale=1e-3, size=(len(idx), 3)), pts.min(), pts.max()
    )
    with EvaluatorSession(evaluator) as sess:
        sess.submit(pts, w)
        warm = sess.submit(pts2, w)
        info = sess.stats["tree_updates"][-1]
        assert info["source"] in ("unchanged", "spliced")
        # a cold-start session over the same pinned frame is the reference
        with EvaluatorSession(evaluator, domain=sess.domain) as cold_sess:
            assert np.array_equal(warm, cold_sess.submit(pts2, w))


def test_shape_change_then_return_hits_template(evaluator, cloud):
    rng, pts, w = cloud
    # shrink the cloud into a subcube: denser cells force deeper
    # refinement, so the tree *shape* changes (uniform jitter would not)
    pts2 = 0.4 * pts + 0.1
    with EvaluatorSession(evaluator) as sess:
        sess.submit(pts, w)
        misses0 = sess.stats["template_misses"]
        out2 = sess.submit(pts2, w)
        assert sess.stats["template_misses"] == misses0 + 1
        with EvaluatorSession(evaluator, domain=sess.domain) as cold_sess:
            assert np.array_equal(out2, cold_sess.submit(pts2, w))
        # returning to the original geometry re-hits the cached template
        hits0 = sess.stats["template_hits"]
        sess.submit(pts, w)
        assert sess.stats["template_hits"] == hits0 + 1
        assert sess.stats["template_misses"] == misses0 + 1


def test_factory_stats_accumulate_across_submits(evaluator, cloud):
    rng, pts, w = cloud
    factory = evaluator.factory
    with EvaluatorSession(evaluator) as sess:
        sess.submit(pts, w)
        stats1 = factory.cache_stats()
        sess.submit(pts, w)
        sess.submit(pts, rng.normal(size=len(w)))
        stats2 = factory.cache_stats()
        # persistent across submits: hits keep growing, never reset...
        assert stats2["hits"] > stats1["hits"]
        # ...and the warm path refits nothing
        assert stats2["misses"] == stats1["misses"]
        # a shape change re-fits at most the operators of genuinely new
        # (op, geometry) signatures - and the *template* misses exactly once
        misses_before = sess.stats["template_misses"]
        pts2 = 0.4 * pts + 0.1  # shrink: forces a genuine shape change
        sess.submit(pts2, w)
        assert sess.stats["template_misses"] == misses_before + 1
        sess.submit(pts2, w)
        assert sess.stats["template_misses"] == misses_before + 1


def test_submit_many_coalesces_and_preserves_order(evaluator, cloud):
    rng, pts, w = cloud
    ptsB = rng.uniform(0, 1, pts.shape)
    w2 = rng.normal(size=len(w))
    with EvaluatorSession(evaluator) as sess:
        refA1 = sess.submit(pts, w)
        refB = sess.submit(ptsB, w)
        refA2 = sess.submit(pts, w2)
    with EvaluatorSession(evaluator) as sess:
        # interleaved geometries: the batcher groups A, A then B
        out = sess.submit_many([(pts, w), (ptsB, w), (pts, w2)])
        assert np.array_equal(out[0], refA1)
        assert np.array_equal(out[2], refA2)
        assert np.allclose(out[1], refB)


def test_template_key_includes_schema_fingerprint(evaluator, cloud):
    """The template LRU keys on (declared-schema fingerprint, tree
    shape): a repeated shape under the same schema hits, swapping the
    method - same points, same shape - misses instead of replaying the
    other method's graph, and the results stay bit-identical to cold
    evaluation per method."""
    rng, pts, w = cloud
    cold_basic = DashmmEvaluator(
        evaluator.kernel,
        method="fmm-basic",
        threshold=evaluator.threshold,
        runtime_config=evaluator.runtime_config,
        factory=evaluator.factory,
    ).evaluate(pts, w, pts).potentials
    with EvaluatorSession(evaluator) as sess:
        first = sess.submit(pts, w)
        hits0, misses0 = sess.stats["template_hits"], sess.stats["template_misses"]
        # same schema, same shape: hit
        sess.submit(pts, w)
        assert sess.stats["template_hits"] == hits0 + 1
        # schema change (method swap), same points hence same shape: miss
        evaluator.method = "fmm-basic"
        out_basic = sess.submit(pts, w)
        assert sess.stats["template_misses"] == misses0 + 1
        assert np.array_equal(out_basic, cold_basic)
        # both templates stay cached under their own schema token
        evaluator.method = "fmm"
        hits1 = sess.stats["template_hits"]
        assert np.array_equal(sess.submit(pts, w), first)
        assert sess.stats["template_hits"] == hits1 + 1
        assert sess.stats["template_misses"] == misses0 + 1


def test_barnes_hut_session(kernel, factory, cloud):
    rng, pts, w = cloud
    ev = DashmmEvaluator(
        kernel,
        method="bh",
        threshold=25,
        theta=0.5,
        runtime_config=RuntimeConfig(n_localities=2),
        factory=factory,
    )
    cold = ev.evaluate(pts, w, pts).potentials
    with EvaluatorSession(ev) as sess:
        assert np.array_equal(sess.submit(pts, w), cold)
        assert np.array_equal(sess.submit(pts, w), cold)


def test_session_rejects_phantom_mode(kernel):
    ev = DashmmEvaluator(kernel, mode="phantom")
    with pytest.raises(ValueError):
        EvaluatorSession(ev)


@pytest.mark.parallel
def test_parallel_session_bit_identical():
    rng = np.random.default_rng(7)
    n = 350
    pts = rng.random((n, 3))
    w = rng.random(n)
    kern = LaplaceKernel(4)
    fac = OperatorFactory(kern, eps=1e-4)
    ev_par = DashmmEvaluator(
        kern,
        method="fmm",
        threshold=20,
        runtime_config=RuntimeConfig(
            backend="parallel", n_localities=2, start_method="spawn"
        ),
        factory=fac,
    )
    ev_sim = DashmmEvaluator(
        kern,
        method="fmm",
        threshold=20,
        runtime_config=RuntimeConfig(n_localities=2),
        factory=fac,
    )
    cold = ev_par.evaluate(pts, w, pts).potentials
    with EvaluatorSession(ev_par) as sess, EvaluatorSession(ev_sim) as sim:
        # cold + warm repeat: workers persist, result matches a cold run
        assert np.array_equal(sess.submit(pts, w), cold)
        assert np.array_equal(sess.submit(pts, w), cold)
        assert np.array_equal(sim.submit(pts, w), cold)
        # weights-only and incremental-move rounds against the sim session
        w2 = rng.random(n)
        assert np.array_equal(sess.submit(pts, w2), sim.submit(pts, w2))
        pts2 = pts.copy()
        idx = rng.choice(n, size=4, replace=False)
        pts2[idx] = np.clip(
            pts2[idx] + rng.normal(scale=1e-3, size=(4, 3)), pts.min(), pts.max()
        )
        assert np.array_equal(sess.submit(pts2, w2), sim.submit(pts2, w2))


def _parallel_evaluator(n_localities=2, threshold=20):
    kern = LaplaceKernel(4)
    return DashmmEvaluator(
        kern,
        method="fmm",
        threshold=threshold,
        runtime_config=RuntimeConfig(
            backend="parallel", n_localities=n_localities, start_method="spawn"
        ),
        factory=OperatorFactory(kern, eps=1e-4),
    )


@pytest.mark.parallel
def test_round_survives_worker_kill():
    """A worker killed between rounds: respawn + re-drive, same bits."""
    rng = np.random.default_rng(11)
    n = 300
    pts = rng.random((n, 3))
    w = rng.random(n)
    with EvaluatorSession(_parallel_evaluator()) as sess:
        cold = sess.submit(pts, w)
        svc = sess._parallel
        victim = svc._procs[0]
        victim.terminate()
        victim.join(timeout=10.0)
        # the next round detects the casualty, respawns the fleet from
        # the retained spec/manifest and re-drives - bit-identically
        out = sess.submit(pts, w)
        assert np.array_equal(out, cold)
        assert svc.respawns == 1
        assert sess._parallel is svc  # same service, recovered in place
        assert svc.round_stats[-1]["respawns"] == 1
        # the recovered fleet keeps serving warm rounds
        w2 = rng.random(n)
        assert np.array_equal(sess.submit(pts, w2), sess.submit(pts, w2))


@pytest.mark.parallel
def test_worker_kill_without_respawn_budget_fails_cleanly():
    """Exhausted respawn budget: tear down, raise once, raise clearly after."""
    from repro.hpx.gas import ShmArena
    from repro.hpx.parallel import ParallelError

    rng = np.random.default_rng(12)
    n = 300
    pts = rng.random((n, 3))
    w = rng.random(n)
    with EvaluatorSession(_parallel_evaluator()) as sess:
        cold = sess.submit(pts, w)
        svc = sess._parallel
        svc.max_respawns = 0
        svc._procs[1].terminate()
        svc._procs[1].join(timeout=10.0)
        with pytest.raises(ParallelError):
            sess.submit(pts, w)
        # no workers left alive and blocked on inboxes, no arena leak
        assert svc._procs == []
        assert svc._arena is None
        # the failed service raises clearly instead of hanging
        with pytest.raises(ParallelError, match="failed"):
            svc.submit(pts, w, pts)
        # the session dropped the dead service and recovers with a
        # fresh fleet on the next submit
        assert sess._parallel is None
        assert np.array_equal(sess.submit(pts, w), cold)
    assert ShmArena.leaked() == []
