"""Runtime facade: actions, parcels, progress accounting."""

import pytest

from repro.hpx import Parcel, Runtime, RuntimeConfig
from repro.hpx.network import InfiniteNetwork
from repro.hpx.scheduler import Task


def test_action_registration_and_dispatch():
    rt = Runtime(RuntimeConfig(n_localities=2, workers_per_locality=1))
    seen = []
    rt.register_action("ping", lambda ctx, target, v: seen.append((target, v)))
    rt.scheduler.post_parcel_arrival(Parcel(action="ping", target=1, args=(42,)), 0.0)
    rt.run()
    assert seen == [(1, 42)]


def test_duplicate_action_rejected():
    rt = Runtime(RuntimeConfig())
    rt.register_action("a", lambda ctx, t: None)
    with pytest.raises(ValueError):
        rt.register_action("a", lambda ctx, t: None)


def test_unregistered_action_raises():
    rt = Runtime(RuntimeConfig())
    rt.scheduler.post_parcel_arrival(Parcel(action="missing", target=0), 0.0)
    with pytest.raises(KeyError):
        rt.run()


def test_remote_parcel_takes_network_time():
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=0.0)
    rt = Runtime(cfg)
    times = []

    def sender(ctx):
        ctx.charge("send", 1e-6)
        ctx.send_parcel(Parcel(action="recv", target=1, size_bytes=6000, op_class="recv"))

    rt.register_action("recv", lambda ctx, t: times.append(ctx.time))
    rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
    rt.run()
    # 1us task + 0.3us overhead + 6000B/6GBps = 1us + 1.5us latency
    assert times[0] == pytest.approx(1e-6 + 0.3e-6 + 1e-6 + 1.5e-6, rel=1e-6)


def test_local_parcel_is_immediate():
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=0.0)
    rt = Runtime(cfg)
    times = []

    def sender(ctx):
        ctx.charge("send", 1e-6)
        ctx.send_parcel(Parcel(action="recv", target=0, size_bytes=6000))

    rt.register_action("recv", lambda ctx, t: times.append(ctx.time))
    rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
    rt.run()
    assert times[0] == pytest.approx(1e-6)


def test_progress_cost_charged_for_remote_only():
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=1e-6)
    rt = Runtime(cfg)

    def sender(ctx):
        ctx.charge("send", 1e-6)
        ctx.send_parcel(Parcel(action="recv", target=1, size_bytes=64))
        ctx.send_parcel(Parcel(action="recv", target=0, size_bytes=64))

    rt.register_action("recv", lambda ctx, t: None)
    rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
    rt.run()
    assert rt.tracer.busy_time("_progress") == pytest.approx(1e-6)  # one remote


def test_stats_shape():
    rt = Runtime(RuntimeConfig(n_localities=2, workers_per_locality=4))
    rt.run()
    s = rt.stats()
    assert s["cores"] == 8
    assert set(s) >= {"time", "tasks_run", "steals", "parcels_sent", "remote_bytes"}


def test_measured_costs_mode():
    cfg = RuntimeConfig(
        n_localities=1, workers_per_locality=1, measure_costs=True, measure_scale=1.0
    )
    rt = Runtime(cfg)

    def spin(ctx):
        x = 0
        for i in range(20000):
            x += i

    rt.enqueue_task(Task(fn=spin, op_class="spin"), 0)
    t = rt.run()
    assert t > 0.0  # wall time was measured and applied to the clock


def test_memget_remote_round_trip_pays_two_parcels():
    """A remote get rides a request parcel out and a reply parcel home."""
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=0.0)
    rt = Runtime(cfg)
    box = rt.gas.alloc(1, "payload")
    got, when = [], []

    def starter(ctx):
        ctx.charge("go", 1e-6)
        fut = rt.memget(ctx, box, size_bytes=6000)
        fut.on_trigger(lambda c: (got.append(fut.value), when.append(c.time)))

    rt.enqueue_task(Task(fn=starter, op_class="go"), 0)
    rt.run()
    assert got == ["payload"]
    # request: 64B out; reply: 6000B back.  Each leg pays overhead +
    # transfer + latency, so the value cannot appear after one leg only.
    one_way = 0.3e-6 + 6000 / 6.0e9 + 1.5e-6
    assert when[0] >= 1e-6 + 2 * (0.3e-6 + 1.5e-6)
    assert when[0] >= 1e-6 + one_way  # the data leg alone
    assert rt.stats()["parcels_sent"] >= 2


def test_memget_reply_lands_on_requesting_locality():
    """_memget_reply resolves the future at its home, not the data's home."""
    cfg = RuntimeConfig(n_localities=3, workers_per_locality=1, progress_cost=0.0)
    rt = Runtime(cfg)
    box = rt.gas.alloc(2, {"k": 7})
    out = []

    def starter(ctx):
        ctx.charge("go", 1e-6)
        fut = rt.memget(ctx, box)
        assert fut.addr.locality == 0  # future lives with the requester
        fut.on_trigger(lambda c: out.append((c.locality, fut.value)))

    rt.enqueue_task(Task(fn=starter, op_class="go"), 0)
    rt.run()
    assert out == [(0, {"k": 7})]


def test_memget_local_skips_network():
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=0.0)
    rt = Runtime(cfg)
    box = rt.gas.alloc(0, "near")
    got = []

    def starter(ctx):
        ctx.charge("go", 1e-6)
        fut = rt.memget(ctx, box)
        fut.on_trigger(lambda c: got.append(fut.value))

    rt.enqueue_task(Task(fn=starter, op_class="go"), 0)
    rt.run()
    assert got == ["near"]
    assert rt.stats()["remote_bytes"] == 0


def test_runtimes_from_shared_config_do_not_share_network():
    """Two runtimes built from one config must not alias NIC state.

    Before the fix, both runtimes mutated the config's NetworkModel, so
    the second run inherited the first run's NIC busy-times (and a
    shared FaultyNetwork RNG), breaking reproducibility.
    """
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=1, progress_cost=0.0)

    def ping_time():
        rt = Runtime(cfg)
        times = []

        def sender(ctx):
            ctx.charge("send", 1e-6)
            ctx.send_parcel(
                Parcel(action="recv", target=1, size_bytes=6_000_000, op_class="recv")
            )

        rt.register_action("recv", lambda ctx, t: times.append(ctx.time))
        rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
        rt.run()
        assert rt.network is not cfg.network
        return times[0]

    assert ping_time() == ping_time()  # identical, not serialized after the first
    assert cfg.network._nic_free == {}  # the config's instance was never touched
