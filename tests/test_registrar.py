"""Registrar internals: task accounting, LCO wiring, phantom costs."""

import numpy as np
import pytest

from repro.dashmm import DashmmEvaluator, FmmPolicy
from repro.dashmm.registrar import CRITICAL_OPS, FILLER_OPS, Registrar
from repro.hpx.runtime import Runtime, RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(50)
    n = 2500
    src = rng.uniform(0, 1, (n, 3))
    tgt = rng.uniform(0, 1, (n, 3))
    w = rng.normal(size=n)
    dual = build_dual_tree(src, tgt, 30, source_weights=w)
    lists = build_lists(dual)
    ev = DashmmEvaluator(LaplaceKernel(8), mode="phantom")
    dag, _ = ev.build_dag(dual, lists)
    return src, w, tgt, dual, lists, dag


def _registrar(dag, dual, priorities=False, coalesce=True):
    cfg = RuntimeConfig(n_localities=3, workers_per_locality=2, priorities=priorities)
    rt = Runtime(cfg)
    FmmPolicy().assign(dag, dual, 3)
    reg = Registrar(rt, dag, dual, LaplaceKernel(8), None, mode="phantom", coalesce=coalesce)
    return rt, reg


def test_lco_count_equals_nodes_with_inputs(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual)
    reg.allocate()
    expected = sum(
        1 for n in dag.nodes if n.kind != "S" and dag.in_degree[n.id] > 0
    )
    assert len(reg.lcos) == expected


def test_initial_tasks_one_per_s_node(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual)
    reg.allocate()
    n_tasks = reg.initial_tasks()
    n_s = sum(1 for n in dag.nodes if n.kind == "S" and dag.out_edges[n.id])
    assert n_tasks == n_s


def test_initial_tasks_split_under_priorities(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual, priorities=True)
    reg.allocate()
    n_tasks = reg.initial_tasks()
    n_s = sum(1 for n in dag.nodes if n.kind == "S" and dag.out_edges[n.id])
    assert n_tasks > n_s  # critical + filler groups


def test_all_lcos_trigger(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual)
    reg.allocate()
    reg.initial_tasks()
    rt.run()
    assert all(l.triggered for l in reg.lcos.values())


def test_trace_covers_every_edge_class(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual)
    reg.allocate()
    reg.initial_tasks()
    rt.run()
    ops_in_dag = {e.op for edges in dag.out_edges for e in edges}
    traced = set(rt.tracer.classes)
    assert ops_in_dag <= traced


def test_edge_work_conserved_across_cluster_shapes(setup):
    """Total per-class busy time is schedule-independent."""
    _, _, _, dual, _, dag = setup

    def busy(L, W, seed):
        cfg = RuntimeConfig(n_localities=L, workers_per_locality=W, steal_seed=seed)
        rt = Runtime(cfg)
        FmmPolicy().assign(dag, dual, L)
        reg = Registrar(rt, dag, dual, LaplaceKernel(8), None, mode="phantom")
        reg.allocate()
        reg.initial_tasks()
        rt.run()
        return {c: rt.tracer.busy_time(c) for c in ("S2M", "I2I", "L2T", "S2T")}

    a = busy(2, 2, 1)
    b = busy(4, 3, 99)
    for c in a:
        assert a[c] == pytest.approx(b[c], rel=1e-9)


def test_critical_and_filler_ops_partition_edge_classes():
    from repro.dashmm.dag import EDGE_OPS

    assert set(CRITICAL_OPS) | set(FILLER_OPS) == set(EDGE_OPS)
    assert not set(CRITICAL_OPS) & set(FILLER_OPS)


def test_runtime_overhead_traced_for_remote_edges(setup):
    _, _, _, dual, _, dag = setup
    rt, reg = _registrar(dag, dual)
    reg.allocate()
    reg.initial_tasks()
    rt.run()
    if rt.scheduler.parcels_sent > 0:
        assert rt.tracer.busy_time("_runtime") > 0


def test_single_locality_no_parcels(setup):
    _, _, _, dual, _, dag = setup
    cfg = RuntimeConfig(n_localities=1, workers_per_locality=4)
    rt = Runtime(cfg)
    FmmPolicy().assign(dag, dual, 1)
    reg = Registrar(rt, dag, dual, LaplaceKernel(8), None, mode="phantom")
    reg.allocate()
    reg.initial_tasks()
    rt.run()
    assert rt.scheduler.remote_bytes == 0
    assert rt.tracer.busy_time("_runtime") == 0.0
