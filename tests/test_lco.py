"""LCO semantics: predicates, continuations, late registration."""

import pytest

from repro.hpx import AndLCO, Future, LCOError, ReductionLCO, Runtime, RuntimeConfig
from repro.hpx.scheduler import Task


def _rt(**kw):
    return Runtime(RuntimeConfig(n_localities=1, workers_per_locality=2, **kw))


def _setter(rt, lco, value=None, at=0.0):
    rt.enqueue_task(
        Task(fn=lambda ctx: ctx.lco_set(lco, value), op_class="set", cost=1e-6), 0
    )


def test_future_triggers_once():
    rt = _rt()
    fut = Future(rt, 0)
    seen = []
    fut.on_trigger(lambda ctx: seen.append(fut.value))
    _setter(rt, fut, "hello")
    rt.run()
    assert fut.triggered
    assert seen == ["hello"]


def test_future_double_set_is_error():
    rt = _rt()
    fut = Future(rt, 0)
    fut.on_trigger(lambda ctx: None)
    _setter(rt, fut, 1)
    _setter(rt, fut, 2)
    with pytest.raises(RuntimeError):
        rt.run()


def test_and_lco_counts():
    rt = _rt()
    lco = AndLCO(rt, 0, n_inputs=3)
    seen = []
    lco.on_trigger(lambda ctx: seen.append("done"))
    for _ in range(3):
        _setter(rt, lco)
    rt.run()
    assert seen == ["done"]


def test_and_lco_not_triggered_early():
    rt = _rt()
    lco = AndLCO(rt, 0, n_inputs=3)
    lco.on_trigger(lambda ctx: None)
    _setter(rt, lco)
    _setter(rt, lco)
    rt.run()
    assert not lco.triggered


def test_reduction_sums_inputs():
    rt = _rt()
    red = ReductionLCO(rt, 0, 4, lambda a, b: a + b, 0)
    out = []
    red.on_trigger(lambda ctx: out.append(red.value))
    for v in (1, 2, 3, 4):
        _setter(rt, red, v)
    rt.run()
    assert out == [10]


def test_continuation_after_trigger_runs_immediately():
    rt = _rt()
    fut = Future(rt, 0)
    _setter(rt, fut, 99)
    rt.run()
    assert fut.triggered
    # register after trigger: must still run (Fig. 2 backfill semantics)
    late = []
    fut.on_trigger(lambda ctx: late.append(fut.value))
    rt.run()
    assert late == [99]


def test_multiple_continuations_all_run():
    rt = _rt()
    lco = AndLCO(rt, 0, 1)
    seen = []
    for i in range(5):
        lco.on_trigger(lambda ctx, i=i: seen.append(i))
    _setter(rt, lco)
    rt.run()
    assert sorted(seen) == [0, 1, 2, 3, 4]


def test_lco_lives_in_gas():
    rt = _rt()
    fut = Future(rt, 0)
    assert rt.gas.translate(fut.addr, 0) is fut


def test_invalid_input_counts():
    rt = _rt()
    with pytest.raises(ValueError):
        AndLCO(rt, 0, 0)
    with pytest.raises(ValueError):
        ReductionLCO(rt, 0, 0, lambda a, b: a, None)


def test_chained_dataflow():
    """LCO triggering spawns a task that sets the next LCO (a pipeline)."""
    rt = _rt()
    a = Future(rt, 0)
    b = Future(rt, 0)
    c = Future(rt, 0)

    def forward(dst):
        def body(ctx):
            ctx.charge("fwd", 1e-6)
            ctx.lco_set(dst, "token")

        return body

    a.on_trigger(forward(b), op_class="fwd")
    b.on_trigger(forward(c), op_class="fwd")
    _setter(rt, a, "token")
    t = rt.run()
    assert c.triggered
    assert t >= 3e-6  # three sequential microsecond tasks


# -- structured errors and keyed dedup ----------------------------------------


def test_double_set_raises_structured_lco_error():
    """The old bare-RuntimeError path now carries LCO class and address."""
    rt = _rt()
    fut = Future(rt, 0)
    _setter(rt, fut, 1)
    _setter(rt, fut, 2)
    with pytest.raises(LCOError) as ei:
        rt.run()
    err = ei.value
    assert isinstance(err, RuntimeError)  # existing except-clauses still catch
    assert err.lco_class == "Future"
    assert err.addr == fut.addr
    assert "Future" in str(err)


def test_keyed_duplicate_raises_without_dedup():
    rt = _rt()
    lco = AndLCO(rt, 0, n_inputs=2)
    for key in ("a", "a"):
        rt.enqueue_task(
            Task(
                fn=lambda ctx, k=key: ctx.lco_set(lco, None, key=k, op_class="M2L"),
                op_class="set",
                cost=1e-6,
            ),
            0,
        )
    with pytest.raises(LCOError) as ei:
        rt.run()
    assert ei.value.key == "a"
    assert ei.value.op_class == "M2L"
    assert ei.value.lco_class == "AndLCO"


def test_keyed_duplicate_suppressed_with_dedup():
    """Under the reliable transport a retried contribution folds once."""
    rt = _rt()
    rt.scheduler.lco_dedup = True
    lco = AndLCO(rt, 0, n_inputs=2)
    seen = []
    lco.on_trigger(lambda ctx: seen.append("done"))
    for key in ("a", "a", "b"):
        rt.enqueue_task(
            Task(
                fn=lambda ctx, k=key: ctx.lco_set(lco, None, key=k),
                op_class="set",
                cost=1e-6,
            ),
            0,
        )
    rt.run()
    assert seen == ["done"]  # triggered exactly once, by the two distinct keys
    assert rt.stats()["lco_dups_suppressed"] == 1


def test_future_tolerates_post_trigger_set_under_dedup():
    """Single-assignment futures are idempotent when dedup is on."""
    rt = _rt()
    rt.scheduler.lco_dedup = True
    fut = Future(rt, 0)
    _setter(rt, fut, "first")
    _setter(rt, fut, "second")
    rt.run()
    assert fut.triggered
    assert fut.value == "first"
    assert rt.stats()["lco_dups_suppressed"] == 1


def test_non_tolerant_lco_still_rejects_post_trigger_under_dedup():
    rt = _rt()
    rt.scheduler.lco_dedup = True
    lco = AndLCO(rt, 0, n_inputs=1)
    _setter(rt, lco)
    _setter(rt, lco)  # unkeyed late input: a real protocol bug, not a retry
    with pytest.raises(LCOError):
        rt.run()
