"""Interaction-list semantics: the Fig. 1b definitions, coverage, pruning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.box import well_separated
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import adjacent, build_lists
from repro.tree.morton import decode_morton, encode_morton


def _dual(ns, nt, threshold, seed=0, offset=0.0):
    rng = np.random.default_rng(seed)
    s = rng.uniform(0, 1, (ns, 3))
    t = rng.uniform(0, 1, (nt, 3)) + offset
    return build_dual_tree(s, t, threshold, source_weights=np.ones(ns))


# -- adjacency ----------------------------------------------------------------
def test_adjacent_same_level():
    a = encode_morton(3, 2, 2, 2)
    assert adjacent(a, encode_morton(3, 3, 2, 2))
    assert adjacent(a, encode_morton(3, 3, 3, 3))
    assert adjacent(a, a)
    assert not adjacent(a, encode_morton(3, 4, 2, 2))


def test_adjacent_cross_level():
    parent = encode_morton(2, 1, 1, 1)
    child_inside = encode_morton(3, 2, 2, 2)
    assert adjacent(parent, child_inside)  # containment counts as touching
    far_child = encode_morton(3, 7, 7, 7)
    assert not adjacent(parent, far_child)
    touching_child = encode_morton(3, 4, 2, 2)
    assert adjacent(parent, touching_child)


def test_adjacent_symmetric():
    a = encode_morton(2, 1, 0, 3)
    b = encode_morton(4, 7, 2, 12)
    assert adjacent(a, b) == adjacent(b, a)


# -- list semantics ---------------------------------------------------------------
def test_l2_well_separated_same_level_parents_adjacent():
    dual = _dual(3000, 3000, 30, seed=1)
    lists = build_lists(dual)
    src, tgt = dual.source, dual.target
    assert lists.counts()["l2"] > 0
    for ti, sis in lists.l2.items():
        t = tgt.boxes[ti]
        for si in sis:
            s = src.boxes[si]
            assert s.level == t.level
            assert well_separated(t.key, s.key)
            assert adjacent(
                t.key >> 3, s.key >> 3
            ), "parents of list-2 boxes must not be well-separated"


def test_l1_leaf_adjacent():
    dual = _dual(2000, 2000, 30, seed=2)
    lists = build_lists(dual)
    src, tgt = dual.source, dual.target
    for ti, sis in lists.l1.items():
        t = tgt.boxes[ti]
        assert t.is_leaf
        for si in sis:
            s = src.boxes[si]
            assert s.is_leaf
            assert adjacent(t.key, s.key)


def test_l3_target_ws_from_box_but_not_parent():
    dual = _dual(4000, 4000, 20, seed=3)
    lists = build_lists(dual)
    src, tgt = dual.source, dual.target
    for ti, sis in lists.l3.items():
        t = tgt.boxes[ti]
        assert t.is_leaf
        for si in sis:
            s = src.boxes[si]
            assert s.level > t.level
            assert not adjacent(t.key, s.key)  # Bt well-separated from Bs
            parent = src.key_to_index[s.parent]
            assert adjacent(t.key, src.boxes[parent].key)  # but not from parent


def test_l4_coarser_leaf_ws_from_box_not_parent():
    dual = _dual(4000, 4000, 20, seed=4)
    lists = build_lists(dual)
    src, tgt = dual.source, dual.target
    for ti, sis in lists.l4.items():
        t = tgt.boxes[ti]
        for si in sis:
            s = src.boxes[si]
            assert s.is_leaf
            assert s.level < t.level
            assert not adjacent(t.key, s.key)
            assert adjacent(tgt.boxes[tgt.key_to_index[t.parent]].key, s.key)


# -- coverage: every (target point, source leaf) interaction handled once -----------
def _covering_ops(dual, lists, t_leaf, s_leaf):
    """All list entries that cover the (target leaf, source leaf) pair."""
    src, tgt = dual.source, dual.target
    hits = []
    # ancestors of both (including themselves)
    t_anc = []
    b = t_leaf
    while True:
        t_anc.append(b)
        if b.parent is None:
            break
        b = tgt.boxes[tgt.key_to_index[b.parent]]
    s_anc = []
    b = s_leaf
    while True:
        s_anc.append(b)
        if b.parent is None:
            break
        b = src.boxes[src.key_to_index[b.parent]]
    s_anc_idx = {b.index for b in s_anc}
    for ta in t_anc:
        for name, table in (("l1", lists.l1), ("l2", lists.l2), ("l3", lists.l3), ("l4", lists.l4)):
            for si in table.get(ta.index, ()):
                if si in s_anc_idx:
                    hits.append((name, ta.index, si))
    return hits


@pytest.mark.parametrize("offset,seed", [(0.0, 5), (0.5, 6), (3.0, 7)])
def test_interaction_coverage_exactly_once(offset, seed):
    """Identical / overlapping / disjoint ensembles: each (target leaf,
    source leaf) pair is covered by exactly one list entry among the
    ancestors - the FMM's correctness skeleton."""
    dual = _dual(600, 600, 15, seed=seed, offset=offset)
    lists = build_lists(dual)
    src, tgt = dual.source, dual.target
    dead = set()
    for b in tgt.boxes:  # skip anything below a pruned box
        pi = tgt.key_to_index[b.parent] if b.parent is not None else None
        if pi is not None and (pi in lists.pruned or pi in dead):
            dead.add(b.index)
    rng = np.random.default_rng(seed)
    # evaluation leaves: live leaves plus pruned boxes (which act as
    # evaluation leaves for everything below them)
    t_leaves = [
        b
        for b in tgt.boxes
        if b.count
        and b.index not in dead
        and (b.is_leaf or b.index in lists.pruned)
    ]
    s_leaves = [b for b in src.boxes if b.is_leaf and b.count]
    assert t_leaves and s_leaves
    for _ in range(300):
        t = t_leaves[rng.integers(len(t_leaves))]
        s = s_leaves[rng.integers(len(s_leaves))]
        # if t sits under a pruned box, coverage is accounted at the pruned box
        hits = _covering_ops(dual, lists, t, s)
        assert len(hits) == 1, (t.key, s.key, hits)


def test_pruned_boxes_only_for_separated_ensembles():
    dual = _dual(1000, 1000, 30, seed=8)  # identical cube: nothing prunes
    lists = build_lists(dual)
    assert not lists.pruned


def test_pruning_far_ensembles():
    rng = np.random.default_rng(9)
    s = rng.uniform(0, 0.25, (500, 3))
    t = rng.uniform(0, 0.25, (500, 3)) + 3.0
    dual = build_dual_tree(s, t, 30, source_weights=np.ones(500))
    lists = build_lists(dual)
    assert lists.pruned, "distant ensembles must prune the target sub-tree"
    # pruned boxes are not leaves and have no deeper list entries
    tgt = dual.target
    for pi in lists.pruned:
        assert not tgt.boxes[pi].is_leaf


def test_uniform_cube_has_no_adaptive_lists():
    """The paper's traced cube run exercises no M2T/S2L edges: uniform
    trees have empty lists 3 and 4."""
    # a perfectly uniform lattice of points, one per cell at level 3
    g = (np.arange(8) + 0.5) / 8.0
    pts = np.array(np.meshgrid(g, g, g)).reshape(3, -1).T
    dual = build_dual_tree(pts, pts, 1, source_weights=np.ones(len(pts)))
    lists = build_lists(dual)
    c = lists.counts()
    assert c["l3"] == 0 and c["l4"] == 0
    assert c["l1"] > 0 and c["l2"] > 0


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1), st.sampled_from([0.0, 1.5]))
def test_list_disjointness_property(seed, offset):
    """No source box appears in two different lists of one target box."""
    dual = _dual(300, 300, 10, seed=seed, offset=offset)
    lists = build_lists(dual)
    for ti in set(lists.l1) | set(lists.l2) | set(lists.l3) | set(lists.l4):
        all_entries = (
            lists.l1.get(ti, [])
            + lists.l2.get(ti, [])
            + lists.l3.get(ti, [])
            + lists.l4.get(ti, [])
        )
        assert len(all_entries) == len(set(all_entries))


def test_beta_dilation_definition_consistent_with_lattice_rule():
    """The paper's beta-dilation well-separatedness agrees with the
    lattice rule for same-level boxes."""
    import numpy as np
    from repro.tree.box import Domain, well_separated, well_separated_levels

    dom = Domain(origin=np.zeros(3), size=1.0)
    a = encode_morton(3, 2, 2, 2)
    for dx in range(-3, 4):
        for dy in range(-3, 4):
            x, y, z = 2 + dx, 2 + dy, 2
            if not (0 <= x < 8 and 0 <= y < 8):
                continue
            b = encode_morton(3, x, y, z)
            assert well_separated(a, b) == well_separated_levels(dom, a, b), (dx, dy)
