"""Property-based tests across layers (hypothesis).

The central one builds random dataflow DAGs, executes them as an LCO
network on randomly-shaped simulated clusters, and checks the sink
values against a plain topological evaluation - scheduling, stealing,
parcels and LCO semantics cannot corrupt dataflow, whatever the shape.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpx import Parcel, Runtime, RuntimeConfig
from repro.hpx.lco import ReductionLCO
from repro.hpx.scheduler import Task


@st.composite
def random_dag(draw):
    """A layered random DAG: (n_nodes, edges, weights)."""
    n_layers = draw(st.integers(2, 5))
    layer_sizes = [draw(st.integers(1, 5)) for _ in range(n_layers)]
    nodes = []
    layers = []
    for size in layer_sizes:
        layer = list(range(len(nodes), len(nodes) + size))
        nodes.extend(layer)
        layers.append(layer)
    edges = []
    for li in range(1, n_layers):
        for dst in layers[li]:
            n_in = draw(st.integers(1, min(3, len(layers[li - 1]))))
            srcs = draw(
                st.lists(
                    st.sampled_from(layers[li - 1]),
                    min_size=n_in,
                    max_size=n_in,
                    unique=True,
                )
            )
            for s in srcs:
                edges.append((s, dst))
    inputs = [draw(st.integers(-5, 5)) for _ in layers[0]]
    return layers, edges, inputs


def _reference(layers, edges, inputs):
    """Topological evaluation: each node sums its inputs."""
    vals = {}
    for i, node in enumerate(layers[0]):
        vals[node] = inputs[i]
    for layer in layers[1:]:
        for node in layer:
            vals[node] = sum(vals[s] for s, d in edges if d == node)
    return vals


@settings(max_examples=30, deadline=None)
@given(random_dag(), st.integers(1, 4), st.integers(1, 4), st.integers(0, 2**31 - 1))
def test_dataflow_matches_reference(dag, n_loc, n_workers, seed):
    layers, edges, inputs = dag
    ref = _reference(layers, edges, inputs)

    rt = Runtime(
        RuntimeConfig(n_localities=n_loc, workers_per_locality=n_workers, steal_seed=seed)
    )
    rng = np.random.default_rng(seed)
    # place each non-source node's LCO on a random locality
    in_deg = {}
    for s, d in edges:
        in_deg[d] = in_deg.get(d, 0) + 1
    lcos = {}
    results = {}
    for layer in layers[1:]:
        for node in layer:
            loc = int(rng.integers(0, n_loc))
            lco = ReductionLCO(rt, loc, in_deg[node], lambda a, b: a + b, 0)
            lcos[node] = lco

    out_edges = {}
    for s, d in edges:
        out_edges.setdefault(s, []).append(d)

    def forward(node):
        def body(ctx):
            ctx.charge("fwd", float(rng.integers(1, 5)) * 1e-7)
            value = lcos[node].value if node in lcos else inputs[layers[0].index(node)]
            results[node] = value
            for dst in out_edges.get(node, []):
                target = lcos[dst]
                if target.locality == ctx.locality:
                    ctx.lco_set(target, value)
                else:
                    ctx.send_parcel(
                        Parcel(
                            action="set",
                            target=target.addr,
                            args=(dst, value),
                            size_bytes=64,
                        )
                    )

        return body

    def set_action(ctx, target, dst, value):
        ctx.charge("set", 1e-7)
        ctx.lco_set(lcos[dst], value)

    rt.register_action("set", set_action)
    for node in lcos:
        lcos[node].register_continuation(Task(fn=forward(node), op_class="fwd"))
    for node in layers[0]:
        rt.enqueue_task(
            Task(fn=forward(node), op_class="fwd"), int(rng.integers(0, n_loc))
        )
    rt.run()

    for node, expected in ref.items():
        if node in layers[0]:
            continue
        assert lcos[node].triggered, f"node {node} never triggered"
        assert results.get(node, lcos[node].value) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=1e-8, max_value=1e-3), min_size=1, max_size=40),
    st.integers(1, 8),
)
def test_makespan_bounds(costs, n_workers):
    """Independent tasks: makespan between work/P and work/P + max."""
    rt = Runtime(RuntimeConfig(n_localities=1, workers_per_locality=n_workers))
    for c in costs:
        rt.enqueue_task(Task(fn=lambda ctx: None, op_class="w", cost=c), 0)
    t = rt.run()
    total = sum(costs)
    assert t >= total / n_workers - 1e-12
    assert t <= total / n_workers + max(costs) + 1e-12


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**31 - 1), st.integers(2, 64), st.integers(1, 60))
def test_fmm_lists_cover_property(seed, n, threshold):
    """Any tiny ensemble: list construction covers each leaf pair once."""
    from repro.tree.dualtree import build_dual_tree
    from repro.tree.lists import build_lists

    rng = np.random.default_rng(seed)
    src = rng.uniform(0, 1, (n, 3))
    tgt = rng.uniform(0, 1, (n, 3))
    dual = build_dual_tree(src, tgt, threshold, source_weights=np.ones(n))
    lists = build_lists(dual)
    counts = lists.counts()
    # structural sanity: l1 exists whenever both trees have leaves close
    # together; l3/l4 only for non-uniform trees
    assert all(v >= 0 for v in counts.values())
    # no box is ever pruned in an identical-domain overlapping ensemble
    # unless the source tree is trivially shallow
    for pruned_box in lists.pruned:
        assert not dual.target.boxes[pruned_box].is_leaf
