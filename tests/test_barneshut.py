"""Barnes-Hut: accuracy, MAC behavior, traversal coverage."""

import numpy as np
import pytest

from repro.methods.barneshut import BarnesHutEvaluator, mac_pairs
from repro.methods.direct import direct_potentials
from repro.tree.dualtree import build_dual_tree
from repro.workloads.distributions import plummer_points


def _cloud(n=1200, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.uniform(0, 1, (n, 3)),
        rng.normal(size=n),
        rng.uniform(0, 1, (n, 3)),
    )


def test_accuracy(laplace, laplace_factory):
    src, w, tgt = _cloud()
    ev = BarnesHutEvaluator(laplace, threshold=30, theta=0.4, factory=laplace_factory)
    phi = ev.evaluate(src, w, tgt)
    exact = direct_potentials(laplace, tgt, src, w)
    assert np.linalg.norm(phi - exact) / np.linalg.norm(exact) < 1e-3


def test_smaller_theta_is_more_accurate(laplace, laplace_factory):
    src, w, tgt = _cloud(800, 1)
    exact = direct_potentials(laplace, tgt, src, w)
    errs = []
    for theta in (0.8, 0.3):
        ev = BarnesHutEvaluator(laplace, threshold=30, theta=theta, factory=laplace_factory)
        phi = ev.evaluate(src, w, tgt)
        errs.append(np.linalg.norm(phi - exact) / np.linalg.norm(exact))
    assert errs[1] < errs[0]


def test_smaller_theta_does_more_work(laplace, laplace_factory):
    src, w, tgt = _cloud(800, 2)
    ops = []
    for theta in (0.8, 0.3):
        ev = BarnesHutEvaluator(laplace, threshold=30, theta=theta, factory=laplace_factory)
        ev.evaluate(src, w, tgt)
        ops.append(ev.stats.ops["M2T"] + ev.stats.ops["S2T"])
    assert ops[1] > ops[0]


def test_mac_pairs_cover_all_sources_once():
    """Every source point is accounted exactly once per target leaf."""
    rng = np.random.default_rng(3)
    src = rng.uniform(0, 1, (600, 3))
    tgt = rng.uniform(0, 1, (600, 3))
    dual = build_dual_tree(src, tgt, 25, source_weights=np.ones(600))
    pairs = mac_pairs(dual, theta=0.5)
    n_src = dual.source.n_points
    for ti, ops in pairs.items():
        covered = 0
        for _, si in ops:
            covered += dual.source.boxes[si].count
        assert covered == n_src, "each target leaf must see every source once"


def test_clustered_distribution(laplace, laplace_factory):
    """Plummer clustering stresses adaptivity."""
    src = plummer_points(1000, seed=4)
    tgt = plummer_points(1000, seed=5)
    w = np.random.default_rng(6).normal(size=1000)
    ev = BarnesHutEvaluator(laplace, threshold=20, theta=0.4, factory=laplace_factory)
    phi = ev.evaluate(src, w, tgt)
    exact = direct_potentials(laplace, tgt, src, w)
    assert np.linalg.norm(phi - exact) / np.linalg.norm(exact) < 2e-3


def test_invalid_theta(laplace):
    with pytest.raises(ValueError):
        BarnesHutEvaluator(laplace, theta=0.0)
    with pytest.raises(ValueError):
        BarnesHutEvaluator(laplace, theta=1.5)
