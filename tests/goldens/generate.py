"""Generate (or check) the golden-graph exports and fingerprints.

The golden suite pins the canonical structure of every built-in method's
DAG - fmm (merge-and-shift), fmm-basic (direct M2L) and bh - over two
fixed point sets, so refactors of the assembly can't silently reshape
the graph.  Full canonical exports (``<method>_<pointset>.json``) back
the structural `diff` regression test; ``fingerprints.json`` records the
graph fingerprint for every method x kernel x point set cell (the graph
is kernel-independent, and the kernel axis asserts exactly that).

Regenerate after an *intentional* graph change:

    PYTHONPATH=src python tests/goldens/generate.py

Verify without writing (CI does this and uploads the fingerprints):

    PYTHONPATH=src python tests/goldens/generate.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).resolve().parent

#: deterministic evaluation workloads; small enough that the full
#: exports stay reviewable, together covering every operator class:
#: the deep uniform cube reaches L2L, the clustered shell populates the
#: adaptive coarse-leaf lists (S2L / M2T) and prunes boxes
POINT_SETS = ("cube", "shell")
METHODS = ("fmm", "fmm-basic", "bh")
KERNELS = ("laplace", "yukawa")
THRESHOLDS = {"cube": 8, "shell": 20}
THETA = 0.5


def point_set(name: str) -> np.ndarray:
    if name == "cube":
        rng = np.random.default_rng(101)
        return rng.random((250, 3))
    if name == "shell":
        rng = np.random.default_rng(202)
        u = rng.normal(size=(150, 3))
        u /= np.linalg.norm(u, axis=1, keepdims=True)
        r = 0.35 + 0.08 * rng.random(150)
        return 0.5 + u * r[:, None]
    raise KeyError(name)


def make_kernel(name: str):
    if name == "laplace":
        from repro.kernels.laplace import LaplaceKernel

        return LaplaceKernel(4)
    from repro.kernels.yukawa import YukawaKernel

    return YukawaKernel(4)


def build(method: str, kernel_name: str, ps: str):
    """The (schema, DAG) a phantom evaluator builds for one golden cell."""
    from repro.dashmm.evaluator import DashmmEvaluator
    from repro.tree.dualtree import build_dual_tree

    threshold = THRESHOLDS[ps]
    ev = DashmmEvaluator(
        make_kernel(kernel_name),
        method=method,
        threshold=threshold,
        theta=THETA,
        mode="phantom",
        validate_dag=True,
    )
    pts = point_set(ps)
    dual = build_dual_tree(pts, pts, threshold)
    dag, _ = ev.build_dag(dual)
    return ev.schema, dag


def generate() -> tuple[dict, dict]:
    """All golden artifacts: full exports and the fingerprint table."""
    from repro.dag import dag_fingerprint, export_dag

    exports: dict[str, dict] = {}
    fingerprints: dict[str, str] = {}
    for method in METHODS:
        for ps in POINT_SETS:
            per_kernel = {}
            for kernel_name in KERNELS:
                schema, dag = build(method, kernel_name, ps)
                per_kernel[kernel_name] = (schema, export_dag(dag, schema))
                fingerprints[f"{method}/{kernel_name}/{ps}"] = dag_fingerprint(dag)
            # the graph is a function of tree + lists only - never of
            # the kernel; bake that invariant into the golden set
            (_, ex_a), (_, ex_b) = per_kernel.values()
            if ex_a != ex_b:
                raise AssertionError(
                    f"{method}/{ps}: graph export differs between kernels"
                )
            exports[f"{method}_{ps}"] = ex_a
    return exports, fingerprints


def write(exports: dict, fingerprints: dict) -> None:
    for name, ex in exports.items():
        (GOLDEN_DIR / f"{name}.json").write_text(
            json.dumps(ex, indent=1, sort_keys=True) + "\n"
        )
    (GOLDEN_DIR / "fingerprints.json").write_text(
        json.dumps(fingerprints, indent=2, sort_keys=True) + "\n"
    )


def check(exports: dict, fingerprints: dict) -> list[str]:
    """Mismatches between freshly built graphs and the committed goldens."""
    from repro.dag import diff_dags

    problems = []
    committed = json.loads((GOLDEN_DIR / "fingerprints.json").read_text())
    if committed != fingerprints:
        for key in sorted(set(committed) | set(fingerprints)):
            a, b = committed.get(key), fingerprints.get(key)
            if a != b:
                problems.append(f"fingerprint {key}: committed {a} != built {b}")
    for name, ex in exports.items():
        want = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        d = diff_dags(want, ex)
        if not d.empty:
            problems.append(f"export {name}:\n{d.report()}")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--check", action="store_true", help="verify, don't write")
    ap.add_argument("--out", help="also write the fingerprint table here (CI artifact)")
    args = ap.parse_args(argv)
    exports, fingerprints = generate()
    if args.out:
        Path(args.out).write_text(json.dumps(fingerprints, indent=2, sort_keys=True) + "\n")
    if args.check:
        problems = check(exports, fingerprints)
        if problems:
            print("\n".join(problems))
            return 1
        print(f"{len(exports)} exports, {len(fingerprints)} fingerprints match")
        return 0
    write(exports, fingerprints)
    print(f"wrote {len(exports)} exports + fingerprints.json to {GOLDEN_DIR}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
