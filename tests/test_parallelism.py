"""DAG parallelism profile: the top-of-tree bottleneck of Section V.C."""

import numpy as np
import pytest

from repro.analysis.parallelism import (
    bottleneck_round,
    fanout_after_bottleneck,
    wavefront_profile,
)
from repro.dashmm.dag import build_fmm_dag
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def dag():
    rng = np.random.default_rng(71)
    n = 20000
    src = rng.uniform(0, 1, (n, 3))
    tgt = rng.uniform(0, 1, (n, 3))
    dual = build_dual_tree(src, tgt, 40, source_weights=np.ones(n))
    lists = build_lists(dual)
    return build_fmm_dag(dual, lists, advanced=True)


def test_profile_covers_all_nodes(dag):
    prof = wavefront_profile(dag)
    assert prof.sum() == len(dag.nodes)
    assert prof[0] > 0


def test_first_wave_is_source_nodes(dag):
    prof = wavefront_profile(dag)
    n_sources = sum(1 for i in range(len(dag.nodes)) if dag.in_degree[i] == 0)
    assert prof[0] == n_sources


def test_bottleneck_exists_and_is_narrow(dag):
    i, width = bottleneck_round(dag)
    prof = wavefront_profile(dag)
    assert 0 < i < len(prof)
    assert width < prof[0] / 10, "the top of the tree is a severe bottleneck"


def test_parallelism_rises_sharply_after_bottleneck(dag):
    """'after which the amount of available parallelism rises sharply'"""
    assert fanout_after_bottleneck(dag) > 10.0


def test_profile_on_linear_chain():
    from repro.dashmm.dag import DAG

    d = DAG()
    a = d.add_node("M", 0, 0, "source")
    b = d.add_node("M", 1, 1, "source")
    c = d.add_node("M", 2, 2, "source")
    d.add_edge(a, b, "M2M")
    d.add_edge(b, c, "M2M")
    assert list(wavefront_profile(d)) == [1, 1, 1]
