"""Shared fixtures: kernels and operator factories are expensive to warm
up (operator fitting, quadrature generation), so they are session-scoped."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel


@pytest.fixture(scope="session")
def laplace():
    return LaplaceKernel(10)


@pytest.fixture(scope="session")
def yukawa():
    return YukawaKernel(10, lam=2.0)


@pytest.fixture(scope="session")
def laplace_factory(laplace):
    return OperatorFactory(laplace, eps=1e-4)


@pytest.fixture(scope="session")
def yukawa_factory(yukawa):
    return OperatorFactory(yukawa, eps=1e-4)


@pytest.fixture(scope="session")
def small_cloud():
    """A deterministic small source/target pair for quick accuracy tests."""
    rng = np.random.default_rng(42)
    n = 1500
    sources = rng.uniform(0.0, 1.0, size=(n, 3))
    targets = rng.uniform(0.0, 1.0, size=(n, 3))
    weights = rng.normal(size=n)
    return sources, weights, targets
