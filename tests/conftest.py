"""Shared fixtures and marker wiring.

Kernels and operator factories are expensive to warm up (operator
fitting, quadrature generation), so they are session-scoped.

Two opt-in markers keep the default ``pytest -x -q`` lane fast:

* ``slow`` - long-running scaling/benchmark style tests;
* ``fuzz`` - the full schedule-fuzz sweeps (>= 100 fuzzed schedules
  per method; see ``test_schedule_fuzz.py``);
* ``parallel`` - tests that spawn real worker processes and shared
  memory (the ``backend="parallel"`` lane; see ``test_realparallel.py``
  and ``test_shm_gas.py``).

Tests carrying either marker are skipped unless a ``-m`` expression
selects markers explicitly (``pytest -m fuzz``, ``pytest -m "slow or
fuzz"``, ...).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.fitops import OperatorFactory
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel

OPT_IN_MARKERS = ("slow", "fuzz", "parallel")


def pytest_collection_modifyitems(config, items):
    if config.getoption("-m"):
        return  # an explicit marker expression overrides the default skip
    for marker in OPT_IN_MARKERS:
        skip = pytest.mark.skip(reason=f"{marker} test: select with -m {marker}")
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def laplace():
    return LaplaceKernel(10)


@pytest.fixture(scope="session")
def yukawa():
    return YukawaKernel(10, lam=2.0)


@pytest.fixture(scope="session")
def laplace_factory(laplace):
    return OperatorFactory(laplace, eps=1e-4)


@pytest.fixture(scope="session")
def yukawa_factory(yukawa):
    return OperatorFactory(yukawa, eps=1e-4)


@pytest.fixture(scope="session")
def small_cloud():
    """A deterministic small source/target pair for quick accuracy tests."""
    rng = np.random.default_rng(42)
    n = 1500
    sources = rng.uniform(0.0, 1.0, size=(n, 3))
    targets = rng.uniform(0.0, 1.0, size=(n, 3))
    weights = rng.normal(size=n)
    return sources, weights, targets
