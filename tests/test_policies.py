"""Scheduling policies: resolution, critical-path grading, near/far pipelining.

Certifies the policy layer's contracts (see DESIGN.md, "Scheduling
policies"):

* the stock policy is bit-identical to the historical scheduler -
  same virtual clock, same potentials, same trace;
* ``policy="binary"`` is exactly the legacy ``priorities=True``;
* critical-path levels from the offline DAG analysis are monotone
  along every edge, so draining low levels first always advances the
  critical path;
* interleaving interposes near-field filler under critical bursts and
  eager sends release parcels at the charge point, not task end;
* the graded policy reduces the virtual makespan of an M2L-heavy FMM
  DAG against stock (the paper's Section VI proposal).
"""

import numpy as np
import pytest

from repro.analysis.critical_path import node_priorities
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.network import NetworkModel
from repro.hpx.parcel import Parcel
from repro.hpx.runtime import Runtime, RuntimeConfig
from repro.hpx.scheduler import (
    HIGH,
    LOW,
    BinaryPriorityPolicy,
    CriticalPathPolicy,
    Scheduler,
    SchedulingPolicy,
    Task,
    resolve_policy,
)
from repro.kernels.laplace import LaplaceKernel
from repro.sim.costmodel import CostModel


@pytest.fixture(scope="module")
def kernel():
    return LaplaceKernel(5)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(7)
    return rng.random((300, 3)), rng.random(300), rng.random((200, 3))


def _evaluate(kernel, cloud, mode="numeric", **cfg_kwargs):
    sources, weights, targets = cloud
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=2, **cfg_kwargs)
    ev = DashmmEvaluator(
        kernel, method="fmm", threshold=30, mode=mode, runtime_config=cfg
    )
    return ev.evaluate(sources, weights, targets)


# -- resolution ------------------------------------------------------------------


def test_resolve_policy_spellings():
    assert type(resolve_policy(None)) is SchedulingPolicy
    assert type(resolve_policy(None, priorities=True)) is BinaryPriorityPolicy
    assert type(resolve_policy("stock")) is SchedulingPolicy
    assert type(resolve_policy("binary")) is BinaryPriorityPolicy
    assert type(resolve_policy("critical-path")) is CriticalPathPolicy
    inst = CriticalPathPolicy(levels=6)
    assert resolve_policy(inst) is inst
    # an explicit policy wins over the legacy flag
    assert type(resolve_policy("stock", priorities=True)) is SchedulingPolicy


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        resolve_policy("fifo")


def test_critical_path_policy_needs_two_levels():
    with pytest.raises(ValueError):
        CriticalPathPolicy(levels=1)


def test_level_mapping():
    stock, cp = SchedulingPolicy(), CriticalPathPolicy(levels=4)
    assert stock.level_of(Task(fn=None, priority=HIGH)) == LOW
    assert cp.level_of(Task(fn=None, priority=0)) == 0
    assert cp.level_of(Task(fn=None, priority=2)) == 2
    assert cp.level_of(Task(fn=None, priority=99)) == 3  # clamped to last


def test_policy_name_in_runtime_stats(kernel, cloud):
    rep = _evaluate(kernel, cloud, mode="phantom", policy="critical-path")
    assert rep.runtime_stats["policy"] == "critical-path"
    assert _evaluate(kernel, cloud, mode="phantom").runtime_stats["policy"] == "stock"


# -- offline critical-path grading -----------------------------------------------


@pytest.mark.parametrize("weighted", [False, True])
def test_node_priorities_monotone_along_edges(kernel, cloud, weighted):
    sources, weights, targets = cloud
    ev = DashmmEvaluator(kernel, method="fmm", threshold=30, mode="phantom")
    from repro.tree.dualtree import build_dual_tree

    dual = build_dual_tree(sources, targets, 30, source_weights=weights)
    dag, _ = ev.build_dag(dual)
    cm = CostModel() if weighted else None
    levels = node_priorities(dag, cost_model=cm, levels=5)
    assert len(levels) == len(dag.nodes)
    assert min(levels) == 0 and max(levels) <= 4
    for edges in dag.out_edges:
        for e in edges:
            assert levels[e.src] <= levels[e.dst]
    # degenerate bucket counts collapse to a single level
    assert node_priorities(dag, levels=1) == [0] * len(dag.nodes)


# -- default-path bit-identity ----------------------------------------------------


def test_stock_policy_bit_identical_to_default(kernel, cloud):
    plain = _evaluate(kernel, cloud)
    stock = _evaluate(kernel, cloud, policy="stock")
    assert stock.time == plain.time
    assert np.array_equal(stock.potentials, plain.potentials)
    assert stock.tracer.events() == plain.tracer.events()
    assert stock.runtime_stats["steals"] == plain.runtime_stats["steals"]


def test_binary_policy_matches_legacy_flag(kernel, cloud):
    legacy = _evaluate(kernel, cloud, priorities=True)
    binary = _evaluate(kernel, cloud, policy="binary")
    assert binary.time == legacy.time
    assert np.array_equal(binary.potentials, legacy.potentials)
    assert binary.tracer.events() == legacy.tracer.events()


def test_priority_policies_preserve_potentials(kernel, cloud):
    plain = _evaluate(kernel, cloud)
    for policy in ("binary", "critical-path"):
        rep = _evaluate(kernel, cloud, policy=policy)
        assert np.array_equal(rep.potentials, plain.potentials), policy


# -- near/far pipelining ----------------------------------------------------------


def test_interleave_pattern_single_worker():
    """One filler pick is interposed after every k-1 critical picks."""
    pol = CriticalPathPolicy(levels=3, interleave=3, eager_sends=False)
    s = Scheduler(1, 1, NetworkModel(), policy=pol)
    order = []

    def tagged(tag):
        def body(ctx):
            ctx.charge("w", 1e-6)
            order.append(tag)

        return body

    for i in range(4):
        s.enqueue(Task(fn=tagged("C"), priority=0), 0, 0.0)
    for i in range(2):
        s.enqueue(Task(fn=tagged("F"), priority=9), 0, 0.0)
    s.run()
    assert order == ["C", "C", "F", "C", "C", "F"]


def test_interleave_off_drains_critical_first():
    pol = CriticalPathPolicy(levels=3, interleave=0, eager_sends=False)
    s = Scheduler(1, 1, NetworkModel(), policy=pol)
    order = []

    def tagged(tag):
        def body(ctx):
            ctx.charge("w", 1e-6)
            order.append(tag)

        return body

    s.enqueue(Task(fn=tagged("F"), priority=9), 0, 0.0)
    for i in range(3):
        s.enqueue(Task(fn=tagged("C"), priority=0), 0, 0.0)
    s.run()
    assert order == ["C", "C", "C", "F"]


@pytest.mark.parametrize("eager", [False, True])
def test_send_release_point(eager):
    """Eager sends leave at the charge point, lazy sends at task end."""
    pol = CriticalPathPolicy(eager_sends=eager)
    s = Scheduler(1, 1, NetworkModel(), policy=pol)
    arrivals = []
    s.deliver_parcel = lambda parcel, t: arrivals.append(t)

    def body(ctx):
        ctx.charge("a", 1e-3)
        ctx.send_parcel(Parcel(action="x", target=0))
        ctx.charge("b", 2e-3)

    s.enqueue(Task(fn=body, op_class="w"), 0, 0.0)
    t = s.run()
    assert t == pytest.approx(3e-3)
    assert arrivals == [pytest.approx(1e-3 if eager else 3e-3)]


# -- the point of it all ----------------------------------------------------------


def test_critical_path_reduces_phantom_makespan(kernel):
    """Graded priorities beat stock on an M2L-heavy FMM DAG."""
    rng = np.random.default_rng(7)
    big = rng.random((4000, 3)), rng.random(4000), rng.random((3000, 3))
    times = {}
    for policy in ("stock", "critical-path"):
        cfg = RuntimeConfig(
            n_localities=8, workers_per_locality=4, policy=policy
        )
        ev = DashmmEvaluator(
            kernel, method="fmm", threshold=40, mode="phantom", runtime_config=cfg
        )
        times[policy] = ev.evaluate(*big).time
    assert times["critical-path"] < times["stock"], times
