"""Cross-assembly oracle: declarative builder vs legacy imperative assembly.

The legacy assembly (:func:`repro.dashmm.dag.build_fmm_dag` /
``build_bh_dag``) stays alive as the oracle for the declarative
:class:`repro.dag.DagBuilder`.  Across methods x kernels the two
assemblies must produce ``diff``-empty graphs and *bit-identical
executed output* - potentials AND virtual clock - and the identity must
survive fuzzed schedules (the fuzz-sweep machinery of
``tests/test_schedule_fuzz.py`` re-used with the declarative evaluator
against the legacy baseline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.schedules import fuzz_sweep
from repro.dag import diff_dags
from repro.dashmm.evaluator import DashmmEvaluator
from repro.hpx.runtime import RuntimeConfig
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel

METHODS = ("fmm", "fmm-basic", "bh")


@pytest.fixture(scope="module")
def kernels():
    return {"laplace": LaplaceKernel(4), "yukawa": YukawaKernel(4)}


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(23)
    return rng.random((300, 3)), rng.random(300), rng.random((200, 3))


def _evaluate(kernel, cloud, method, assembly, **cfg_kwargs):
    sources, weights, targets = cloud
    cfg = RuntimeConfig(n_localities=2, workers_per_locality=2, **cfg_kwargs)
    ev = DashmmEvaluator(
        kernel,
        method=method,
        threshold=30,
        runtime_config=cfg,
        assembly=assembly,
        validate_dag=(assembly == "declarative"),
    )
    return ev.evaluate(sources, weights, targets)


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("kernel_name", ("laplace", "yukawa"))
def test_assemblies_bit_identical(kernels, cloud, method, kernel_name):
    kernel = kernels[kernel_name]
    legacy = _evaluate(kernel, cloud, method, "legacy")
    decl = _evaluate(kernel, cloud, method, "declarative")
    assert diff_dags(legacy.dag, decl.dag).empty
    assert np.array_equal(legacy.potentials, decl.potentials)
    assert legacy.time == decl.time
    assert legacy.runtime_stats == decl.runtime_stats


@pytest.mark.parametrize("method", METHODS)
def test_declarative_fuzz_sweep_vs_legacy_baseline(kernels, cloud, method):
    """Fuzzed declarative runs reproduce the *legacy* unfuzzed baseline
    bit for bit: assembly choice and schedule are both irrelevant."""
    kernel = kernels["laplace"]

    def run(seed):
        return _evaluate(
            kernel,
            cloud,
            method,
            "declarative",
            fuzz_schedule=seed,
            detect_hazards=True,
        )

    baseline = _evaluate(kernel, cloud, method, "legacy")
    result = fuzz_sweep(run, seeds=range(3), baseline=baseline)
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()
    assert result.distinct_makespans > 1, result.summary()


def test_fuzzed_trace_replays_across_assemblies(kernels, cloud, tmp_path):
    """A schedule recorded under one assembly replays under the other:
    same graph fingerprint, same decisions, same clock and potentials."""
    kernel = kernels["laplace"]
    fuzzed = _evaluate(kernel, cloud, "fmm", "legacy", fuzz_schedule=13)
    trace = fuzzed.extras["schedule_trace"]
    assert "graph_fingerprint" in trace.meta
    path = tmp_path / "trace.json"
    trace.save(path)
    replayed = _evaluate(
        kernel, cloud, "fmm", "declarative", replay_schedule=str(path)
    )
    assert replayed.time == fuzzed.time
    assert np.array_equal(replayed.potentials, fuzzed.potentials)


def test_replay_against_wrong_graph_diverges(kernels, cloud):
    from repro.hpx.scheduler import ReplayDivergence

    kernel = kernels["laplace"]
    fuzzed = _evaluate(kernel, cloud, "fmm", "declarative", fuzz_schedule=5)
    trace = fuzzed.extras["schedule_trace"]
    with pytest.raises(ReplayDivergence, match="different DAG"):
        _evaluate(
            kernel, cloud, "fmm-basic", "declarative", replay_schedule=trace
        )


@pytest.mark.fuzz
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("kernel_name", ("laplace", "yukawa"))
def test_oracle_full_sweep(kernels, cloud, method, kernel_name):
    """The -m fuzz lane: a wider seed range per method x kernel cell."""
    kernel = kernels[kernel_name]

    def run(seed):
        return _evaluate(
            kernel,
            cloud,
            method,
            "declarative",
            fuzz_schedule=seed,
            detect_hazards=True,
        )

    baseline = _evaluate(kernel, cloud, method, "legacy")
    result = fuzz_sweep(run, seeds=range(25), baseline=baseline)
    assert result.all_bit_identical, result.summary()
    assert result.total_hazards == 0, result.summary()
