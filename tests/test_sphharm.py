"""Spherical-harmonic primitives: recurrences, normalization, identities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.special import lpmv

from repro.kernels.sphharm import (
    Harmonics,
    assoc_legendre,
    idx,
    legendre_poly,
    nm_arrays,
    nterms,
)


def test_indexing():
    assert nterms(0) == 1
    assert nterms(3) == 16
    assert idx(0, 0) == 0
    assert idx(1, -1) == 1 and idx(1, 0) == 2 and idx(1, 1) == 3
    ns, ms = nm_arrays(4)
    for n in range(5):
        for m in range(-n, n + 1):
            i = idx(n, m)
            assert ns[i] == n and ms[i] == m


def test_assoc_legendre_matches_scipy():
    x = np.linspace(-0.99, 0.99, 7)
    P = assoc_legendre(6, x)
    for n in range(7):
        for m in range(n + 1):
            assert np.allclose(P[:, n, m], lpmv(m, n, x), atol=1e-12), (n, m)


def test_legendre_poly_matches_scipy():
    x = np.linspace(-1, 1, 9)
    L = legendre_poly(8, x)
    for n in range(9):
        assert np.allclose(L[:, n], lpmv(0, n, x), atol=1e-12)


def test_addition_theorem():
    rng = np.random.default_rng(0)
    p = 10
    h = Harmonics(p)
    x = rng.normal(size=(6, 3))
    y = rng.normal(size=(6, 3))
    yx, yy = h.ynm(x), h.ynm(y)
    rx = np.linalg.norm(x, axis=1)
    ry = np.linalg.norm(y, axis=1)
    cg = np.sum(x * y, axis=1) / (rx * ry)
    Pn = legendre_poly(p, cg)
    for n in range(p + 1):
        s = np.sum(
            yx[:, n * n : (n + 1) * (n + 1)] * np.conj(yy[:, n * n : (n + 1) * (n + 1)]),
            axis=1,
        )
        assert np.allclose(s.imag, 0, atol=1e-10)
        assert np.allclose(s.real, Pn[:, n], atol=1e-9)


def test_conjugation_symmetry():
    """Y_n^{-m} = (-1)^m conj(Y_n^m) with the CS-phase convention."""
    rng = np.random.default_rng(1)
    h = Harmonics(6)
    y = h.ynm(rng.normal(size=(4, 3)))
    for n in range(7):
        for m in range(1, n + 1):
            a = y[:, idx(n, -m)]
            b = (-1.0) ** m * np.conj(y[:, idx(n, m)])
            assert np.allclose(a, b, atol=1e-12), (n, m)


def test_y00_is_one():
    h = Harmonics(3)
    y = h.ynm(np.array([[0.3, -0.2, 0.7]]))
    assert np.allclose(y[0, 0], 1.0)


def test_origin_is_safe():
    h = Harmonics(4)
    y = h.ynm(np.zeros((1, 3)))
    assert np.isfinite(y).all()
    assert np.allclose(y[0, 0], 1.0)


def test_powers():
    h = Harmonics(3)
    pw = h.powers(np.array([2.0, 0.5, 0.0]))
    assert np.allclose(pw[0, idx(2, 0)], 4.0)
    assert np.allclose(pw[1, idx(3, 1)], 0.125)
    assert pw[2, idx(0, 0)] == 1.0
    assert np.all(pw[2, 1:] == 0.0)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_ynm_unit_magnitude_bound(seed):
    """|Y_n^m| <= 1 with this normalization (since |P_n^m| sqrt ratio <= 1)."""
    rng = np.random.default_rng(seed)
    h = Harmonics(8)
    y = h.ynm(rng.normal(size=(3, 3)))
    assert np.all(np.abs(y) <= 1.0 + 1e-9)
