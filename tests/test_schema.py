"""Declarative DAG schema: declarations, builder, validator, export/diff.

Unit coverage for :mod:`repro.dag.schema`: the kind catalogs and method
declarations, bit-identity of the validated builder against the legacy
imperative assembly, the canonical export / fingerprint / diff tooling,
priority stamping, and the structured validation errors.  The
cross-assembly executed-output oracle lives in
``tests/test_schema_oracle.py``; randomized validator properties in
``tests/test_schema_properties.py``.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

import repro.dashmm.dag as dag_mod
from repro.analysis.critical_path import GROUPS, node_priorities
from repro.dag import (
    DagBuilder,
    MethodSchema,
    SchemaValidationError,
    dag_fingerprint,
    diff_dags,
    edge_kinds,
    export_dag,
    method_schema,
    node_kinds,
    validate_dag,
)
from repro.dashmm.dag import DAG, build_bh_dag, build_fmm_dag
from repro.methods.barneshut import BH_SCHEMA, mac_pairs
from repro.methods.fmm import FMM_BASIC_SCHEMA, FMM_SCHEMA
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


@pytest.fixture(scope="module")
def dual():
    rng = np.random.default_rng(17)
    pts = rng.random((320, 3))
    return build_dual_tree(pts, pts, threshold=20)


@pytest.fixture(scope="module")
def lists(dual):
    return build_lists(dual)


@pytest.fixture(scope="module")
def mac(dual):
    return mac_pairs(dual, 0.5)


def _build(schema, dual, lists, mac):
    b = DagBuilder(schema)
    if schema.name == "bh":
        return b.build(dual, mac_pairs=mac)
    return b.build(dual, lists=lists)


def _legacy(schema, dual, lists, mac):
    if schema.name == "bh":
        return build_bh_dag(dual, mac)
    return build_fmm_dag(dual, lists, advanced=(schema.name == "fmm"))


ALL_SCHEMAS = (FMM_SCHEMA, FMM_BASIC_SCHEMA, BH_SCHEMA)


# -- declarations -----------------------------------------------------------------


def test_method_schema_lookup():
    assert method_schema("fmm") is FMM_SCHEMA
    assert method_schema("fmm-basic") is FMM_BASIC_SCHEMA
    assert method_schema("bh") is BH_SCHEMA
    assert method_schema("barneshut") is BH_SCHEMA
    with pytest.raises(KeyError):
        method_schema("treecode")


def test_near_far_derivation():
    assert FMM_SCHEMA.near_ops == ("S2T",)
    assert set(FMM_SCHEMA.far_ops) == {
        "S2M", "M2M", "M2I", "I2I", "I2L", "S2L", "L2L", "M2T", "L2T"
    }
    assert set(FMM_BASIC_SCHEMA.far_ops) == {
        "S2M", "M2M", "M2L", "S2L", "L2L", "M2T", "L2T"
    }
    assert BH_SCHEMA.near_ops == ("S2T",)
    assert set(BH_SCHEMA.far_ops) == {"S2M", "M2M", "M2T"}


def test_method_modules_reexport_derived_split():
    from repro.methods import barneshut, fmm

    assert set(fmm.FAR_FIELD_OPS) == set(FMM_SCHEMA.far_ops) | set(
        FMM_BASIC_SCHEMA.far_ops
    )
    assert fmm.NEAR_FIELD_OPS == ("S2T",)
    assert barneshut.FAR_FIELD_OPS == BH_SCHEMA.far_ops


def test_critical_path_groups_derive_from_catalog():
    # the analysis layer's three groups are the catalog's group tags
    assert set(GROUPS) == {"up", "bridge", "down"}
    assert set(GROUPS["up"]) == {"S2M", "M2M"}
    assert set(GROUPS["bridge"]) == {"M2I", "I2I", "I2L", "M2L", "M2T", "S2L"}
    assert set(GROUPS["down"]) == {"S2T", "L2L", "L2T"}


def test_schema_fingerprint_is_declaration_identity():
    fp = FMM_SCHEMA.fingerprint()
    assert fp == FMM_SCHEMA.fingerprint()  # cached and stable
    assert len({s.fingerprint() for s in ALL_SCHEMAS}) == 3
    clone = MethodSchema(
        name=FMM_SCHEMA.name,
        nodes=FMM_SCHEMA.nodes,
        edges=FMM_SCHEMA.edges,
        assembly=FMM_SCHEMA.assembly,
    )
    assert clone.fingerprint() == fp


def test_schema_rejects_incoherent_declarations():
    with pytest.raises(ValueError, match="undeclared node kind"):
        MethodSchema(
            name="broken",
            nodes=node_kinds("S", "M"),
            edges=edge_kinds("S2M", "L2T"),
            assembly=("source-upward",),
        )
    with pytest.raises(ValueError, match="unknown wiring rule"):
        MethodSchema(
            name="broken",
            nodes=node_kinds("S", "M"),
            edges=edge_kinds("S2M", "M2M"),
            assembly=("sideways",),
        )
    with pytest.raises(ValueError, match="emits undeclared"):
        MethodSchema(
            name="broken",
            nodes=node_kinds("S", "M", "T"),
            edges=edge_kinds("S2M", "M2M"),
            assembly=("source-upward", "bh-mac"),
        )


# -- builder bit-identity against the legacy assembly ------------------------------


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
def test_builder_matches_legacy_exactly(schema, dual, lists, mac):
    """Node ids, edge order and aux payloads are identical streams -
    the strongest form of the oracle: the virtual clock and the LCO
    fold keys are functions of exactly these."""
    a = _legacy(schema, dual, lists, mac)
    b = _build(schema, dual, lists, mac)
    assert [
        (n.id, n.kind, n.box_index, n.level, n.tree, n.n_points) for n in a.nodes
    ] == [(n.id, n.kind, n.box_index, n.level, n.tree, n.n_points) for n in b.nodes]
    assert [
        [(e.src, e.dst, e.op, e.aux) for e in oe] for oe in a.out_edges
    ] == [[(e.src, e.dst, e.op, e.aux) for e in oe] for oe in b.out_edges]
    assert a.in_degree == b.in_degree
    assert diff_dags(a, b).empty
    assert dag_fingerprint(a) == dag_fingerprint(b)


def test_builder_matches_reference_loop_assembly(dual, lists):
    """The per-box reference loops allocate node ids differently; the
    canonical export is id-free, so diff and fingerprint still agree."""
    ref = build_fmm_dag(dual, lists, advanced=True, vectorized=False)
    decl = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    assert diff_dags(ref, decl).empty
    assert dag_fingerprint(ref) == dag_fingerprint(decl)


@pytest.mark.parametrize("schema", ALL_SCHEMAS, ids=lambda s: s.name)
def test_builder_output_validates(schema, dual, lists, mac):
    dag = _build(schema, dual, lists, mac)
    validate_dag(schema, dag)  # does not raise


def test_builder_bumps_assembly_counter(dual, lists):
    before = dag_mod.COUNTERS["assemblies"]
    DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    assert dag_mod.COUNTERS["assemblies"] == before + 1


def test_builder_demands_matching_inputs(dual, lists, mac):
    with pytest.raises(ValueError, match="needs interaction lists"):
        DagBuilder(FMM_SCHEMA).build(dual)
    with pytest.raises(ValueError, match="MAC decisions"):
        DagBuilder(BH_SCHEMA).build(dual)


# -- canonical export / fingerprint / diff ----------------------------------------


def test_export_excludes_locality(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    fp = dag_fingerprint(dag)
    for node in dag.nodes:
        node.locality = (node.id * 7) % 3
    assert dag_fingerprint(dag) == fp


def test_fingerprint_independent_of_id_allocation():
    def make(flip):
        dag = DAG()
        order = ("M", "S") if flip else ("S", "M")
        for kind in order:
            dag.add_node(kind, 0, 0, "source", n_points=4 if kind == "S" else 0)
        s, m = dag.index["S"][0], dag.index["M"][0]
        dag.add_edge(s, m, "S2M")
        return dag

    assert dag_fingerprint(make(False)) == dag_fingerprint(make(True))


def test_diff_reports_structural_deltas(dual, lists):
    a = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    b = copy.deepcopy(a)
    # drop one edge, retarget another's aux, change a node attribute
    victim = next(e for oe in b.out_edges for e in oe if e.op == "S2T")
    b.out_edges[victim.src].remove(victim)
    b.in_degree[victim.dst] -= 1
    t_node = next(n for n in b.nodes if n.kind == "T")
    t_node.n_points += 3
    d = diff_dags(a, b)
    assert not d.empty
    assert ("T", "target", t_node.box_index) in [c[0] for c in d.node_changes]
    assert any(row[0][0] == "S2T" for row in d.edges_only_a)
    report = d.report()
    assert "edges only in A" in report and "S2T" in report
    assert "node attribute changes" in report
    # and the self-diff is empty with an explicit report
    self_d = diff_dags(a, a)
    assert self_d.empty
    assert "identical" in self_d.report()


def test_diff_accepts_exports_and_dags(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    ex = export_dag(dag, FMM_SCHEMA)
    assert diff_dags(dag, ex).empty
    assert diff_dags(ex, dag).empty
    assert dag_fingerprint(ex) == dag_fingerprint(dag)
    with pytest.raises(TypeError):
        diff_dags(dag, 42)


# -- priority stamping --------------------------------------------------------------


def test_stamp_priorities_matches_analysis(dual, lists):
    from repro.sim.costmodel import CostModel

    builder = DagBuilder(FMM_SCHEMA)
    dag = builder.build(dual, lists=lists)
    cm = CostModel()
    values = builder.stamp_priorities(dag, cost_model=cm, levels=5)
    assert dag.priorities == {"levels": 5, "values": values, "cost": cm}
    assert values == node_priorities(dag, cost_model=cm, levels=5)


def test_registrar_reuses_matching_stamp(dual, lists):
    """A pre-stamped DAG skips re-grading; an unstamped (or mismatched)
    one grades on the fly.  Either way the levels are identical."""
    from repro.dashmm.registrar import Registrar
    from repro.hpx.runtime import Runtime, RuntimeConfig
    from repro.hpx.scheduler import CriticalPathPolicy
    from repro.methods.fmm import FAR_FIELD_OPS, NEAR_FIELD_OPS
    from repro.sim.costmodel import CostModel

    builder = DagBuilder(FMM_SCHEMA)
    dag = builder.build(dual, lists=lists)
    pol = CriticalPathPolicy(near_ops=NEAR_FIELD_OPS, far_ops=FAR_FIELD_OPS)
    cm = CostModel()
    stamped = builder.stamp_priorities(dag, cost_model=cm, levels=pol.n_levels - 1)

    def levels_of(d):
        rt = Runtime(RuntimeConfig(policy=pol))
        reg = Registrar(rt, d, dual, None, None, mode="phantom", cost_model=cm)
        return reg._node_levels

    got = levels_of(dag)
    assert got is stamped  # reused by identity, not recomputed
    bare = copy.deepcopy(dag)
    bare.priorities = None
    assert levels_of(bare) == stamped
    wrong = copy.deepcopy(dag)
    wrong.priorities = {"levels": 99, "values": [0], "cost": cm}
    assert levels_of(wrong) == stamped  # mismatch falls back to grading


# -- structured validation errors --------------------------------------------------


def test_dropped_edge_breaks_in_degree_table(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    victim = next(e for oe in dag.out_edges for e in oe if e.op == "L2T")
    dag.out_edges[victim.src].remove(victim)
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "in-degree-table"
    assert err.value.node == victim.dst


def test_unknown_operator_named_in_error(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    victim = next(e for oe in dag.out_edges for e in oe if e.op == "S2M")
    victim.op = "Q2Q"
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "edge-op"
    assert err.value.edge == (victim.src, victim.dst, "Q2Q")


def test_degree_bound_violation(dual, lists):
    # duplicate an S2M edge (keeping the in-degree table consistent):
    # S2M is declared in-unique, so the duplicate trips the cap
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    victim = next(e for oe in dag.out_edges for e in oe if e.op == "S2M")
    dag.out_edges[victim.src].append(copy.copy(victim))
    dag.in_degree[victim.dst] += 1
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule in ("edge-multiplicity", "in-degree")
    assert err.value.node == victim.dst


def test_level_inversion(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    victim = next(e for oe in dag.out_edges for e in oe if e.op == "M2M")
    dag.nodes[victim.dst].level = dag.nodes[victim.src].level  # parent != up
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "edge-level"
    assert err.value.edge == (victim.src, victim.dst, "M2M")


def test_aux_signature_checks(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    m2m = next(e for oe in dag.out_edges for e in oe if e.op == "M2M")
    m2m.aux = 11  # octant out of range
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "edge-aux"
    m2m.aux = 3

    i2i = next(e for oe in dag.out_edges for e in oe if e.op == "I2I")
    direction, delta = i2i.aux
    wrong = next(d for d in ("+x", "-x", "+y", "-y", "+z", "-z") if d != direction)
    i2i.aux = (wrong, delta)
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "edge-direction"
    i2i.aux = (direction, (0, 0, 0))  # not well separated
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "edge-separation"


def test_cycle_detection():
    """A cycle built from catalog kinds always trips a level-relation
    check first (levels are monotone along every declared edge), so the
    acyclicity rule is exercised through a custom level-free kind."""
    from repro.dag import EdgeKind, NodeKind

    schema = MethodSchema(
        name="loopy",
        nodes=(NodeKind("M", "source"),),
        edges=(EdgeKind("M2M", "M", "M", level="any", aux="none", group="up"),),
        assembly=(),
    )
    dag = DAG()
    a = dag.add_node("M", 0, 0, "source")
    b = dag.add_node("M", 1, 0, "source")
    dag.add_edge(a, b, "M2M")
    dag.add_edge(b, a, "M2M")
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(schema, dag)
    assert err.value.rule == "acyclic"


def test_wrong_tree_and_kind_errors(dual, lists):
    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    t = next(n for n in dag.nodes if n.kind == "T")
    t.tree = "source"
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "node-tree"
    assert err.value.node == t.id
    t.tree = "target"
    t.kind = "Z"
    with pytest.raises(SchemaValidationError) as err:
        validate_dag(FMM_SCHEMA, dag)
    assert err.value.rule == "node-kind"


# -- IR consumers -----------------------------------------------------------------


def test_hazard_subject_names_the_dag_node(dual, lists):
    from repro.dashmm.registrar import ExpansionLCO
    from repro.hpx.hazards import HazardDetector
    from repro.hpx.runtime import Runtime, RuntimeConfig

    dag = DagBuilder(FMM_SCHEMA).build(dual, lists=lists)
    node = next(n for n in dag.nodes if n.kind == "L")
    rt = Runtime(RuntimeConfig())
    lco = ExpansionLCO(rt, 0, node, 1, None)
    det = HazardDetector()
    subject = det._lco_subject(lco)
    assert subject == lco.hazard_subject
    assert f"L[target box {node.box_index}" in subject
    # non-IR LCOs keep the address-based fallback
    from repro.hpx.lco import Future

    fut = Future(rt, 0)
    assert "Future@" in det._lco_subject(fut)
