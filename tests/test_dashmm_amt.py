"""The AMT execution path: numeric equivalence, phantom mode, coalescing,
priorities - the integration layer of the whole reproduction."""

import numpy as np
import pytest

from repro.dashmm import BlockPolicy, DashmmEvaluator, FmmPolicy, RandomPolicy
from repro.hpx.runtime import RuntimeConfig
from repro.methods.direct import direct_potentials
from repro.methods.fmm import FmmEvaluator

TOL = 1e-3


def _rel(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(77)
    n = 1200
    return rng.uniform(0, 1, (n, 3)), rng.normal(size=n), rng.uniform(0, 1, (n, 3))


@pytest.mark.parametrize("method", ["fmm", "fmm-basic", "bh"])
def test_numeric_accuracy(method, laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    ev = DashmmEvaluator(
        laplace,
        method=method,
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=3, workers_per_locality=4),
        factory=laplace_factory,
        theta=0.4,
    )
    rep = ev.evaluate(src, w, tgt)
    exact = direct_potentials(laplace, tgt, src, w)
    assert _rel(rep.potentials, exact) < TOL
    assert rep.extras["untriggered"] == 0
    assert rep.time > 0


def test_amt_matches_sync_fmm(laplace, laplace_factory, cloud):
    """Same operators, different execution order: results agree tightly."""
    src, w, tgt = cloud
    sync = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    phi_sync = sync.evaluate(src, w, tgt)
    amt = DashmmEvaluator(
        laplace,
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
        factory=laplace_factory,
    )
    phi_amt = amt.evaluate(src, w, tgt).potentials
    assert _rel(phi_amt, phi_sync) < 1e-10


def test_yukawa_amt(yukawa, yukawa_factory, cloud):
    src, w, tgt = cloud
    ev = DashmmEvaluator(
        yukawa,
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
        factory=yukawa_factory,
    )
    rep = ev.evaluate(src, w, tgt)
    exact = direct_potentials(yukawa, tgt, src, w)
    assert _rel(rep.potentials, exact) < TOL


def test_result_independent_of_cluster_shape(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    reps = []
    for L, W in [(1, 2), (4, 2)]:
        ev = DashmmEvaluator(
            laplace,
            threshold=30,
            runtime_config=RuntimeConfig(n_localities=L, workers_per_locality=W),
            factory=laplace_factory,
        )
        reps.append(ev.evaluate(src, w, tgt).potentials)
    assert _rel(reps[0], reps[1]) < 1e-10


def test_phantom_mode(laplace, cloud):
    src, w, tgt = cloud
    ev = DashmmEvaluator(
        laplace,
        mode="phantom",
        threshold=30,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
    )
    rep = ev.evaluate(src, w, tgt)
    assert rep.potentials is None
    assert rep.extras["untriggered"] == 0
    assert rep.time > 0
    assert rep.runtime_stats["tasks_run"] > 0


def test_phantom_more_cores_is_faster(laplace, cloud):
    src, w, tgt = cloud
    times = {}
    for W in (1, 4):
        ev = DashmmEvaluator(
            laplace,
            mode="phantom",
            threshold=30,
            runtime_config=RuntimeConfig(n_localities=1, workers_per_locality=W),
        )
        times[W] = ev.evaluate(src, w, tgt).time
    assert times[4] < times[1]


def test_coalescing_reduces_parcels(laplace, cloud):
    src, w, tgt = cloud
    counts = {}
    for coalesce in (True, False):
        ev = DashmmEvaluator(
            laplace,
            mode="phantom",
            threshold=30,
            coalesce=coalesce,
            runtime_config=RuntimeConfig(n_localities=4, workers_per_locality=2),
        )
        counts[coalesce] = ev.evaluate(src, w, tgt).runtime_stats["parcels_sent"]
    assert counts[True] < counts[False]


def test_priorities_preserve_numerics(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    reps = []
    for prio in (False, True):
        ev = DashmmEvaluator(
            laplace,
            threshold=30,
            runtime_config=RuntimeConfig(
                n_localities=2, workers_per_locality=2, priorities=prio
            ),
            factory=laplace_factory,
        )
        reps.append(ev.evaluate(src, w, tgt).potentials)
    assert _rel(reps[0], reps[1]) < 1e-10


def test_policies_preserve_numerics(laplace, laplace_factory, cloud):
    src, w, tgt = cloud
    reps = []
    for pol in (FmmPolicy(), BlockPolicy(), RandomPolicy()):
        ev = DashmmEvaluator(
            laplace,
            threshold=30,
            policy=pol,
            runtime_config=RuntimeConfig(n_localities=3, workers_per_locality=2),
            factory=laplace_factory,
        )
        reps.append(ev.evaluate(src, w, tgt).potentials)
    assert _rel(reps[0], reps[1]) < 1e-10
    assert _rel(reps[0], reps[2]) < 1e-10


def test_trace_has_paper_edge_classes(laplace, laplace_factory):
    # deep enough tree (level >= 3) so the L2L operator appears
    rng = np.random.default_rng(88)
    n = 6000
    src, w, tgt = rng.uniform(0, 1, (n, 3)), rng.normal(size=n), rng.uniform(0, 1, (n, 3))
    ev = DashmmEvaluator(
        laplace,
        threshold=20,
        runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=2),
        factory=laplace_factory,
    )
    rep = ev.evaluate(src, w, tgt)
    classes = set(rep.tracer.classes)
    assert {"S2M", "M2M", "M2I", "I2I", "I2L", "L2L", "L2T", "S2T"} <= classes


def test_virtual_time_deterministic(laplace, cloud):
    src, w, tgt = cloud
    times = []
    for _ in range(2):
        ev = DashmmEvaluator(
            laplace,
            mode="phantom",
            threshold=30,
            runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=4),
        )
        times.append(ev.evaluate(src, w, tgt).time)
    assert times[0] == times[1]


def test_invalid_method(laplace):
    with pytest.raises(ValueError):
        DashmmEvaluator(laplace, method="tree-code")


def test_invalid_mode(laplace):
    with pytest.raises(ValueError):
        from repro.dashmm.registrar import Registrar
        from repro.hpx.runtime import Runtime

        Registrar(Runtime(RuntimeConfig()), None, None, laplace, None, mode="bogus")


def test_parallel_edges_preserve_numerics(laplace, laplace_factory, cloud):
    """One task per edge vs sequential edge processing: same results."""
    src, w, tgt = cloud
    reps = []
    for seq in (True, False):
        ev = DashmmEvaluator(
            laplace,
            threshold=30,
            sequential_edges=seq,
            runtime_config=RuntimeConfig(n_localities=2, workers_per_locality=3),
            factory=laplace_factory,
        )
        reps.append(ev.evaluate(src, w, tgt).potentials)
    assert _rel(reps[0], reps[1]) < 1e-10
