"""Shared-memory GAS lifecycle: attach, crash, double-close, no leaks.

The arena's ownership discipline (owner creates and unlinks; workers
attach and close; nothing is delegated to the resource tracker) has to
hold up under the ugly paths too - a worker killed mid-run, close
called twice, destroy after a crash.  Every test asserts /dev/shm ends
clean.

Marked ``parallel``: these spawn real processes (select with
``pytest -m parallel``).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np
import pytest

from repro.hpx.gas import ShmArena

pytestmark = pytest.mark.parallel

PREFIX = "hmmgastest"


@pytest.fixture(autouse=True)
def _clean_shm():
    assert ShmArena.leaked(PREFIX) == [], "stale segments from a previous run"
    yield
    leaked = ShmArena.leaked(PREFIX)
    for name in leaked:  # clean up so one failure does not cascade
        try:
            os.unlink(f"/dev/shm/{name}")
        except OSError:
            pass
    assert leaked == []


def test_alloc_put_roundtrip():
    arena = ShmArena(prefix=PREFIX)
    try:
        a = arena.put("x", np.arange(10.0))
        b = arena.alloc("y", (4, 3), np.float64)
        assert np.array_equal(a, np.arange(10.0))
        assert np.count_nonzero(b) == 0
        b[1, 2] = 7.0
        assert arena.get("y")[1, 2] == 7.0
        m = arena.manifest()
        assert set(m["blocks"]) == {"x", "y"}
        assert m["pid"] == os.getpid()
    finally:
        arena.destroy()


def _attach_and_write(manifest, q):
    arena = ShmArena.attach(manifest)
    arena.get("x")[0] = 42.0
    q.put(float(arena.get("x")[1]))
    arena.close()


def test_cross_process_attach_shares_pages():
    ctx = mp.get_context("spawn")
    arena = ShmArena(prefix=PREFIX)
    try:
        arena.put("x", np.array([0.0, 3.5]))
        q = ctx.Queue()
        p = ctx.Process(target=_attach_and_write, args=(arena.manifest(), q))
        p.start()
        assert q.get(timeout=30.0) == 3.5  # child saw the parent's write
        p.join(timeout=30.0)
        assert p.exitcode == 0
        assert arena.get("x")[0] == 42.0  # parent sees the child's write
    finally:
        arena.destroy()


def _attach_and_crash(manifest):
    ShmArena.attach(manifest)
    os._exit(1)  # simulate a worker dying without any cleanup


def test_worker_crash_leaves_owner_cleanup_intact():
    ctx = mp.get_context("spawn")
    arena = ShmArena(prefix=PREFIX)
    try:
        arena.put("x", np.zeros(8))
        p = ctx.Process(target=_attach_and_crash, args=(arena.manifest(),))
        p.start()
        p.join(timeout=30.0)
        assert p.exitcode == 1
        # the crashed attacher must not have unlinked the owner's segment
        assert arena.get("x").shape == (8,)
        assert all(
            os.path.exists(f"/dev/shm/{n}") for n in arena.segment_names()
        )
    finally:
        arena.destroy()
    assert ShmArena.leaked(PREFIX) == []


def test_double_close_and_double_destroy_are_idempotent():
    arena = ShmArena(prefix=PREFIX)
    arena.put("x", np.zeros(4))
    arena.close()
    arena.close()
    arena.destroy()
    arena.destroy()  # second unlink hits FileNotFoundError internally
    assert ShmArena.leaked(PREFIX) == []


def test_attached_arena_cannot_unlink():
    arena = ShmArena(prefix=PREFIX)
    try:
        arena.put("x", np.zeros(4))
        worker_view = ShmArena.attach(arena.manifest())
        with pytest.raises(ValueError, match="owning"):
            worker_view.unlink()
        worker_view.close()
    finally:
        arena.destroy()


def test_duplicate_label_rejected():
    arena = ShmArena(prefix=PREFIX)
    try:
        arena.alloc("x", (2,))
        with pytest.raises(ValueError, match="already"):
            arena.alloc("x", (2,))
    finally:
        arena.destroy()


def test_leaked_reports_live_segments():
    arena = ShmArena(prefix=PREFIX)
    arena.put("x", np.zeros(2))
    assert ShmArena.leaked(PREFIX) == arena.segment_names()
    arena.destroy()
    assert ShmArena.leaked(PREFIX) == []


def test_finalize_guard_unlinks_abandoned_arena():
    """An owning arena gc'd without destroy() must not leak segments."""
    import gc

    arena = ShmArena(prefix=PREFIX)
    arena.put("x", np.zeros(16))
    names = arena.segment_names()
    assert ShmArena.leaked(PREFIX) == names
    del arena  # owner forgot destroy(); the finalize guard fires on gc
    gc.collect()
    assert ShmArena.leaked(PREFIX) == []


def test_finalize_guard_disarmed_by_destroy():
    """destroy() then gc: the guard must not double-unlink or raise."""
    import gc

    arena = ShmArena(prefix=PREFIX)
    arena.put("x", np.zeros(4))
    arena.destroy()
    del arena
    gc.collect()
    assert ShmArena.leaked(PREFIX) == []


def _own_arena_and_hang(prefix, q):
    import time

    arena = ShmArena(prefix=prefix)
    arena.put("x", np.zeros(32))
    q.put(arena.segment_names())
    time.sleep(300)  # parked until the parent SIGKILLs us


def test_reap_orphans_after_owner_sigkill():
    """SIGKILL skips finalizers; the reaper removes the dead owner's
    segments (named ``{prefix}_{pid}_{n}``) once the pid is gone."""
    ctx = mp.get_context("spawn")
    q = ctx.Queue()
    p = ctx.Process(target=_own_arena_and_hang, args=(PREFIX, q))
    p.start()
    names = q.get(timeout=30.0)
    p.kill()  # SIGKILL: no atexit, no weakref.finalize in the child
    p.join(timeout=30.0)
    assert sorted(names) == ShmArena.leaked(PREFIX)
    reaped = ShmArena.reap_orphans(PREFIX)
    assert reaped == sorted(names)
    assert ShmArena.leaked(PREFIX) == []


def test_reap_orphans_spares_live_owners():
    arena = ShmArena(prefix=PREFIX)
    try:
        arena.put("x", np.zeros(8))
        assert ShmArena.reap_orphans(PREFIX) == []  # owner (us) is alive
        assert ShmArena.leaked(PREFIX) == arena.segment_names()
    finally:
        arena.destroy()
