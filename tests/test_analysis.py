"""Scaling math and critical-path analysis."""

import numpy as np
import pytest

from repro.analysis.critical_path import dag_critical_path, op_group, work_by_group
from repro.analysis.scaling import efficiency, scaling_table, speedup
from repro.dashmm.dag import build_fmm_dag
from repro.sim.costmodel import CostModel
from repro.tree.dualtree import build_dual_tree
from repro.tree.lists import build_lists


def test_speedup_relative_to_smallest():
    times = {32: 10.0, 64: 5.0, 128: 2.5}
    sp = speedup(times)
    assert sp[32] == 1.0 and sp[64] == 2.0 and sp[128] == 4.0


def test_efficiency():
    times = {32: 10.0, 64: 6.0}
    eff = efficiency(times)
    assert eff[32] == 1.0
    assert eff[64] == pytest.approx(10.0 / 6.0 / 2.0)


def test_scaling_table_rows():
    rows = scaling_table({1: 4.0, 2: 2.0, 4: 1.25})
    assert [r["cores"] for r in rows] == [1, 2, 4]
    assert rows[2]["efficiency"] == pytest.approx(0.8)


def test_empty_inputs():
    assert speedup({}) == {}
    assert efficiency({}) == {}


def test_op_groups_cover_all_edge_classes():
    for op in ("S2M", "M2M"):
        assert op_group(op) == "up"
    for op in ("M2I", "I2I", "I2L", "M2L", "M2T", "S2L"):
        assert op_group(op) == "bridge"
    for op in ("S2T", "L2L", "L2T"):
        assert op_group(op) == "down"
    with pytest.raises(ValueError):
        op_group("Q2Q")


@pytest.fixture(scope="module")
def dag_setup():
    rng = np.random.default_rng(33)
    src = rng.uniform(0, 1, (4000, 3))
    tgt = rng.uniform(0, 1, (4000, 3))
    dual = build_dual_tree(src, tgt, 25, source_weights=np.ones(4000))
    lists = build_lists(dual)
    return build_fmm_dag(dual, lists, advanced=True)


def test_critical_path_with_costs(dag_setup):
    out = dag_critical_path(dag_setup, cost_model=CostModel())
    assert out["edges"] >= 5
    assert out["seconds"] > 0


def test_upward_work_is_small(dag_setup):
    """The paper: 'the absolute amount of work in the upward pass is
    fairly small' compared to the bridge and downward groups."""
    acc = work_by_group(dag_setup, CostModel())
    assert acc["up"] < acc["bridge"]
    assert acc["up"] < acc["down"]
