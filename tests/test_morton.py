"""Morton key encoding/decoding and hierarchy relations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tree.morton import (
    MAX_LEVEL,
    decode_morton,
    encode_morton,
    encode_points,
    morton_ancestor,
    morton_children,
    morton_level,
    morton_parent,
)


def test_root_key():
    assert encode_morton(0, 0, 0, 0) == 1
    assert decode_morton(1) == (0, 0, 0, 0)


def test_roundtrip_scalar():
    key = encode_morton(5, 3, 17, 30)
    assert decode_morton(key) == (5, 3, 17, 30)


def test_levels_do_not_collide():
    # the same lattice coords at different levels give different keys
    k1 = encode_morton(3, 1, 2, 3)
    k2 = encode_morton(4, 1, 2, 3)
    assert k1 != k2
    assert morton_level(k1) == 3
    assert morton_level(k2) == 4


def test_children_parent_inverse():
    key = encode_morton(4, 5, 9, 2)
    for c in morton_children(key):
        assert morton_parent(c) == key
        assert morton_level(c) == 5


def test_children_are_distinct_octants():
    key = encode_morton(2, 1, 1, 1)
    kids = morton_children(key)
    assert len(set(kids)) == 8
    offs = set()
    for c in kids:
        _, x, y, z = decode_morton(c)
        offs.add((x % 2, y % 2, z % 2))
    assert len(offs) == 8


def test_ancestor():
    key = encode_morton(6, 33, 12, 61)
    assert morton_ancestor(key, 0) == key
    assert morton_ancestor(key, 6) == 1  # root
    assert morton_level(morton_ancestor(key, 2)) == 4


def test_vector_roundtrip():
    rng = np.random.default_rng(0)
    level = 9
    n = 1 << level
    ix = rng.integers(0, n, 1000)
    iy = rng.integers(0, n, 1000)
    iz = rng.integers(0, n, 1000)
    keys = encode_morton(level, ix, iy, iz)
    lv, ox, oy, oz = decode_morton(keys)
    assert np.all(lv == level)
    assert np.all(ox == ix) and np.all(oy == iy) and np.all(oz == iz)


def test_vector_level():
    keys = np.array([encode_morton(l, 0, 0, 0) for l in range(MAX_LEVEL + 1)])
    assert np.array_equal(morton_level(keys), np.arange(MAX_LEVEL + 1))


def test_encode_points_clamps_far_face():
    pts = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
    keys = encode_points(pts, np.zeros(3), 1.0, 3)
    lv, x, y, z = decode_morton(keys)
    assert x[0] == y[0] == z[0] == 7  # clamped into last cell
    assert x[1] == y[1] == z[1] == 0


def test_encode_points_bucketing():
    # a point in the middle of cell (2, 5, 1) at level 3
    h = 1.0 / 8
    pt = np.array([[2.5 * h, 5.5 * h, 1.5 * h]])
    key = encode_points(pt, np.zeros(3), 1.0, 3)[0]
    assert decode_morton(int(key)) == (3, 2, 5, 1)


def test_morton_order_is_hierarchical():
    """Sorting by deep keys groups descendants of any box contiguously."""
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 1, (500, 3))
    deep = np.sort(encode_points(pts, np.zeros(3), 1.0, MAX_LEVEL))
    coarse = morton_ancestor(deep, 3 * (MAX_LEVEL - 2))
    # coarse keys of sorted deep keys must be non-decreasing
    assert np.all(np.diff(coarse) >= 0)


@settings(max_examples=200, deadline=None)
@given(
    st.integers(min_value=0, max_value=MAX_LEVEL),
    st.integers(min_value=0, max_value=2**MAX_LEVEL - 1),
    st.integers(min_value=0, max_value=2**MAX_LEVEL - 1),
    st.integers(min_value=0, max_value=2**MAX_LEVEL - 1),
)
def test_roundtrip_property(level, ix, iy, iz):
    n = 1 << level
    ix, iy, iz = ix % n, iy % n, iz % n
    assert decode_morton(encode_morton(level, ix, iy, iz)) == (level, ix, iy, iz)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=1, max_value=MAX_LEVEL), st.data())
def test_parent_contains_child_lattice(level, data):
    n = 1 << level
    ix = data.draw(st.integers(0, n - 1))
    iy = data.draw(st.integers(0, n - 1))
    iz = data.draw(st.integers(0, n - 1))
    key = encode_morton(level, ix, iy, iz)
    pl, px, py, pz = decode_morton(morton_parent(key))
    assert pl == level - 1
    assert (px, py, pz) == (ix // 2, iy // 2, iz // 2)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=1, max_value=512))
def test_roundtrip_int64_arrays(seed, n):
    """decode_morton(encode_morton(...)) round-trips whole int64 arrays."""
    rng = np.random.default_rng(seed)
    level = int(rng.integers(0, MAX_LEVEL + 1))
    side = 1 << level
    ix = rng.integers(0, side, n)
    iy = rng.integers(0, side, n)
    iz = rng.integers(0, side, n)
    keys = encode_morton(level, ix, iy, iz)
    assert keys.dtype == np.int64
    dl, dx, dy, dz = decode_morton(keys)
    assert np.all(dl == level)
    assert np.array_equal(dx, ix) and np.array_equal(dy, iy) and np.array_equal(dz, iz)


def test_decode_morton_cached_matches_scalar():
    from repro.tree.morton import decode_morton_cached

    rng = np.random.default_rng(0)
    for _ in range(200):
        level = int(rng.integers(0, MAX_LEVEL + 1))
        side = 1 << level
        key = encode_morton(
            level,
            int(rng.integers(0, side)),
            int(rng.integers(0, side)),
            int(rng.integers(0, side)),
        )
        assert decode_morton_cached(key) == decode_morton(key)
        # repeated lookups hit the memo and stay consistent
        assert decode_morton_cached(key) == decode_morton_cached(key)
    assert decode_morton_cached.cache_info().hits > 0
