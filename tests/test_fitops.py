"""Fitted translation operators: accuracy, caching, determinism."""

import numpy as np
import pytest

from repro.kernels.expo import assign_direction
from repro.kernels.fitops import OperatorFactory, fit_linear_map, octant_offset

RNG = np.random.default_rng(55)


def _sources(n=25):
    return RNG.uniform(-0.5, 0.5, (n, 3)), RNG.normal(size=25)


def test_octant_offsets_distinct():
    offs = {tuple(octant_offset(o)) for o in range(8)}
    assert len(offs) == 8
    for o in range(8):
        assert np.all(np.abs(octant_offset(o)) == 0.25)


def test_fit_linear_map_recovers_exact_map():
    A = RNG.normal(size=(50, 8)) + 1j * RNG.normal(size=(50, 8))
    T_true = RNG.normal(size=(6, 8))
    B = A @ T_true.T
    T = fit_linear_map(A, B)
    assert np.allclose(T, T_true, atol=1e-10)


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_m2m_accuracy(kern, laplace, yukawa, laplace_factory, yukawa_factory):
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    h = 0.5
    src, q = _sources()
    for oct_ in (0, 5, 7):
        off = octant_offset(oct_)
        Mc = k.p2m(src, q, h)
        Mp_fit = F.m2m(oct_, h) @ Mc
        Mp_exact = k.p2m(off + src / 2.0, q, 2 * h)
        far = RNG.uniform(-0.5, 0.5, (10, 3)) + np.array([4.0, 3.0, 3.0])
        a = k.m2t(Mp_fit, far, 2 * h)
        b = k.m2t(Mp_exact, far, 2 * h)
        assert np.max(np.abs(a - b)) / np.max(np.abs(b)) < 1e-5


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_m2l_accuracy(kern, laplace, yukawa, laplace_factory, yukawa_factory):
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    h = 0.5
    src, q = _sources()
    for delta in [(2, 0, 0), (3, -2, 1), (-2, 3, -3)]:
        L = F.m2l(delta, h) @ k.p2m(src, q, h)
        tin = RNG.uniform(-0.5, 0.5, (10, 3))
        phi = k.l2t(L, tin, h)
        exact = k.direct((tin + np.array(delta, dtype=float)) * h, src * h, q)
        # corner offsets sit at the truncation floor for p=10; the paper's
        # requirement is 3 digits
        assert np.max(np.abs(phi - exact)) / np.max(np.abs(exact)) < 5e-4


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_l2l_accuracy(kern, laplace, yukawa, laplace_factory, yukawa_factory):
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    h = 1.0
    far = RNG.uniform(-0.5, 0.5, (15, 3)) * 1.0 + np.array([3.5, -2.5, 2.0])
    qf = RNG.normal(size=15)
    Lp = k.p2l(far, qf, h)
    for oct_ in (1, 6):
        off = octant_offset(oct_)
        Lc = F.l2l(oct_, h) @ Lp
        yin = RNG.uniform(-0.5, 0.5, (10, 3))
        phi = k.l2t(Lc, yin, h / 2)
        exact = k.direct((off + yin / 2.0) * h, far * h, qf)
        assert np.max(np.abs(phi - exact)) / np.max(np.abs(exact)) < 1e-4


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_exponential_chain_accuracy(kern, laplace, yukawa, laplace_factory, yukawa_factory):
    """M->I -> I->I -> I->L reproduces the same field as direct M->L."""
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    h = 0.5
    src, q = _sources()
    M = k.p2m(src, q, h)
    for delta in [(0, 0, 2), (1, 3, -2), (-3, 1, 0)]:
        d = assign_direction(delta)
        W = F.m2i(d, h) @ M
        V = W * F.i2i(d, delta, h)
        L = F.i2l(d, h) @ V
        tin = RNG.uniform(-0.5, 0.5, (10, 3))
        phi = k.l2t(L, tin, h)
        exact = k.direct((tin + np.array(delta, dtype=float)) * h, src * h, q)
        assert np.max(np.abs(phi - exact)) / np.max(np.abs(exact)) < 2e-3


def test_cache_returns_same_object(laplace_factory):
    a = laplace_factory.m2m(2, 0.5)
    b = laplace_factory.m2m(2, 0.5)
    assert a is b


def test_laplace_scale_invariance_of_cache(laplace_factory):
    """Laplace operators are shared across levels (level_key is None)."""
    a = laplace_factory.m2m(3, 0.5)
    b = laplace_factory.m2m(3, 0.125)
    assert a is b


def test_yukawa_per_level_operators(yukawa_factory):
    a = yukawa_factory.m2m(3, 0.5)
    b = yukawa_factory.m2m(3, 0.25)
    assert a is not b
    assert not np.allclose(a, b)


def test_determinism(laplace):
    F1 = OperatorFactory(laplace, eps=1e-3, seed=7)
    F2 = OperatorFactory(laplace, eps=1e-3, seed=7)
    assert np.allclose(F1.m2l((2, 1, 0), 0.5), F2.m2l((2, 1, 0), 0.5))


def test_cache_stats(laplace_factory):
    laplace_factory.m2m(0, 0.5)
    stats = laplace_factory.cache_stats()
    assert stats.get("m2m", 0) >= 1
