"""Reliable parcel transport: dedup, acks, retries, budgets, timers."""

import pytest

from repro.hpx import (
    FaultyNetwork,
    LCOError,
    Parcel,
    Runtime,
    RuntimeConfig,
    TransportError,
)
from repro.hpx.scheduler import Task
from repro.hpx.transport import ReliableTransport


def _runtime(net=None, reliable=True, **kw):
    cfg = RuntimeConfig(
        n_localities=2, workers_per_locality=1, progress_cost=0.0, reliable=reliable, **kw
    )
    if net is not None:
        cfg.network = net
    return Runtime(cfg)


def _send_pings(rt, count, size_bytes=256):
    """One task on locality 0 fires ``count`` remote pings at locality 1."""
    seen = []
    rt.register_action("ping", lambda ctx, target, i: seen.append(i))

    def sender(ctx):
        ctx.charge("send", 1e-6)
        for i in range(count):
            ctx.send_parcel(
                Parcel(action="ping", target=1, args=(i,), size_bytes=size_bytes)
            )

    rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
    return seen


def test_reliable_over_clean_network_is_transparent():
    rt = _runtime()
    seen = _send_pings(rt, 10)
    rt.run()
    assert sorted(seen) == list(range(10))
    xp = rt.stats()["transport"]
    assert xp["retries"] == 0
    assert xp["acks_sent"] == 10
    assert xp["in_flight"] == 0


def test_drops_are_retried_until_delivered():
    rt = _runtime(net=FaultyNetwork(drop=0.4, seed=21))
    seen = _send_pings(rt, 20)
    rt.run()
    assert sorted(seen) == list(range(20))  # exactly once each
    xp = rt.stats()["transport"]
    assert xp["retries"] > 0
    assert xp["in_flight"] == 0


def test_duplicates_are_suppressed():
    rt = _runtime(net=FaultyNetwork(duplicate=1.0, seed=4))
    seen = _send_pings(rt, 8)
    rt.run()
    assert sorted(seen) == list(range(8))
    assert rt.stats()["transport"]["dups_suppressed"] >= 8


def test_direct_transport_delivers_duplicates_raw():
    rt = _runtime(net=FaultyNetwork(duplicate=1.0, seed=4), reliable=False)
    seen = _send_pings(rt, 8)
    rt.run()
    assert len(seen) == 16  # every parcel arrives twice
    assert "transport" not in rt.stats()


def test_direct_transport_loses_drops_silently():
    rt = _runtime(net=FaultyNetwork(drop=1.0, seed=2), reliable=False)
    seen = _send_pings(rt, 5)
    rt.run()
    assert seen == []


def test_retry_budget_exhaustion_raises_structured_error():
    rt = _runtime(
        net=FaultyNetwork(drop=1.0, seed=3), retry_limit=3, retry_timeout=1e-5
    )
    _send_pings(rt, 1)
    with pytest.raises(TransportError) as ei:
        rt.run()
    assert ei.value.attempts == 4  # initial send + 3 retries
    assert ei.value.parcel.action == "ping"


def test_backoff_spreads_retransmissions():
    """With everything dropped, successive retries land at geometric gaps."""
    rt = _runtime(
        net=FaultyNetwork(drop=1.0, seed=5),
        retry_limit=4,
        retry_timeout=1e-5,
        retry_backoff=2.0,
    )
    _send_pings(rt, 1, size_bytes=0)
    with pytest.raises(TransportError):
        rt.run()
    # 1 original + 4 retries hit the NIC (the runtime's private network
    # copy holds the counters; the config's instance stays untouched)
    assert rt.network.fault_stats()["dropped"] == 5


def test_acked_timers_do_not_inflate_makespan():
    """A clean reliable run must not wait out the (cancelled) retry timers."""
    slow = RuntimeConfig(
        n_localities=2,
        workers_per_locality=1,
        progress_cost=0.0,
        reliable=True,
        retry_timeout=10.0,  # absurdly long: would dominate t if not cancelled
    )
    rt = Runtime(slow)
    seen = _send_pings(rt, 3)
    t = rt.run()
    assert sorted(seen) == [0, 1, 2]
    assert t < 1.0  # clock stops at the last real event, not at +10s


def test_reorder_does_not_lose_or_duplicate():
    rt = _runtime(net=FaultyNetwork(reorder=1.0, reorder_jitter=20e-6, seed=6))
    seen = _send_pings(rt, 30)
    rt.run()
    assert sorted(seen) == list(range(30))


def test_outage_recovers_after_window():
    """Everything sent into a blackout is retried until the window lifts."""
    net = FaultyNetwork(outages=((1, 0.0, 2e-4),), seed=8)
    rt = _runtime(net=net, retry_timeout=5e-5, retry_limit=10)
    seen = _send_pings(rt, 5)
    t = rt.run()
    assert sorted(seen) == list(range(5))
    assert t >= 2e-4  # nothing could land before the outage lifted
    assert rt.stats()["transport"]["retries"] > 0


def test_memget_under_faults_with_reliable_transport():
    """The two-parcel memget round trip survives a lossy network."""
    rt = _runtime(net=FaultyNetwork(drop=0.3, duplicate=0.3, seed=12))
    box = rt.gas.alloc(1, "payload")
    got = []

    def starter(ctx):
        ctx.charge("go", 1e-6)
        fut = rt.memget(ctx, box)
        fut.on_trigger(lambda c: got.append(fut.value))

    rt.enqueue_task(Task(fn=starter, op_class="go"), 0)
    rt.run()
    assert got == ["payload"]


def test_retry_exhaustion_raises_exactly_once_with_failing_parcel():
    """Several doomed parcels: one structured abort, not an error storm.

    The first exhausted parcel wins; the scheduler quiesces after the
    current event, so the raised ``TransportError`` carries the failing
    parcel, the attempt/retry counters and a checkpoint of the
    still-consistent runtime state.
    """
    rt = _runtime(
        net=FaultyNetwork(drop=1.0, seed=3), retry_limit=3, retry_timeout=1e-5
    )
    _send_pings(rt, 3)
    with pytest.raises(TransportError) as ei:
        rt.run()
    exc = ei.value
    assert exc.parcel.action == "ping"
    assert exc.attempts == 4  # initial transmission + 3 retries
    assert exc.retries == 3  # and the two stay consistent
    assert "attempts=4" in str(exc) and "retries=3" in str(exc)
    # the abort path captured a checkpoint of the quiesced runtime
    assert exc.checkpoint is rt.checkpoints[-1]
    assert exc.checkpoint.label == "abort"
    # the scheduler handed the abort off cleanly (no sticky state)
    assert rt.scheduler.aborted is None


@pytest.mark.parametrize("fuzz", [17, 91])
def test_stale_and_duplicate_ack_accounting_under_fuzz(fuzz):
    """Fuzzed schedules + dup/reorder/drop faults: the pending/seen
    ledgers must balance - exactly-once delivery, zero in flight, and
    every duplicate or stale ack accounted rather than crashing."""
    runs = []
    for _ in range(2):  # identical seeds: accounting must be deterministic
        rt = _runtime(
            net=FaultyNetwork(drop=0.2, duplicate=0.5, reorder=0.5, seed=13),
            fuzz_schedule=fuzz,
        )
        seen = _send_pings(rt, 25)
        rt.run()
        assert sorted(seen) == list(range(25))
        xp = rt.stats()["transport"]
        assert xp["in_flight"] == 0
        assert xp["dups_suppressed"] > 0  # duplicates arrived and were eaten
        assert xp["stale_acks"] > 0  # dup/retransmit acks hit an empty slot
        assert xp["acks_sent"] >= 25  # one per delivery attempt that landed
        runs.append(xp)
    assert runs[0] == runs[1]


def test_outage_longer_than_retry_budget_suspends_and_resumes():
    """A blackout that outlives every retry no longer kills the run:
    exhausted parcels park until the outage window lifts, then resume
    with a fresh budget and deliver exactly once."""
    # budget: 1e-5 * (1+2+4) after the initial send - far less than 2e-3
    net = FaultyNetwork(outages=((1, 0.0, 2e-3),), seed=8)
    rt = _runtime(net=net, retry_timeout=1e-5, retry_limit=3)
    seen = _send_pings(rt, 5)
    t = rt.run()
    assert sorted(seen) == list(range(5))
    assert t >= 2e-3  # nothing could land before the window lifted
    xp = rt.stats()["transport"]
    assert xp["suspensions"] > 0
    assert xp["resumes"] == xp["suspensions"]  # every parked parcel resumed
    assert xp["suspended"] == 0
    assert xp["in_flight"] == 0


def test_exhaustion_outside_outage_still_aborts():
    """Suspension is outage-attributed: plain loss (no window covering
    the parcel's lifetime) keeps the hard structured-abort behaviour."""
    net = FaultyNetwork(drop=1.0, outages=((1, 5e-3, 6e-3),), seed=8)
    rt = _runtime(net=net, retry_timeout=1e-5, retry_limit=3)
    _send_pings(rt, 1)
    with pytest.raises(TransportError):
        rt.run()


def test_invalid_transport_configuration():
    rt = _runtime()
    with pytest.raises(ValueError):
        ReliableTransport(rt.scheduler, timeout=0.0)
    with pytest.raises(ValueError):
        ReliableTransport(rt.scheduler, backoff=0.5)
