"""Field gradients (forces): analytic kernels, expansion derivatives, FMM."""

import numpy as np
import pytest

from repro.kernels.base import Kernel
from repro.kernels.laplace import LaplaceKernel
from repro.kernels.yukawa import YukawaKernel
from repro.methods.fmm import FmmEvaluator

RNG = np.random.default_rng(90)


def _fd_direct(kernel, t, sources, w, h=1e-6):
    g = np.zeros(3)
    for ax in range(3):
        dp, dm = t.copy(), t.copy()
        dp[ax] += h
        dm[ax] -= h
        g[ax] = (
            kernel.direct(dp[None], sources, w)[0]
            - kernel.direct(dm[None], sources, w)[0]
        ) / (2 * h)
    return g


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_direct_gradient_matches_finite_difference(kern, laplace, yukawa):
    k = laplace if kern == "laplace" else yukawa
    sources = RNG.uniform(0, 1, (30, 3))
    w = RNG.normal(size=30)
    t = np.array([2.0, 0.3, -1.0])
    g = k.direct_gradient(t[None], sources, w)[0]
    assert np.allclose(g, _fd_direct(k, t, sources, w), rtol=1e-5)


def test_gradient_zero_at_coincident_point(laplace):
    pts = RNG.uniform(0, 1, (5, 3))
    g = laplace.direct_gradient(pts, pts, np.ones(5))
    assert np.isfinite(g).all()


def test_greens_gradient_exactly_zero_at_origin(laplace):
    """The r == 0 self-interaction row is exactly zero, not just finite."""
    d = np.vstack([np.zeros(3), [0.3, -0.2, 0.1], np.zeros(3)])
    g = laplace.greens_gradient(d)
    assert np.array_equal(g[0], np.zeros(3))
    assert np.array_equal(g[2], np.zeros(3))
    r = np.linalg.norm(d[1])
    assert np.allclose(g[1], -d[1] / r**3, rtol=1e-12)


def test_default_radial_gradient_fallback():
    """A kernel that doesn't override greens_gradient still gets one."""

    class Gaussian(Kernel):
        name = "gaussian"

        def greens(self, r):
            return np.exp(-(r**2))

        def p2m_matrix(self, rel, scale):  # pragma: no cover - unused here
            raise NotImplementedError

        def p2l_matrix(self, rel, scale):  # pragma: no cover
            raise NotImplementedError

        def m2t_matrix(self, rel, scale):  # pragma: no cover
            raise NotImplementedError

        def l2t_matrix(self, rel, scale):  # pragma: no cover
            raise NotImplementedError

    g = Gaussian(2)
    d = np.array([[0.5, -0.3, 0.2]])
    r = np.linalg.norm(d[0])
    expected = -2 * r * np.exp(-(r**2)) * d[0] / r
    assert np.allclose(g.greens_gradient(d)[0], expected, rtol=1e-5)


def test_expansion_gradients_match_direct(laplace, laplace_factory):
    sources = RNG.uniform(-0.5, 0.5, (25, 3))
    w = RNG.normal(size=25)
    h = 0.5
    # multipole gradient at far points
    M = laplace.p2m(sources, w, h)
    far = RNG.uniform(-0.5, 0.5, (8, 3)) + np.array([3.0, 2.0, -2.5])
    g_m = laplace.m2t_gradient(M, far, h)
    g_exact = laplace.direct_gradient(far * h, sources * h, w)
    assert np.max(np.abs(g_m - g_exact)) / np.max(np.abs(g_exact)) < 1e-4
    # local gradient at near points
    L = laplace.p2l(far, w[:8], h)
    near = RNG.uniform(-0.5, 0.5, (8, 3))
    g_l = laplace.l2t_gradient(L, near, h)
    g_exact2 = laplace.direct_gradient(near * h, far * h, w[:8])
    assert np.max(np.abs(g_l - g_exact2)) / np.max(np.abs(g_exact2)) < 1e-4


@pytest.mark.parametrize("kern", ["laplace", "yukawa"])
def test_fmm_gradients(kern, laplace, yukawa, laplace_factory, yukawa_factory, small_cloud):
    k = laplace if kern == "laplace" else yukawa
    F = laplace_factory if kern == "laplace" else yukawa_factory
    src, w, tgt = small_cloud
    ev = FmmEvaluator(k, threshold=30, factory=F)
    phi, grad = ev.evaluate(src, w, tgt, gradients=True)
    probe = slice(0, 300)
    exact = k.direct_gradient(tgt[probe], src, w)
    err = np.linalg.norm(grad[probe] - exact) / np.linalg.norm(exact)
    assert err < 2e-3
    # the potentials are unchanged by asking for gradients
    phi_only = ev.evaluate(src, w, tgt)
    assert np.allclose(phi, phi_only)


def test_fmm_gradients_with_adaptive_lists(laplace, laplace_factory):
    """Sphere data exercises the M->T gradient path (list 3)."""
    from repro.workloads.distributions import sphere_points

    src = sphere_points(1500, seed=1)
    tgt = sphere_points(1500, seed=2)
    w = RNG.normal(size=1500)
    ev = FmmEvaluator(laplace, threshold=30, factory=laplace_factory)
    _, grad = ev.evaluate(src, w, tgt, gradients=True)
    exact = laplace.direct_gradient(tgt[:200], src, w)
    err = np.linalg.norm(grad[:200] - exact) / np.linalg.norm(exact)
    assert err < 2e-3
