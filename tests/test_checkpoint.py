"""Checkpoint/restore: kill a run at any checkpoint, lose nothing.

The fail-safe contract: a run interrupted at a checkpoint and restored
is *bit-identical* - potentials AND virtual clock - to one that was
never interrupted, because a :class:`RuntimeCheckpoint` rewinds the
live object graph (scheduler heap, LCO ledgers, GAS, transport framing,
registrar accumulators, RNG streams) to exactly the state the
uninterrupted run passed through.  Certified here across methods,
kernels, fuzzed schedules and a faulty network, plus the structured
abort path that leaves a checkpoint behind when a run dies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dashmm import DashmmEvaluator
from repro.hpx import (
    FaultyNetwork,
    Parcel,
    Runtime,
    RuntimeConfig,
    TransportError,
)
from repro.hpx.scheduler import Task


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(99)
    n = 700
    return rng.uniform(0, 1, (n, 3)), rng.normal(size=n), rng.uniform(0, 1, (n, 3))


def _evaluator(kernel, factory, method="fmm", **cfg_kw):
    return DashmmEvaluator(
        kernel,
        method=method,
        threshold=30,
        runtime_config=RuntimeConfig(
            n_localities=3, workers_per_locality=2, **cfg_kw
        ),
        factory=factory,
    )


def _assert_resumes_bit_identical(ev, baseline, checkpoints, picks):
    """Restore ``baseline`` at each picked checkpoint; demand identity."""
    for i in picks:
        resumed = ev.resume(baseline, checkpoints[i])
        assert np.array_equal(baseline.potentials, resumed.potentials), (
            f"potentials diverged after restore at checkpoint {i} "
            f"(t={checkpoints[i].time:.6g})"
        )
        assert resumed.time == baseline.time, (
            f"virtual clock diverged after restore at checkpoint {i}: "
            f"{resumed.time} != {baseline.time}"
        )
        assert resumed.extras["resumed_from"] == checkpoints[i].time
        assert resumed.extras["untriggered"] == 0


def test_kill_and_restore_at_every_checkpoint(laplace, laplace_factory, cloud):
    """The core guarantee, exhaustively: every checkpoint of one run is
    a valid kill point."""
    src, w, tgt = cloud
    ev = _evaluator(laplace, laplace_factory, checkpoint_every=2e-4)
    baseline = ev.evaluate(src, w, tgt)
    cps = baseline.extras["checkpoints"]
    assert len(cps) >= 3  # the run actually paused repeatedly
    assert [cp.time for cp in cps] == sorted(cp.time for cp in cps)
    assert baseline.runtime_stats["checkpoints"] == len(cps)
    _assert_resumes_bit_identical(ev, baseline, cps, range(len(cps)))


@pytest.mark.parametrize("method", ["fmm", "bh"])
@pytest.mark.parametrize("kname", ["laplace", "yukawa"])
def test_restore_matrix_methods_kernels(kname, method, cloud, request):
    kernel = request.getfixturevalue(kname)
    factory = request.getfixturevalue(f"{kname}_factory")
    src, w, tgt = cloud
    ev = _evaluator(kernel, factory, method=method, checkpoint_every=3e-4)
    baseline = ev.evaluate(src, w, tgt)
    cps = baseline.extras["checkpoints"]
    assert cps, "run finished before the first checkpoint interval"
    picks = sorted({0, len(cps) // 2, len(cps) - 1})
    _assert_resumes_bit_identical(ev, baseline, cps, picks)


@pytest.mark.parametrize("fuzz", [7, 123])
def test_restore_under_fuzzed_schedules(fuzz, laplace, laplace_factory, cloud):
    """Fuzzed pick/steal decisions: the snapshot carries the fuzzer's
    RNG state and truncates its trace, so the resumed run re-makes the
    *same* perturbed decisions."""
    src, w, tgt = cloud
    ev = _evaluator(
        laplace, laplace_factory, checkpoint_every=3e-4, fuzz_schedule=fuzz
    )
    baseline = ev.evaluate(src, w, tgt)
    cps = baseline.extras["checkpoints"]
    assert cps
    picks = sorted({0, len(cps) // 2, len(cps) - 1})
    _assert_resumes_bit_identical(ev, baseline, cps, picks)


def test_restore_with_faulty_network_and_reliable_transport(
    laplace, laplace_factory, cloud
):
    """Retry timers, the framing ledger and the fault-RNG all rewind."""
    src, w, tgt = cloud
    ev = _evaluator(
        laplace,
        laplace_factory,
        checkpoint_every=3e-4,
        reliable=True,
        network=FaultyNetwork(drop=0.05, duplicate=0.05, reorder=0.5, seed=7),
    )
    baseline = ev.evaluate(src, w, tgt)
    assert baseline.runtime_stats["transport"]["retries"] > 0
    cps = baseline.extras["checkpoints"]
    assert cps
    picks = sorted({0, len(cps) // 2, len(cps) - 1})
    _assert_resumes_bit_identical(ev, baseline, cps, picks)


def test_abort_leaves_restorable_checkpoint():
    """A structured abort quiesces first, so the TransportError carries
    a checkpoint holding the failing parcel in the suspended table; a
    restore-and-resume re-drives it with a fresh retry budget (and, the
    network still being dead here, fails again - later, deterministically)."""
    cfg = RuntimeConfig(
        n_localities=2,
        workers_per_locality=1,
        progress_cost=0.0,
        reliable=True,
        retry_limit=3,
        retry_timeout=1e-5,
        network=FaultyNetwork(drop=1.0, seed=3),
    )
    rt = Runtime(cfg)
    rt.register_action("ping", lambda ctx, target, i: None)

    def sender(ctx):
        ctx.charge("send", 1e-6)
        ctx.send_parcel(Parcel(action="ping", target=1, args=(0,), size_bytes=64))

    rt.enqueue_task(Task(fn=sender, op_class="send"), 0)
    with pytest.raises(TransportError) as ei:
        rt.run()
    cp = ei.value.checkpoint
    assert cp.label == "abort"
    assert rt.stats()["transport"]["suspended"] == 1  # parked, not dropped
    t_fail = rt.scheduler.now
    rt.restore(cp)
    with pytest.raises(TransportError) as ei2:
        rt.run()
    # the parked parcel resumed with a fresh budget and burned it again
    assert rt.scheduler.now > t_fail
    assert ei2.value.attempts == ei.value.attempts
    assert rt.stats()["transport"]["resumes"] == 1


def test_restore_rejects_foreign_runtime():
    rt_a = Runtime(RuntimeConfig(n_localities=1, workers_per_locality=1))
    rt_b = Runtime(RuntimeConfig(n_localities=1, workers_per_locality=1))
    cp = rt_a.checkpoint()
    with pytest.raises(ValueError, match="captured from"):
        rt_b.restore(cp)


def test_checkpoint_config_validation():
    with pytest.raises(ValueError, match="checkpoint_every"):
        RuntimeConfig(checkpoint_every=0.0)
    with pytest.raises(ValueError, match="hazard"):
        RuntimeConfig(checkpoint_every=1e-4, detect_hazards=True)
    rt = Runtime(RuntimeConfig(n_localities=1, workers_per_locality=1, detect_hazards=True))
    with pytest.raises(ValueError, match="hazard"):
        rt.checkpoint()


def test_restore_drops_later_checkpoints(laplace, laplace_factory, cloud):
    """Rewinding to checkpoint i invalidates checkpoints > i on the
    runtime (the resumed run records its own); earlier ones survive."""
    src, w, tgt = cloud
    ev = _evaluator(laplace, laplace_factory, checkpoint_every=3e-4)
    baseline = ev.evaluate(src, w, tgt)
    runtime = baseline.extras["runtime"]
    cps = list(baseline.extras["checkpoints"])
    assert len(cps) >= 2
    runtime.restore(cps[0])
    assert runtime.checkpoints == [cps[0]]
    runtime.run()
    assert runtime.checkpoints[0] is cps[0]
    assert len(runtime.checkpoints) == len(cps)
